#include "src/apps/multicast.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace msgorder {

Workload broadcast_workload(const BroadcastWorkloadOptions& options,
                            Rng& rng) {
  assert(options.n_processes >= 2);
  Workload workload;
  SimTime t = 0;
  MessageId next_id = 0;
  for (std::size_t b = 0; b < options.n_broadcasts; ++b) {
    t += rng.exponential(options.mean_gap);
    const auto src =
        static_cast<ProcessId>(rng.below(options.n_processes));
    for (ProcessId dst = 0; dst < options.n_processes; ++dst) {
      if (dst == src) continue;
      Message m;
      m.id = next_id++;
      m.src = src;
      m.dst = dst;
      m.mcast = static_cast<int>(b);
      workload.push_back({t, m});
    }
  }
  return workload;
}

std::optional<UserEvent> group_send(const UserRun& run, int group) {
  for (const Message& m : run.messages()) {
    if (m.mcast == group) return UserEvent{m.id, UserEventKind::kSend};
  }
  return std::nullopt;
}

std::optional<MessageId> group_copy_at(const UserRun& run, int group,
                                       ProcessId p) {
  for (const Message& m : run.messages()) {
    if (m.mcast == group && m.dst == p) return m.id;
  }
  return std::nullopt;
}

namespace {

int max_group(const UserRun& run) {
  int g = -1;
  for (const Message& m : run.messages()) g = std::max(g, m.mcast);
  return g;
}

}  // namespace

bool causal_broadcast_ok(const UserRun& run) {
  const int groups = max_group(run) + 1;
  const std::size_t n = run.process_count();
  for (int g1 = 0; g1 < groups; ++g1) {
    const auto s1 = group_send(run, g1);
    if (!s1.has_value()) continue;
    for (int g2 = 0; g2 < groups; ++g2) {
      if (g1 == g2) continue;
      const auto s2 = group_send(run, g2);
      if (!s2.has_value() || !run.before(*s1, *s2)) continue;
      for (ProcessId p = 0; p < n; ++p) {
        const auto c1 = group_copy_at(run, g1, p);
        const auto c2 = group_copy_at(run, g2, p);
        if (!c1.has_value() || !c2.has_value()) continue;
        if (run.before(*c2, UserEventKind::kDeliver, *c1,
                       UserEventKind::kDeliver)) {
          return false;
        }
      }
    }
  }
  return true;
}

bool total_order_ok(const UserRun& run) {
  const int groups = max_group(run) + 1;
  const std::size_t n = run.process_count();
  for (int g1 = 0; g1 < groups; ++g1) {
    for (int g2 = g1 + 1; g2 < groups; ++g2) {
      int orientation = 0;  // 0 unknown, +1 g1 first, -1 g2 first
      for (ProcessId p = 0; p < n; ++p) {
        const auto c1 = group_copy_at(run, g1, p);
        const auto c2 = group_copy_at(run, g2, p);
        if (!c1.has_value() || !c2.has_value()) continue;
        const bool first = run.before(*c1, UserEventKind::kDeliver, *c2,
                                      UserEventKind::kDeliver);
        const int here = first ? 1 : -1;
        if (orientation == 0) {
          orientation = here;
        } else if (orientation != here) {
          return false;
        }
      }
    }
  }
  return true;
}

// ---- AsyncBroadcast ------------------------------------------------------

void AsyncBroadcast::on_invoke(const Message& m) {
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  host_.send_packet(std::move(pkt));
}

void AsyncBroadcast::on_packet(const Packet& packet) {
  if (!packet.is_control) host_.deliver(packet.user_msg);
}

ProtocolFactory AsyncBroadcast::factory() {
  return [](Host& host) { return std::make_unique<AsyncBroadcast>(host); };
}

// ---- CausalBroadcastBss --------------------------------------------------

void CausalBroadcastBss::on_invoke(const Message& m) {
  if (m.mcast != last_group_ticked_) {
    // First copy of a new broadcast: stamp, then count it as our own.
    own_clock_before_ = delivered_;
    delivered_.tick(host_.self());
    last_group_ticked_ = m.mcast;
  }
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = own_clock_before_.byte_size();
  pkt.content = Tag{own_clock_before_};
  host_.send_packet(std::move(pkt));
}

bool CausalBroadcastBss::deliverable(const Buffered& b) const {
  // Next-in-sequence from its origin, and the origin's causal past of
  // delivered broadcasts is covered here.
  if (delivered_[b.origin] != b.tag.clock[b.origin]) return false;
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (k == b.origin) continue;
    if (delivered_[k] < b.tag.clock[k]) return false;
  }
  return true;
}

void CausalBroadcastBss::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(*it)) {
        host_.deliver(it->msg);
        delivered_.tick(it->origin);
        buffer_.erase(it);
        progressed = true;
        break;
      }
    }
  }
}

void CausalBroadcastBss::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  buffer_.push_back({packet.user_msg, packet.src,
                     std::any_cast<Tag>(packet.content)});
  drain();
}

ProtocolFactory CausalBroadcastBss::factory() {
  return [](Host& host) {
    return std::make_unique<CausalBroadcastBss>(host);
  };
}

// ---- TotalOrderBroadcast -------------------------------------------------

void TotalOrderBroadcast::on_invoke(const Message& m) {
  const bool first_copy = my_groups_.insert(m.mcast).second;
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  host_.send_packet(std::move(pkt));
  if (!first_copy) return;
  if (host_.self() == kSequencer) {
    assign_order(m.mcast);
  } else {
    Packet req;
    req.dst = kSequencer;
    req.is_control = true;
    req.kind = "REQ";
    req.tag_bytes = 8;
    req.content = m.mcast;
    host_.send_packet(std::move(req));
  }
}

void TotalOrderBroadcast::assign_order(int group) {
  if (!sequenced_.insert(group).second) return;
  const std::uint32_t seq = next_seq_++;
  for (ProcessId p = 0; p < host_.process_count(); ++p) {
    if (p == host_.self()) continue;
    Packet order;
    order.dst = p;
    order.is_control = true;
    order.kind = "ORDER";
    order.tag_bytes = 12;
    order.content = std::make_pair(group, seq);
    host_.send_packet(std::move(order));
  }
  learn_order(group, seq);
}

void TotalOrderBroadcast::learn_order(int group, std::uint32_t seq) {
  seq_to_group_[seq] = group;
  drain();
}

void TotalOrderBroadcast::drain() {
  for (;;) {
    const auto it = seq_to_group_.find(next_deliver_);
    if (it == seq_to_group_.end()) return;
    const int group = it->second;
    if (my_groups_.count(group) > 0) {
      // Our own broadcast: no local copy to deliver.
      ++next_deliver_;
      continue;
    }
    const auto copy = pending_copy_.find(group);
    if (copy == pending_copy_.end()) return;  // copy still in flight
    host_.deliver(copy->second);
    pending_copy_.erase(copy);
    ++next_deliver_;
  }
}

void TotalOrderBroadcast::on_packet(const Packet& packet) {
  if (!packet.is_control) {
    pending_copy_[host_.message(packet.user_msg).mcast] = packet.user_msg;
    drain();
    return;
  }
  if (packet.kind == "REQ") {
    assign_order(std::any_cast<int>(packet.content));
  } else if (packet.kind == "ORDER") {
    const auto [group, seq] =
        std::any_cast<std::pair<int, std::uint32_t>>(packet.content);
    learn_order(group, seq);
  }
}

ProtocolFactory TotalOrderBroadcast::factory() {
  return [](Host& host) {
    return std::make_unique<TotalOrderBroadcast>(host);
  };
}

}  // namespace msgorder
