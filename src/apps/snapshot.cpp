#include "src/apps/snapshot.hpp"

#include <algorithm>

namespace msgorder {

namespace {

std::uint32_t lookup(const std::map<ProcessId, std::uint32_t>& counters,
                     ProcessId key) {
  const auto it = counters.find(key);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace

bool GlobalSnapshot::complete() const {
  if (processes.empty()) return false;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (!processes[p].recorded) return false;
    // A marker must have arrived on every incoming channel.
    if (processes[p].channel_state.size() + 1 < processes.size()) {
      return false;
    }
  }
  return true;
}

bool GlobalSnapshot::consistent() const {
  for (std::size_t j = 0; j < processes.size(); ++j) {
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (i == j) continue;
      const std::uint32_t delivered =
          lookup(processes[j].delivered_at_cut, static_cast<ProcessId>(i));
      const std::uint32_t sent =
          lookup(processes[i].sent_at_cut, static_cast<ProcessId>(j));
      if (delivered > sent) return false;  // a message crossed backwards
    }
  }
  return true;
}

bool GlobalSnapshot::channel_states_account() const {
  for (std::size_t j = 0; j < processes.size(); ++j) {
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (i == j) continue;
      const std::uint32_t delivered =
          lookup(processes[j].delivered_at_cut, static_cast<ProcessId>(i));
      const std::uint32_t sent =
          lookup(processes[i].sent_at_cut, static_cast<ProcessId>(j));
      if (sent < delivered) return false;
      const auto it =
          processes[j].channel_state.find(static_cast<ProcessId>(i));
      const std::size_t recorded =
          it == processes[j].channel_state.end() ? 0 : it->second.size();
      if (recorded != sent - delivered) return false;
    }
  }
  return true;
}

std::string GlobalSnapshot::to_string() const {
  std::string out;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    out += "P" + std::to_string(p) +
           (processes[p].recorded ? " recorded;" : " NOT recorded;");
    for (const auto& [from, msgs] : processes[p].channel_state) {
      out += " ch" + std::to_string(from) + "->" + std::to_string(p) +
             ": " + std::to_string(msgs.size()) + " in flight;";
    }
    out += "\n";
  }
  return out;
}

SnapshotProtocol::SnapshotProtocol(Host& host, Options options,
                                   Registry* registry)
    : host_(host), options_(options), registry_(registry) {
  if (registry_->size() < host_.process_count()) {
    registry_->resize(host_.process_count());
  }
}

ProcessSnapshot& SnapshotProtocol::my_record() {
  return (*registry_)[host_.self()];
}

void SnapshotProtocol::maybe_trigger() {
  if (host_.self() == 0 && !recorded_ &&
      sends_made_total_ + 1 == options_.trigger_send) {
    record_state_and_send_markers();
  }
}

void SnapshotProtocol::record_state_and_send_markers() {
  recorded_ = true;
  ProcessSnapshot& record = my_record();
  record.recorded = true;
  record.sent_at_cut = sent_;
  record.delivered_at_cut = delivered_;
  // Channels whose marker already arrived have a final (empty-started)
  // state; all others start recording now.
  for (ProcessId p = 0; p < host_.process_count(); ++p) {
    if (p == host_.self()) continue;
    ChannelIn& in = in_[p];
    if (!in.marker_received) {
      in.recording = true;
      record.channel_state[p];  // ensure the (possibly empty) entry
    }
    Packet marker;
    marker.dst = p;
    marker.is_control = true;
    marker.kind = "MARKER";
    marker.tag_bytes = sizeof(std::uint32_t);
    marker.content = next_out_seq_[p]++;
    host_.send_packet(std::move(marker));
  }
}

void SnapshotProtocol::on_invoke(const Message& m) {
  maybe_trigger();
  ++sends_made_total_;
  ++sent_[m.dst];
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = sizeof(std::uint32_t);
  pkt.content = next_out_seq_[m.dst]++;
  host_.send_packet(std::move(pkt));
}

void SnapshotProtocol::accept(ProcessId from, bool is_marker,
                              MessageId msg) {
  ChannelIn& in = in_[from];
  if (is_marker) {
    in.marker_received = true;
    if (!recorded_) {
      // First marker: record with this channel's state empty.
      record_state_and_send_markers();
      in.recording = false;
      my_record().channel_state[from];  // empty entry, final
    } else {
      in.recording = false;  // channel state for `from` is final
    }
    return;
  }
  ++delivered_[from];
  host_.deliver(msg);
  if (recorded_ && in.recording) {
    my_record().channel_state[from].push_back(msg);
  }
}

void SnapshotProtocol::drain(ProcessId from) {
  ChannelIn& in = in_[from];
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = in.buffer.begin(); it != in.buffer.end(); ++it) {
      if (std::get<0>(*it) == in.next_expected) {
        const bool is_marker = std::get<1>(*it);
        const MessageId msg = std::get<2>(*it);
        in.buffer.erase(it);
        ++in.next_expected;
        accept(from, is_marker, msg);
        progressed = true;
        break;
      }
    }
  }
}

void SnapshotProtocol::on_packet(const Packet& packet) {
  const bool is_marker = packet.is_control;
  if (is_marker && packet.kind != "MARKER") return;
  if (!options_.fifo_markers) {
    // No ordering discipline: process in arrival order (the broken
    // variant the experiment contrasts).
    accept(packet.src, is_marker, is_marker ? 0 : packet.user_msg);
    return;
  }
  const auto seq = std::any_cast<std::uint32_t>(packet.content);
  in_[packet.src].buffer.emplace_back(
      seq, is_marker, is_marker ? 0 : packet.user_msg);
  drain(packet.src);
}

ProtocolFactory SnapshotProtocol::factory(Options options,
                                          Registry* registry) {
  return [options, registry](Host& host) {
    return std::make_unique<SnapshotProtocol>(host, options, registry);
  };
}

GlobalSnapshot collect(const SnapshotProtocol::Registry& registry) {
  GlobalSnapshot snapshot;
  snapshot.processes = registry;
  return snapshot;
}

}  // namespace msgorder
