// Global snapshots (Chandy-Lamport) as an application of message
// ordering — the paper's introduction motivates ordering guarantees
// with exactly this class of algorithms, and its related-work section
// (asynchronous consistent-cut protocols [7, 11, 17]) notes they hinge
// on inhibition/ordering of marker messages.
//
// SnapshotProtocol layers the classic marker algorithm over a FIFO
// channel discipline (markers are sequenced *with* the user traffic, as
// the algorithm requires).  Setting `fifo_markers = false` removes the
// ordering guarantee: markers and messages race, and the recorded cut
// can become inconsistent — the operational demonstration of why the
// FIFO specification matters.
//
// The snapshot initiator is process 0; it records its state and emits
// markers immediately before its `trigger_send`-th user message send.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

/// What one process recorded.
struct ProcessSnapshot {
  bool recorded = false;
  /// Messages this process had sent on each outgoing channel when it
  /// recorded its state (per destination).
  std::map<ProcessId, std::uint32_t> sent_at_cut;
  /// Messages delivered from each incoming channel at the cut.
  std::map<ProcessId, std::uint32_t> delivered_at_cut;
  /// Channel states: per incoming channel, the user messages recorded as
  /// in flight (delivered after the local cut but sent before the
  /// sender's cut — exactly what arrives between cut and marker).
  std::map<ProcessId, std::vector<MessageId>> channel_state;
};

/// Global snapshot assembled after the run; see collect().
struct GlobalSnapshot {
  std::vector<ProcessSnapshot> processes;

  /// Every process recorded a state and got a marker on every channel.
  bool complete() const;

  /// Cut consistency: no channel delivered more messages at the cut
  /// than its sender had sent at the cut (no message crosses the cut
  /// backwards).  This is what Chandy-Lamport guarantees on FIFO
  /// channels and what breaks without them.
  bool consistent() const;

  /// Channel-state accounting: for every channel, the recorded in-flight
  /// messages are exactly sent_at_cut - delivered_at_cut many.
  bool channel_states_account() const;

  std::string to_string() const;
};

class SnapshotProtocol final : public Protocol {
 public:
  struct Options {
    /// Sequence markers with user messages per channel (the algorithm's
    /// FIFO requirement).  false = race markers against user traffic.
    bool fifo_markers = true;
    /// The initiator (process 0) snapshots right before its Nth send.
    std::uint32_t trigger_send = 3;
  };

  /// Shared registry the per-process instances report into, owned by the
  /// caller so the snapshot outlives the simulation.
  using Registry = std::vector<ProcessSnapshot>;

  SnapshotProtocol(Host& host, Options options, Registry* registry);

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "snapshot"; }

  static ProtocolFactory factory(Options options, Registry* registry);

 private:
  struct ChannelIn {
    std::uint32_t next_expected = 0;
    /// (seq, is_marker, message id) buffered until in order.
    std::vector<std::tuple<std::uint32_t, bool, MessageId>> buffer;
    bool marker_received = false;
    /// Recording in-flight messages between our cut and this channel's
    /// marker.
    bool recording = false;
  };

  void maybe_trigger();
  void record_state_and_send_markers();
  void accept(ProcessId from, bool is_marker, MessageId msg);
  void drain(ProcessId from);
  ProcessSnapshot& my_record();

  Host& host_;
  Options options_;
  Registry* registry_;
  std::uint32_t sends_made_total_ = 0;
  std::map<ProcessId, std::uint32_t> sent_;       // per outgoing channel
  std::map<ProcessId, std::uint32_t> delivered_;  // per incoming channel
  std::map<ProcessId, std::uint32_t> next_out_seq_;
  std::map<ProcessId, ChannelIn> in_;
  bool recorded_ = false;
};

/// Convenience: judge a registry filled by a finished simulation.
GlobalSnapshot collect(const SnapshotProtocol::Registry& registry);

}  // namespace msgorder
