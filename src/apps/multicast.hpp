// Multicast ordering — the extension the paper's conclusion sketches
// ("the results in this paper can be extended to incorporate multicast
// messages").  A multicast to the whole group is encoded as one unicast
// copy per destination sharing a `Message::mcast` group id; the
// specifications then constrain the copies jointly:
//
//   * causal broadcast ordering: if the send of group g1 causally
//     precedes the send of g2, no process delivers its g2 copy before
//     its g1 copy (the multicast analogue of X_co — tagged class, the
//     BSS protocol below implements it with vector clocks);
//   * total order (atomic broadcast): any two processes deliver their
//     copies of any two groups in the same relative order (general
//     class: the ISIS-style protocol below needs a sequencer and
//     control messages, consistent with Theorem 1's separation).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/poset/clocks.hpp"
#include "src/poset/user_run.hpp"
#include "src/protocols/protocol.hpp"
#include "src/sim/workload.hpp"
#include "src/util/rng.hpp"

namespace msgorder {

struct BroadcastWorkloadOptions {
  std::size_t n_processes = 4;
  std::size_t n_broadcasts = 50;
  SimTime mean_gap = 1.0;
};

/// Each broadcast expands to n-1 simultaneous unicast copies sharing an
/// mcast group id (0, 1, 2, ... in invoke order).
Workload broadcast_workload(const BroadcastWorkloadOptions& options,
                            Rng& rng);

// ---- Checkers (oracles over the user view) ------------------------------

/// The first copy's send stands in for the group's send event.
std::optional<UserEvent> group_send(const UserRun& run, int group);
/// The copy of `group` delivered at process p, if any.
std::optional<MessageId> group_copy_at(const UserRun& run, int group,
                                       ProcessId p);

/// Causal broadcast ordering holds: send(g1) |> send(g2) implies no
/// process delivers g2's copy before g1's copy.
bool causal_broadcast_ok(const UserRun& run);

/// Total order holds: all processes deliver their copies of any two
/// groups in the same relative order.
bool total_order_ok(const UserRun& run);

// ---- Protocols -----------------------------------------------------------

/// Copies go out immediately, delivered on arrival (the baseline that
/// violates both specs under jitter).
class AsyncBroadcast final : public Protocol {
 public:
  explicit AsyncBroadcast(Host& host) : host_(host) {}
  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "bcast-async"; }
  static ProtocolFactory factory();

 private:
  Host& host_;
};

/// Birman-Schiper-Stephenson causal broadcast: one vector clock counting
/// broadcasts per process; copy of the b-th broadcast by i is delivered
/// at j when j has delivered broadcast b-1 from i and everything the
/// sender had delivered.  Tag O(n); no control messages (tagged class).
class CausalBroadcastBss final : public Protocol {
 public:
  explicit CausalBroadcastBss(Host& host)
      : host_(host), delivered_(host.process_count()) {}
  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "bcast-bss"; }
  static ProtocolFactory factory();

  struct Tag {
    VectorClock clock;  // sender's broadcast vector BEFORE this one
  };

 private:
  struct Buffered {
    MessageId msg;
    ProcessId origin;
    Tag tag;
  };
  bool deliverable(const Buffered& b) const;
  void drain();

  Host& host_;
  VectorClock delivered_;  // delivered_[i] = broadcasts from i delivered
  int last_group_ticked_ = -1;
  VectorClock own_clock_before_{};  // stamped once per group
  std::vector<Buffered> buffer_;
};

/// ISIS-style sequenced atomic broadcast: copies carry the group id;
/// process 0 assigns a global sequence number per group and broadcasts
/// ORDER control messages; receivers deliver copies in sequence order.
class TotalOrderBroadcast final : public Protocol {
 public:
  explicit TotalOrderBroadcast(Host& host) : host_(host) {}
  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "bcast-total"; }
  static ProtocolFactory factory();

 private:
  static constexpr ProcessId kSequencer = 0;
  void learn_order(int group, std::uint32_t seq);
  void assign_order(int group);
  void drain();

  Host& host_;
  std::map<std::uint32_t, int> seq_to_group_;  // global order as learned
  std::map<int, MessageId> pending_copy_;      // copies awaiting delivery
  std::set<int> my_groups_;                    // broadcasts we originated
  std::uint32_t next_deliver_ = 0;
  std::uint32_t next_seq_ = 0;                 // sequencer only
  std::set<int> sequenced_;                    // sequencer only
};

}  // namespace msgorder
