// The three canonical protocols realizing the limit sets of Theorem 1:
//
//   TaglessAll        : enables everything;             X_P = X_async.
//   TaggedCausal      : abstract RST causal delivery;   X_P = X_co.
//   GeneralSerializer : one message exchange at a time; X_P = X_sync.
//
// Each is expressed as a pure function of exactly the knowledge its class
// allows, which the explorer verifies empirically (Lemma 2 / Theorem 1
// test-beds).
#pragma once

#include "src/semantics/enabled_sets.hpp"

namespace msgorder {

/// The do-nothing protocol: every controllable event is enabled.
/// P_i is a function of the local history alone (trivially), so the
/// protocol is tagless.
class TaglessAll final : public EnabledSetProtocol {
 public:
  std::vector<SystemEvent> enabled_controllables(
      const SystemRun& run, ProcessId i) const override;
  KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kTagless;
  }
  std::string name() const override { return "tagless-all"; }
};

/// Abstract causal-ordering protocol: sends are never delayed; the
/// delivery of x at process i is enabled iff every message y destined to
/// i with y.s -> x.s has already been delivered at i.  Both facts are
/// functions of CausalPast_i(H) (x.r* in H_i puts x's send history into
/// i's causal past), so the protocol is tagged.
class TaggedCausal final : public EnabledSetProtocol {
 public:
  std::vector<SystemEvent> enabled_controllables(
      const SystemRun& run, ProcessId i) const override;
  KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kTagged;
  }
  std::string name() const override { return "tagged-causal"; }
};

/// Logically-synchronous protocol: at most one message is "open" (sent
/// but undelivered) at any time, and when none is open only the pending
/// send of the smallest message id is enabled.  Deciding whether some
/// *other* process has a smaller pending send requires knowledge outside
/// the causal past — exactly the concurrent knowledge only control
/// messages provide, which is why this protocol is general and cannot be
/// weakened to tagged (Theorem 1).
class GeneralSerializer final : public EnabledSetProtocol {
 public:
  std::vector<SystemEvent> enabled_controllables(
      const SystemRun& run, ProcessId i) const override;
  KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kGeneral;
  }
  std::string name() const override { return "general-serializer"; }
};

}  // namespace msgorder
