// The abstract protocol model of Section 3.2: a protocol is a vector of
// enabled-event sets P_i(H).  Property P1 fixes the uncontrollable part
// (invokes I_i and receives R_i are always enabled; only sends S_i and
// deliveries D_i may be inhibited), so implementations supply just the
// subset of controllable events they enable.
//
// The three knowledge classes are *restrictions on the function* P_i:
//   general : P_i may depend on the whole run H,
//   tagged  : P_i may depend only on CausalPast_i(H),
//   tagless : P_i may depend only on the local history H_i.
// Conformance to a declared class is checked empirically by the explorer
// (same knowledge => same enabled set, over all explored run pairs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/poset/system_run.hpp"

namespace msgorder {

enum class KnowledgeClass { kGeneral, kTagged, kTagless };

std::string to_string(KnowledgeClass k);

class EnabledSetProtocol {
 public:
  virtual ~EnabledSetProtocol() = default;

  /// The subset of controllable(i) = S_i(H) u D_i(H) that the protocol
  /// enables after run H.  Must only return events from controllable(i).
  virtual std::vector<SystemEvent> enabled_controllables(
      const SystemRun& run, ProcessId i) const = 0;

  /// The knowledge class this protocol claims to respect.
  virtual KnowledgeClass knowledge_class() const = 0;

  virtual std::string name() const = 0;
};

/// Full P_i(H) = I_i u R_i u enabled_controllables (property P1).
std::vector<SystemEvent> enabled_events(const EnabledSetProtocol& protocol,
                                        const SystemRun& run, ProcessId i);

/// The liveness condition of Section 3.2 at run H:
///   R(H) u C(H) nonempty  =>  P(H) intersects R(H) u C(H).
bool liveness_holds_at(const EnabledSetProtocol& protocol,
                       const SystemRun& run);

}  // namespace msgorder
