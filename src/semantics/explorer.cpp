#include "src/semantics/explorer.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <optional>

#include "src/poset/lift.hpp"

namespace msgorder {

namespace {

std::string events_key(std::vector<SystemEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const SystemEvent& a, const SystemEvent& b) {
              return std::tie(a.msg, a.kind) < std::tie(b.msg, b.kind);
            });
  std::string out;
  for (const SystemEvent& e : events) {
    out += std::to_string(e.msg) + kind_name(e.kind) + ",";
  }
  return out;
}

std::string local_history_key(const SystemRun& run, ProcessId i) {
  std::string out;
  for (const SystemEvent& e : run.sequences()[i]) {
    out += std::to_string(e.msg) + kind_name(e.kind) + ",";
  }
  return out;
}

/// Enumerate all simultaneous steps: each process contributes at most one
/// of its enabled events; at least one process acts.
void for_each_combo(
    const std::vector<std::vector<SystemEvent>>& choices, std::size_t p,
    std::vector<std::optional<SystemEvent>>& picked,
    const std::function<void(const std::vector<std::optional<SystemEvent>>&)>&
        emit) {
  if (p == choices.size()) {
    if (std::any_of(picked.begin(), picked.end(),
                    [](const auto& o) { return o.has_value(); })) {
      emit(picked);
    }
    return;
  }
  picked[p] = std::nullopt;
  for_each_combo(choices, p + 1, picked, emit);
  for (const SystemEvent& e : choices[p]) {
    picked[p] = e;
    for_each_combo(choices, p + 1, picked, emit);
  }
  picked[p] = std::nullopt;
}

}  // namespace

ExplorationResult explore(const EnabledSetProtocol& protocol,
                          const std::vector<Message>& universe,
                          std::size_t n_processes,
                          const ExploreOptions& options) {
  ExplorationResult result;
  std::set<std::string> seen_views;

  SystemRun initial(universe, n_processes);
  std::deque<SystemRun> frontier;
  frontier.push_back(initial);
  result.reachable_keys.insert(initial.key());

  while (!frontier.empty()) {
    SystemRun run = std::move(frontier.front());
    frontier.pop_front();

    if (!liveness_holds_at(protocol, run)) {
      result.liveness_violations.push_back(run);
    }
    if (run.user_complete()) {
      auto view = run.users_view();
      assert(view.has_value());
      std::string vk;
      for (const auto& s : view->schedules()) {
        for (const ScheduleStep& step : s) {
          vk += std::to_string(step.msg);
          vk += step.kind == UserEventKind::kSend ? 's' : 'r';
        }
        vk += '|';
      }
      if (seen_views.insert(vk).second) {
        result.complete_user_views.push_back(*view);
      }
    }

    std::vector<std::vector<SystemEvent>> choices(n_processes);
    for (ProcessId i = 0; i < n_processes; ++i) {
      choices[i] = enabled_events(protocol, run, i);
      for (const SystemEvent& e : choices[i]) {
        assert(run.can_execute(e) && "protocol enabled an impossible event");
        (void)e;
      }
    }

    const auto visit = [&](const SystemRun& next) {
      if (result.reachable_keys.insert(next.key()).second) {
        assert(result.reachable_keys.size() <= options.max_states &&
               "state-space explosion: shrink the universe");
        frontier.push_back(next);
      }
    };

    if (options.simultaneous_steps) {
      std::vector<std::optional<SystemEvent>> picked(n_processes);
      for_each_combo(
          choices, 0, picked,
          [&](const std::vector<std::optional<SystemEvent>>& combo) {
            SystemRun next = run;
            for (const auto& choice : combo) {
              if (choice.has_value()) next = next.executed(*choice);
            }
            visit(next);
          });
    } else {
      for (ProcessId i = 0; i < n_processes; ++i) {
        for (const SystemEvent& e : choices[i]) {
          visit(run.executed(e));
        }
      }
    }
    result.reachable.push_back(std::move(run));
  }

  if (options.check_conformance) {
    const KnowledgeClass k = protocol.knowledge_class();
    if (k != KnowledgeClass::kGeneral) {
      // Group (run, process) by the knowledge the class permits; enabled
      // sets must be constant within each group.
      std::map<std::string, std::pair<std::string, std::string>> groups;
      for (const SystemRun& run : result.reachable) {
        for (ProcessId i = 0; i < n_processes; ++i) {
          std::string knowledge_key = std::to_string(i) + "#";
          if (k == KnowledgeClass::kTagged) {
            knowledge_key += run.causal_past(i).key();
          } else {
            knowledge_key += local_history_key(run, i);
          }
          const std::string enabled =
              events_key(protocol.enabled_controllables(run, i));
          auto [it, inserted] =
              groups.try_emplace(knowledge_key, enabled, run.key());
          if (!inserted && it->second.first != enabled &&
              result.conformance_violation.empty()) {
            result.conformance_violation =
                "process " + std::to_string(i) + ": runs [" +
                it->second.second + "] and [" + run.key() +
                "] share knowledge but enable different sets";
          }
        }
      }
    }
  }
  return result;
}

std::set<std::string> lifted_keys(const std::vector<UserRun>& runs) {
  std::set<std::string> keys;
  for (const UserRun& run : runs) {
    keys.insert(lift(run).key());
  }
  return keys;
}

}  // namespace msgorder
