#include "src/semantics/enabled_sets.hpp"

namespace msgorder {

std::string to_string(KnowledgeClass k) {
  switch (k) {
    case KnowledgeClass::kGeneral:
      return "general";
    case KnowledgeClass::kTagged:
      return "tagged";
    case KnowledgeClass::kTagless:
      return "tagless";
  }
  return "?";
}

std::vector<SystemEvent> enabled_events(const EnabledSetProtocol& protocol,
                                        const SystemRun& run, ProcessId i) {
  std::vector<SystemEvent> out = run.pending_invokes(i);
  const auto receives = run.pending_receives(i);
  out.insert(out.end(), receives.begin(), receives.end());
  const auto controllables = protocol.enabled_controllables(run, i);
  out.insert(out.end(), controllables.begin(), controllables.end());
  return out;
}

bool liveness_holds_at(const EnabledSetProtocol& protocol,
                       const SystemRun& run) {
  bool pending = false;
  for (ProcessId i = 0; i < run.process_count(); ++i) {
    if (!run.pending_receives(i).empty()) return true;  // R subset of P
    if (!run.pending_sends(i).empty() ||
        !run.pending_deliveries(i).empty()) {
      pending = true;
    }
  }
  if (!pending) return true;
  for (ProcessId i = 0; i < run.process_count(); ++i) {
    if (!protocol.enabled_controllables(run, i).empty()) return true;
  }
  return false;
}

}  // namespace msgorder
