#include "src/semantics/limit_protocols.hpp"

namespace msgorder {

std::vector<SystemEvent> TaglessAll::enabled_controllables(
    const SystemRun& run, ProcessId i) const {
  return run.controllable(i);
}

std::vector<SystemEvent> TaggedCausal::enabled_controllables(
    const SystemRun& run, ProcessId i) const {
  std::vector<SystemEvent> out = run.pending_sends(i);
  for (const SystemEvent& d : run.pending_deliveries(i)) {
    bool blocked = false;
    for (const Message& y : run.universe()) {
      if (y.dst != i || y.id == d.msg) continue;
      if (!run.present(y.id, EventKind::kSend)) continue;
      if (run.before({y.id, EventKind::kSend}, {d.msg, EventKind::kSend}) &&
          !run.present(y.id, EventKind::kDeliver)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) out.push_back(d);
  }
  return out;
}

std::vector<SystemEvent> GeneralSerializer::enabled_controllables(
    const SystemRun& run, ProcessId i) const {
  // Is any message open (sent but not delivered)?
  bool open = false;
  for (const Message& m : run.universe()) {
    if (run.present(m.id, EventKind::kSend) &&
        !run.present(m.id, EventKind::kDeliver)) {
      open = true;
      break;
    }
  }
  if (open) {
    // Only deliveries may proceed; sends stay inhibited until the open
    // exchange completes.
    return run.pending_deliveries(i);
  }
  // Nothing open: enable exactly the globally smallest pending send, so
  // no two processes can open exchanges simultaneously.
  MessageId smallest = 0;
  bool found = false;
  for (ProcessId p = 0; p < run.process_count(); ++p) {
    for (const SystemEvent& s : run.pending_sends(p)) {
      if (!found || s.msg < smallest) {
        smallest = s.msg;
        found = true;
      }
    }
  }
  std::vector<SystemEvent> out;
  if (found && run.universe()[smallest].src == i) {
    out.push_back({smallest, EventKind::kSend});
  }
  return out;
}

}  // namespace msgorder
