// A small-scope explicit-state model checker for the inductive definition
// of X_P (Section 3.2): starting from the empty run, processes repeatedly
// and *simultaneously* execute events enabled by the protocol (each
// process contributes at most one event per step, per the definition of
// X_P).  The explorer computes:
//
//   * the reachable run set X_P over a fixed message universe,
//   * the characterizing complete user views X̄_P,
//   * liveness violations (reachable non-quiescent runs where the
//     protocol enables nothing pending), and
//   * empirical knowledge-class conformance: for every pair of reachable
//     runs with equal knowledge (full run / causal past / local history),
//     the enabled sets must agree.
//
// This is the machinery behind the Lemma 2 and Theorem 1 test-beds.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/poset/user_run.hpp"
#include "src/semantics/enabled_sets.hpp"

namespace msgorder {

struct ExplorationResult {
  /// Every reachable run, keyed canonically.
  std::vector<SystemRun> reachable;
  /// Keys of reachable runs (parallel to `reachable`).
  std::set<std::string> reachable_keys;
  /// User views of reachable user-complete runs, deduplicated by key.
  std::vector<UserRun> complete_user_views;
  /// Reachable runs violating the liveness condition.
  std::vector<SystemRun> liveness_violations;
  /// Description of the first knowledge-conformance violation found, or
  /// empty if the protocol respects its declared class on this universe.
  std::string conformance_violation;

  bool contains(const SystemRun& run) const {
    return reachable_keys.count(run.key()) > 0;
  }
};

struct ExploreOptions {
  /// Cap on distinct states, as a runaway guard; exploration asserts if
  /// exceeded.
  std::size_t max_states = 2'000'000;
  /// Also take simultaneous multi-process steps (the paper's definition).
  /// Single-step exploration reaches the same states when the protocol
  /// is "stable" but can differ in general; keep true for fidelity.
  bool simultaneous_steps = true;
  /// Verify knowledge-class conformance pairwise (quadratic in states).
  bool check_conformance = false;
};

ExplorationResult explore(const EnabledSetProtocol& protocol,
                          const std::vector<Message>& universe,
                          std::size_t n_processes,
                          const ExploreOptions& options = {});

/// Lift every run of `runs` with the Theorem 1 construction and keep the
/// keys — used to compare e.g. lifted X_co against explored X_P.
std::set<std::string> lifted_keys(const std::vector<UserRun>& runs);

}  // namespace msgorder
