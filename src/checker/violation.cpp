#include "src/checker/violation.hpp"

#include "src/checker/automaton.hpp"
#include "src/checker/search.hpp"
#include "src/spec/compile.hpp"

namespace msgorder {

namespace {

class ViolationSearch {
 public:
  ViolationSearch(const UserRun& run, const ForbiddenPredicate& predicate)
      : run_(run), predicate_(predicate) {}

  std::optional<ViolationWitness> search() {
    if (predicate_.arity == 0 ||
        predicate_.arity > run_.message_count()) {
      return std::nullopt;
    }
    assignment_.assign(predicate_.arity, 0);
    used_.assign(run_.message_count(), false);
    if (extend(0)) return assignment_;
    return std::nullopt;
  }

 private:
  /// Check constraints and conjuncts that became fully bound when
  /// variable v was assigned.
  bool consistent(std::size_t v) const {
    for (const Conjunct& c : predicate_.conjuncts) {
      if (c.lhs > v || c.rhs > v) continue;
      if (c.lhs != v && c.rhs != v) continue;  // checked earlier
      if (!run_.before(assignment_[c.lhs], c.p, assignment_[c.rhs], c.q)) {
        return false;
      }
    }
    for (const ProcessEquality& pe : predicate_.process_constraints) {
      if (pe.var_a > v || pe.var_b > v) continue;
      if (pe.var_a != v && pe.var_b != v) continue;
      const ProcessId a =
          run_.process_of({assignment_[pe.var_a], pe.kind_a});
      const ProcessId b =
          run_.process_of({assignment_[pe.var_b], pe.kind_b});
      if (a != b) return false;
    }
    for (const ColorConstraint& cc : predicate_.color_constraints) {
      if (cc.var != v) continue;
      if (run_.color_of(assignment_[v]) != cc.color) return false;
    }
    return true;
  }

  bool extend(std::size_t v) {
    if (v == predicate_.arity) return true;
    for (MessageId m = 0; m < run_.message_count(); ++m) {
      if (used_[m]) continue;  // distinct-message quantification
      assignment_[v] = m;
      if (consistent(v)) {
        used_[m] = true;
        if (extend(v + 1)) return true;
        used_[m] = false;
      }
    }
    return false;
  }

  const UserRun& run_;
  const ForbiddenPredicate& predicate_;
  ViolationWitness assignment_;
  std::vector<bool> used_;
};

}  // namespace

std::optional<ViolationWitness> find_violation(
    const UserRun& run, const ForbiddenPredicate& predicate) {
  // Automaton fast path (ISSUE 8): when the predicate compiles and the
  // run carries schedules, a per-process DFA pass decides *whether* a
  // witness exists without materializing the transposed ancestor
  // matrix.  Only the (rare) violating runs pay for extraction below;
  // non-compilable predicates bail out of compile_predicate in O(spec).
  if (run.has_schedules()) {
    const CompileResult compiled =
        compile_predicate(predicate, &run.messages());
    if (compiled.compiled() &&
        !automaton_accepts_run(*compiled.automaton, run)) {
      return std::nullopt;
    }
  }
  WitnessEngine engine(predicate, run.messages());
  const BitMatrix ancestors = run.order().matrix().transposed();
  const WitnessEngine::View view{&run.order().matrix(), &ancestors,
                                 nullptr, nullptr};
  ViolationWitness witness;
  if (engine.search(view, witness)) return witness;
  return std::nullopt;
}

std::optional<ViolationWitness> find_violation_naive(
    const UserRun& run, const ForbiddenPredicate& predicate) {
  return ViolationSearch(run, predicate).search();
}

bool satisfies(const UserRun& run, const ForbiddenPredicate& predicate) {
  return !find_violation(run, predicate).has_value();
}

bool satisfies(const UserRun& run, const CompositeSpec& spec) {
  for (const ForbiddenPredicate& p : spec.predicates) {
    if (!satisfies(run, p)) return false;
  }
  for (const CountingPredicate& c : spec.counting) {
    if (exceeds_concurrency(run, c)) return false;
  }
  return true;
}

std::string witness_to_string(const ForbiddenPredicate& predicate,
                              const ViolationWitness& witness) {
  std::string out;
  for (std::size_t v = 0; v < witness.size(); ++v) {
    if (v) out += ", ";
    out += predicate.var_name(v) + ":=m" + std::to_string(witness[v]);
  }
  return out;
}

}  // namespace msgorder
