// Generic specification checking: search a user-view run for an
// instantiation of a forbidden predicate's variables that satisfies every
// conjunct and range constraint.  This is the ground-truth oracle used to
// validate protocol implementations (a protocol is safe for X_B iff no
// trace it produces contains a violation witness).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/poset/user_run.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// A satisfying assignment: witness[v] is the message bound to variable v.
using ViolationWitness = std::vector<MessageId>;

/// Find some instantiation satisfying B in the run, or nullopt if the run
/// belongs to X_B.  Variables bind to pairwise *distinct* messages: the
/// paper's quantifiers range over tuples of different messages (with
/// repeats allowed, the trivially true x.s |> x.r conjunct would make
/// every crown predicate hold in every non-empty run and X_sync would be
/// empty).  Runs on the bitset-pruned WitnessEngine (candidate bitsets
/// intersected word-parallel from the poset's reachability rows); returns
/// the same lexicographically-first witness as the seed scan.
std::optional<ViolationWitness> find_violation(
    const UserRun& run, const ForbiddenPredicate& predicate);

/// The seed's unpruned backtracking scan, kept as the reference
/// implementation for the equivalence tests and before/after benches.
/// Worst case O(|M|^arity) with conjunct-level pruning only.
std::optional<ViolationWitness> find_violation_naive(
    const UserRun& run, const ForbiddenPredicate& predicate);

/// True iff the run is in X_B.
bool satisfies(const UserRun& run, const ForbiddenPredicate& predicate);

/// True iff the run is in the intersection of all component specs.
bool satisfies(const UserRun& run, const CompositeSpec& spec);

/// Render a witness for diagnostics: "x:=m3, y:=m1".
std::string witness_to_string(const ForbiddenPredicate& predicate,
                              const ViolationWitness& witness);

}  // namespace msgorder
