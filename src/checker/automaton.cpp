#include "src/checker/automaton.hpp"

#include <algorithm>

namespace msgorder {

AutomatonEngine::AutomatonEngine(const MonitorAutomaton* automaton,
                                 std::size_t n_processes)
    : automaton_(automaton) {
  const std::size_t copies =
      automaton_->scope == MonitorAutomaton::Scope::kCounter
          ? 1
          : std::max<std::size_t>(n_processes, 1);
  state_.assign(copies, automaton_->initial);
}

bool AutomatonEngine::on_user_event(ProcessId process, UserEventKind kind,
                                    int color) {
  const std::size_t copy =
      automaton_->scope == MonitorAutomaton::Scope::kCounter
          ? 0
          : static_cast<std::size_t>(process);
  const std::size_t symbol = automaton_->symbols.symbol(kind, color);
  const std::uint32_t next = automaton_->step(state_[copy], symbol);
  state_[copy] = next;
  ++transitions_;
  if (automaton_->accepting[next] != 0 && !accepted_) {
    accepted_ = true;
    return true;
  }
  return false;
}

void AutomatonEngine::reset() {
  std::fill(state_.begin(), state_.end(), automaton_->initial);
  accepted_ = false;
  transitions_ = 0;
}

bool automaton_accepts_run(const MonitorAutomaton& automaton,
                           const UserRun& run) {
  if (automaton.scope != MonitorAutomaton::Scope::kPerProcess ||
      !run.has_schedules()) {
    return false;
  }
  if (!automaton.can_accept()) return false;
  for (const std::vector<ScheduleStep>& schedule : run.schedules()) {
    std::uint32_t state = automaton.initial;
    for (const ScheduleStep& step : schedule) {
      state = automaton.step(
          state, automaton.symbols.symbol(step.kind,
                                          run.color_of(step.msg)));
      if (automaton.accepting[state] != 0) return true;
    }
  }
  return false;
}

std::size_t max_concurrency_width(const UserRun& run,
                                  std::optional<int> color) {
  std::vector<MessageId> pool;
  for (MessageId m = 0; m < run.message_count(); ++m) {
    if (!color.has_value() || run.color_of(m) == *color) pool.push_back(m);
  }
  const std::size_t n = pool.size();
  if (n == 0) return 0;

  // x < y iff x's delivery causally precedes y's send: x and y can
  // never be in flight together.  The relation is transitive (via
  // x.r |> y.s |> y.r |> z.s), so Dilworth applies: the width equals
  // n minus a maximum matching of the comparability DAG.
  std::vector<std::vector<std::size_t>> succ(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && run.before(pool[i], UserEventKind::kDeliver, pool[j],
                               UserEventKind::kSend)) {
        succ[i].push_back(j);
      }
    }
  }
  std::vector<long> match_right(n, -1);
  std::vector<char> visited(n, 0);
  const auto augment = [&](const auto& self, std::size_t u) -> bool {
    for (const std::size_t v : succ[u]) {
      if (visited[v] != 0) continue;
      visited[v] = 1;
      if (match_right[v] < 0 ||
          self(self, static_cast<std::size_t>(match_right[v]))) {
        match_right[v] = static_cast<long>(u);
        return true;
      }
    }
    return false;
  };
  std::size_t matched = 0;
  for (std::size_t u = 0; u < n; ++u) {
    std::fill(visited.begin(), visited.end(), 0);
    if (augment(augment, u)) ++matched;
  }
  return n - matched;
}

bool exceeds_concurrency(const UserRun& run,
                         const CountingPredicate& counting) {
  return max_concurrency_width(run, counting.color) > counting.limit;
}

CountingMonitor::CountingMonitor(std::vector<Message> universe,
                                 CountingPredicate spec)
    : universe_(std::move(universe)),
      spec_(spec),
      automaton_(std::move(*compile_counting(spec_).automaton)),
      engine_(&automaton_, 1) {}

bool CountingMonitor::on_event(ProcessId /*process*/, SystemEvent event,
                               double time) {
  ++events_seen_;
  if (!is_user_kind(event.kind)) return false;
  const UserEventKind kind = to_user_kind(event.kind);
  const bool fired =
      engine_.on_user_event(0, kind, universe_[event.msg].color);
  if (fired) {
    first_violation_time_ = time;
    events_to_detection_ = events_seen_;
  }
  return fired;
}

}  // namespace msgorder
