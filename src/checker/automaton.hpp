// Runtime for compiled monitor automata (ISSUE 8): drives a
// MonitorAutomaton over a live event stream (one dense-table lookup per
// event) or over a finished run's schedules, plus the offline oracle
// for bounded-counting specs (interval-order width).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/poset/event.hpp"
#include "src/poset/user_run.hpp"
#include "src/spec/compile.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// Steps a compiled automaton over user events.  kPerProcess automata
/// keep one state copy per process, all sharing the one dense
/// transition table; kCounter automata keep a single global state.
/// Amortized O(1) per event: a symbol lookup and a table load.
class AutomatonEngine {
 public:
  AutomatonEngine(const MonitorAutomaton* automaton,
                  std::size_t n_processes);

  /// Advance on one user event.  Returns true iff this event moved the
  /// engine into acceptance for the first time.
  bool on_user_event(ProcessId process, UserEventKind kind, int color);

  bool accepted() const { return accepted_; }
  std::uint64_t transitions() const { return transitions_; }

  /// Restore the post-construction state (bench replay support).
  void reset();

 private:
  const MonitorAutomaton* automaton_;
  std::vector<std::uint32_t> state_;
  bool accepted_ = false;
  std::uint64_t transitions_ = 0;
};

/// Offline acceptance of a kPerProcess automaton on a scheduled run:
/// feeds each process's schedule through its own state copy.  Sound and
/// complete for single-cluster patterns because their witnesses live
/// entirely on one process's timeline (linearization-independent).
/// Requires run.has_schedules() and scope == kPerProcess.
bool automaton_accepts_run(const MonitorAutomaton& automaton,
                           const UserRun& run);

/// The largest number of matching messages that are simultaneously in
/// flight in *some* linearization of the run: the width of the interval
/// order  x < y  iff  x.r |> y.s  over messages of the given color
/// (nullopt: all messages), computed as Dilworth's  n - max_matching .
std::size_t max_concurrency_width(const UserRun& run,
                                  std::optional<int> color);

/// True iff the run violates the counting spec: some linearization puts
/// more than `limit` matching messages in flight at once.
bool exceeds_concurrency(const UserRun& run,
                         const CountingPredicate& counting);

/// Online monitor for a bounded-counting spec: a global counter
/// automaton over the fed event stream.  Fires when the *observed*
/// in-flight count exceeds the limit — which implies (but is not
/// implied by) the offline width oracle firing, since the feed is one
/// particular linearization.
class CountingMonitor {
 public:
  CountingMonitor(std::vector<Message> universe, CountingPredicate spec);

  /// Feed the next system event; invoke/receive events are ignored.
  /// Returns true iff this event first pushed the count over the limit.
  bool on_event(ProcessId process, SystemEvent event, double time);

  bool violated() const { return engine_.accepted(); }
  double first_violation_time() const { return first_violation_time_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t events_to_detection() const { return events_to_detection_; }
  std::uint64_t transitions() const { return engine_.transitions(); }
  const CountingPredicate& specification() const { return spec_; }
  const MonitorAutomaton& automaton() const { return automaton_; }

 private:
  std::vector<Message> universe_;
  CountingPredicate spec_;
  MonitorAutomaton automaton_;
  AutomatonEngine engine_;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_to_detection_ = 0;
  double first_violation_time_ = 0;
};

}  // namespace msgorder
