// Membership tests for the three limit sets of Section 3.4:
//   X_sync  (logically synchronous)  subset of
//   X_co    (causally ordered)       subset of
//   X_async (all complete runs).
// These are the sets whose containment in a specification decides, by
// Theorem 1, which protocol class can implement it.
#pragma once

#include <string>

#include "src/poset/user_run.hpp"

namespace msgorder {

/// Finest limit set containing the run.
enum class LimitSet {
  kSync,   // in X_sync (hence also X_co and X_async)
  kCausal, // in X_co but not X_sync
  kAsync,  // in X_async only
};

std::string to_string(LimitSet s);

/// Every valid complete UserRun is in X_async by construction; exposed
/// for symmetry and used by property tests as a sanity check.
bool in_async(const UserRun& run);

/// X_co: no pair of messages with (x.s |> y.s) and (y.r |> x.r).
/// Word-parallel: for each x, the messages whose send follows x.s and
/// the messages whose delivery precedes x.r are materialized as packed
/// bitsets (a row slice and a transposed-row slice) and intersected a
/// word at a time (DESIGN.md "Checker performance").
bool in_causal(const UserRun& run);

/// X_sync: a message numbering T with x.h |> y.f  =>  T(x) < T(y) exists
/// (equivalently, the message digraph is acyclic; Section 3.4 and [18]).
/// Runs Kahn's algorithm directly on the word-parallel message digraph
/// of lift.hpp — no transitive closure of the digraph is needed.
bool in_sync(const UserRun& run);

/// Reference implementations retained from the seed checkers: the
/// O(m^2) single-bit double loop and the closure-based digraph test.
/// The equivalence tests and the before/after speedup rows of
/// BENCH_checker_scaling.json compare against these.
bool in_causal_naive(const UserRun& run);
bool in_sync_naive(const UserRun& run);

LimitSet finest_limit_set(const UserRun& run);

}  // namespace msgorder
