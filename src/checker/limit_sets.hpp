// Membership tests for the three limit sets of Section 3.4:
//   X_sync  (logically synchronous)  subset of
//   X_co    (causally ordered)       subset of
//   X_async (all complete runs).
// These are the sets whose containment in a specification decides, by
// Theorem 1, which protocol class can implement it.
#pragma once

#include <string>

#include "src/poset/user_run.hpp"

namespace msgorder {

/// Finest limit set containing the run.
enum class LimitSet {
  kSync,   // in X_sync (hence also X_co and X_async)
  kCausal, // in X_co but not X_sync
  kAsync,  // in X_async only
};

std::string to_string(LimitSet s);

/// Every valid complete UserRun is in X_async by construction; exposed
/// for symmetry and used by property tests as a sanity check.
bool in_async(const UserRun& run);

/// X_co: no pair of messages with (x.s |> y.s) and (y.r |> x.r).
bool in_causal(const UserRun& run);

/// X_sync: a message numbering T with x.h |> y.f  =>  T(x) < T(y) exists
/// (equivalently, the message digraph is acyclic; Section 3.4 and [18]).
bool in_sync(const UserRun& run);

LimitSet finest_limit_set(const UserRun& run);

}  // namespace msgorder
