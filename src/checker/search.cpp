#include "src/checker/search.hpp"

#include <algorithm>
#include <bit>

namespace msgorder {

namespace {

constexpr bool bit_set(const std::uint64_t* words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

}  // namespace

WitnessEngine::WitnessEngine(ForbiddenPredicate spec,
                             std::vector<Message> universe)
    : spec_(std::move(spec)),
      universe_(std::move(universe)),
      msg_words_((universe_.size() + 63) / 64) {
  const std::size_t arity = spec_.arity;
  const std::size_t n = universe_.size();

  std::size_t n_processes = 0;
  for (const Message& m : universe_) {
    n_processes = std::max({n_processes, static_cast<std::size_t>(m.src) + 1,
                            static_cast<std::size_t>(m.dst) + 1});
  }
  by_src_arena_.assign(n_processes * msg_words_, 0);
  by_dst_arena_.assign(n_processes * msg_words_, 0);
  for (MessageId m = 0; m < n; ++m) {
    by_src_arena_[universe_[m].src * msg_words_ + (m >> 6)] |=
        1ULL << (m & 63);
    by_dst_arena_[universe_[m].dst * msg_words_ + (m >> 6)] |=
        1ULL << (m & 63);
  }

  // Static per-variable candidates: start from "every message", then
  // intersect the attribute constraints that do not depend on any other
  // binding (colors, same-variable process equalities).
  static_arena_.assign(arity * msg_words_, ~0ULL);
  if (msg_words_ > 0 && (n & 63) != 0) {
    const std::uint64_t tail = (1ULL << (n & 63)) - 1;
    for (std::size_t v = 0; v < arity; ++v) {
      static_arena_[v * msg_words_ + msg_words_ - 1] &= tail;
    }
  }
  const auto clear_static = [&](std::size_t v, MessageId m) {
    static_arena_[v * msg_words_ + (m >> 6)] &= ~(1ULL << (m & 63));
  };
  for (const ColorConstraint& cc : spec_.color_constraints) {
    for (MessageId m = 0; m < n; ++m) {
      if (universe_[m].color != cc.color) clear_static(cc.var, m);
    }
  }

  filters_.resize(arity);
  self_conjuncts_.resize(arity);
  needs_send_.assign(arity, false);
  needs_deliver_.assign(arity, false);
  const auto note_kind = [&](std::size_t v, UserEventKind k) {
    (k == UserEventKind::kSend ? needs_send_ : needs_deliver_)[v] = true;
  };
  for (const Conjunct& c : spec_.conjuncts) {
    note_kind(c.lhs, c.p);
    note_kind(c.rhs, c.q);
    if (c.lhs == c.rhs) {
      self_conjuncts_[c.lhs].push_back(c);
      continue;
    }
    filters_[c.lhs].push_back(
        {PairFilter::Type::kVarOnLhs, c.p, c.q, c.rhs});
    filters_[c.rhs].push_back(
        {PairFilter::Type::kVarOnRhs, c.q, c.p, c.lhs});
  }
  for (const ProcessEquality& pe : spec_.process_constraints) {
    if (pe.var_a == pe.var_b) {
      // process(x.kind_a) == process(x.kind_b): static per message.
      for (MessageId m = 0; m < n; ++m) {
        const ProcessId a = pe.kind_a == UserEventKind::kSend
                                ? universe_[m].src
                                : universe_[m].dst;
        const ProcessId b = pe.kind_b == UserEventKind::kSend
                                ? universe_[m].src
                                : universe_[m].dst;
        if (a != b) clear_static(pe.var_a, m);
      }
      continue;
    }
    filters_[pe.var_a].push_back(
        {PairFilter::Type::kSameProcess, pe.kind_a, pe.kind_b, pe.var_b});
    filters_[pe.var_b].push_back(
        {PairFilter::Type::kSameProcess, pe.kind_b, pe.kind_a, pe.var_a});
  }

  cand_arena_.assign(arity * msg_words_, 0);
  used_words_.assign(msg_words_, 0);
}

void WitnessEngine::and_kind_slice(std::uint64_t* cand,
                                   const std::uint64_t* event_row,
                                   std::size_t event_words,
                                   UserEventKind kind) const {
  const unsigned phase = kind == UserEventKind::kDeliver ? 1u : 0u;
  for (std::size_t w = 0; w < msg_words_; ++w) {
    const std::uint64_t lo = 2 * w < event_words ? event_row[2 * w] : 0;
    const std::uint64_t hi =
        2 * w + 1 < event_words ? event_row[2 * w + 1] : 0;
    cand[w] &= compress_stride2(lo, phase) |
               (compress_stride2(hi, phase) << 32);
  }
}

bool WitnessEngine::self_conjuncts_ok(const View& view, std::size_t var,
                                      MessageId msg) const {
  for (const Conjunct& c : self_conjuncts_[var]) {
    if (!view.descendants->get(index(msg, c.p), index(msg, c.q))) {
      return false;
    }
  }
  return true;
}

bool WitnessEngine::unary_ok(const View& view, std::size_t var,
                             MessageId msg) const {
  if (!bit_set(static_row(var), msg)) return false;
  if (needs_send_[var] && view.present_send != nullptr &&
      !bit_set(view.present_send, msg)) {
    return false;
  }
  if (needs_deliver_[var] && view.present_deliver != nullptr &&
      !bit_set(view.present_deliver, msg)) {
    return false;
  }
  return self_conjuncts_ok(view, var, msg);
}

bool WitnessEngine::dfs(const View& view, std::size_t var,
                        std::size_t pinned_var,
                        std::vector<MessageId>& out) {
  const std::size_t arity = spec_.arity;
  if (var == arity) return true;
  if (var == pinned_var) return dfs(view, var + 1, pinned_var, out);

  std::uint64_t* cand = cand_row(var);
  const std::uint64_t* stat = static_row(var);
  for (std::size_t w = 0; w < msg_words_; ++w) {
    std::uint64_t c = stat[w] & ~used_words_[w];
    if (needs_send_[var] && view.present_send != nullptr) {
      c &= view.present_send[w];
    }
    if (needs_deliver_[var] && view.present_deliver != nullptr) {
      c &= view.present_deliver[w];
    }
    cand[w] = c;
  }
  if (stats_ != nullptr) {
    ++stats_->dfs_nodes;
    stats_->words_scanned += msg_words_;
    for (std::size_t w = 0; w < msg_words_; ++w) {
      stats_->candidates_initial +=
          static_cast<std::uint64_t>(std::popcount(cand[w]));
    }
  }
  for (const PairFilter& f : filters_[var]) {
    if (f.other >= var && f.other != pinned_var) continue;  // not bound yet
    const MessageId om = out[f.other];
    switch (f.type) {
      case PairFilter::Type::kVarOnLhs:
        // x_var.var_kind |> x_om.other_kind: the candidate's event must
        // be an ancestor of the bound event.
        and_kind_slice(cand,
                       view.ancestors->row_data(index(om, f.other_kind)),
                       view.ancestors->words_per_row(), f.var_kind);
        break;
      case PairFilter::Type::kVarOnRhs:
        // x_om.other_kind |> x_var.var_kind: a descendant of it.
        and_kind_slice(cand,
                       view.descendants->row_data(index(om, f.other_kind)),
                       view.descendants->words_per_row(), f.var_kind);
        break;
      case PairFilter::Type::kSameProcess: {
        const Message& mo = universe_[om];
        const ProcessId p =
            f.other_kind == UserEventKind::kSend ? mo.src : mo.dst;
        const std::uint64_t* mask =
            (f.var_kind == UserEventKind::kSend ? by_src_arena_
                                                : by_dst_arena_)
                .data() +
            static_cast<std::size_t>(p) * msg_words_;
        for (std::size_t w = 0; w < msg_words_; ++w) cand[w] &= mask[w];
        break;
      }
    }
  }

  if (stats_ != nullptr) {
    stats_->words_scanned +=
        static_cast<std::uint64_t>(filters_[var].size()) * msg_words_;
    for (std::size_t w = 0; w < msg_words_; ++w) {
      stats_->candidates_surviving +=
          static_cast<std::uint64_t>(std::popcount(cand[w]));
    }
  }

  const bool check_self = !self_conjuncts_[var].empty();
  for (std::size_t w = 0; w < msg_words_; ++w) {
    std::uint64_t bits = cand[w];
    while (bits != 0) {
      const auto m = static_cast<MessageId>(
          64 * w + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      if (stats_ != nullptr) ++stats_->enumerated;
      if (check_self && !self_conjuncts_ok(view, var, m)) continue;
      out[var] = m;
      used_words_[m >> 6] |= 1ULL << (m & 63);
      if (dfs(view, var + 1, pinned_var, out)) return true;
      used_words_[m >> 6] &= ~(1ULL << (m & 63));
    }
  }
  return false;
}

bool WitnessEngine::search_pinned(const View& view, std::size_t pinned_var,
                                  MessageId pinned_msg,
                                  std::vector<MessageId>& out) {
  const std::size_t arity = spec_.arity;
  if (arity == 0 || arity > universe_.size()) return false;
  if (stats_ != nullptr) ++stats_->searches;
  if (!unary_ok(view, pinned_var, pinned_msg)) return false;
  out.assign(arity, 0);
  out[pinned_var] = pinned_msg;
  std::fill(used_words_.begin(), used_words_.end(), 0);
  used_words_[pinned_msg >> 6] |= 1ULL << (pinned_msg & 63);
  const bool found = dfs(view, 0, pinned_var, out);
  if (found && stats_ != nullptr) ++stats_->witnesses;
  return found;
}

bool WitnessEngine::search(const View& view, std::vector<MessageId>& out) {
  const std::size_t arity = spec_.arity;
  if (arity == 0 || arity > universe_.size()) return false;
  if (stats_ != nullptr) ++stats_->searches;
  out.assign(arity, 0);
  std::fill(used_words_.begin(), used_words_.end(), 0);
  const bool found = dfs(view, 0, spec_.arity, out);
  if (found && stats_ != nullptr) ++stats_->witnesses;
  return found;
}

}  // namespace msgorder
