// Bitset-pruned witness search (ISSUE 3 tentpole): the engine behind
// both the online monitor and the offline oracle.
//
// The seed searches scanned every message at every DFS level and tested
// conjuncts one get() at a time.  This engine instead materializes, per
// quantified variable, a packed *candidate bitset* and intersects it
// word-parallel:
//   * statically (once per spec x universe): color constraints,
//     same-variable process equalities, and per-process sender/receiver
//     masks for cross-variable process equalities;
//   * per binding: a conjunct  x_v.p |> x_w.q  with w already bound
//     restricts v's candidates to a kind-slice of an ancestor row
//     (v on the left) or a descendant row (v on the right) of the
//     causality matrix — one AND per 64 messages.
// The DFS then enumerates only surviving candidates, in ascending
// message order, which makes the traversal — and therefore the first
// witness found — *identical* to the seed's lexicographic search
// (pruning only skips bindings the seed would have rejected).
//
// All scratch lives in the engine, so a long-lived caller (the online
// monitor) performs zero allocations per query.
#pragma once

#include <cstdint>
#include <vector>

#include "src/poset/event.hpp"
#include "src/spec/predicate.hpp"
#include "src/util/bitmatrix.hpp"

namespace msgorder {

class WitnessEngine {
 public:
  /// Causality context for one query.  Both matrices are indexed by the
  /// packed user-event index 2*msg + (deliver ? 1 : 0):
  ///   descendants->get(e, d)  iff  e |> d
  ///   ancestors->get(e, a)    iff  a |> e
  /// (for a closed UserRun poset these are the matrix and its
  /// transpose; the monitor maintains both incrementally).  The packed
  /// presence bitsets restrict bindings to messages whose send /
  /// delivery has happened; nullptr means "all present" (complete runs).
  struct View {
    const BitMatrix* descendants = nullptr;
    const BitMatrix* ancestors = nullptr;
    const std::uint64_t* present_send = nullptr;
    const std::uint64_t* present_deliver = nullptr;
  };

  /// Search instrumentation (ISSUE 4): populated only when attached via
  /// set_stats — the hot path pays a single pointer test per DFS level
  /// when disabled (the default).
  struct Stats {
    std::uint64_t searches = 0;        // search / search_pinned calls
    std::uint64_t witnesses = 0;       // searches that found an assignment
    std::uint64_t dfs_nodes = 0;       // candidate sets materialized
    std::uint64_t words_scanned = 0;   // 64-bit candidate words touched
    std::uint64_t candidates_initial = 0;    // population before pair filters
    std::uint64_t candidates_surviving = 0;  // population after pair filters
    std::uint64_t enumerated = 0;      // bindings actually tried by the DFS

    /// Fraction of statically feasible candidates the word-parallel
    /// pair filters eliminated before enumeration.
    double prune_rate() const {
      return candidates_initial == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(candidates_surviving) /
                             static_cast<double>(candidates_initial);
    }
  };

  WitnessEngine(ForbiddenPredicate spec, std::vector<Message> universe);

  const ForbiddenPredicate& spec() const { return spec_; }
  const std::vector<Message>& universe() const { return universe_; }

  /// Attach (or detach with nullptr) a stats sink owned by the caller.
  void set_stats(Stats* stats) { stats_ = stats; }
  Stats* stats() const { return stats_; }

  /// Unary feasibility of binding `msg` to `var`: color constraints,
  /// same-variable process equalities, presence of every event kind the
  /// conjuncts require of `var`, and same-variable conjuncts.  The
  /// monitor's per-event early-out: if the newly delivered message fails
  /// this for a pin, the whole pinned search is skipped.
  bool unary_ok(const View& view, std::size_t var, MessageId msg) const;

  /// Find the lexicographically-first satisfying assignment with
  /// variable `pinned_var` fixed to `pinned_msg` (and excluded from the
  /// other variables).  Returns false if none; on success `out` holds
  /// the full assignment.
  bool search_pinned(const View& view, std::size_t pinned_var,
                     MessageId pinned_msg, std::vector<MessageId>& out);

  /// Unpinned variant (the offline oracle's entry point).
  bool search(const View& view, std::vector<MessageId>& out);

 private:
  static std::size_t index(MessageId m, UserEventKind k) {
    return 2 * static_cast<std::size_t>(m) +
           (k == UserEventKind::kDeliver ? 1 : 0);
  }

  /// One cross-variable constraint contributing a candidate filter for
  /// `var` once `other` is bound.
  struct PairFilter {
    enum class Type : std::uint8_t {
      kVarOnLhs,     // x_var.var_kind |> x_other.other_kind
      kVarOnRhs,     // x_other.other_kind |> x_var.var_kind
      kSameProcess,  // process(x_var.var_kind) == process(x_other.other_kind)
    };
    Type type;
    UserEventKind var_kind;
    UserEventKind other_kind;
    std::size_t other;
  };

  std::uint64_t* cand_row(std::size_t var) {
    return cand_arena_.data() + var * msg_words_;
  }
  const std::uint64_t* static_row(std::size_t var) const {
    return static_arena_.data() + var * msg_words_;
  }

  bool self_conjuncts_ok(const View& view, std::size_t var,
                         MessageId msg) const;
  void and_kind_slice(std::uint64_t* cand, const std::uint64_t* event_row,
                      std::size_t event_words, UserEventKind kind) const;
  bool dfs(const View& view, std::size_t var, std::size_t pinned_var,
           std::vector<MessageId>& out);

  ForbiddenPredicate spec_;
  std::vector<Message> universe_;
  std::size_t msg_words_ = 0;

  // --- static, computed once per (spec, universe) ---
  std::vector<std::uint64_t> static_arena_;   // arity x msg_words_
  std::vector<std::uint64_t> by_src_arena_;   // process x msg_words_
  std::vector<std::uint64_t> by_dst_arena_;   // process x msg_words_
  std::vector<std::vector<PairFilter>> filters_;     // per var
  std::vector<std::vector<Conjunct>> self_conjuncts_;  // lhs == rhs == var
  std::vector<bool> needs_send_;
  std::vector<bool> needs_deliver_;

  // --- reusable query scratch ---
  std::vector<std::uint64_t> cand_arena_;  // arity x msg_words_
  std::vector<std::uint64_t> used_words_;

  Stats* stats_ = nullptr;  // nullptr = instrumentation off (default)
};

}  // namespace msgorder
