// An online specification monitor: fed the system events of a running
// execution (via SimOptions::observer), it maintains the user-view
// causality incrementally and reports the first moment a forbidden
// pattern completes — with the witness and the timestamp, while the
// offline oracle only judges finished runs.
//
// Incremental core: every new user event is maximal, so its ancestor
// set is the union of its process predecessor's ancestors and (for a
// delivery) the matching send's ancestors.  Old relations never change,
// hence any *newly completed* pattern must bind one variable to the new
// event's message, which bounds the search to O(|M|^(arity-1)) per
// event.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/checker/automaton.hpp"
#include "src/checker/search.hpp"
#include "src/checker/violation.hpp"
#include "src/obs/observer.hpp"
#include "src/poset/event.hpp"
#include "src/spec/compile.hpp"
#include "src/spec/predicate.hpp"
#include "src/util/bitmatrix.hpp"

namespace msgorder {

/// Which witness-search implementation the monitor runs per event.
/// kPruned (the default) is the bitset-pruned WitnessEngine; kNaive is
/// the seed's scan-every-message search, retained as the reference for
/// the equivalence tests and the before/after bench rows — both modes
/// produce identical verdicts, witnesses, and detection events.
/// kAutomaton (ISSUE 8) compiles the spec to a monitor automaton
/// (src/spec/compile.*) and checks each event with one table lookup —
/// amortized O(1) per event, skipping the O(n)-per-event causality
/// matrix maintenance entirely; on the first acceptance the logged feed
/// is replayed through a kPruned monitor to extract the identical first
/// witness, detection event, and timestamp.  Specs the compiler rejects
/// fall back to kPruned automatically (see automaton_info()).
enum class MonitorSearchMode { kPruned, kNaive, kAutomaton };

/// Monitor configuration (ISSUE 8).  batch_size > 1 defers the bitset
/// engine's witness searches: causality updates stay per-event, but the
/// (expensive) re-intersection runs once per `batch_size` user events as
/// a single unpinned search instead of one pinned search per event.
/// Witnesses are monotone — once a forbidden pattern completes it stays
/// completed — so the *verdict* is preserved exactly at batch
/// granularity; first_witness / detection event / violation_count are
/// reported as of the flush that first observes the violation.  Call
/// flush() after the last event to close a partial batch.  Applies to
/// kPruned and to the kAutomaton fallback path; kNaive (the reference
/// implementation) always searches per event.
struct MonitorOptions {
  MonitorSearchMode mode = MonitorSearchMode::kPruned;
  std::size_t batch_size = 1;
};

class OnlineMonitor {
 public:
  OnlineMonitor(std::vector<Message> universe,
                ForbiddenPredicate specification,
                MonitorSearchMode mode = MonitorSearchMode::kPruned);
  OnlineMonitor(std::vector<Message> universe,
                ForbiddenPredicate specification, MonitorOptions options);

  /// Feed the next system event (in execution order).  Invoke and
  /// receive events are ignored; sends and deliveries extend the user
  /// view.  Returns true if this event completed a (new) violation.
  bool on_event(ProcessId process, SystemEvent event, double time);

  /// Run any deferred batched search now (no-op when batch_size <= 1 or
  /// no user events are pending).  Returns true if the flush found a
  /// violation.  Call after the final event when batching.
  bool flush();

  /// Restore the post-construction state: matrices, presence, automaton
  /// state, verdicts, and counters all reset (bench replay support).
  void reset();

  bool violated() const { return first_violation_.has_value(); }
  std::size_t violation_count() const { return violation_count_; }
  /// The first witness found and the time its last event executed.
  const std::optional<ViolationWitness>& first_witness() const {
    return first_violation_;
  }
  double first_violation_time() const { return first_violation_time_; }

  const ForbiddenPredicate& specification() const { return spec_; }

  // --- monitor cost observability (ISSUE 2) ---

  /// Measure wall time spent in on_event (steady_clock around each
  /// call; off by default because the clock reads dominate the cost of
  /// trivial events).
  void enable_timing(bool on = true) { timing_ = on; }
  /// Total system events fed so far (including ignored invoke/receive).
  std::uint64_t events_seen() const { return events_seen_; }
  /// Events fed up to and including the one that completed the first
  /// violation (0 when nothing fired yet) — the detection-latency
  /// metric of the run reports.
  std::uint64_t events_to_detection() const { return events_to_detection_; }
  /// Wall time accumulated inside on_event while timing was enabled.
  double on_event_seconds() const { return on_event_seconds_; }
  /// Number of on_event calls measured; divides on_event_seconds().
  std::uint64_t timed_events() const { return timed_events_; }

  /// Attach (nullptr: detach) a caller-owned stats sink to the pruned
  /// search engine — candidate populations, words scanned, prune rate
  /// (ISSUE 4).  No effect on what kNaive mode counts.
  void set_engine_stats(WitnessEngine::Stats* stats) {
    engine_.set_stats(stats);
  }

  /// Compiler/automaton observability (ISSUE 8): whether kAutomaton was
  /// requested, whether the spec compiled (fallback_reason explains a
  /// rejection), and the compiled machine's size and activity.
  struct AutomatonInfo {
    bool requested = false;
    bool compiled = false;
    std::string fallback_reason;
    std::size_t states = 0;
    std::size_t symbol_classes = 0;
    std::uint64_t transitions = 0;
  };
  AutomatonInfo automaton_info() const;

  const MonitorOptions& options() const { return options_; }

  /// The monitor's view of causality so far (for tests).
  bool before(UserEvent a, UserEvent b) const;

 private:
  static std::size_t index(MessageId m, UserEventKind k) {
    return 2 * static_cast<std::size_t>(m) +
           (k == UserEventKind::kDeliver ? 1 : 0);
  }

  bool on_event_impl(ProcessId process, SystemEvent event, double time);
  bool on_event_automaton(ProcessId process, SystemEvent event,
                          double time);
  bool flush_batch(double time);
  bool extract_witness_by_replay();

  bool search_with_pin(std::size_t pinned_var, MessageId pinned_msg,
                       std::size_t next_var,
                       std::vector<MessageId>& assignment,
                       std::vector<bool>& used) const;
  bool conjuncts_hold(const std::vector<MessageId>& assignment,
                      std::size_t bound_upto, std::size_t pinned_var,
                      MessageId pinned_msg) const;

  std::vector<Message> universe_;
  ForbiddenPredicate spec_;
  MonitorOptions options_;
  /// The search mode events actually take: kAutomaton only when the
  /// spec compiled, else the requested mode degraded to kPruned.
  MonitorSearchMode mode_;
  /// The bitset-pruned search engine (holds the static candidate masks
  /// and all per-query scratch, so on_event never allocates).
  WitnessEngine engine_;
  /// ancestors_.get(e, a) == true iff a |> e.
  BitMatrix ancestors_;
  /// descendants_.get(e, d) == true iff e |> d — the transpose of
  /// ancestors_, maintained incrementally (a new event joins the
  /// descendant row of each of its ancestors) so the engine can slice
  /// candidate sets from either direction of a conjunct.
  BitMatrix descendants_;
  std::vector<bool> present_;
  /// Packed presence bitsets (bit m: m's send / delivery has happened).
  std::vector<std::uint64_t> present_send_;
  std::vector<std::uint64_t> present_deliver_;
  /// Last user event index per process, or -1.
  std::vector<long> last_event_;
  /// Hoisted per-event scratch for both search modes (ISSUE 3
  /// satellite: no per-event vector construction).
  std::vector<MessageId> assignment_scratch_;
  std::vector<bool> used_scratch_;
  std::optional<ViolationWitness> first_violation_;
  double first_violation_time_ = 0;
  std::size_t violation_count_ = 0;
  bool timing_ = false;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_to_detection_ = 0;
  std::uint64_t timed_events_ = 0;
  double on_event_seconds_ = 0;

  // --- kAutomaton state (ISSUE 8) ---
  CompileResult compile_;
  std::optional<AutomatonEngine> automaton_engine_;
  /// The full system feed, logged until the first acceptance so the
  /// witness can be extracted by replaying through a kPruned monitor
  /// (one replay total: amortized O(1) per event stands).
  struct LoggedEvent {
    ProcessId process;
    SystemEvent event;
    double time;
  };
  std::vector<LoggedEvent> feed_log_;

  // --- batched fallback state (ISSUE 8 satellite) ---
  std::size_t pending_in_batch_ = 0;
  double last_event_time_ = 0;
};

/// Adapter for the simulator's observer fan-out:
///   sopts.observers.add(monitor_observer(monitor));
SimObserver monitor_observer(std::shared_ptr<OnlineMonitor> monitor);

}  // namespace msgorder
