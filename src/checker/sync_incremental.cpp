#include "src/checker/sync_incremental.hpp"

#include <bit>

namespace msgorder {

IncrementalSyncChecker::IncrementalSyncChecker(std::size_t n_messages)
    : n_messages_(n_messages),
      msg_words_((n_messages + 63) / 64),
      ancestors_(2 * n_messages),
      reach_(n_messages),
      reach_t_(n_messages),
      sources_(msg_words_, 0),
      targets_(msg_words_, 0),
      pred_msgs_(msg_words_, 0) {}

void IncrementalSyncChecker::add_edge(MessageId x, MessageId y) {
  if (reach_.get(x, y)) {  // implied already: closure unchanged
    ++implied_edges_;
    return;
  }
  if (reach_.get(y, x)) {        // y -> ... -> x plus x -> y: a cycle
    cyclic_ = true;
    ++edge_count_;
    return;
  }
  ++edge_count_;
  // Snapshot both frontiers, then splice: everything that reaches x now
  // also reaches y and y's descendants, word-parallel per row.
  for (std::size_t w = 0; w < msg_words_; ++w) {
    sources_[w] = reach_t_.row_data(x)[w];
    targets_[w] = reach_.row_data(y)[w];
  }
  sources_[x >> 6] |= 1ULL << (x & 63);
  targets_[y >> 6] |= 1ULL << (y & 63);
  for (std::size_t w = 0; w < msg_words_; ++w) {
    std::uint64_t bits = sources_[w];
    while (bits != 0) {
      const std::size_t z =
          64 * w + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      reach_.or_words_into(targets_.data(), z);
      ++splice_row_ors_;
    }
  }
  for (std::size_t w = 0; w < msg_words_; ++w) {
    std::uint64_t bits = targets_[w];
    while (bits != 0) {
      const std::size_t z =
          64 * w + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      reach_t_.or_words_into(sources_.data(), z);
      ++splice_row_ors_;
    }
  }
}

bool IncrementalSyncChecker::on_event(ProcessId process, SystemEvent event,
                                      double /*time*/) {
  if (cyclic_) return false;  // absorbing: a cycle never goes away
  if (!is_user_kind(event.kind)) return true;
  const UserEventKind kind = to_user_kind(event.kind);
  const std::size_t idx = index(event.msg, kind);
  if (process >= last_event_.size()) {
    last_event_.resize(static_cast<std::size_t>(process) + 1, -1);
  }
  if (last_event_[process] >= 0) {
    const auto prev = static_cast<std::size_t>(last_event_[process]);
    ancestors_.or_row_into(prev, idx);
    ancestors_.set(idx, prev);
  }
  if (kind == UserEventKind::kDeliver) {
    const std::size_t send = index(event.msg, UserEventKind::kSend);
    ancestors_.or_row_into(send, idx);
    ancestors_.set(idx, send);
  }
  last_event_[process] = static_cast<long>(idx);

  // Fold the event-level ancestor row message-wise: bit x iff some event
  // of x precedes the new event — each such x gains the digraph edge
  // x -> event.msg.
  const std::uint64_t* anc = ancestors_.row_data(idx);
  const std::size_t event_words = ancestors_.words_per_row();
  for (std::size_t w = 0; w < msg_words_; ++w) {
    const std::uint64_t lo = 2 * w < event_words ? anc[2 * w] : 0;
    const std::uint64_t hi = 2 * w + 1 < event_words ? anc[2 * w + 1] : 0;
    pred_msgs_[w] = (compress_stride2(lo, 0) | compress_stride2(lo, 1)) |
                    ((compress_stride2(hi, 0) | compress_stride2(hi, 1))
                     << 32);
  }
  pred_msgs_[event.msg >> 6] &= ~(1ULL << (event.msg & 63));

  for (std::size_t w = 0; w < msg_words_ && !cyclic_; ++w) {
    std::uint64_t bits = pred_msgs_[w];
    while (bits != 0 && !cyclic_) {
      const auto x = static_cast<MessageId>(
          64 * w + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      add_edge(x, event.msg);
    }
  }
  return !cyclic_;
}

SimObserver sync_observer(std::shared_ptr<IncrementalSyncChecker> checker) {
  return [checker = std::move(checker)](ProcessId p, SystemEvent e,
                                        SimTime t) {
    checker->on_event(p, e, t);
  };
}

}  // namespace msgorder
