#include "src/checker/limit_sets.hpp"

#include "src/poset/lift.hpp"

namespace msgorder {

std::string to_string(LimitSet s) {
  switch (s) {
    case LimitSet::kSync:
      return "sync";
    case LimitSet::kCausal:
      return "causal";
    case LimitSet::kAsync:
      return "async";
  }
  return "?";
}

bool in_async(const UserRun& run) {
  return run.order().is_partial_order();
}

bool in_causal(const UserRun& run) {
  const std::size_t m = run.message_count();
  for (MessageId x = 0; x < m; ++x) {
    for (MessageId y = 0; y < m; ++y) {
      if (x == y) continue;
      if (run.before(x, UserEventKind::kSend, y, UserEventKind::kSend) &&
          run.before(y, UserEventKind::kDeliver, x,
                     UserEventKind::kDeliver)) {
        return false;
      }
    }
  }
  return true;
}

bool in_sync(const UserRun& run) {
  return sync_timestamps(run).has_value();
}

LimitSet finest_limit_set(const UserRun& run) {
  if (in_sync(run)) return LimitSet::kSync;
  if (in_causal(run)) return LimitSet::kCausal;
  return LimitSet::kAsync;
}

}  // namespace msgorder
