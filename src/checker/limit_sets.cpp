#include "src/checker/limit_sets.hpp"

#include <vector>

#include "src/poset/lift.hpp"
#include "src/util/bitmatrix.hpp"

namespace msgorder {

std::string to_string(LimitSet s) {
  switch (s) {
    case LimitSet::kSync:
      return "sync";
    case LimitSet::kCausal:
      return "causal";
    case LimitSet::kAsync:
      return "async";
  }
  return "?";
}

bool in_async(const UserRun& run) {
  return run.order().is_partial_order();
}

bool in_causal(const UserRun& run) {
  const std::size_t m = run.message_count();
  if (m < 2) return true;
  const BitMatrix& reach = run.order().matrix();
  const std::size_t event_words = reach.words_per_row();
  const std::size_t words = (m + 63) / 64;
  // dd.row(y), packed over messages x: y.r |> x.r (the odd bits of
  // y.r's descendant row).  Its transpose row x is then the set
  // {y : y.r |> x.r}, so the whole check is one word-parallel AND per
  // message against {y : x.s |> y.s} — a compact m x m sub-transpose
  // instead of transposing the full 2m x 2m event matrix per call.
  BitMatrix dd(m);
  std::vector<std::uint64_t> slice(words, 0);
  for (MessageId y = 0; y < m; ++y) {
    const std::uint64_t* del_row =
        reach.row_data(UserRun::index(y, UserEventKind::kDeliver));
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t lo = 2 * w < event_words ? del_row[2 * w] : 0;
      const std::uint64_t hi =
          2 * w + 1 < event_words ? del_row[2 * w + 1] : 0;
      slice[w] = compress_stride2(lo, 1) | (compress_stride2(hi, 1) << 32);
    }
    dd.or_words_into(slice.data(), y);
  }
  const BitMatrix delivered_before = dd.transposed();
  for (MessageId x = 0; x < m; ++x) {
    // sends[w]: messages y with x.s |> y.s (even bits of x.s's
    // descendant row).  A non-empty intersection with the messages
    // delivered before x is a causal violation pair.
    const std::uint64_t* send_row =
        reach.row_data(UserRun::index(x, UserEventKind::kSend));
    const std::uint64_t* dels = delivered_before.row_data(x);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t lo = 2 * w < event_words ? send_row[2 * w] : 0;
      const std::uint64_t hi =
          2 * w + 1 < event_words ? send_row[2 * w + 1] : 0;
      const std::uint64_t sends =
          compress_stride2(lo, 0) | (compress_stride2(hi, 0) << 32);
      if ((sends & dels[w]) != 0) return false;
    }
  }
  return true;
}

bool in_sync(const UserRun& run) {
  return digraph_timestamps(message_digraph(run), run.message_count())
      .has_value();
}

bool in_causal_naive(const UserRun& run) {
  const std::size_t m = run.message_count();
  for (MessageId x = 0; x < m; ++x) {
    for (MessageId y = 0; y < m; ++y) {
      if (x == y) continue;
      if (run.before(x, UserEventKind::kSend, y, UserEventKind::kSend) &&
          run.before(y, UserEventKind::kDeliver, x,
                     UserEventKind::kDeliver)) {
        return false;
      }
    }
  }
  return true;
}

bool in_sync_naive(const UserRun& run) {
  const std::size_t m = run.message_count();
  // Seed algorithm: materialize the message digraph one before() query
  // at a time, transitively close it, and topologically sort the closed
  // relation.
  Poset digraph(m);
  static constexpr UserEventKind kKinds[] = {UserEventKind::kSend,
                                             UserEventKind::kDeliver};
  for (MessageId x = 0; x < m; ++x) {
    for (MessageId y = 0; y < m; ++y) {
      if (x == y) continue;
      for (UserEventKind h : kKinds) {
        for (UserEventKind f : kKinds) {
          if (run.before(x, h, y, f)) digraph.add_edge(x, y);
        }
      }
    }
  }
  digraph.close();
  return digraph.topological_order().has_value();
}

LimitSet finest_limit_set(const UserRun& run) {
  if (in_sync(run)) return LimitSet::kSync;
  if (in_causal(run)) return LimitSet::kCausal;
  return LimitSet::kAsync;
}

}  // namespace msgorder
