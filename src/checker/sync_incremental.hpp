// Incremental X_sync membership (ISSUE 3): the Section-3.4 message
// digraph maintained online, one delivery at a time, with word-parallel
// cycle detection — so a live feed (simulator observer or monitor
// pipeline) answers "is the run-so-far still logically synchronous?"
// in amortized O(m/64) words per new digraph edge instead of
// recomputing sync_timestamps() from scratch after every event.
//
// Invariant (see DESIGN.md "Checker performance"): after each on_event,
//   * ancestors_ row e is the ancestor set of user event e in the
//     run-so-far (new events are maximal, so old rows never change);
//   * reach_ is the strict transitive closure of the message digraph
//     "x -> y iff some event of x precedes some event of y" restricted
//     to the events fed so far, and reach_t_ is its transpose;
//   * cyclic_ iff that digraph has a cycle.  A cycle never disappears
//     as the run extends, so the checker short-circuits to an absorbing
//     "not sync" state.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/obs/observer.hpp"
#include "src/poset/event.hpp"
#include "src/util/bitmatrix.hpp"

namespace msgorder {

class IncrementalSyncChecker {
 public:
  explicit IncrementalSyncChecker(std::size_t n_messages);

  /// Feed the next system event (in execution order).  Invoke and
  /// receive events are ignored.  Returns in_sync() afterwards.
  bool on_event(ProcessId process, SystemEvent event, double time = 0.0);

  /// True iff the run fed so far is still logically synchronous.
  bool in_sync() const { return !cyclic_; }

  /// Number of distinct digraph edges recorded so far.
  std::size_t edge_count() const { return edge_count_; }

  // --- closure-maintenance instrumentation (ISSUE 4; always-on: the
  // counters ride on paths that already do O(m/64) word work) ---

  /// Proposed edges already implied by the closure (skipped for free).
  std::uint64_t implied_edges() const { return implied_edges_; }
  /// Word-parallel row ORs performed while splicing new edges in.
  std::uint64_t splice_row_ors() const { return splice_row_ors_; }

 private:
  static std::size_t index(MessageId m, UserEventKind k) {
    return 2 * static_cast<std::size_t>(m) +
           (k == UserEventKind::kDeliver ? 1 : 0);
  }

  void add_edge(MessageId x, MessageId y);

  std::size_t n_messages_ = 0;
  std::size_t msg_words_ = 0;
  /// ancestors_.get(e, a) == true iff a |> e, over user-event indices.
  BitMatrix ancestors_;
  /// Message digraph reachability and its transpose.
  BitMatrix reach_;
  BitMatrix reach_t_;
  std::vector<long> last_event_;  // grows on demand per process
  /// Reusable scratch (allocation-free per event).
  std::vector<std::uint64_t> sources_;
  std::vector<std::uint64_t> targets_;
  std::vector<std::uint64_t> pred_msgs_;
  std::size_t edge_count_ = 0;
  std::uint64_t implied_edges_ = 0;
  std::uint64_t splice_row_ors_ = 0;
  bool cyclic_ = false;
};

/// Adapter for the simulator's observer fan-out:
///   sopts.observers.add(sync_observer(checker));
SimObserver sync_observer(std::shared_ptr<IncrementalSyncChecker> checker);

}  // namespace msgorder
