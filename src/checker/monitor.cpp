#include "src/checker/monitor.hpp"

#include <algorithm>
#include <chrono>

namespace msgorder {

OnlineMonitor::OnlineMonitor(std::vector<Message> universe,
                             ForbiddenPredicate specification,
                             MonitorSearchMode mode)
    : OnlineMonitor(std::move(universe), std::move(specification),
                    MonitorOptions{mode, 1}) {}

OnlineMonitor::OnlineMonitor(std::vector<Message> universe,
                             ForbiddenPredicate specification,
                             MonitorOptions options)
    : universe_(std::move(universe)),
      spec_(std::move(specification)),
      options_(options),
      mode_(options.mode),
      engine_(spec_, universe_),
      ancestors_(2 * universe_.size()),
      descendants_(2 * universe_.size()),
      present_(2 * universe_.size(), false),
      present_send_((universe_.size() + 63) / 64, 0),
      present_deliver_((universe_.size() + 63) / 64, 0),
      assignment_scratch_(spec_.arity, 0),
      used_scratch_(universe_.size(), false) {
  std::size_t n_processes = 0;
  for (const Message& m : universe_) {
    n_processes = std::max({n_processes, static_cast<std::size_t>(m.src) + 1,
                            static_cast<std::size_t>(m.dst) + 1});
  }
  last_event_.assign(n_processes, -1);
  if (options_.mode == MonitorSearchMode::kAutomaton) {
    compile_ = compile_predicate(spec_, &universe_);
    if (compile_.compiled()) {
      automaton_engine_.emplace(&*compile_.automaton, n_processes);
    } else {
      // Structured fallback: run exactly like kPruned (including the
      // batched search if batch_size > 1); automaton_info() reports why.
      mode_ = MonitorSearchMode::kPruned;
    }
  }
}

OnlineMonitor::AutomatonInfo OnlineMonitor::automaton_info() const {
  AutomatonInfo info;
  info.requested = options_.mode == MonitorSearchMode::kAutomaton;
  info.compiled = compile_.compiled();
  info.fallback_reason = compile_.fallback_reason;
  if (compile_.compiled()) {
    info.states = compile_.automaton->n_states;
    info.symbol_classes = compile_.automaton->symbols.n_classes();
  }
  if (automaton_engine_.has_value()) {
    info.transitions = automaton_engine_->transitions();
  }
  return info;
}

bool OnlineMonitor::before(UserEvent a, UserEvent b) const {
  return ancestors_.get(index(b.msg, b.kind), index(a.msg, a.kind));
}

bool OnlineMonitor::conjuncts_hold(const std::vector<MessageId>& assignment,
                                   std::size_t bound_upto,
                                   std::size_t pinned_var,
                                   MessageId pinned_msg) const {
  const auto value = [&](std::size_t var) -> std::optional<MessageId> {
    if (var == pinned_var) return pinned_msg;
    if (var < bound_upto) return assignment[var];
    return std::nullopt;
  };
  for (const Conjunct& c : spec_.conjuncts) {
    const auto lhs = value(c.lhs);
    const auto rhs = value(c.rhs);
    if (!lhs || !rhs) continue;
    if (!ancestors_.get(index(*rhs, c.q), index(*lhs, c.p))) return false;
    // Both endpoints must actually have happened.
    if (!present_[index(*lhs, c.p)] || !present_[index(*rhs, c.q)]) {
      return false;
    }
  }
  for (const ProcessEquality& pe : spec_.process_constraints) {
    const auto a = value(pe.var_a);
    const auto b = value(pe.var_b);
    if (!a || !b) continue;
    const Message& ma = universe_[*a];
    const Message& mb = universe_[*b];
    const ProcessId pa =
        pe.kind_a == UserEventKind::kSend ? ma.src : ma.dst;
    const ProcessId pb =
        pe.kind_b == UserEventKind::kSend ? mb.src : mb.dst;
    if (pa != pb) return false;
  }
  for (const ColorConstraint& cc : spec_.color_constraints) {
    const auto v = value(cc.var);
    if (!v) continue;
    if (universe_[*v].color != cc.color) return false;
  }
  return true;
}

bool OnlineMonitor::search_with_pin(std::size_t pinned_var,
                                    MessageId pinned_msg,
                                    std::size_t next_var,
                                    std::vector<MessageId>& assignment,
                                    std::vector<bool>& used) const {
  if (next_var == spec_.arity) return true;
  if (next_var == pinned_var) {
    return search_with_pin(pinned_var, pinned_msg, next_var + 1,
                           assignment, used);
  }
  for (MessageId m = 0; m < universe_.size(); ++m) {
    if (used[m] || m == pinned_msg) continue;
    assignment[next_var] = m;
    if (conjuncts_hold(assignment, next_var + 1, pinned_var, pinned_msg)) {
      used[m] = true;
      if (search_with_pin(pinned_var, pinned_msg, next_var + 1,
                          assignment, used)) {
        return true;
      }
      used[m] = false;
    }
  }
  return false;
}

bool OnlineMonitor::on_event(ProcessId process, SystemEvent event,
                             double time) {
  ++events_seen_;
  if (timing_) {
    const auto start = std::chrono::steady_clock::now();
    const bool fired = on_event_impl(process, event, time);
    on_event_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ++timed_events_;
    return fired;
  }
  return on_event_impl(process, event, time);
}

bool OnlineMonitor::on_event_automaton(ProcessId process, SystemEvent event,
                                       double time) {
  // A dead automaton (unsatisfiable pattern) never accepts: skip even
  // the feed log, there will never be a witness to extract.
  if (!compile_.automaton->can_accept()) return false;
  if (!first_violation_.has_value()) {
    feed_log_.push_back(LoggedEvent{process, event, time});
  }
  if (!is_user_kind(event.kind)) return false;
  const bool fired = automaton_engine_->on_user_event(
      process, to_user_kind(event.kind), universe_[event.msg].color);
  if (!fired) return false;
  return extract_witness_by_replay();
}

bool OnlineMonitor::extract_witness_by_replay() {
  // One replay per monitor lifetime, at first acceptance: re-running
  // the log through a kPruned monitor yields the identical first
  // witness, detection event, and timestamp the bitset engine reports.
  OnlineMonitor replay(universe_, spec_,
                       MonitorOptions{MonitorSearchMode::kPruned, 1});
  for (const LoggedEvent& logged : feed_log_) {
    replay.on_event(logged.process, logged.event, logged.time);
  }
  feed_log_.clear();
  feed_log_.shrink_to_fit();
  if (!replay.violated()) return false;  // unreachable if compile is sound
  first_violation_ = replay.first_witness();
  first_violation_time_ = replay.first_violation_time();
  events_to_detection_ = events_seen_;
  violation_count_ = 1;  // the automaton reports the first violation once
  return true;
}

bool OnlineMonitor::flush_batch(double time) {
  if (pending_in_batch_ == 0) return false;
  pending_in_batch_ = 0;
  if (spec_.arity == 0 || spec_.arity > universe_.size()) return false;
  // Witnesses are monotone, so one unpinned search over the current
  // view sees any violation the per-event pinned searches would have
  // found during the batch.
  const WitnessEngine::View view{&descendants_, &ancestors_,
                                 present_send_.data(),
                                 present_deliver_.data()};
  if (!engine_.search(view, assignment_scratch_)) return false;
  ++violation_count_;
  if (!first_violation_.has_value()) {
    first_violation_ = assignment_scratch_;
    first_violation_time_ = time;
    events_to_detection_ = events_seen_;
  }
  return true;
}

bool OnlineMonitor::flush() { return flush_batch(last_event_time_); }

void OnlineMonitor::reset() {
  ancestors_.zero_all();
  descendants_.zero_all();
  std::fill(present_.begin(), present_.end(), false);
  std::fill(present_send_.begin(), present_send_.end(), 0);
  std::fill(present_deliver_.begin(), present_deliver_.end(), 0);
  std::fill(last_event_.begin(), last_event_.end(), -1L);
  first_violation_.reset();
  first_violation_time_ = 0;
  violation_count_ = 0;
  events_seen_ = 0;
  events_to_detection_ = 0;
  timed_events_ = 0;
  on_event_seconds_ = 0;
  feed_log_.clear();
  pending_in_batch_ = 0;
  last_event_time_ = 0;
  if (automaton_engine_.has_value()) automaton_engine_->reset();
}

bool OnlineMonitor::on_event_impl(ProcessId process, SystemEvent event,
                                  double time) {
  last_event_time_ = time;
  if (mode_ == MonitorSearchMode::kAutomaton) {
    return on_event_automaton(process, event, time);
  }
  if (!is_user_kind(event.kind)) return false;
  const UserEventKind kind = to_user_kind(event.kind);
  const std::size_t idx = index(event.msg, kind);
  // Extend the incremental causality: predecessors are the previous user
  // event on this line and, for a delivery, the matching send.
  if (last_event_[process] >= 0) {
    const auto prev = static_cast<std::size_t>(last_event_[process]);
    ancestors_.or_row_into(prev, idx);
    ancestors_.set(idx, prev);
  }
  if (kind == UserEventKind::kDeliver) {
    const std::size_t send = index(event.msg, UserEventKind::kSend);
    ancestors_.or_row_into(send, idx);
    ancestors_.set(idx, send);
  }
  // Mirror the new column into the descendant rows: the new event is a
  // fresh descendant of each of its ancestors (its own row stays empty —
  // a maximal event has no descendants yet).
  ancestors_.for_each_set(
      idx, [&](std::size_t a) { descendants_.set(a, idx); });
  present_[idx] = true;
  if (kind == UserEventKind::kSend) {
    present_send_[event.msg >> 6] |= 1ULL << (event.msg & 63);
  } else {
    present_deliver_[event.msg >> 6] |= 1ULL << (event.msg & 63);
  }
  last_event_[process] = static_cast<long>(idx);

  // A newly completed pattern must bind some variable to this message.
  if (spec_.arity == 0 || spec_.arity > universe_.size()) return false;
  if (mode_ == MonitorSearchMode::kPruned && options_.batch_size > 1) {
    // Batched fallback (ISSUE 8 satellite): defer the search, run one
    // unpinned re-intersection per batch_size user events.
    if (++pending_in_batch_ < options_.batch_size) return false;
    return flush_batch(time);
  }
  if (mode_ == MonitorSearchMode::kPruned) {
    const WitnessEngine::View view{&descendants_, &ancestors_,
                                   present_send_.data(),
                                   present_deliver_.data()};
    for (std::size_t v = 0; v < spec_.arity; ++v) {
      if (engine_.search_pinned(view, v, event.msg, assignment_scratch_)) {
        ++violation_count_;
        if (!first_violation_.has_value()) {
          first_violation_ = assignment_scratch_;
          first_violation_time_ = time;
          events_to_detection_ = events_seen_;
        }
        return true;
      }
    }
    return false;
  }
  for (std::size_t v = 0; v < spec_.arity; ++v) {
    assignment_scratch_.assign(spec_.arity, 0);
    std::fill(used_scratch_.begin(), used_scratch_.end(), false);
    used_scratch_[event.msg] = true;
    if (!conjuncts_hold(assignment_scratch_, 0, v, event.msg)) continue;
    if (search_with_pin(v, event.msg, 0, assignment_scratch_,
                        used_scratch_)) {
      assignment_scratch_[v] = event.msg;
      ++violation_count_;
      if (!first_violation_.has_value()) {
        first_violation_ = assignment_scratch_;
        first_violation_time_ = time;
        events_to_detection_ = events_seen_;
      }
      return true;
    }
  }
  return false;
}

SimObserver monitor_observer(std::shared_ptr<OnlineMonitor> monitor) {
  return [monitor = std::move(monitor)](ProcessId p, SystemEvent e,
                                        SimTime t) {
    monitor->on_event(p, e, t);
  };
}

}  // namespace msgorder
