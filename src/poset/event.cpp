#include "src/poset/event.hpp"

namespace msgorder {

std::string kind_name(EventKind k) {
  switch (k) {
    case EventKind::kInvoke:
      return "s*";
    case EventKind::kSend:
      return "s";
    case EventKind::kReceive:
      return "r*";
    case EventKind::kDeliver:
      return "r";
  }
  return "?";
}

std::string kind_name(UserEventKind k) {
  return k == UserEventKind::kSend ? "s" : "r";
}

std::string to_string(const SystemEvent& e) {
  return "x" + std::to_string(e.msg) + "." + kind_name(e.kind);
}

std::string to_string(const UserEvent& e) {
  return "x" + std::to_string(e.msg) + "." + kind_name(e.kind);
}

}  // namespace msgorder
