#include "src/poset/system_run.hpp"

#include <algorithm>
#include <cassert>

namespace msgorder {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

SystemRun::SystemRun(std::vector<Message> universe, std::size_t n_processes)
    : universe_(std::move(universe)),
      sequences_(n_processes),
      present_(4 * universe_.size(), 0),
      order_(4 * universe_.size()) {
  for (std::size_t i = 0; i < universe_.size(); ++i) {
    assert(universe_[i].id == i && "message ids must be dense");
    assert(universe_[i].src < n_processes && universe_[i].dst < n_processes);
  }
  order_.close();
}

std::optional<SystemRun> SystemRun::from_sequences(
    std::vector<Message> universe,
    std::vector<std::vector<SystemEvent>> sequences, std::string* error) {
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (universe[i].id != i) {
      set_error(error, "message ids must be dense 0..m-1");
      return std::nullopt;
    }
  }
  SystemRun run(std::move(universe), sequences.size());
  run.sequences_ = std::move(sequences);

  // Each event must be at its home process and appear at most once.
  std::vector<int> count(4 * run.universe_.size(), 0);
  for (std::size_t p = 0; p < run.sequences_.size(); ++p) {
    for (const SystemEvent& e : run.sequences_[p]) {
      if (e.msg >= run.universe_.size()) {
        set_error(error, "event references unknown message");
        return std::nullopt;
      }
      if (run.home(e) != p) {
        set_error(error, "event recorded at the wrong process");
        return std::nullopt;
      }
      count[index(e.msg, e.kind)] += 1;
    }
  }
  if (std::any_of(count.begin(), count.end(), [](int c) { return c > 1; })) {
    set_error(error, "duplicate event");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < count.size(); ++i) run.present_[i] = count[i];

  // Condition 3: x.s* -> x.s and x.r* -> x.r (same process, earlier slot).
  // Because each process sequence is scanned in order, it is enough to
  // check presence here and positions via the partial-order check below,
  // after adding the precedence edges.
  for (MessageId m = 0; m < run.universe_.size(); ++m) {
    if (run.present(m, EventKind::kSend) &&
        !run.present(m, EventKind::kInvoke)) {
      set_error(error, "send without invoke");
      return std::nullopt;
    }
    if (run.present(m, EventKind::kDeliver) &&
        !run.present(m, EventKind::kReceive)) {
      set_error(error, "delivery without receive");
      return std::nullopt;
    }
    // Condition 2: no spurious receives.
    if (run.present(m, EventKind::kReceive) &&
        !run.present(m, EventKind::kSend)) {
      set_error(error, "receive without send");
      return std::nullopt;
    }
  }

  run.rebuild_order();
  if (!run.order_.is_partial_order()) {
    set_error(error, "sequences do not form a partial order");
    return std::nullopt;
  }
  // Condition 3 ordering: invoke precedes send, receive precedes deliver.
  for (MessageId m = 0; m < run.universe_.size(); ++m) {
    if (run.present(m, EventKind::kSend) &&
        !run.before({m, EventKind::kInvoke}, {m, EventKind::kSend})) {
      set_error(error, "invoke does not precede send");
      return std::nullopt;
    }
    if (run.present(m, EventKind::kDeliver) &&
        !run.before({m, EventKind::kReceive}, {m, EventKind::kDeliver})) {
      set_error(error, "receive does not precede delivery");
      return std::nullopt;
    }
  }
  return run;
}

std::size_t SystemRun::event_count() const {
  std::size_t n = 0;
  for (const auto& seq : sequences_) n += seq.size();
  return n;
}

ProcessId SystemRun::home(SystemEvent e) const {
  const Message& m = universe_[e.msg];
  return (e.kind == EventKind::kInvoke || e.kind == EventKind::kSend)
             ? m.src
             : m.dst;
}

std::vector<SystemEvent> SystemRun::pending_invokes(ProcessId i) const {
  std::vector<SystemEvent> out;
  for (const Message& m : universe_) {
    if (m.src == i && !present(m.id, EventKind::kInvoke)) {
      out.push_back({m.id, EventKind::kInvoke});
    }
  }
  return out;
}

std::vector<SystemEvent> SystemRun::pending_sends(ProcessId i) const {
  std::vector<SystemEvent> out;
  for (const Message& m : universe_) {
    if (m.src == i && present(m.id, EventKind::kInvoke) &&
        !present(m.id, EventKind::kSend)) {
      out.push_back({m.id, EventKind::kSend});
    }
  }
  return out;
}

std::vector<SystemEvent> SystemRun::pending_receives(ProcessId i) const {
  std::vector<SystemEvent> out;
  for (const Message& m : universe_) {
    if (m.dst == i && present(m.id, EventKind::kSend) &&
        !present(m.id, EventKind::kReceive)) {
      out.push_back({m.id, EventKind::kReceive});
    }
  }
  return out;
}

std::vector<SystemEvent> SystemRun::pending_deliveries(ProcessId i) const {
  std::vector<SystemEvent> out;
  for (const Message& m : universe_) {
    if (m.dst == i && present(m.id, EventKind::kReceive) &&
        !present(m.id, EventKind::kDeliver)) {
      out.push_back({m.id, EventKind::kDeliver});
    }
  }
  return out;
}

std::vector<SystemEvent> SystemRun::controllable(ProcessId i) const {
  std::vector<SystemEvent> out = pending_sends(i);
  const std::vector<SystemEvent> d = pending_deliveries(i);
  out.insert(out.end(), d.begin(), d.end());
  return out;
}

bool SystemRun::quiescent() const {
  for (ProcessId i = 0; i < sequences_.size(); ++i) {
    if (!pending_sends(i).empty() || !pending_receives(i).empty() ||
        !pending_deliveries(i).empty()) {
      return false;
    }
  }
  return true;
}

bool SystemRun::can_execute(SystemEvent e) const {
  if (e.msg >= universe_.size() || present(e)) return false;
  switch (e.kind) {
    case EventKind::kInvoke:
      return true;
    case EventKind::kSend:
      return present(e.msg, EventKind::kInvoke);
    case EventKind::kReceive:
      return present(e.msg, EventKind::kSend);
    case EventKind::kDeliver:
      return present(e.msg, EventKind::kReceive);
  }
  return false;
}

SystemRun SystemRun::executed(SystemEvent e) const {
  assert(can_execute(e));
  SystemRun next = *this;
  next.sequences_[home(e)].push_back(e);
  next.present_[index(e.msg, e.kind)] = 1;
  next.rebuild_order();
  return next;
}

std::optional<SystemRun> SystemRun::prefix(
    const std::vector<std::size_t>& lengths) const {
  if (lengths.size() != sequences_.size()) return std::nullopt;
  std::vector<std::vector<SystemEvent>> cut(sequences_.size());
  for (std::size_t p = 0; p < sequences_.size(); ++p) {
    if (lengths[p] > sequences_[p].size()) return std::nullopt;
    cut[p].assign(sequences_[p].begin(),
                  sequences_[p].begin() + static_cast<long>(lengths[p]));
  }
  return from_sequences(universe_, std::move(cut));
}

SystemRun SystemRun::causal_past(ProcessId i) const {
  std::vector<std::size_t> lengths(sequences_.size(), 0);
  lengths[i] = sequences_[i].size();
  for (std::size_t j = 0; j < sequences_.size(); ++j) {
    if (j == i) continue;
    // The set {g in H_j : exists h in H_i with g -> h} is a prefix of H_j
    // because -> contains the process order of H_j.
    std::size_t keep = 0;
    for (std::size_t k = 0; k < sequences_[j].size(); ++k) {
      const SystemEvent& g = sequences_[j][k];
      bool reaches_i = false;
      for (const SystemEvent& h : sequences_[i]) {
        if (before(g, h)) {
          reaches_i = true;
          break;
        }
      }
      if (reaches_i) {
        keep = k + 1;
      } else {
        break;  // later events of H_j cannot reach H_i either
      }
    }
    lengths[j] = keep;
  }
  auto cut = prefix(lengths);
  assert(cut.has_value() && "causal past of a run is a run");
  return *cut;
}

bool SystemRun::user_complete() const {
  for (const Message& m : universe_) {
    if (present(m.id, EventKind::kSend) !=
        present(m.id, EventKind::kDeliver)) {
      return false;
    }
  }
  return true;
}

std::optional<UserRun> SystemRun::users_view() const {
  if (!user_complete()) return std::nullopt;
  // Keep only messages that were actually sent, with dense renumbering.
  std::vector<MessageId> remap(universe_.size(), 0);
  std::vector<Message> kept;
  for (const Message& m : universe_) {
    if (present(m.id, EventKind::kSend)) {
      remap[m.id] = static_cast<MessageId>(kept.size());
      Message copy = m;
      copy.id = remap[m.id];
      kept.push_back(copy);
    }
  }
  std::vector<std::vector<ScheduleStep>> schedules(sequences_.size());
  for (std::size_t p = 0; p < sequences_.size(); ++p) {
    for (const SystemEvent& e : sequences_[p]) {
      if (is_user_kind(e.kind)) {
        schedules[p].push_back({remap[e.msg], to_user_kind(e.kind)});
      }
    }
  }
  return UserRun::from_schedules(std::move(kept), std::move(schedules));
}

std::string SystemRun::key() const {
  std::string out;
  for (const auto& seq : sequences_) {
    for (const SystemEvent& e : seq) {
      out += std::to_string(e.msg);
      out += kind_name(e.kind);
      out += ',';
    }
    out += '|';
  }
  return out;
}

std::string SystemRun::to_string() const {
  std::string out;
  for (std::size_t p = 0; p < sequences_.size(); ++p) {
    out += "P" + std::to_string(p) + ":";
    for (const SystemEvent& e : sequences_[p]) {
      out += " " + msgorder::to_string(e);
    }
    out += "\n";
  }
  return out;
}

void SystemRun::rebuild_order() {
  order_ = Poset(4 * universe_.size());
  for (const auto& seq : sequences_) {
    for (std::size_t k = 0; k + 1 < seq.size(); ++k) {
      order_.add_edge(index(seq[k].msg, seq[k].kind),
                      index(seq[k + 1].msg, seq[k + 1].kind));
    }
  }
  for (MessageId m = 0; m < universe_.size(); ++m) {
    if (present(m, EventKind::kSend) && present(m, EventKind::kReceive)) {
      order_.add_edge(index(m, EventKind::kSend),
                      index(m, EventKind::kReceive));
    }
  }
  order_.close();
}

}  // namespace msgorder
