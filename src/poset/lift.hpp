// Lifting a user-view run back to a system-view run, and the SYNC
// numbering scheme — the constructions used in the proof of Theorem 1
// (paper Figure 5) and in the definition of X_sync / X_gn.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/poset/system_run.hpp"
#include "src/poset/user_run.hpp"

namespace msgorder {

/// Theorem-1 construction: given a complete scheduled user run (H, |>),
/// build the system run H in which x.s* immediately precedes x.s and
/// x.r* immediately precedes x.r on the same process line, so that
/// UsersView(lift(run)) == run.  Requires run.has_schedules().
SystemRun lift(const UserRun& run);

/// Packed adjacency rows of the Section-3.4 message digraph: bit y of
/// word `x * words + y/64` is set iff x != y and some event of x
/// precedes some event of y.  Built word-parallel from the run's
/// reachability rows (OR the two event rows of x, then fold the
/// send/deliver bit pair of every message), so the whole digraph costs
/// O(m^2 / 64) words instead of the 4*m^2 single-bit queries of the
/// naive definition.  `words` is (message_count + 63) / 64.
std::vector<std::uint64_t> message_digraph(const UserRun& run);

/// Kahn topological numbering of a packed digraph with `n` nodes as
/// produced by message_digraph(); nullopt iff the digraph has a cycle.
/// Works on the raw (unclosed) adjacency — no transitive closure needed
/// for either the order or the cycle test.
std::optional<std::vector<std::uint32_t>> digraph_timestamps(
    const std::vector<std::uint64_t>& rows, std::size_t n);

/// If the run is logically synchronous, a function T : M -> N with
/// x.h |> y.f  =>  T(x) < T(y)   (the SYNC condition of Section 3.4);
/// otherwise nullopt.  This is the constructive X_sync membership test:
/// T exists iff the message digraph (x -> y iff some event of x precedes
/// some event of y) is acyclic.
std::optional<std::vector<std::uint32_t>> sync_timestamps(
    const UserRun& run);

/// The numbering scheme N of the X_gn definition (Section 3.2.1), derived
/// from sync_timestamps: N assigns consecutive numbers 4T(x)..4T(x)+3 to
/// x.s*, x.s, x.r*, x.r.  Returns, indexed by SystemRun::index(m, kind),
/// the value N(event); nullopt if the run is not logically synchronous.
std::optional<std::vector<std::uint32_t>> sync_numbering(
    const UserRun& run);

}  // namespace msgorder
