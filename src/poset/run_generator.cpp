#include "src/poset/run_generator.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

namespace msgorder {

UserRun random_scheduled_run(const RandomRunOptions& options, Rng& rng) {
  assert(options.n_processes >= 2);
  std::vector<Message> messages;
  messages.reserve(options.n_messages);
  for (MessageId id = 0; id < options.n_messages; ++id) {
    const auto src =
        static_cast<ProcessId>(rng.below(options.n_processes));
    auto dst = static_cast<ProcessId>(rng.below(options.n_processes - 1));
    if (dst >= src) ++dst;  // src != dst, uniform over the rest
    const int color = rng.chance(options.red_fraction) ? 1 : 0;
    messages.push_back({id, src, dst, color});
  }

  std::vector<std::vector<ScheduleStep>> schedules(options.n_processes);
  std::vector<MessageId> in_flight;
  MessageId next_send = 0;
  while (next_send < messages.size() || !in_flight.empty()) {
    const bool can_send = next_send < messages.size();
    const bool can_deliver = !in_flight.empty();
    const bool send =
        can_send && (!can_deliver || rng.chance(options.send_bias));
    if (send) {
      const Message& m = messages[next_send];
      schedules[m.src].push_back({m.id, UserEventKind::kSend});
      in_flight.push_back(m.id);
      ++next_send;
    } else {
      const std::size_t pick = rng.below(in_flight.size());
      const MessageId id = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<long>(pick));
      schedules[messages[id].dst].push_back({id, UserEventKind::kDeliver});
    }
  }
  auto run = UserRun::from_schedules(std::move(messages),
                                     std::move(schedules));
  assert(run.has_value());
  return *run;
}

UserRun random_abstract_run(std::size_t n_messages, double density,
                            Rng& rng) {
  std::vector<Message> messages;
  for (MessageId id = 0; id < n_messages; ++id) {
    // Abstract runs do not rely on process structure; give each message
    // its own endpoint pair for attribute queries.
    messages.push_back({id, static_cast<ProcessId>(2 * id),
                        static_cast<ProcessId>(2 * id + 1), 0});
  }
  // Random linear placement of the 2m events with x.s before x.r, then
  // random forward edges.
  std::vector<std::size_t> position(2 * n_messages);
  std::vector<std::size_t> perm(2 * n_messages);
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    position[perm[pos]] = pos;
  }
  for (MessageId m = 0; m < n_messages; ++m) {
    auto& ps = position[UserRun::index(m, UserEventKind::kSend)];
    auto& pr = position[UserRun::index(m, UserEventKind::kDeliver)];
    if (ps > pr) std::swap(ps, pr);
  }
  std::vector<std::pair<UserEvent, UserEvent>> edges;
  for (std::size_t a = 0; a < 2 * n_messages; ++a) {
    for (std::size_t b = 0; b < 2 * n_messages; ++b) {
      if (position[a] < position[b] && rng.chance(density)) {
        edges.emplace_back(UserRun::event_of_index(a),
                           UserRun::event_of_index(b));
      }
    }
  }
  auto run = UserRun::from_edges(std::move(messages), edges);
  assert(run.has_value());
  return *run;
}

namespace {

void enumerate_rec(const std::vector<Message>& messages,
                   std::vector<std::vector<ScheduleStep>>& schedules,
                   std::vector<int>& state,  // 0 unsent, 1 in flight, 2 done
                   std::set<std::string>& seen,
                   std::vector<UserRun>& out) {
  bool any = false;
  for (MessageId m = 0; m < messages.size(); ++m) {
    if (state[m] == 0) {
      any = true;
      state[m] = 1;
      schedules[messages[m].src].push_back({m, UserEventKind::kSend});
      enumerate_rec(messages, schedules, state, seen, out);
      schedules[messages[m].src].pop_back();
      state[m] = 0;
    } else if (state[m] == 1) {
      any = true;
      state[m] = 2;
      schedules[messages[m].dst].push_back({m, UserEventKind::kDeliver});
      enumerate_rec(messages, schedules, state, seen, out);
      schedules[messages[m].dst].pop_back();
      state[m] = 1;
    }
  }
  if (!any) {
    auto run = UserRun::from_schedules(messages, schedules);
    assert(run.has_value());
    // Distinct global interleavings can induce the same decomposed run;
    // deduplicate on the per-process schedules.
    std::string k;
    for (const auto& s : run->schedules()) {
      for (const ScheduleStep& step : s) {
        k += std::to_string(step.msg);
        k += step.kind == UserEventKind::kSend ? 's' : 'r';
      }
      k += '|';
    }
    if (seen.insert(k).second) out.push_back(std::move(*run));
  }
}

}  // namespace

std::vector<UserRun> enumerate_scheduled_runs(
    const std::vector<Message>& messages) {
  std::size_t n_processes = 0;
  for (const Message& m : messages) {
    n_processes = std::max({n_processes, static_cast<std::size_t>(m.src) + 1,
                            static_cast<std::size_t>(m.dst) + 1});
  }
  std::vector<std::vector<ScheduleStep>> schedules(n_processes);
  std::vector<int> state(messages.size(), 0);
  std::set<std::string> seen;
  std::vector<UserRun> out;
  enumerate_rec(messages, schedules, state, seen, out);
  return out;
}

}  // namespace msgorder
