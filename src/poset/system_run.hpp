// The system's view of a run: a decomposed partially-ordered set
// H = (H_1, ..., H_n, ->) where each H_i is a sequence of the four-part
// events of messages (paper Section 3.1).
//
// SystemRun validates the three run conditions of the paper:
//   1. -> is a (strict) partial order,
//   2. x.r* in H_i  implies  x.s in H_j     (no spurious receives),
//   3. x.s in H implies x.s* -> x.s, and x.r in H implies x.r* -> x.r.
//
// It also implements the derived notions the paper builds on: prefixes,
// CausalPast_i(H) (Figure 1), the pending-event sets I/S/R/D, and the
// projection UsersView(H) (Section 3.3, Figure 4).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/event.hpp"
#include "src/poset/poset.hpp"
#include "src/poset/user_run.hpp"

namespace msgorder {

class SystemRun {
 public:
  /// An empty run over a fixed message universe M and process count n.
  /// The universe matters: the pending sets I/S/R/D are defined relative
  /// to the messages that *could* be requested.
  SystemRun(std::vector<Message> universe, std::size_t n_processes);
  SystemRun() = default;

  /// Build and validate a run from explicit per-process sequences.
  static std::optional<SystemRun> from_sequences(
      std::vector<Message> universe,
      std::vector<std::vector<SystemEvent>> sequences,
      std::string* error = nullptr);

  std::size_t process_count() const { return sequences_.size(); }
  const std::vector<Message>& universe() const { return universe_; }
  const std::vector<std::vector<SystemEvent>>& sequences() const {
    return sequences_;
  }

  /// Total number of events executed so far.
  std::size_t event_count() const;

  bool present(MessageId m, EventKind k) const {
    return present_[index(m, k)];
  }
  bool present(SystemEvent e) const { return present(e.msg, e.kind); }

  /// Strict causality e -> f (both events must be present).
  bool before(SystemEvent e, SystemEvent f) const {
    return order_.precedes(index(e.msg, e.kind), index(f.msg, f.kind));
  }

  /// Home process of an event (invoke/send live at src, receive/deliver
  /// at dst).
  ProcessId home(SystemEvent e) const;

  // ---- Pending-event sets of Section 3.1 --------------------------------

  /// I_i(H): invokes not yet requested at process i.
  std::vector<SystemEvent> pending_invokes(ProcessId i) const;
  /// S_i(H): sends requested but not executed at process i.
  std::vector<SystemEvent> pending_sends(ProcessId i) const;
  /// R_i(H): receives of messages sent to i and still in transit.
  std::vector<SystemEvent> pending_receives(ProcessId i) const;
  /// D_i(H): deliveries received but not executed at process i.
  std::vector<SystemEvent> pending_deliveries(ProcessId i) const;

  /// Union of S_i and D_i — the events a protocol may inhibit.
  std::vector<SystemEvent> controllable(ProcessId i) const;

  /// True when S(H) u R(H) u D(H) is empty: every requested message has
  /// been sent and delivered (the liveness target of Section 3.2).
  bool quiescent() const;

  // ---- Structural operations --------------------------------------------

  /// Is `e` executable next at its home process, i.e. is the extension
  /// H + e still a run?  (e must be in I/S/R/D of its process.)
  bool can_execute(SystemEvent e) const;

  /// Append one event (must satisfy can_execute).
  SystemRun executed(SystemEvent e) const;

  /// The prefix with the given per-process lengths.  Lengths must be
  /// consistent (the result must itself be a run); returns nullopt else.
  std::optional<SystemRun> prefix(const std::vector<std::size_t>& lengths)
      const;

  /// CausalPast_i(H): G_i = H_i, and for j != i, g in G_j iff g -> h for
  /// some h in H_i (paper Figure 1).
  SystemRun causal_past(ProcessId i) const;

  /// UsersView(H) (Section 3.3): projection onto send/delivery events.
  /// Requires the run to be user-complete: x.s in H iff x.r in H for
  /// every message.  Messages never sent are dropped.  Returns nullopt if
  /// some message is sent but not delivered.
  std::optional<UserRun> users_view() const;
  bool user_complete() const;

  /// Canonical text key (per-process sequences); two runs are the same
  /// decomposed poset iff their keys match.
  std::string key() const;

  std::string to_string() const;

  bool operator==(const SystemRun& other) const {
    return sequences_ == other.sequences_;
  }

  static std::size_t index(MessageId m, EventKind k) {
    return 4 * static_cast<std::size_t>(m) + static_cast<std::size_t>(k);
  }

 private:
  void rebuild_order();

  std::vector<Message> universe_;
  std::vector<std::vector<SystemEvent>> sequences_;
  std::vector<char> present_;
  Poset order_;  // over 4*|M| event slots, closed
};

}  // namespace msgorder
