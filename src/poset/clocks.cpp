#include "src/poset/clocks.hpp"

#include <algorithm>
#include <cassert>

namespace msgorder {

void VectorClock::merge(const VectorClock& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  assert(size() == other.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) return false;
  }
  return true;
}

bool VectorClock::lt(const VectorClock& other) const {
  return leq(other) && v_ != other.v_;
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v_[i]);
  }
  return out + "]";
}

void MatrixClock::merge(const MatrixClock& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < m_.size(); ++i) {
    m_[i] = std::max(m_[i], other.m_[i]);
  }
}

std::string MatrixClock::to_string() const {
  std::string out;
  for (std::size_t j = 0; j < n_; ++j) {
    out += "[";
    for (std::size_t k = 0; k < n_; ++k) {
      if (k) out += ",";
      out += std::to_string(at(j, k));
    }
    out += "]";
  }
  return out;
}

}  // namespace msgorder
