// A generic finite partially-ordered set over elements 0..n-1, backed by a
// packed-bitset reachability matrix.  Runs (both the user's view and the
// system's view, paper Section 3) are thin typed wrappers over this class.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/bitmatrix.hpp"

namespace msgorder {

class Poset {
 public:
  Poset() = default;
  explicit Poset(std::size_t n) : reach_(n) {}

  std::size_t size() const { return reach_.size(); }

  /// Record the raw relation u -> v.  Call close() afterwards; queries are
  /// only meaningful on the closed relation.
  void add_edge(std::size_t u, std::size_t v) { reach_.set(u, v); }

  /// Transitively close the relation.
  void close() { reach_.transitive_closure(); }

  /// Strict precedence u < v (requires close()).
  bool precedes(std::size_t u, std::size_t v) const {
    return reach_.get(u, v);
  }

  bool concurrent(std::size_t u, std::size_t v) const {
    return u != v && !precedes(u, v) && !precedes(v, u);
  }

  /// A valid (strict) partial order is irreflexive after closure.
  bool is_partial_order() const { return !reach_.any_diagonal(); }

  /// Kahn topological order of the closed relation; empty optional if the
  /// relation is cyclic.
  std::optional<std::vector<std::size_t>> topological_order() const;

  /// All ordered pairs (u, v) with u < v.
  std::vector<std::pair<std::size_t, std::size_t>> pairs() const;

  /// Number of ordered pairs in the closed relation.
  std::size_t pair_count() const { return reach_.popcount(); }

  /// The packed reachability matrix itself: row u is the descendant set
  /// of u.  The word-parallel checkers (src/checker) build candidate
  /// bitsets directly from these rows.
  const BitMatrix& matrix() const { return reach_; }

  bool operator==(const Poset&) const = default;

 private:
  BitMatrix reach_;
};

}  // namespace msgorder
