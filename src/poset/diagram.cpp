#include "src/poset/diagram.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/util/strings.hpp"

namespace msgorder {

namespace {

/// Merge per-process event sequences into one global linear extension:
/// repeatedly emit an executable head (all its causal predecessors
/// emitted).  For sends: always executable if earlier line events are
/// out; for receives/deliveries: the matching send must be out.
struct Column {
  ProcessId process;
  std::string label;
};

template <typename Seq, typename IsBlocked, typename Label>
std::vector<Column> linearize(const std::vector<Seq>& sequences,
                              const IsBlocked& is_blocked,
                              const Label& label) {
  std::vector<std::size_t> next(sequences.size(), 0);
  std::vector<Column> columns;
  for (;;) {
    bool emitted = false;
    for (ProcessId p = 0; p < sequences.size(); ++p) {
      if (next[p] >= sequences[p].size()) continue;
      const auto& e = sequences[p][next[p]];
      if (is_blocked(e)) continue;
      columns.push_back({p, label(e)});
      ++next[p];
      emitted = true;
      break;
    }
    if (!emitted) break;
  }
  return columns;
}

std::string render(std::size_t n_processes,
                   const std::vector<Column>& columns) {
  std::size_t width = 3;
  for (const Column& c : columns) width = std::max(width, c.label.size());
  std::string out;
  for (ProcessId p = 0; p < n_processes; ++p) {
    out += "P" + std::to_string(p) + ": ";
    for (const Column& c : columns) {
      out += "|";
      out += pad_right(c.process == p ? c.label : "", width);
    }
    out += "|\n";
  }
  return out;
}

}  // namespace

std::string time_diagram(const SystemRun& run) {
  std::vector<bool> send_out(run.universe().size(), false);
  const auto columns = linearize(
      run.sequences(),
      [&](const SystemEvent& e) {
        return e.kind == EventKind::kReceive && !send_out[e.msg];
      },
      [&](const SystemEvent& e) {
        if (e.kind == EventKind::kSend) send_out[e.msg] = true;
        return kind_name(e.kind) + std::to_string(e.msg);
      });
  return render(run.process_count(), columns);
}

std::string time_diagram(const UserRun& run) {
  assert(run.has_schedules());
  std::vector<bool> send_out(run.message_count(), false);
  const auto columns = linearize(
      run.schedules(),
      [&](const ScheduleStep& s) {
        return s.kind == UserEventKind::kDeliver && !send_out[s.msg];
      },
      [&](const ScheduleStep& s) {
        if (s.kind == UserEventKind::kSend) send_out[s.msg] = true;
        return kind_name(s.kind) + std::to_string(s.msg);
      });
  return render(run.process_count(), columns);
}

}  // namespace msgorder
