// Vector and matrix logical clocks.  These are the tagging structures the
// tagged protocols of Section 2 piggyback on user messages: the
// Raynal-Schiper-Toueg causal-ordering protocol tags an n x n matrix, the
// Schiper-Eggli-Sandoz protocol tags vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace msgorder {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : v_(n, 0) {}

  std::size_t size() const { return v_.size(); }
  std::uint32_t operator[](std::size_t i) const { return v_[i]; }
  std::uint32_t& operator[](std::size_t i) { return v_[i]; }

  void tick(std::size_t i) { ++v_[i]; }

  /// Component-wise maximum.
  void merge(const VectorClock& other);

  /// this <= other component-wise.
  bool leq(const VectorClock& other) const;
  /// Strictly less: leq and not equal (the "happened before" test).
  bool lt(const VectorClock& other) const;
  bool concurrent_with(const VectorClock& other) const {
    return !leq(other) && !other.leq(*this);
  }

  /// Serialized size in bytes when tagged on a message.
  std::size_t byte_size() const { return v_.size() * sizeof(std::uint32_t); }

  std::string to_string() const;

  bool operator==(const VectorClock&) const = default;

 private:
  std::vector<std::uint32_t> v_;
};

/// m[j][k] = number of messages from P_j to P_k known to the holder
/// (the RST "knowledge matrix", Section 2 of the paper).
class MatrixClock {
 public:
  MatrixClock() = default;
  explicit MatrixClock(std::size_t n) : n_(n), m_(n * n, 0) {}

  std::size_t size() const { return n_; }
  std::uint32_t at(std::size_t j, std::size_t k) const {
    return m_[j * n_ + k];
  }
  std::uint32_t& at(std::size_t j, std::size_t k) { return m_[j * n_ + k]; }

  void merge(const MatrixClock& other);

  std::size_t byte_size() const {
    return n_ * n_ * sizeof(std::uint32_t);
  }

  std::string to_string() const;

  bool operator==(const MatrixClock&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> m_;
};

}  // namespace msgorder
