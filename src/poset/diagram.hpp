// ASCII time diagrams in the style of the paper's figures: one line per
// process, one column per event (a topological linearization of the
// run), message transits drawn as matching send/receive labels.
//
//   P0: |s*0|s0 |   |   |
//   P1: |   |   |r*0|r0 |
//
// Used by the examples and by failure diagnostics in tests.
#pragma once

#include <string>

#include "src/poset/system_run.hpp"
#include "src/poset/user_run.hpp"

namespace msgorder {

/// Diagram of a system-view run (four-part events).
std::string time_diagram(const SystemRun& run);

/// Diagram of a scheduled user-view run (send/delivery events).
/// Precondition: run.has_schedules().
std::string time_diagram(const UserRun& run);

}  // namespace msgorder
