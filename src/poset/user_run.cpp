#include "src/poset/user_run.hpp"

#include <algorithm>

namespace msgorder {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<UserRun> UserRun::from_schedules(
    std::vector<Message> messages,
    std::vector<std::vector<ScheduleStep>> schedules, std::string* error) {
  // Validate identity: messages_[i].id == i keeps indexing dense.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].id != i) {
      set_error(error, "message ids must be dense 0..m-1");
      return std::nullopt;
    }
  }
  // Each event must appear exactly once, at the right process.
  std::vector<int> seen(2 * messages.size(), 0);
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    for (const ScheduleStep& step : schedules[p]) {
      if (step.msg >= messages.size()) {
        set_error(error, "schedule references unknown message");
        return std::nullopt;
      }
      const Message& m = messages[step.msg];
      const ProcessId home =
          step.kind == UserEventKind::kSend ? m.src : m.dst;
      if (home != p) {
        set_error(error, "event scheduled at the wrong process");
        return std::nullopt;
      }
      seen[index(step.msg, step.kind)] += 1;
    }
  }
  if (std::any_of(seen.begin(), seen.end(), [](int c) { return c != 1; })) {
    set_error(error, "every send and delivery must appear exactly once");
    return std::nullopt;
  }

  UserRun run;
  run.messages_ = std::move(messages);
  run.order_ = Poset(2 * run.messages_.size());
  for (const auto& schedule : schedules) {
    for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
      run.order_.add_edge(index(schedule[i].msg, schedule[i].kind),
                          index(schedule[i + 1].msg, schedule[i + 1].kind));
    }
  }
  for (MessageId m = 0; m < run.messages_.size(); ++m) {
    run.order_.add_edge(index(m, UserEventKind::kSend),
                        index(m, UserEventKind::kDeliver));
  }
  run.order_.close();
  if (!run.order_.is_partial_order()) {
    // A message delivered before it was sent on the same process line.
    set_error(error, "schedules violate causality (delivery before send)");
    return std::nullopt;
  }
  run.schedules_ = std::move(schedules);
  return run;
}

std::optional<UserRun> UserRun::from_edges(
    std::vector<Message> messages,
    const std::vector<std::pair<UserEvent, UserEvent>>& edges,
    std::string* error) {
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].id != i) {
      set_error(error, "message ids must be dense 0..m-1");
      return std::nullopt;
    }
  }
  UserRun run;
  run.messages_ = std::move(messages);
  run.order_ = Poset(2 * run.messages_.size());
  for (const auto& [from, to] : edges) {
    if (from.msg >= run.messages_.size() || to.msg >= run.messages_.size()) {
      set_error(error, "edge references unknown message");
      return std::nullopt;
    }
    run.order_.add_edge(index(from.msg, from.kind), index(to.msg, to.kind));
  }
  for (MessageId m = 0; m < run.messages_.size(); ++m) {
    run.order_.add_edge(index(m, UserEventKind::kSend),
                        index(m, UserEventKind::kDeliver));
  }
  run.order_.close();
  if (!run.order_.is_partial_order()) {
    set_error(error, "edges do not form a partial order");
    return std::nullopt;
  }
  return run;
}

std::size_t UserRun::process_count() const {
  std::size_t n = schedules_.size();
  for (const Message& m : messages_) {
    n = std::max({n, static_cast<std::size_t>(m.src) + 1,
                  static_cast<std::size_t>(m.dst) + 1});
  }
  return n;
}

std::string UserRun::to_string() const {
  std::string out;
  if (has_schedules()) {
    for (std::size_t p = 0; p < schedules_.size(); ++p) {
      out += "P" + std::to_string(p) + ":";
      for (const ScheduleStep& step : schedules_[p]) {
        out += " " + msgorder::to_string(UserEvent{step.msg, step.kind});
      }
      out += "\n";
    }
  } else {
    out += "abstract run over " + std::to_string(message_count()) +
           " messages; pairs:\n";
    for (const auto& [u, v] : order_.pairs()) {
      out += "  " + msgorder::to_string(event_of_index(u)) + " |> " +
             msgorder::to_string(event_of_index(v)) + "\n";
    }
  }
  return out;
}

}  // namespace msgorder
