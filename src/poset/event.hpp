// Event and message identities (paper Section 3.1).
//
// Every user-level message x consists of four system events:
//   x.s* (invoke), x.s (send), x.r* (receive), x.r (deliver).
// The user's view retains only x.s and x.r.
#pragma once

#include <cstdint>
#include <string>

namespace msgorder {

using MessageId = std::uint32_t;
using ProcessId = std::uint32_t;

/// The four system-level event kinds of a message.
enum class EventKind : std::uint8_t {
  kInvoke,   // x.s* : user requests the send
  kSend,     // x.s  : protocol releases the message onto the channel
  kReceive,  // x.r* : message arrives at the destination
  kDeliver,  // x.r  : protocol hands the message to the user
};

/// The two user-level event kinds (the projection of Section 3.3 keeps
/// exactly these).
enum class UserEventKind : std::uint8_t {
  kSend,     // x.s
  kDeliver,  // x.r
};

constexpr bool is_user_kind(EventKind k) {
  return k == EventKind::kSend || k == EventKind::kDeliver;
}

constexpr UserEventKind to_user_kind(EventKind k) {
  return k == EventKind::kSend ? UserEventKind::kSend
                               : UserEventKind::kDeliver;
}

constexpr EventKind to_system_kind(UserEventKind k) {
  return k == UserEventKind::kSend ? EventKind::kSend : EventKind::kDeliver;
}

/// Paper notation for each kind ("s*", "s", "r*", "r").
std::string kind_name(EventKind k);
std::string kind_name(UserEventKind k);

/// An event of the system view: message x plus one of its four kinds.
struct SystemEvent {
  MessageId msg = 0;
  EventKind kind = EventKind::kInvoke;

  bool operator==(const SystemEvent&) const = default;
};

/// An event of the user's view: message x plus send-or-deliver.
struct UserEvent {
  MessageId msg = 0;
  UserEventKind kind = UserEventKind::kSend;

  bool operator==(const UserEvent&) const = default;
};

/// A message in M_{src,dst}.  `color` carries the attribute used by
/// colored specifications (e.g. "red marker" flush messages, handoff
/// messages); 0 is the default color.  `mcast` groups the unicast copies
/// of one multicast (-1 = plain unicast); the multicast extension the
/// paper's conclusion sketches is built on this encoding (src/apps).
struct Message {
  MessageId id = 0;
  ProcessId src = 0;
  ProcessId dst = 0;
  int color = 0;
  int mcast = -1;

  bool operator==(const Message&) const = default;
};

/// Human-readable labels, e.g. "x3.s" / "x3.r*".
std::string to_string(const SystemEvent& e);
std::string to_string(const UserEvent& e);

}  // namespace msgorder
