#include "src/poset/poset.hpp"

namespace msgorder {

std::optional<std::vector<std::size_t>> Poset::topological_order() const {
  const std::size_t n = size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    reach_.for_each_set(u, [&](std::size_t v) { ++indegree[v]; });
  }
  std::vector<std::size_t> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    order.push_back(u);
    reach_.for_each_set(u, [&](std::size_t v) {
      if (--indegree[v] == 0) ready.push_back(v);
    });
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::vector<std::pair<std::size_t, std::size_t>> Poset::pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t u = 0; u < size(); ++u) {
    reach_.for_each_set(u, [&](std::size_t v) { out.emplace_back(u, v); });
  }
  return out;
}

}  // namespace msgorder
