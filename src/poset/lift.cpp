#include "src/poset/lift.hpp"

#include <bit>
#include <cassert>

#include "src/poset/poset.hpp"

namespace msgorder {

SystemRun lift(const UserRun& run) {
  assert(run.has_schedules() && "lift needs a process realization");
  const std::size_t n = run.process_count();
  std::vector<std::vector<SystemEvent>> sequences(n);
  const auto& schedules = run.schedules();
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    for (const ScheduleStep& step : schedules[p]) {
      if (step.kind == UserEventKind::kSend) {
        sequences[p].push_back({step.msg, EventKind::kInvoke});
        sequences[p].push_back({step.msg, EventKind::kSend});
      } else {
        sequences[p].push_back({step.msg, EventKind::kReceive});
        sequences[p].push_back({step.msg, EventKind::kDeliver});
      }
    }
  }
  std::string error;
  auto lifted =
      SystemRun::from_sequences(run.messages(), std::move(sequences), &error);
  assert(lifted.has_value() && "lift of a valid user run is a valid run");
  return *lifted;
}

std::vector<std::uint64_t> message_digraph(const UserRun& run) {
  const std::size_t m = run.message_count();
  const std::size_t words = (m + 63) / 64;
  const BitMatrix& reach = run.order().matrix();
  const std::size_t event_words = reach.words_per_row();
  std::vector<std::uint64_t> rows(m * words, 0);
  for (MessageId x = 0; x < m; ++x) {
    // Events reachable from either event of x, folded message-wise:
    // bit y set iff x.s or x.r precedes y.s or y.r.
    const std::uint64_t* send_row =
        reach.row_data(UserRun::index(x, UserEventKind::kSend));
    const std::uint64_t* del_row =
        reach.row_data(UserRun::index(x, UserEventKind::kDeliver));
    std::uint64_t* out = rows.data() + static_cast<std::size_t>(x) * words;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t lo = 2 * w < event_words
                                   ? send_row[2 * w] | del_row[2 * w]
                                   : 0;
      const std::uint64_t hi = 2 * w + 1 < event_words
                                   ? send_row[2 * w + 1] | del_row[2 * w + 1]
                                   : 0;
      out[w] = (compress_stride2(lo, 0) | compress_stride2(lo, 1)) |
               ((compress_stride2(hi, 0) | compress_stride2(hi, 1)) << 32);
    }
    out[x >> 6] &= ~(1ULL << (x & 63));  // the digraph ignores x -> x
  }
  return rows;
}

std::optional<std::vector<std::uint32_t>> digraph_timestamps(
    const std::vector<std::uint64_t>& rows, std::size_t n) {
  const std::size_t words = n == 0 ? 0 : rows.size() / n;
  const auto row = [&](std::size_t x) { return rows.data() + x * words; };
  std::vector<std::uint32_t> indegree(n, 0);
  for (std::size_t x = 0; x < n; ++x) {
    const std::uint64_t* r = row(x);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = r[w];
      while (bits != 0) {
        ++indegree[64 * w + static_cast<std::size_t>(std::countr_zero(bits))];
        bits &= bits - 1;
      }
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t x = 0; x < n; ++x) {
    if (indegree[x] == 0) ready.push_back(x);
  }
  std::vector<std::uint32_t> t(n, 0);
  std::uint32_t next = 0;
  while (!ready.empty()) {
    const std::size_t x = ready.back();
    ready.pop_back();
    t[x] = next++;
    const std::uint64_t* r = row(x);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = r[w];
      while (bits != 0) {
        const std::size_t y =
            64 * w + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (--indegree[y] == 0) ready.push_back(y);
      }
    }
  }
  if (next != n) return std::nullopt;
  return t;
}

std::optional<std::vector<std::uint32_t>> sync_timestamps(
    const UserRun& run) {
  return digraph_timestamps(message_digraph(run), run.message_count());
}

std::optional<std::vector<std::uint32_t>> sync_numbering(
    const UserRun& run) {
  const auto t = sync_timestamps(run);
  if (!t.has_value()) return std::nullopt;
  std::vector<std::uint32_t> numbering(4 * run.message_count(), 0);
  for (MessageId x = 0; x < run.message_count(); ++x) {
    const std::uint32_t base = 4 * (*t)[x];
    numbering[SystemRun::index(x, EventKind::kInvoke)] = base;
    numbering[SystemRun::index(x, EventKind::kSend)] = base + 1;
    numbering[SystemRun::index(x, EventKind::kReceive)] = base + 2;
    numbering[SystemRun::index(x, EventKind::kDeliver)] = base + 3;
  }
  return numbering;
}

}  // namespace msgorder
