#include "src/poset/lift.hpp"

#include <cassert>

#include "src/poset/poset.hpp"

namespace msgorder {

SystemRun lift(const UserRun& run) {
  assert(run.has_schedules() && "lift needs a process realization");
  const std::size_t n = run.process_count();
  std::vector<std::vector<SystemEvent>> sequences(n);
  const auto& schedules = run.schedules();
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    for (const ScheduleStep& step : schedules[p]) {
      if (step.kind == UserEventKind::kSend) {
        sequences[p].push_back({step.msg, EventKind::kInvoke});
        sequences[p].push_back({step.msg, EventKind::kSend});
      } else {
        sequences[p].push_back({step.msg, EventKind::kReceive});
        sequences[p].push_back({step.msg, EventKind::kDeliver});
      }
    }
  }
  std::string error;
  auto lifted =
      SystemRun::from_sequences(run.messages(), std::move(sequences), &error);
  assert(lifted.has_value() && "lift of a valid user run is a valid run");
  return *lifted;
}

std::optional<std::vector<std::uint32_t>> sync_timestamps(
    const UserRun& run) {
  const std::size_t m = run.message_count();
  // Message digraph: x -> y iff some event of x precedes some event of y.
  Poset digraph(m);
  static constexpr UserEventKind kKinds[] = {UserEventKind::kSend,
                                             UserEventKind::kDeliver};
  for (MessageId x = 0; x < m; ++x) {
    for (MessageId y = 0; y < m; ++y) {
      if (x == y) continue;
      for (UserEventKind h : kKinds) {
        for (UserEventKind f : kKinds) {
          if (run.before(x, h, y, f)) digraph.add_edge(x, y);
        }
      }
    }
  }
  digraph.close();
  const auto topo = digraph.topological_order();
  if (!topo.has_value()) return std::nullopt;
  std::vector<std::uint32_t> t(m, 0);
  for (std::size_t pos = 0; pos < topo->size(); ++pos) {
    t[(*topo)[pos]] = static_cast<std::uint32_t>(pos);
  }
  return t;
}

std::optional<std::vector<std::uint32_t>> sync_numbering(
    const UserRun& run) {
  const auto t = sync_timestamps(run);
  if (!t.has_value()) return std::nullopt;
  std::vector<std::uint32_t> numbering(4 * run.message_count(), 0);
  for (MessageId x = 0; x < run.message_count(); ++x) {
    const std::uint32_t base = 4 * (*t)[x];
    numbering[SystemRun::index(x, EventKind::kInvoke)] = base;
    numbering[SystemRun::index(x, EventKind::kSend)] = base + 1;
    numbering[SystemRun::index(x, EventKind::kReceive)] = base + 2;
    numbering[SystemRun::index(x, EventKind::kDeliver)] = base + 3;
  }
  return numbering;
}

}  // namespace msgorder
