// Run generators: random scheduled runs (arbitrary asynchronous
// interleavings), random abstract posets, and exhaustive enumeration of
// all small runs.  These drive the empirical limit-set experiments (E1)
// and the property-based test sweeps.
#pragma once

#include <cstddef>
#include <vector>

#include "src/poset/user_run.hpp"
#include "src/util/rng.hpp"

namespace msgorder {

struct RandomRunOptions {
  std::size_t n_processes = 3;
  std::size_t n_messages = 6;
  /// Probability of preferring a fresh send over a pending delivery when
  /// both are possible.  Lower values keep few messages in flight (more
  /// synchronous-looking runs); higher values create deep reorderings.
  double send_bias = 0.5;
  /// Fraction of messages given color 1 ("red"), for colored specs.
  double red_fraction = 0.0;
};

/// A uniform-ish random complete scheduled run: messages get random
/// (src != dst) endpoints; the global interleaving is built step by step,
/// delivering pending messages in random order.  Always a member of
/// X_async; may or may not be causally ordered or synchronous.
UserRun random_scheduled_run(const RandomRunOptions& options, Rng& rng);

/// A random abstract run: a random poset over the 2*m user events that
/// contains every message edge x.s |> x.r.  `density` in [0,1] is the
/// probability of each forward candidate pair being related.
UserRun random_abstract_run(std::size_t n_messages, double density,
                            Rng& rng);

/// All distinct complete scheduled runs over the given message set (every
/// per-process interleaving of sends and deliveries).  Exponential in the
/// number of messages; intended for n_messages <= 4.
std::vector<UserRun> enumerate_scheduled_runs(
    const std::vector<Message>& messages);

}  // namespace msgorder
