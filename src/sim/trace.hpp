// Execution trace: the timestamped per-process event log a simulation
// produces, convertible to the paper's SystemRun (system view) and
// UserRun (user view), plus the overhead statistics of bench E2.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/system_run.hpp"
#include "src/poset/user_run.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

struct TimedEvent {
  SystemEvent event;
  SimTime time = 0;
};

/// The four lifecycle timestamps of a message (empty until the event
/// occurs — a message that was never invoked or is still in flight has
/// no latency, and asking for one is a programming error, enforced by
/// assert rather than the silent garbage the old -1 sentinels produced).
struct MessageTimes {
  std::optional<SimTime> invoke;
  std::optional<SimTime> send;
  std::optional<SimTime> receive;
  std::optional<SimTime> deliver;

  bool complete() const { return deliver.has_value(); }
  /// End-to-end latency as the user perceives it.  Requires complete().
  SimTime latency() const {
    assert(invoke && deliver);
    return *deliver - *invoke;
  }
  /// Time the protocol held the message at the sender (x.s* to x.s).
  SimTime send_delay() const {
    assert(invoke && send);
    return *send - *invoke;
  }
  /// Time the protocol buffered the message at the receiver (x.r* to x.r).
  SimTime delivery_delay() const {
    assert(receive && deliver);
    return *deliver - *receive;
  }
};

class Trace {
 public:
  Trace(std::vector<Message> universe, std::size_t n_processes)
      : universe_(std::move(universe)),
        logs_(n_processes),
        times_(universe_.size()) {}

  void record(ProcessId p, SystemEvent e, SimTime t);
  void count_control_packet(std::size_t bytes);
  void count_user_packet(std::size_t tag_bytes);
  void count_drop() { ++drops_; }
  void count_retransmission() { ++retransmissions_; }
  void count_duplicate_arrival() { ++duplicate_arrivals_; }

  const std::vector<Message>& universe() const { return universe_; }
  const std::vector<std::vector<TimedEvent>>& logs() const { return logs_; }
  const MessageTimes& times(MessageId m) const { return times_[m]; }

  std::size_t control_packets() const { return control_packets_; }
  std::size_t user_packets() const { return user_packets_; }
  std::size_t control_bytes() const { return control_bytes_; }
  std::size_t tag_bytes() const { return tag_bytes_; }
  std::size_t drops() const { return drops_; }
  std::size_t retransmissions() const { return retransmissions_; }
  std::size_t duplicate_arrivals() const { return duplicate_arrivals_; }

  double control_packets_per_message() const;
  double mean_tag_bytes() const;
  double mean_latency() const;
  double mean_delivery_delay() const;
  double max_latency() const;

  /// All messages invoked were delivered (the liveness deliverable).
  bool all_delivered() const;

  /// The system view of the execution.
  std::optional<SystemRun> to_system_run(std::string* error = nullptr) const;
  /// The user's view (requires all sent messages delivered).
  std::optional<UserRun> to_user_run(std::string* error = nullptr) const;

 private:
  std::vector<Message> universe_;
  std::vector<std::vector<TimedEvent>> logs_;
  std::vector<MessageTimes> times_;
  std::size_t control_packets_ = 0;
  std::size_t user_packets_ = 0;
  std::size_t control_bytes_ = 0;
  std::size_t tag_bytes_ = 0;
  std::size_t drops_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t duplicate_arrivals_ = 0;
};

}  // namespace msgorder
