// Execution trace: the timestamped per-process event log a simulation
// produces, convertible to the paper's SystemRun (system view) and
// UserRun (user view), plus the overhead statistics of bench E2.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/system_run.hpp"
#include "src/poset/user_run.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

struct TimedEvent {
  SystemEvent event;
  SimTime time = 0;
};

/// The four lifecycle timestamps of a message (empty until the event
/// occurs — a message that was never invoked or is still in flight has
/// no latency, and asking for one is a programming error, enforced by
/// assert rather than the silent garbage the old -1 sentinels produced).
struct MessageTimes {
  std::optional<SimTime> invoke;
  std::optional<SimTime> send;
  std::optional<SimTime> receive;
  std::optional<SimTime> deliver;

  bool operator==(const MessageTimes&) const = default;

  bool complete() const { return deliver.has_value(); }
  /// End-to-end latency as the user perceives it.  Requires complete().
  SimTime latency() const {
    assert(invoke && deliver);
    return *deliver - *invoke;
  }
  /// Time the protocol held the message at the sender (x.s* to x.s).
  SimTime send_delay() const {
    assert(invoke && send);
    return *send - *invoke;
  }
  /// Time the protocol buffered the message at the receiver (x.r* to x.r).
  SimTime delivery_delay() const {
    assert(receive && deliver);
    return *deliver - *receive;
  }
};

/// Aggregate counter block for merge-at-report recording: the sharded
/// engine (ISSUE 6) accumulates these per shard in plain structs and
/// folds them into the Trace once, after the run, instead of bumping
/// shared Trace counters from worker threads.
struct TraceCounts {
  std::size_t invoked = 0;
  std::size_t delivered = 0;
  std::size_t control_packets = 0;
  std::size_t user_packets = 0;
  std::size_t control_bytes = 0;
  std::size_t tag_bytes = 0;
  std::size_t drops = 0;
  std::size_t retransmissions = 0;
  std::size_t duplicate_arrivals = 0;
};

class Trace {
 public:
  Trace(std::vector<Message> universe, std::size_t n_processes)
      : universe_(std::move(universe)),
        logs_(n_processes),
        times_(universe_.size()) {}

  void record(ProcessId p, SystemEvent e, SimTime t);

  /// Shard-confined variant of record(): appends to logs_[p] and fills
  /// times_[e.msg] but touches no cross-process counters, so concurrent
  /// calls are race-free as long as each process (and each message's
  /// sender/receiver side) is handled by exactly one thread.  The owning
  /// engine accounts invokes/delivers in its TraceCounts and merges with
  /// add_counts() after the run.
  void record_shard_local(ProcessId p, SystemEvent e, SimTime t);

  /// Fold a per-shard counter block into the trace-wide totals.
  void add_counts(const TraceCounts& counts);

  void count_control_packet(std::size_t bytes);
  void count_user_packet(std::size_t tag_bytes);
  void count_drop() { ++drops_; }
  void count_retransmission() { ++retransmissions_; }
  void count_duplicate_arrival() { ++duplicate_arrivals_; }

  const std::vector<Message>& universe() const { return universe_; }
  const std::vector<std::vector<TimedEvent>>& logs() const { return logs_; }
  const MessageTimes& times(MessageId m) const { return times_[m]; }

  std::size_t control_packets() const { return control_packets_; }
  std::size_t user_packets() const { return user_packets_; }
  std::size_t control_bytes() const { return control_bytes_; }
  std::size_t tag_bytes() const { return tag_bytes_; }
  std::size_t drops() const { return drops_; }
  std::size_t retransmissions() const { return retransmissions_; }
  std::size_t duplicate_arrivals() const { return duplicate_arrivals_; }

  double control_packets_per_message() const;
  double mean_tag_bytes() const;
  double mean_latency() const;
  double mean_delivery_delay() const;
  double max_latency() const;

  /// All messages invoked were delivered (the liveness deliverable).
  /// O(1): maintained as invoke/deliver counters, not a table scan —
  /// the sequential engine consults this at every window boundary.
  bool all_delivered() const { return invoked_ == delivered_; }

  std::size_t invoked() const { return invoked_; }
  std::size_t delivered() const { return delivered_; }

  /// The system view of the execution.
  std::optional<SystemRun> to_system_run(std::string* error = nullptr) const;
  /// The user's view (requires all sent messages delivered).
  std::optional<UserRun> to_user_run(std::string* error = nullptr) const;

 private:
  std::vector<Message> universe_;
  std::vector<std::vector<TimedEvent>> logs_;
  std::vector<MessageTimes> times_;
  std::size_t invoked_ = 0;
  std::size_t delivered_ = 0;
  std::size_t control_packets_ = 0;
  std::size_t user_packets_ = 0;
  std::size_t control_bytes_ = 0;
  std::size_t tag_bytes_ = 0;
  std::size_t drops_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t duplicate_arrivals_ = 0;
};

}  // namespace msgorder
