#include "src/sim/workload.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace msgorder {

Workload random_workload(const WorkloadOptions& options, Rng& rng) {
  assert(options.n_processes >= 2);
  // Draw per-process arrival times, merge, then number messages by time.
  struct Draft {
    SimTime time;
    ProcessId src;
  };
  std::vector<Draft> drafts;
  drafts.reserve(options.n_messages);
  std::vector<SimTime> clock(options.n_processes, 0);
  for (std::size_t i = 0; i < options.n_messages; ++i) {
    // Next invoke happens at the process with the smallest clock.
    const std::size_t p = static_cast<std::size_t>(
        std::min_element(clock.begin(), clock.end()) - clock.begin());
    clock[p] += rng.exponential(options.mean_gap);
    drafts.push_back({clock[p], static_cast<ProcessId>(p)});
  }
  std::sort(drafts.begin(), drafts.end(),
            [](const Draft& a, const Draft& b) { return a.time < b.time; });

  Workload workload;
  workload.reserve(drafts.size());
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    Message m;
    m.id = static_cast<MessageId>(i);
    m.src = drafts[i].src;
    auto dst =
        static_cast<ProcessId>(rng.below(options.n_processes - 1));
    if (dst >= m.src) ++dst;
    m.dst = dst;
    m.color = rng.chance(options.red_fraction) ? options.red_color : 0;
    workload.push_back({drafts[i].time, m});
  }
  return workload;
}

Workload scripted_workload(
    const std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>>&
        entries) {
  Workload workload;
  MessageId id = 0;
  for (const auto& [time, src, dst, color] : entries) {
    workload.push_back({time, Message{id++, src, dst, color}});
  }
  std::stable_sort(workload.begin(), workload.end(),
                   [](const InvokeRequest& a, const InvokeRequest& b) {
                     return a.time < b.time;
                   });
  return workload;
}

std::vector<Message> workload_universe(const Workload& workload) {
  std::vector<Message> universe(workload.size());
  for (const InvokeRequest& req : workload) {
    universe[req.message.id] = req.message;
  }
  return universe;
}

}  // namespace msgorder
