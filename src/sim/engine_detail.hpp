// Shared internals of the two simulator engines (sequential and
// sharded, ISSUE 6): the deterministic total-order key both engines
// schedule by, the per-shard counter block, and the ObsSink that fans
// recorded events out to the observability layer.
//
// The determinism contract.  Every queue entry carries a 64-bit
// tiebreak packing (entry kind, owning process, per-owner counter):
//
//    bits 63..62  kind rank   (invoke=0 < arrival=1 < timer=2)
//    bits 61..38  owner       (invokes/arrivals: the source process;
//                              timers: the process the timer fires at)
//    bits 37..0   counter     (invokes: workload index; arrivals: the
//                              source's emission counter; timers: the
//                              owner's timer counter)
//
// Entries are processed in (time, tiebreak) order.  With positive
// lookahead L (= minimum channel delay) every entry inserted while
// handling the current one has a strictly larger key — arrivals land at
// time >= now + L > now, and timers fire at the same process with a
// higher kind rank or a larger counter — so popping a priority queue in
// key order and merging per-shard streams sorted by key yield the SAME
// global sequence.  That is why the sharded engine's trace is
// bit-identical to the sequential engine's.  With L <= 0 a zero-delay
// arrival could be inserted *behind* already-processed keys, so the
// dispatcher falls back to the sequential engine (shards_used == 1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/observability.hpp"
#include "src/obs/observer.hpp"
#include "src/protocols/protocol.hpp"
#include "src/sim/trace.hpp"
#include "src/util/rng.hpp"

namespace msgorder::sim_detail {

enum class EntryKind : std::uint8_t { kInvoke = 0, kArrival = 1, kTimer = 2 };

constexpr std::uint64_t kCounterBits = 38;
constexpr std::uint64_t kOwnerBits = 24;
constexpr std::uint64_t kCounterMask = (std::uint64_t{1} << kCounterBits) - 1;
constexpr std::uint64_t kOwnerMask = (std::uint64_t{1} << kOwnerBits) - 1;

inline std::uint64_t make_tiebreak(EntryKind kind, ProcessId owner,
                                   std::uint64_t counter) {
  return (static_cast<std::uint64_t>(kind) << (kOwnerBits + kCounterBits)) |
         ((static_cast<std::uint64_t>(owner) & kOwnerMask) << kCounterBits) |
         (counter & kCounterMask);
}

inline EntryKind tiebreak_kind(std::uint64_t tiebreak) {
  return static_cast<EntryKind>(tiebreak >> (kOwnerBits + kCounterBits));
}

inline ProcessId tiebreak_owner(std::uint64_t tiebreak) {
  return static_cast<ProcessId>((tiebreak >> kCounterBits) & kOwnerMask);
}

/// How one arriving packet is classified — identically in the
/// sequential engine, the sharded engine, and the exhaustive verifier.
enum class ArrivalClass : std::uint8_t { kControl, kFirstUser, kDuplicate };

/// Apply one packet arrival to its destination protocol: THE
/// delivery-application step, shared by both simulator engines and the
/// exhaustive verifier so that a verified schedule and a simulated one
/// execute identical protocol code.  `on_class` receives the
/// classification before dispatch (record x.r* / bump counters); the
/// destination protocol then sees the packet exactly once per arrival,
/// duplicates included (the reliability layer depends on that).
template <class Seen, class OnClass>
inline void apply_arrival(Protocol& dst_protocol, const Packet& pkt,
                          Seen& receive_seen, OnClass&& on_class) {
  if (pkt.is_control) {
    on_class(ArrivalClass::kControl);
  } else if (receive_seen[pkt.user_msg] == 0) {
    receive_seen[pkt.user_msg] = 1;
    on_class(ArrivalClass::kFirstUser);
  } else {
    on_class(ArrivalClass::kDuplicate);
  }
  dst_protocol.on_packet(pkt);
}

/// Emission-side classification: the first user-packet emission is the
/// send event x.s; later emissions of the same message are
/// retransmissions; control packets are neither.
enum class SendClass : std::uint8_t { kControl, kFirstSend, kRetransmission };

template <class Seen>
inline SendClass classify_send(const Packet& pkt, Seen& send_seen) {
  if (pkt.is_control) return SendClass::kControl;
  if (send_seen[pkt.user_msg] == 0) {
    send_seen[pkt.user_msg] = 1;
    return SendClass::kFirstSend;
  }
  return SendClass::kRetransmission;
}

/// Per-process packet-loss stream, identical in both engines: the loss
/// decision for the k-th emission of process p depends only on
/// (seed, p, k), never on global interleaving.
inline Rng per_process_loss_rng(std::uint64_t seed, ProcessId p) {
  std::uint64_t z = (seed ^ 0xa5a5a5a5deadbeefULL) +
                    (static_cast<std::uint64_t>(p) + 1) *
                        0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

/// Counters a shard accumulates privately during its run; folded into
/// the Trace and the MetricsRegistry once, at report time.
struct EngineCounters {
  TraceCounts trace;
  std::size_t timer_fires = 0;
};

/// One buffered observability notification (sharded engine only): a
/// recorded system event or a reported hold, tagged with the key of the
/// queue entry whose handling produced it.  Sorting items by
/// (time, entry_tiebreak) — keeping each shard's intra-entry order
/// stable — reproduces the sequential notification order exactly.
struct ObsItem {
  SimTime time = 0;
  std::uint64_t entry_tiebreak = 0;
  ProcessId at = 0;
  bool is_hold = false;
  SystemEvent event;        // !is_hold
  MessageId held_msg = 0;   // is_hold
  HoldReason reason;        // is_hold
};

/// Fans recorded events out to instruments, tracer, flight recorder,
/// delay attribution, and observers.  The sequential engine feeds it
/// inline per event; the sharded engine feeds thread-safe observers
/// live and everything else through replay() in merge order.  Trace
/// writes stay in the engines — the sink only *reads* trace times for
/// the latency histograms.
class ObsSink {
 public:
  /// Wires up the sink and (when observability is attached) calls
  /// begin_run(n_messages) to size a fresh attribution table.
  ObsSink(Observability* observability, const ObserverMux* observers,
          const Trace* trace, std::size_t n_messages);

  bool attribution_active() const { return attribution_ != nullptr; }
  bool has_recorder() const { return recorder_ != nullptr; }
  bool tracelog_active() const { return tracelog_ != nullptr; }

  /// Start this run's tracelog (no-op without one): truncates the file
  /// and writes the msgorder.tracelog/1 header.  Call before the first
  /// event is recorded.
  void open_tracelog(const char* engine, std::size_t shards,
                     std::size_t workers, SimTime lookahead,
                     std::uint64_t seed, std::size_t n_processes);
  /// Flush the tracelog and fold its events/bytes counters into the
  /// instruments.  Idempotent per run; call on every engine exit path
  /// (after the invariant notes, so they land in the log).
  void finish_tracelog();

  /// Engine profiler (ISSUE 7); nullptr unless
  /// ObservabilityOptions::profiling was set.  The owning engine resets
  /// it with the run topology and fills the rows directly.
  SimProfile* profile() const { return profile_; }
  /// True when profiling should retain per-window samples for the
  /// Perfetto counter tracks (profiling + tracing both attached).
  bool profile_sampling() const {
    return profile_ != nullptr && tracer_ != nullptr;
  }
  /// Render the retained profile samples as tracer counter tracks;
  /// call once, after the run (no-op without both profile and tracer).
  void publish_profile();

  /// True when the sharded engine must buffer ObsItems: some consumer
  /// needs events in the deterministic merge order.
  bool buffering_needed() const {
    return instruments_ != nullptr || tracer_ != nullptr ||
           recorder_ != nullptr || attribution_ != nullptr ||
           tracelog_ != nullptr ||
           (observers_ != nullptr && observers_->has_merge_phase());
  }

  /// Dispatch one recorded event.  `tiebreak` is the deterministic key
  /// of the queue entry being handled (logged verbatim in the
  /// tracelog).  merge_only limits observer fan-out to merge-phase
  /// observers (replay path: thread-safe observers were already
  /// notified live by the shard).
  void record(ProcessId at, SystemEvent e, SimTime t,
              std::uint64_t tiebreak, bool merge_only);

  /// Dispatch one hold report.  `received` — whether x.r* was already
  /// recorded for msg — selects the attribution phase.
  void hold(ProcessId at, MessageId msg, const HoldReason& reason,
            bool received, SimTime t, std::uint64_t tiebreak);

  /// Flight-recorder + tracelog annotation (no-op without either).
  void note(std::string text, SimTime t);

  // Per-event counter mirrors for the sequential engine (inline) ...
  void count_control_packet(std::size_t bytes);
  void count_user_packet(std::size_t tag_bytes);
  void count_drop();
  void count_retransmission();
  void count_duplicate_arrival();
  void count_timer_fire();
  // ... and the bulk merge the sharded engine uses instead.
  void add_counts(const EngineCounters& counters);

  /// Replay buffered items in merge order: `items` must be sorted by
  /// (time, entry_tiebreak).  Rebuilds the receive-seen bitmap on the
  /// fly so hold phases match the sequential engine's inference.
  void replay(const std::vector<ObsItem>& items, std::size_t n_messages);

 private:
  void update_instruments(SystemEvent e);
  void publish_closed(const HoldSegment* seg);

  const ObserverMux* observers_ = nullptr;
  const Trace* trace_ = nullptr;
  SimInstruments* instruments_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  DelayAttribution* attribution_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  SimProfile* profile_ = nullptr;
  TraceLogWriter* tracelog_ = nullptr;
  /// The Observability label, used as the tracelog header's protocol.
  std::string label_;
  bool tracelog_finished_ = false;
};

}  // namespace msgorder::sim_detail
