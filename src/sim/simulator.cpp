#include "src/sim/simulator.hpp"

#include <cassert>
#include <queue>
#include <vector>

namespace msgorder {

namespace {

struct QueueEntry {
  enum class Kind { kInvoke, kArrival, kTimer };

  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-break for determinism
  Kind kind = Kind::kArrival;
  Packet packet;           // kArrival
  Message invoke_message;  // kInvoke
  ProcessId timer_process = 0;  // kTimer
  std::uint64_t timer_cookie = 0;

  bool operator>(const QueueEntry& other) const {
    return std::tie(time, seq) > std::tie(other.time, other.seq);
  }
};

class Engine;

class HostImpl final : public Host {
 public:
  HostImpl(Engine* engine, ProcessId self) : engine_(engine), self_(self) {}

  void send_packet(Packet packet) override;
  void deliver(MessageId msg) override;
  void set_timer(SimTime delay, std::uint64_t cookie) override;
  SimTime now() const override;
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override;
  const Message& message(MessageId msg) const override;
  void hold(MessageId msg, const HoldReason& reason) override;
  bool wants_hold_reasons() const override;

 private:
  Engine* engine_;
  ProcessId self_;
};

class Engine {
 public:
  Engine(const Workload& workload, const ProtocolFactory& factory,
         std::size_t n_processes, const SimOptions& options)
      : universe_(workload_universe(workload)),
        n_processes_(n_processes),
        options_(options),
        network_(options.network, Rng(options.seed)),
        loss_rng_(options.seed ^ 0xa5a5a5a5deadbeefULL),
        trace_(universe_, n_processes),
        send_seen_(universe_.size(), false),
        receive_seen_(universe_.size(), false),
        instruments_(options.observability != nullptr
                         ? &options.observability->instruments()
                         : nullptr),
        tracer_(options.observability != nullptr
                    ? options.observability->tracer()
                    : nullptr) {
    if (options_.observability != nullptr) {
      // Sizes a fresh attribution table for this run; the flight
      // recorder (if any) persists across runs by design.
      options_.observability->begin_run(universe_.size());
      attribution_ = options_.observability->attribution();
      recorder_ = options_.observability->flight_recorder();
    }
    hosts_.reserve(n_processes);
    protocols_.reserve(n_processes);
    for (ProcessId p = 0; p < n_processes; ++p) {
      hosts_.push_back(std::make_unique<HostImpl>(this, p));
      protocols_.push_back(factory(*hosts_[p]));
    }
    for (const InvokeRequest& req : workload) {
      QueueEntry entry;
      entry.time = req.time;
      entry.seq = next_seq_++;
      entry.kind = QueueEntry::Kind::kInvoke;
      entry.invoke_message = req.message;
      queue_.push(std::move(entry));
      ++invokes_remaining_;
    }
  }

  SimResult run() {
    std::size_t processed = 0;
    while (!queue_.empty()) {
      if (invokes_remaining_ == 0 && trace_.all_delivered()) break;
      if (++processed > options_.max_events) {
        if (recorder_ != nullptr) {
          recorder_->note("invariant: event cap exceeded (protocol livelock?)",
                          now_);
        }
        SimResult result{std::move(trace_), false,
                         "event cap exceeded (protocol livelock?)"};
        return result;
      }
      const QueueEntry entry = queue_.top();
      queue_.pop();
      now_ = entry.time;
      switch (entry.kind) {
        case QueueEntry::Kind::kInvoke: {
          --invokes_remaining_;
          const Message& m = entry.invoke_message;
          record(m.src, {m.id, EventKind::kInvoke});
          protocols_[m.src]->on_invoke(m);
          break;
        }
        case QueueEntry::Kind::kArrival: {
          const Packet& pkt = entry.packet;
          if (pkt.is_control) {
            trace_.count_control_packet(pkt.tag_bytes);
            if (instruments_ != nullptr) {
              instruments_->control_packets->inc();
              instruments_->control_bytes->inc(pkt.tag_bytes);
            }
          } else if (!receive_seen_[pkt.user_msg]) {
            receive_seen_[pkt.user_msg] = true;
            trace_.count_user_packet(pkt.tag_bytes);
            if (instruments_ != nullptr) {
              instruments_->user_packets->inc();
              instruments_->tag_bytes->inc(pkt.tag_bytes);
            }
            record(pkt.dst, {pkt.user_msg, EventKind::kReceive});
          } else {
            trace_.count_duplicate_arrival();
            if (instruments_ != nullptr) {
              instruments_->duplicate_arrivals->inc();
            }
          }
          protocols_[pkt.dst]->on_packet(pkt);
          break;
        }
        case QueueEntry::Kind::kTimer:
          if (instruments_ != nullptr) instruments_->timer_fires->inc();
          protocols_[entry.timer_process]->on_timer(entry.timer_cookie);
          break;
      }
    }
    const bool done = trace_.all_delivered();
    if (!done && recorder_ != nullptr) {
      recorder_->note("invariant: undelivered messages remain", now_);
    }
    SimResult result{std::move(trace_), done,
                     done ? "" : "undelivered messages remain"};
    return result;
  }

  void send_packet(ProcessId from, Packet packet) {
    packet.src = from;
    assert(packet.dst < n_processes_);
    if (!packet.is_control) {
      assert(universe_[packet.user_msg].src == from &&
             "user packet emitted by the wrong process");
      // The send event x.s happens on the first emission; later
      // emissions of the same user message are retransmissions.
      if (!send_seen_[packet.user_msg]) {
        send_seen_[packet.user_msg] = true;
        record(from, {packet.user_msg, EventKind::kSend});
      } else {
        trace_.count_retransmission();
        if (instruments_ != nullptr) instruments_->retransmissions->inc();
      }
    }
    if (options_.network.loss_probability > 0 &&
        loss_rng_.chance(options_.network.loss_probability)) {
      trace_.count_drop();
      if (instruments_ != nullptr) instruments_->drops->inc();
      return;
    }
    QueueEntry entry;
    entry.time = network_.arrival_time(from, packet.dst, now_);
    entry.seq = next_seq_++;
    entry.kind = QueueEntry::Kind::kArrival;
    entry.packet = std::move(packet);
    queue_.push(std::move(entry));
  }

  void set_timer(ProcessId at, SimTime delay, std::uint64_t cookie) {
    QueueEntry entry;
    entry.time = now_ + delay;
    entry.seq = next_seq_++;
    entry.kind = QueueEntry::Kind::kTimer;
    entry.timer_process = at;
    entry.timer_cookie = cookie;
    queue_.push(std::move(entry));
  }

  void deliver(ProcessId at, MessageId msg) {
    assert(universe_[msg].dst == at && "delivery at the wrong process");
    record(at, {msg, EventKind::kDeliver});
  }

  void record(ProcessId at, SystemEvent e) {
    trace_.record(at, e, now_);
    if (instruments_ != nullptr) update_instruments(e);
    if (tracer_ != nullptr) tracer_->on_event(at, e, now_);
    if (recorder_ != nullptr) recorder_->on_event(at, e, now_);
    if (attribution_ != nullptr) {
      // The inhibited event executing closes its open hold segment, so
      // per-reason segment times sum exactly to the recorded delay.
      if (e.kind == EventKind::kSend) {
        publish_closed(attribution_->on_release(e.msg, HoldPhase::kSend, now_));
      } else if (e.kind == EventKind::kDeliver) {
        publish_closed(
            attribution_->on_release(e.msg, HoldPhase::kDelivery, now_));
      }
    }
    options_.observers.notify(at, e, now_);
  }

  /// Host::hold entry point: a protocol (re-)reported why `msg` is
  /// currently inhibited at `at`.  Phase is inferred from the message's
  /// lifecycle position: once x.r* was recorded the only inhibitable
  /// transition left is the delivery.
  void hold(ProcessId at, MessageId msg, const HoldReason& reason) {
    if (attribution_ == nullptr) return;
    const HoldPhase phase =
        receive_seen_[msg] ? HoldPhase::kDelivery : HoldPhase::kSend;
    publish_closed(attribution_->on_hold(msg, at, phase, reason, now_));
  }

  bool wants_hold_reasons() const { return attribution_ != nullptr; }

  /// Fan a freshly closed attribution segment out to the per-reason
  /// histograms, the tracer, and the flight recorder.
  void publish_closed(const HoldSegment* seg) {
    if (seg == nullptr) return;
    if (instruments_ != nullptr) {
      instruments_->hold_segments->inc();
      const auto k = static_cast<std::size_t>(seg->reason.kind);
      if (instruments_->hold_time[k] != nullptr) {
        instruments_->hold_time[k]->record(seg->duration());
      }
    }
    if (tracer_ != nullptr) tracer_->on_hold_segment(*seg);
    if (recorder_ != nullptr) recorder_->on_hold_segment(*seg);
  }

  /// Per-event metric updates; only reached with observability attached.
  void update_instruments(SystemEvent e) {
    instruments_->events->inc();
    switch (e.kind) {
      case EventKind::kReceive:
        instruments_->buffered_depth->add(1);
        break;
      case EventKind::kDeliver: {
        instruments_->buffered_depth->add(-1);
        const MessageTimes& mt = trace_.times(e.msg);
        // The full lifecycle exists once x.r is recorded (guard anyway:
        // a misbehaving protocol must not turn metrics into UB).
        if (mt.invoke && mt.send && mt.receive) {
          instruments_->latency->record(mt.latency());
          instruments_->send_delay->record(mt.send_delay());
          instruments_->delivery_delay->record(mt.delivery_delay());
        }
        break;
      }
      default:
        break;
    }
  }

  SimTime now() const { return now_; }
  std::size_t process_count() const { return n_processes_; }
  const Message& message(MessageId msg) const { return universe_[msg]; }

 private:
  std::vector<Message> universe_;
  std::size_t n_processes_;
  SimOptions options_;
  Network network_;
  Rng loss_rng_;
  Trace trace_;
  std::vector<bool> send_seen_;
  std::vector<bool> receive_seen_;
  std::vector<std::unique_ptr<HostImpl>> hosts_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t invokes_remaining_ = 0;
  SimTime now_ = 0;
  /// Cached observability hooks (nullptr = disabled, the fast path).
  SimInstruments* instruments_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  DelayAttribution* attribution_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
};

void HostImpl::send_packet(Packet packet) {
  engine_->send_packet(self_, std::move(packet));
}
void HostImpl::deliver(MessageId msg) { engine_->deliver(self_, msg); }
void HostImpl::set_timer(SimTime delay, std::uint64_t cookie) {
  engine_->set_timer(self_, delay, cookie);
}
SimTime HostImpl::now() const { return engine_->now(); }
std::size_t HostImpl::process_count() const {
  return engine_->process_count();
}
const Message& HostImpl::message(MessageId msg) const {
  return engine_->message(msg);
}
void HostImpl::hold(MessageId msg, const HoldReason& reason) {
  engine_->hold(self_, msg, reason);
}
bool HostImpl::wants_hold_reasons() const {
  return engine_->wants_hold_reasons();
}

}  // namespace

SimResult simulate(const Workload& workload, const ProtocolFactory& factory,
                   std::size_t n_processes, const SimOptions& options) {
  Engine engine(workload, factory, n_processes, options);
  return engine.run();
}

}  // namespace msgorder
