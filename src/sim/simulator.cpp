#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <thread>
#include <vector>

#include "src/sim/engine_detail.hpp"
#include "src/sim/sharded.hpp"

namespace msgorder {

namespace {

using sim_detail::EntryKind;
using sim_detail::make_tiebreak;
using sim_detail::ObsSink;

struct QueueEntry {
  SimTime time = 0;
  /// Deterministic total-order key (see engine_detail.hpp): identical
  /// across the sequential and sharded engines, which is what makes the
  /// two traces bit-identical.
  std::uint64_t tiebreak = 0;
  EntryKind kind = EntryKind::kArrival;
  Packet packet;                // kArrival
  Message invoke_message;       // kInvoke
  ProcessId timer_process = 0;  // kTimer
  std::uint64_t timer_cookie = 0;

  bool operator>(const QueueEntry& other) const {
    return std::tie(time, tiebreak) > std::tie(other.time, other.tiebreak);
  }
};

class Engine;

class HostImpl final : public Host {
 public:
  HostImpl(Engine* engine, ProcessId self) : engine_(engine), self_(self) {}

  void send_packet(Packet packet) override;
  void deliver(MessageId msg) override;
  void set_timer(SimTime delay, std::uint64_t cookie) override;
  SimTime now() const override;
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override;
  const Message& message(MessageId msg) const override;
  void hold(MessageId msg, const HoldReason& reason) override;
  bool wants_hold_reasons() const override;

 private:
  Engine* engine_;
  ProcessId self_;
};

class Engine {
 public:
  Engine(const Workload& workload, const ProtocolFactory& factory,
         std::size_t n_processes, const SimOptions& options)
      : universe_(workload_universe(workload)),
        n_processes_(n_processes),
        options_(options),
        network_(options.network, options.seed, n_processes),
        trace_(universe_, n_processes),
        send_seen_(universe_.size(), 0),
        receive_seen_(universe_.size(), 0),
        emit_counter_(n_processes, 0),
        timer_counter_(n_processes, 0),
        sink_(options.observability, &options_.observers, &trace_,
              universe_.size()) {
    if (options_.network.loss_probability > 0) {
      loss_rngs_.reserve(n_processes);
      for (ProcessId p = 0; p < n_processes; ++p) {
        loss_rngs_.push_back(
            sim_detail::per_process_loss_rng(options_.seed, p));
      }
    }
    hosts_.reserve(n_processes);
    protocols_.reserve(n_processes);
    for (ProcessId p = 0; p < n_processes; ++p) {
      hosts_.push_back(std::make_unique<HostImpl>(this, p));
      protocols_.push_back(factory(*hosts_[p]));
    }
    for (std::size_t i = 0; i < workload.size(); ++i) {
      const InvokeRequest& req = workload[i];
      QueueEntry entry;
      entry.time = req.time;
      entry.tiebreak = make_tiebreak(EntryKind::kInvoke, req.message.src, i);
      entry.kind = EntryKind::kInvoke;
      entry.invoke_message = req.message;
      queue_.push(std::move(entry));
      ++invokes_remaining_;
    }
  }

  SimResult run() {
    // Completion and the event cap are checked at conservative window
    // boundaries (window = lookahead ahead of the earliest pending
    // entry), exactly like the sharded engine, so both engines stop
    // after the same event set.  A non-positive lookahead degenerates
    // to per-event checks (windows of one event).
    const SimTime lookahead = Network::lookahead(options_.network);
    profile_ = sink_.profile();
    if (profile_ != nullptr) {
      profile_->begin_run("sequential", 1, 1, lookahead,
                          sink_.profile_sampling());
      prof_ = &profile_->shard(0);
    }
    sink_.open_tracelog("sequential", 1, 1, lookahead, options_.seed,
                        n_processes_);
    std::size_t processed = 0;
    while (!queue_.empty()) {
      if (invokes_remaining_ == 0 && trace_.all_delivered()) break;
      const SimTime window_start = queue_.top().time;
      const SimTime window_end = window_start + lookahead;
      const std::size_t before = processed;
      do {
        if (++processed > options_.max_events) return cap_exceeded();
        step();
      } while (lookahead > 0 && !queue_.empty() &&
               queue_.top().time < window_end);
      if (prof_ != nullptr) {
        // Sequential windows always make progress, so the stall
        // counters stay zero by construction.
        const auto n = static_cast<std::uint64_t>(processed - before);
        ++prof_->windows;
        ++prof_->busy_windows;
        prof_->entries += n;
        if (n > prof_->max_entries_in_window) {
          prof_->max_entries_in_window = n;
        }
        profile_->on_window(window_start);
        if (profile_->sampling()) {
          profile_->sample(0, window_end, n, queue_.size());
        }
      }
    }
    sink_.publish_profile();
    const bool done = trace_.all_delivered();
    if (!done) {
      sink_.note("invariant: undelivered messages remain", now_);
    }
    sink_.finish_tracelog();
    SimResult result{std::move(trace_), done,
                     done ? "" : "undelivered messages remain"};
    return result;
  }

  void send_packet(ProcessId from, Packet packet) {
    packet.src = from;
    assert(packet.dst < n_processes_);
    assert((packet.is_control ||
            universe_[packet.user_msg].src == from) &&
           "user packet emitted by the wrong process");
    switch (sim_detail::classify_send(packet, send_seen_)) {
      case sim_detail::SendClass::kControl:
        break;
      case sim_detail::SendClass::kFirstSend:
        record(from, {packet.user_msg, EventKind::kSend});
        break;
      case sim_detail::SendClass::kRetransmission:
        trace_.count_retransmission();
        sink_.count_retransmission();
        break;
    }
    const std::uint64_t tiebreak =
        make_tiebreak(EntryKind::kArrival, from, emit_counter_[from]++);
    if (options_.network.loss_probability > 0 &&
        loss_rngs_[from].chance(options_.network.loss_probability)) {
      trace_.count_drop();
      sink_.count_drop();
      return;
    }
    QueueEntry entry;
    entry.time = network_.arrival_time(from, packet.dst, now_);
    entry.tiebreak = tiebreak;
    entry.kind = EntryKind::kArrival;
    entry.packet = std::move(packet);
    queue_.push(std::move(entry));
    note_heap_depth();
  }

  void set_timer(ProcessId at, SimTime delay, std::uint64_t cookie) {
    QueueEntry entry;
    entry.time = now_ + delay;
    entry.tiebreak =
        make_tiebreak(EntryKind::kTimer, at, timer_counter_[at]++);
    entry.kind = EntryKind::kTimer;
    entry.timer_process = at;
    entry.timer_cookie = cookie;
    queue_.push(std::move(entry));
    note_heap_depth();
  }

  void deliver(ProcessId at, MessageId msg) {
    assert(universe_[msg].dst == at && "delivery at the wrong process");
    record(at, {msg, EventKind::kDeliver});
  }

  void record(ProcessId at, SystemEvent e) {
    trace_.record(at, e, now_);
    if (prof_ != nullptr) ++prof_->events;
    sink_.record(at, e, now_, cur_tiebreak_, /*merge_only=*/false);
  }

  /// Host::hold entry point: a protocol (re-)reported why `msg` is
  /// currently inhibited at `at`.
  void hold(ProcessId at, MessageId msg, const HoldReason& reason) {
    sink_.hold(at, msg, reason, receive_seen_[msg] != 0, now_,
               cur_tiebreak_);
  }

  bool wants_hold_reasons() const {
    return sink_.attribution_active() || sink_.tracelog_active();
  }

  SimTime now() const { return now_; }
  std::size_t process_count() const { return n_processes_; }
  const Message& message(MessageId msg) const { return universe_[msg]; }

 private:
  void note_heap_depth() {
    if (prof_ != nullptr && queue_.size() > prof_->heap_depth_hwm) {
      prof_->heap_depth_hwm = queue_.size();
    }
  }

  /// Pop and handle the earliest entry.
  void step() {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    cur_tiebreak_ = entry.tiebreak;
    switch (entry.kind) {
      case EntryKind::kInvoke: {
        --invokes_remaining_;
        const Message& m = entry.invoke_message;
        record(m.src, {m.id, EventKind::kInvoke});
        protocols_[m.src]->on_invoke(m);
        break;
      }
      case EntryKind::kArrival: {
        const Packet& pkt = entry.packet;
        sim_detail::apply_arrival(*protocols_[pkt.dst], pkt, receive_seen_,
                      [&](sim_detail::ArrivalClass cls) {
                        switch (cls) {
                          case sim_detail::ArrivalClass::kControl:
                            trace_.count_control_packet(pkt.tag_bytes);
                            sink_.count_control_packet(pkt.tag_bytes);
                            break;
                          case sim_detail::ArrivalClass::kFirstUser:
                            trace_.count_user_packet(pkt.tag_bytes);
                            sink_.count_user_packet(pkt.tag_bytes);
                            record(pkt.dst,
                                   {pkt.user_msg, EventKind::kReceive});
                            break;
                          case sim_detail::ArrivalClass::kDuplicate:
                            trace_.count_duplicate_arrival();
                            sink_.count_duplicate_arrival();
                            break;
                        }
                      });
        break;
      }
      case EntryKind::kTimer:
        sink_.count_timer_fire();
        protocols_[entry.timer_process]->on_timer(entry.timer_cookie);
        break;
    }
  }

  SimResult cap_exceeded() {
    const std::string message =
        "event cap exceeded in shard 0 of 1 (protocol livelock?)";
    sink_.note("invariant: " + message, now_);
    sink_.finish_tracelog();
    SimResult result{std::move(trace_), false, message};
    return result;
  }

  std::vector<Message> universe_;
  std::size_t n_processes_;
  SimOptions options_;
  Network network_;
  Trace trace_;
  /// Plain bytes, not vector<bool>: the sharded engine indexes the same
  /// layout concurrently from different shards (distinct messages ->
  /// distinct bytes; bit-packing would race).
  std::vector<std::uint8_t> send_seen_;
  std::vector<std::uint8_t> receive_seen_;
  std::vector<std::uint64_t> emit_counter_;
  std::vector<std::uint64_t> timer_counter_;
  std::vector<Rng> loss_rngs_;
  std::vector<std::unique_ptr<HostImpl>> hosts_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::size_t invokes_remaining_ = 0;
  SimTime now_ = 0;
  /// Key of the queue entry currently being handled; every event / hold
  /// this entry produces is logged under it (matches the sharded
  /// engine's ObsItem::entry_tiebreak).
  std::uint64_t cur_tiebreak_ = 0;
  ObsSink sink_;
  /// Engine profiler (ObservabilityOptions::profiling); row 0 is the
  /// whole engine — the sequential engine is one "shard".
  SimProfile* profile_ = nullptr;
  ShardProfileRow* prof_ = nullptr;
};

void HostImpl::send_packet(Packet packet) {
  engine_->send_packet(self_, std::move(packet));
}
void HostImpl::deliver(MessageId msg) { engine_->deliver(self_, msg); }
void HostImpl::set_timer(SimTime delay, std::uint64_t cookie) {
  engine_->set_timer(self_, delay, cookie);
}
SimTime HostImpl::now() const { return engine_->now(); }
std::size_t HostImpl::process_count() const {
  return engine_->process_count();
}
const Message& HostImpl::message(MessageId msg) const {
  return engine_->message(msg);
}
void HostImpl::hold(MessageId msg, const HoldReason& reason) {
  engine_->hold(self_, msg, reason);
}
bool HostImpl::wants_hold_reasons() const {
  return engine_->wants_hold_reasons();
}

/// Resolve SimOptions::shards to the engine actually run: clamp to the
/// process count, auto-detect on 0, and fall back to sequential when
/// the conservative lookahead is non-positive (zero base delay would
/// allow same-window cross-shard arrivals).
std::size_t resolve_shards(const SimOptions& options,
                           std::size_t n_processes) {
  std::size_t shards = options.shards;
  if (shards == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    shards = hw == 0 ? 1 : hw;
  }
  shards = std::min(shards, n_processes == 0 ? std::size_t{1} : n_processes);
  if (Network::lookahead(options.network) <= 0) shards = 1;
  return std::max<std::size_t>(shards, 1);
}

}  // namespace

SimResult simulate(const Workload& workload, const ProtocolFactory& factory,
                   std::size_t n_processes, const SimOptions& options) {
  const std::size_t shards = resolve_shards(options, n_processes);
  if (shards > 1) {
    std::size_t workers = options.shard_workers;
    if (workers == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      workers = hw == 0 ? 1 : hw;
    }
    workers = std::min(workers, shards);
    return simulate_sharded(workload, factory, n_processes, options, shards,
                            workers);
  }
  Engine engine(workload, factory, n_processes, options);
  SimResult result = engine.run();
  result.shards_used = 1;
  result.workers_used = 1;
  return result;
}

}  // namespace msgorder
