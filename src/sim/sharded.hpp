// The sharded run-to-completion engine (ISSUE 6 tentpole).  Internal to
// the simulator: callers go through simulate(), which dispatches here
// when SimOptions::shards resolves to 2 or more (and the conservative
// lookahead is positive).
//
// Design in one paragraph: processes are partitioned round-robin over N
// shards (p belongs to shard p mod N), each shard owning its processes'
// protocol instances, event heap, packet slab, and per-channel network
// state.  Time advances in conservative windows [m, m + L) where m is
// the earliest pending entry across shards and L is the lookahead
// (minimum channel delay): every cross-shard packet sent inside a
// window arrives at or after its end, so shards process a window with
// no communication at all, then exchange packets through bounded SPSC
// rings at a barrier and agree on the next window.  Scheduling uses the
// deterministic (time, tiebreak) key of engine_detail.hpp, so the
// merged execution — and therefore SimResult.trace — is bit-identical
// to the sequential engine for the same seed, at any shard count.
#pragma once

#include <cstddef>

#include "src/sim/simulator.hpp"

namespace msgorder {

/// Run `workload` on `n_shards` shards driven by `n_workers` threads
/// (n_workers <= n_shards; one worker runs its shards cooperatively).
/// Requires n_shards >= 2 and Network::lookahead(options.network) > 0 —
/// simulate() guarantees both.
SimResult simulate_sharded(const Workload& workload,
                           const ProtocolFactory& factory,
                           std::size_t n_processes,
                           const SimOptions& options, std::size_t n_shards,
                           std::size_t n_workers);

}  // namespace msgorder
