#include "src/sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace msgorder {

namespace {

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t Network::channel_seed(std::uint64_t seed, ProcessId src,
                                    ProcessId dst) {
  std::uint64_t z = seed ^ 0x6a09e667f3bcc909ULL;
  z = mix64(z + (static_cast<std::uint64_t>(src) << 32) + dst);
  return mix64(z);
}

Network::Network(NetworkOptions options, std::uint64_t seed,
                 std::size_t n_processes, std::size_t shard,
                 std::size_t n_shards)
    : options_(options),
      seed_(seed),
      n_processes_(n_processes),
      n_shards_(n_shards == 0 ? 1 : n_shards) {
  // Dense rows for the owned sources: src -> src / n_shards.
  const std::size_t rows =
      n_processes_ > shard ? (n_processes_ - shard + n_shards_ - 1) / n_shards_
                           : 0;
  channels_.resize(rows * n_processes_);
}

Network::Channel& Network::channel(ProcessId src, ProcessId dst) {
  const std::size_t row = src / n_shards_;
  const std::size_t index = row * n_processes_ + dst;
  assert(index < channels_.size());
  Channel& ch = channels_[index];
  if (!ch.seeded) {
    std::uint64_t stream = channel_seed(seed_, src, dst);
    // Applied at seeding time so channel_seed stays the pure function
    // replay tooling derives stream ids from.
    if (options_.perturb_channel_xor != 0 && src == options_.perturb_src &&
        dst == options_.perturb_dst) {
      stream ^= options_.perturb_channel_xor;
    }
    ch.rng = Rng(stream);
    ch.seeded = true;
  }
  return ch;
}

SimTime Network::arrival_time(ProcessId src, ProcessId dst, SimTime now) {
  Channel& ch = channel(src, dst);
  SimTime delay = options_.base_delay;
  if (options_.jitter_mean > 0) {
    delay += ch.rng.exponential(options_.jitter_mean);
  }
  SimTime arrival = now + delay;
  if (options_.fifo_channels) {
    arrival = std::max(arrival, ch.last_arrival + 1e-9);
    ch.last_arrival = arrival;
  }
  return arrival;
}

}  // namespace msgorder
