#include "src/sim/network.hpp"

#include <algorithm>

namespace msgorder {

SimTime Network::arrival_time(ProcessId src, ProcessId dst, SimTime now) {
  SimTime delay = options_.base_delay;
  if (options_.jitter_mean > 0) {
    delay += rng_.exponential(options_.jitter_mean);
  }
  SimTime arrival = now + delay;
  if (options_.fifo_channels) {
    auto& last = last_arrival_[{src, dst}];
    arrival = std::max(arrival, last + 1e-9);
    last = arrival;
  }
  return arrival;
}

}  // namespace msgorder
