#include "src/sim/trace.hpp"

namespace msgorder {

void Trace::record(ProcessId p, SystemEvent e, SimTime t) {
  record_shard_local(p, e, t);
  if (e.kind == EventKind::kInvoke) {
    ++invoked_;
  } else if (e.kind == EventKind::kDeliver) {
    ++delivered_;
  }
}

void Trace::record_shard_local(ProcessId p, SystemEvent e, SimTime t) {
  logs_[p].push_back({e, t});
  MessageTimes& mt = times_[e.msg];
  switch (e.kind) {
    case EventKind::kInvoke:
      mt.invoke = t;
      break;
    case EventKind::kSend:
      mt.send = t;
      break;
    case EventKind::kReceive:
      mt.receive = t;
      break;
    case EventKind::kDeliver:
      mt.deliver = t;
      break;
  }
}

void Trace::add_counts(const TraceCounts& counts) {
  invoked_ += counts.invoked;
  delivered_ += counts.delivered;
  control_packets_ += counts.control_packets;
  user_packets_ += counts.user_packets;
  control_bytes_ += counts.control_bytes;
  tag_bytes_ += counts.tag_bytes;
  drops_ += counts.drops;
  retransmissions_ += counts.retransmissions;
  duplicate_arrivals_ += counts.duplicate_arrivals;
}

void Trace::count_control_packet(std::size_t bytes) {
  ++control_packets_;
  control_bytes_ += bytes;
}

void Trace::count_user_packet(std::size_t tag_bytes) {
  ++user_packets_;
  tag_bytes_ += tag_bytes;
}

double Trace::control_packets_per_message() const {
  if (user_packets_ == 0) return 0;
  return static_cast<double>(control_packets_) /
         static_cast<double>(user_packets_);
}

double Trace::mean_tag_bytes() const {
  if (user_packets_ == 0) return 0;
  return static_cast<double>(tag_bytes_) /
         static_cast<double>(user_packets_);
}

double Trace::mean_latency() const {
  double total = 0;
  std::size_t count = 0;
  for (const MessageTimes& mt : times_) {
    if (mt.complete()) {
      total += mt.latency();
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0;
}

double Trace::mean_delivery_delay() const {
  double total = 0;
  std::size_t count = 0;
  for (const MessageTimes& mt : times_) {
    if (mt.complete()) {
      total += mt.delivery_delay();
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0;
}

double Trace::max_latency() const {
  double worst = 0;
  for (const MessageTimes& mt : times_) {
    if (mt.complete() && mt.latency() > worst) worst = mt.latency();
  }
  return worst;
}

std::optional<SystemRun> Trace::to_system_run(std::string* error) const {
  std::vector<std::vector<SystemEvent>> sequences(logs_.size());
  for (std::size_t p = 0; p < logs_.size(); ++p) {
    sequences[p].reserve(logs_[p].size());
    for (const TimedEvent& te : logs_[p]) {
      sequences[p].push_back(te.event);
    }
  }
  return SystemRun::from_sequences(universe_, std::move(sequences), error);
}

std::optional<UserRun> Trace::to_user_run(std::string* error) const {
  const auto system = to_system_run(error);
  if (!system.has_value()) return std::nullopt;
  auto user = system->users_view();
  if (!user.has_value() && error != nullptr) {
    *error = "trace is not user-complete (some message not delivered)";
  }
  return user;
}

}  // namespace msgorder
