// Network model: point-to-point channels with configurable latency.  By
// default channels are *not* FIFO (each packet draws an independent
// delay, so packets overtake each other), which is the weakest substrate
// the paper's protocols must survive on.  A FIFO toggle exists for
// ablations.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "src/protocols/protocol.hpp"
#include "src/util/rng.hpp"

namespace msgorder {

struct NetworkOptions {
  /// Fixed propagation delay added to every packet.
  SimTime base_delay = 1.0;
  /// Mean of the additional exponential jitter (0 disables jitter and
  /// makes channels effectively FIFO).
  SimTime jitter_mean = 1.0;
  /// Force per-channel FIFO arrival order even with jitter.
  bool fifo_channels = false;
  /// Probability that a packet is silently dropped (failure injection;
  /// pair with the reliability layer of src/protocols/reliable.hpp).
  double loss_probability = 0.0;
};

class Network {
 public:
  Network() = default;
  Network(NetworkOptions options, Rng rng)
      : options_(options), rng_(rng) {}

  /// Arrival time for a packet handed to the network at `now`.
  SimTime arrival_time(ProcessId src, ProcessId dst, SimTime now);

  const NetworkOptions& options() const { return options_; }

 private:
  NetworkOptions options_;
  Rng rng_;
  /// Last scheduled arrival per channel, for the FIFO toggle.
  std::map<std::pair<ProcessId, ProcessId>, SimTime> last_arrival_;
};

}  // namespace msgorder
