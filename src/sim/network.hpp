// Network model: point-to-point channels with configurable latency.  By
// default channels are *not* FIFO (each packet draws an independent
// delay, so packets overtake each other), which is the weakest substrate
// the paper's protocols must survive on.  A FIFO toggle exists for
// ablations.
//
// Delay randomness is drawn from per-channel SplitMix64 streams seeded
// by (run seed, src, dst), so the delay sequence a channel sees depends
// only on its own emission order — never on how emissions from other
// channels interleave globally.  That is what lets the sharded engine
// (ISSUE 6) reproduce the sequential engine's arrival times bit for bit:
// each shard owns the channel state of its source processes and replays
// exactly the per-channel draw order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/protocols/protocol.hpp"
#include "src/util/rng.hpp"

namespace msgorder {

struct NetworkOptions {
  /// Fixed propagation delay added to every packet.
  SimTime base_delay = 1.0;
  /// Mean of the additional exponential jitter (0 disables jitter and
  /// makes channels effectively FIFO).
  SimTime jitter_mean = 1.0;
  /// Force per-channel FIFO arrival order even with jitter.
  bool fifo_channels = false;
  /// Probability that a packet is silently dropped (failure injection;
  /// pair with the reliability layer of src/protocols/reliable.hpp).
  double loss_probability = 0.0;
  /// Fault injection for divergence forensics (ISSUE 9): XOR this into
  /// the stream seed of the single channel perturb_src -> perturb_dst,
  /// swapping its jitter sequence while leaving every other channel —
  /// and the deterministic tiebreak order — untouched.  0 disables.
  /// `msgorder_query diverge` on a perturbed vs baseline tracelog then
  /// names the exact first event the swap moved.
  std::uint64_t perturb_channel_xor = 0;
  ProcessId perturb_src = 0;
  ProcessId perturb_dst = 0;
};

class Network {
 public:
  Network() = default;

  /// Channel state for the source processes owned by `shard` of
  /// `n_shards` (process p is owned iff p % n_shards == shard).  The
  /// delay stream of a channel depends only on (seed, src, dst), so any
  /// partition of the sources draws identical per-channel sequences.
  /// The sequential engine uses the default single-shard view.
  Network(NetworkOptions options, std::uint64_t seed,
          std::size_t n_processes, std::size_t shard = 0,
          std::size_t n_shards = 1);

  /// Arrival time for a packet handed to the network at `now`.  `src`
  /// must be a process owned by this shard view.
  SimTime arrival_time(ProcessId src, ProcessId dst, SimTime now);

  const NetworkOptions& options() const { return options_; }

  /// Conservative lookahead: a lower bound on every channel delay
  /// (jitter is nonnegative, so the base delay is exact).  The sharded
  /// engine's synchronization windows are derived from this; a
  /// non-positive lookahead forces the sequential fallback.
  static SimTime lookahead(const NetworkOptions& options) {
    return options.base_delay;
  }

  /// Deterministic per-channel stream seed (SplitMix64-mixed).
  static std::uint64_t channel_seed(std::uint64_t seed, ProcessId src,
                                    ProcessId dst);

 private:
  struct Channel {
    Rng rng{0};
    /// Last scheduled arrival, for the FIFO toggle.
    SimTime last_arrival = 0;
    bool seeded = false;
  };

  Channel& channel(ProcessId src, ProcessId dst);

  NetworkOptions options_;
  std::uint64_t seed_ = 0;
  std::size_t n_processes_ = 0;
  std::size_t n_shards_ = 1;
  /// [src / n_shards][dst], lazily seeded on first use.
  std::vector<Channel> channels_;
};

}  // namespace msgorder
