#include "src/sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <chrono>
#include <limits>
#include <memory>
#include <queue>
#include <thread>
#include <tuple>
#include <vector>

#include "src/sim/engine_detail.hpp"
#include "src/util/spsc_ring.hpp"

namespace msgorder {

namespace {

using sim_detail::EngineCounters;
using sim_detail::EntryKind;
using sim_detail::make_tiebreak;
using sim_detail::ObsItem;
using sim_detail::ObsSink;
using sim_detail::tiebreak_kind;
using sim_detail::tiebreak_owner;

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/// A pending arrival or timer.  24 bytes of POD — the whole point of
/// the shard-local redesign: the heap stays tiny (invokes live in a
/// sorted cursor, packets in a slab) and pops never copy fat entries.
struct HeapItem {
  SimTime time = 0;
  std::uint64_t tiebreak = 0;
  /// Arrival: packet slab slot.  Timer: the cookie (the owning process
  /// is recoverable from the tiebreak).
  std::uint64_t payload = 0;
};

struct HeapItemGreater {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return std::tie(a.time, a.tiebreak) > std::tie(b.time, b.tiebreak);
  }
};

/// A pre-sorted invoke, consumed through a cursor instead of the heap.
struct PendingInvoke {
  SimTime time = 0;
  std::uint64_t tiebreak = 0;
  Message message;
};

/// A packet crossing shards: arrival time, deterministic key, payload.
struct CrossMsg {
  SimTime time = 0;
  std::uint64_t tiebreak = 0;
  Packet packet;
};

/// Per-shard state published at each window barrier, read by the
/// single-threaded reduction.  Padded: each shard writes only its own.
struct alignas(64) ShardSlot {
  SimTime local_min = kInf;
  std::size_t processed = 0;
  std::size_t invoked = 0;
  std::size_t delivered = 0;
  std::size_t invokes_left = 0;
};

class ShardedEngine;
class Shard;

class ShardHost final : public Host {
 public:
  ShardHost(Shard* shard, ProcessId self) : shard_(shard), self_(self) {}

  void send_packet(Packet packet) override;
  void deliver(MessageId msg) override;
  void set_timer(SimTime delay, std::uint64_t cookie) override;
  SimTime now() const override;
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override;
  const Message& message(MessageId msg) const override;
  void hold(MessageId msg, const HoldReason& reason) override;
  bool wants_hold_reasons() const override;

 private:
  Shard* shard_;
  ProcessId self_;
};

/// One shard: the processes p with p % n_shards == id, their protocol
/// instances, event heap, packet slab, and channel state.  Everything
/// here is touched only by the worker thread driving the shard.
class Shard {
 public:
  Shard(ShardedEngine* engine, std::size_t id);

  void add_invoke(SimTime time, std::uint64_t tiebreak, const Message& m) {
    invokes_.push_back({time, tiebreak, m});
  }
  void seal_invokes() {
    std::sort(invokes_.begin(), invokes_.end(),
              [](const PendingInvoke& a, const PendingInvoke& b) {
                return std::tie(a.time, a.tiebreak) <
                       std::tie(b.time, b.tiebreak);
              });
  }

  /// Process every owned entry with time < window_end, in key order.
  /// With profiling attached, also does the per-window accounting
  /// (busy/stall classification, samples) around process_entries().
  void process_window(SimTime window_end);

  /// Admit packets parked in this shard's inbound rings and spill
  /// vectors (safe only at a barrier: producers are quiescent).
  void drain_inbox();

  /// Publish the reduction inputs for the next window computation.
  void publish_slot();

  void admit(CrossMsg&& msg) {
    heap_.push({msg.time, msg.tiebreak, alloc_slot(std::move(msg.packet))});
    note_heap_depth();
  }

  // Host services (forwarded by ShardHost).
  void send_packet(ProcessId from, Packet packet);
  void set_timer(ProcessId at, SimTime delay, std::uint64_t cookie);
  void deliver(ProcessId at, MessageId msg);
  void hold(ProcessId at, MessageId msg, const HoldReason& reason);
  bool wants_hold_reasons() const;
  std::size_t process_count() const;
  const Message& message(MessageId msg) const;
  SimTime now() const { return now_; }

  const EngineCounters& counts() const { return counts_; }
  std::size_t processed() const { return processed_; }
  SimTime now_max() const { return now_; }
  std::vector<ObsItem>& obs_items() { return obs_; }

 private:
  friend class ShardedEngine;

  std::size_t local_of(ProcessId p) const;
  void process_entries(SimTime window_end);
  void note_heap_depth() {
    if (prof_ != nullptr && heap_.size() > prof_->heap_depth_hwm) {
      prof_->heap_depth_hwm = heap_.size();
    }
  }
  std::uint64_t alloc_slot(Packet&& packet) {
    if (!free_slots_.empty()) {
      const std::uint64_t slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = std::move(packet);
      return slot;
    }
    slab_.push_back(std::move(packet));
    return slab_.size() - 1;
  }

  void handle_invoke();
  void handle_heap_top();
  void record(ProcessId at, SystemEvent e);
  void trip_cap();

  ShardedEngine* eng_;
  std::size_t id_;
  Network network_;
  std::vector<std::unique_ptr<ShardHost>> hosts_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<PendingInvoke> invokes_;
  std::size_t invoke_pos_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapItemGreater>
      heap_;
  std::vector<Packet> slab_;
  std::vector<std::uint64_t> free_slots_;
  std::vector<std::uint64_t> emit_counter_;   // by local process index
  std::vector<std::uint64_t> timer_counter_;  // by local process index
  std::vector<Rng> loss_rngs_;                // by local process index
  EngineCounters counts_;
  std::vector<ObsItem> obs_;
  SimTime now_ = 0;
  std::uint64_t cur_tiebreak_ = 0;
  std::size_t processed_ = 0;
  bool buffering_ = false;
  bool live_observers_ = false;
  /// Profiler row for this shard (nullptr when profiling is off); the
  /// only writer is the worker driving this shard.
  SimProfile* profile_ = nullptr;
  ShardProfileRow* prof_ = nullptr;
  /// A zero-progress window with nothing pending locally: resolved at
  /// the next drain into stall_backpressure (spilled packets arrived —
  /// the ring was the bottleneck) or stall_empty.
  bool pending_empty_stall_ = false;
};

class ShardedEngine {
 public:
  ShardedEngine(const Workload& workload, const ProtocolFactory& factory,
                std::size_t n_processes, const SimOptions& options,
                std::size_t n_shards, std::size_t n_workers)
      : universe_(workload_universe(workload)),
        n_processes_(n_processes),
        options_(options),
        n_shards_(n_shards),
        n_workers_(std::max<std::size_t>(1, std::min(n_workers, n_shards))),
        lookahead_(Network::lookahead(options.network)),
        trace_(universe_, n_processes),
        send_seen_(universe_.size(), 0),
        receive_seen_(universe_.size(), 0),
        sink_(options.observability, &options_.observers, &trace_,
              universe_.size()),
        slots_(n_shards),
        rings_(n_shards * n_shards),
        spills_(n_shards * n_shards) {
    assert(n_shards_ >= 2 && lookahead_ > 0);
    profile_ = sink_.profile();
    if (profile_ != nullptr) {
      profile_->begin_run("sharded", n_shards_, n_workers_, lookahead_,
                          sink_.profile_sampling());
    }
    sink_.open_tracelog("sharded", n_shards_, n_workers_, lookahead_,
                        options_.seed, n_processes_);
    const std::size_t ring_capacity =
        std::max<std::size_t>(2, options.cross_shard_ring_capacity);
    for (std::size_t a = 0; a < n_shards_; ++a) {
      for (std::size_t b = 0; b < n_shards_; ++b) {
        if (a != b) {
          rings_[a * n_shards_ + b] =
              std::make_unique<SpscRing<CrossMsg>>(ring_capacity);
        }
      }
    }
    shards_.reserve(n_shards_);
    for (std::size_t s = 0; s < n_shards_; ++s) {
      shards_.push_back(std::make_unique<Shard>(this, s));
    }
    // Protocol instances must exist before any invoke runs; the factory
    // runs on this thread for every shard (factories are not required
    // to be thread-safe).
    for (auto& shard : shards_) {
      for (std::size_t local = 0; local * n_shards_ + shard->id_ < n_processes_;
           ++local) {
        const auto p =
            static_cast<ProcessId>(local * n_shards_ + shard->id_);
        shard->hosts_.push_back(std::make_unique<ShardHost>(shard.get(), p));
        shard->protocols_.push_back(factory(*shard->hosts_.back()));
      }
    }
    for (std::size_t i = 0; i < workload.size(); ++i) {
      const InvokeRequest& req = workload[i];
      shards_[req.message.src % n_shards_]->add_invoke(
          req.time, make_tiebreak(EntryKind::kInvoke, req.message.src, i),
          req.message);
    }
    for (auto& shard : shards_) shard->seal_invokes();
  }

  SimResult run() {
    for (auto& shard : shards_) shard->publish_slot();
    reduce();
    if (!done_) {
      if (n_workers_ == 1) {
        run_cooperative();
      } else {
        run_threaded();
      }
    }
    return finalize();
  }

  // --- Shard-facing services -------------------------------------------

  void route(std::size_t from_shard, std::size_t to_shard, CrossMsg&& msg) {
    SpscRing<CrossMsg>& ring = *rings_[from_shard * n_shards_ + to_shard];
    if (!ring.try_push(std::move(msg))) {
      // Ring full: park in the producer-owned spill vector; the
      // consumer drains it at the next barrier, after the ring.  The
      // producer's row is safe to touch — route runs on its worker.
      if (profile_ != nullptr) ++profile_->shard(from_shard).ring_full_spins;
      spills_[from_shard * n_shards_ + to_shard].push_back(std::move(msg));
    }
  }

  const Message& message(MessageId msg) const { return universe_[msg]; }
  std::size_t process_count() const { return n_processes_; }

 private:
  friend class Shard;

  void run_cooperative() {
    while (!done_) {
      for (auto& shard : shards_) shard->process_window(window_end_);
      for (auto& shard : shards_) {
        shard->drain_inbox();
        shard->publish_slot();
      }
      reduce();
    }
  }

  void run_threaded() {
    std::barrier<> work_done(static_cast<std::ptrdiff_t>(n_workers_));
    auto on_reduce = [this]() noexcept { reduce(); };
    std::barrier<decltype(on_reduce)> window_agreed(
        static_cast<std::ptrdiff_t>(n_workers_), on_reduce);
    auto worker = [&](std::size_t w) {
      WorkerProfileRow* wrow =
          profile_ != nullptr ? &profile_->worker(w) : nullptr;
      const auto timed_wait = [wrow](auto& barrier) {
        if (wrow == nullptr) {
          barrier.arrive_and_wait();
          return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        barrier.arrive_and_wait();
        wrow->barrier_wait_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ++wrow->barrier_waits;
      };
      while (!done_) {
        for (std::size_t s = w; s < n_shards_; s += n_workers_) {
          shards_[s]->process_window(window_end_);
        }
        timed_wait(work_done);
        for (std::size_t s = w; s < n_shards_; s += n_workers_) {
          shards_[s]->drain_inbox();
          shards_[s]->publish_slot();
        }
        timed_wait(window_agreed);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_workers_ - 1);
    for (std::size_t w = 1; w < n_workers_; ++w) {
      threads.emplace_back(worker, w);
    }
    worker(0);
    for (std::thread& t : threads) t.join();
  }

  /// Window reduction: single-threaded (barrier completion or the
  /// cooperative loop).  Decides cap / completion / next window.
  void reduce() {
    std::size_t processed = 0;
    std::size_t invoked = 0;
    std::size_t delivered = 0;
    std::size_t invokes_left = 0;
    SimTime global_min = kInf;
    std::size_t busiest_shard = 0;
    for (std::size_t s = 0; s < n_shards_; ++s) {
      const ShardSlot& slot = slots_[s];
      processed += slot.processed;
      invoked += slot.invoked;
      delivered += slot.delivered;
      invokes_left += slot.invokes_left;
      global_min = std::min(global_min, slot.local_min);
      if (slot.processed > slots_[busiest_shard].processed) busiest_shard = s;
    }
    const int capped = cap_shard_.load(std::memory_order_acquire);
    if (capped >= 0) {
      done_ = true;
      cap_hit_shard_ = static_cast<std::size_t>(capped);
      return;
    }
    if (processed > options_.max_events) {
      done_ = true;
      cap_hit_shard_ = busiest_shard;
      return;
    }
    if (invokes_left == 0 && invoked == delivered) {
      done_ = true;
      completed_ = true;
      return;
    }
    if (global_min == kInf) {
      // Nothing pending anywhere: the run drained without delivering
      // everything (dropped packets with no retransmission, say).
      done_ = true;
      completed_ = false;
      return;
    }
    window_end_ = global_min + lookahead_;
    if (profile_ != nullptr) profile_->on_window(global_min);
  }

  SimResult finalize() {
    EngineCounters total;
    SimTime now_max = 0;
    for (auto& shard : shards_) {
      const EngineCounters& c = shard->counts();
      total.trace.invoked += c.trace.invoked;
      total.trace.delivered += c.trace.delivered;
      total.trace.control_packets += c.trace.control_packets;
      total.trace.user_packets += c.trace.user_packets;
      total.trace.control_bytes += c.trace.control_bytes;
      total.trace.tag_bytes += c.trace.tag_bytes;
      total.trace.drops += c.trace.drops;
      total.trace.retransmissions += c.trace.retransmissions;
      total.trace.duplicate_arrivals += c.trace.duplicate_arrivals;
      total.timer_fires += c.timer_fires;
      now_max = std::max(now_max, shard->now_max());
    }
    trace_.add_counts(total.trace);
    sink_.add_counts(total);

    // Deterministic observability replay: merge the per-shard buffers
    // on (time, entry key) — stable, so intra-entry order survives —
    // and hand them to the instruments / tracer / recorder /
    // attribution / merge-phase observers in sequential order.
    if (sink_.buffering_needed()) {
      std::size_t total_items = 0;
      for (auto& shard : shards_) total_items += shard->obs_items().size();
      std::vector<ObsItem> merged;
      merged.reserve(total_items);
      for (auto& shard : shards_) {
        auto& items = shard->obs_items();
        merged.insert(merged.end(), std::make_move_iterator(items.begin()),
                      std::make_move_iterator(items.end()));
        items.clear();
        items.shrink_to_fit();
      }
      std::stable_sort(merged.begin(), merged.end(),
                       [](const ObsItem& a, const ObsItem& b) {
                         return std::tie(a.time, a.entry_tiebreak) <
                                std::tie(b.time, b.entry_tiebreak);
                       });
      sink_.replay(merged, universe_.size());
    }
    sink_.publish_profile();

    std::string error;
    if (cap_hit_shard_ != kNoShard) {
      error = "event cap exceeded in shard " +
              std::to_string(cap_hit_shard_) + " of " +
              std::to_string(n_shards_) + " (protocol livelock?)";
      // The note names the tripping shard so a flight-recorder
      // post-mortem (dump_postmortem_if_red) pins the error path even
      // without the full tracelog.
      sink_.note("invariant: " + error, now_max);
      completed_ = false;
    } else if (!completed_) {
      error = "undelivered messages remain";
      sink_.note("invariant: undelivered messages remain", now_max);
    }
    sink_.finish_tracelog();
    SimResult result{std::move(trace_), completed_, std::move(error),
                     n_shards_, n_workers_};
    return result;
  }

  static constexpr std::size_t kNoShard =
      std::numeric_limits<std::size_t>::max();

  std::vector<Message> universe_;
  std::size_t n_processes_;
  SimOptions options_;
  std::size_t n_shards_;
  std::size_t n_workers_;
  SimTime lookahead_;
  Trace trace_;
  /// Byte flags, never bit-packed: send side is written only by the
  /// message's source shard, receive side only by its destination shard.
  std::vector<std::uint8_t> send_seen_;
  std::vector<std::uint8_t> receive_seen_;
  ObsSink sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardSlot> slots_;
  /// rings_[a * n_shards + b]: packets from shard a to shard b (null on
  /// the diagonal).  Written by a's worker, drained by b's at barriers.
  std::vector<std::unique_ptr<SpscRing<CrossMsg>>> rings_;
  std::vector<std::vector<CrossMsg>> spills_;
  // Window state: written by reduce() (single-threaded between
  // barriers), read by workers after the barrier releases them.
  SimTime window_end_ = 0;
  bool done_ = false;
  bool completed_ = false;
  std::size_t cap_hit_shard_ = kNoShard;
  /// First shard to trip the local event cap mid-window; also aborts
  /// the other workers' current window.
  std::atomic<int> cap_shard_{-1};
  std::atomic<bool> abort_{false};
  /// Engine profiler, or nullptr (ObservabilityOptions::profiling).
  SimProfile* profile_ = nullptr;
};

// --- Shard implementation ----------------------------------------------

Shard::Shard(ShardedEngine* engine, std::size_t id)
    : eng_(engine),
      id_(id),
      network_(engine->options_.network, engine->options_.seed,
               engine->n_processes_, id, engine->n_shards_),
      buffering_(engine->sink_.buffering_needed()),
      live_observers_(engine->options_.observers.has_thread_safe()),
      profile_(engine->profile_) {
  if (profile_ != nullptr) prof_ = &profile_->shard(id);
  const std::size_t n_local =
      engine->n_processes_ > id
          ? (engine->n_processes_ - id + engine->n_shards_ - 1) /
                engine->n_shards_
          : 0;
  emit_counter_.assign(n_local, 0);
  timer_counter_.assign(n_local, 0);
  if (engine->options_.network.loss_probability > 0) {
    loss_rngs_.reserve(n_local);
    for (std::size_t local = 0; local < n_local; ++local) {
      const auto p =
          static_cast<ProcessId>(local * engine->n_shards_ + id);
      loss_rngs_.push_back(
          sim_detail::per_process_loss_rng(engine->options_.seed, p));
    }
  }
}

std::size_t Shard::local_of(ProcessId p) const {
  assert(p % eng_->n_shards_ == id_);
  return p / eng_->n_shards_;
}

void Shard::process_window(SimTime window_end) {
  if (prof_ == nullptr) {
    process_entries(window_end);
    return;
  }
  const std::size_t before = processed_;
  process_entries(window_end);
  const auto n = static_cast<std::uint64_t>(processed_ - before);
  ++prof_->windows;
  prof_->entries += n;
  if (n > 0) {
    ++prof_->busy_windows;
    if (n > prof_->max_entries_in_window) prof_->max_entries_in_window = n;
    pending_empty_stall_ = false;
  } else if (invoke_pos_ < invokes_.size() || !heap_.empty()) {
    // Local work exists but sits at or beyond window_end: the
    // conservative lookahead bound is what blocked this shard.
    ++prof_->stall_lookahead;
  } else {
    // Nothing pending here at all; whether that is true idleness or
    // ring backpressure is only known once the inbox drains.
    pending_empty_stall_ = true;
  }
  if (profile_->sampling()) {
    profile_->sample(id_, window_end, n, heap_.size());
  }
}

void Shard::process_entries(SimTime window_end) {
  while (!eng_->abort_.load(std::memory_order_relaxed)) {
    const bool has_invoke = invoke_pos_ < invokes_.size();
    const bool has_heap = !heap_.empty();
    if (!has_invoke && !has_heap) return;
    bool take_invoke = has_invoke;
    SimTime t = 0;
    if (has_invoke && has_heap) {
      const HeapItem& top = heap_.top();
      const PendingInvoke& inv = invokes_[invoke_pos_];
      take_invoke = std::tie(inv.time, inv.tiebreak) <
                    std::tie(top.time, top.tiebreak);
      t = take_invoke ? inv.time : top.time;
    } else if (has_invoke) {
      t = invokes_[invoke_pos_].time;
    } else {
      t = heap_.top().time;
    }
    if (t >= window_end) return;
    if (++processed_ > eng_->options_.max_events) {
      trip_cap();
      return;
    }
    now_ = t;
    if (take_invoke) {
      handle_invoke();
    } else {
      handle_heap_top();
    }
  }
}

void Shard::handle_invoke() {
  const PendingInvoke& inv = invokes_[invoke_pos_];
  ++invoke_pos_;
  cur_tiebreak_ = inv.tiebreak;
  const Message& m = inv.message;
  record(m.src, {m.id, EventKind::kInvoke});
  protocols_[local_of(m.src)]->on_invoke(m);
}

void Shard::handle_heap_top() {
  const HeapItem top = heap_.top();
  heap_.pop();
  cur_tiebreak_ = top.tiebreak;
  if (tiebreak_kind(top.tiebreak) == EntryKind::kArrival) {
    // Move the packet out before dispatch: on_packet may send, and a
    // send can grow the slab (invalidating references into it).
    const auto slot = top.payload;
    Packet pkt = std::move(slab_[slot]);
    free_slots_.push_back(slot);
    sim_detail::apply_arrival(*protocols_[local_of(pkt.dst)], pkt,
                  eng_->receive_seen_, [&](sim_detail::ArrivalClass cls) {
                    switch (cls) {
                      case sim_detail::ArrivalClass::kControl:
                        ++counts_.trace.control_packets;
                        counts_.trace.control_bytes += pkt.tag_bytes;
                        break;
                      case sim_detail::ArrivalClass::kFirstUser:
                        ++counts_.trace.user_packets;
                        counts_.trace.tag_bytes += pkt.tag_bytes;
                        record(pkt.dst,
                               {pkt.user_msg, EventKind::kReceive});
                        break;
                      case sim_detail::ArrivalClass::kDuplicate:
                        ++counts_.trace.duplicate_arrivals;
                        break;
                    }
                  });
  } else {
    const ProcessId p = tiebreak_owner(top.tiebreak);
    ++counts_.timer_fires;
    protocols_[local_of(p)]->on_timer(top.payload);
  }
}

void Shard::record(ProcessId at, SystemEvent e) {
  eng_->trace_.record_shard_local(at, e, now_);
  if (e.kind == EventKind::kInvoke) {
    ++counts_.trace.invoked;
  } else if (e.kind == EventKind::kDeliver) {
    ++counts_.trace.delivered;
  }
  if (prof_ != nullptr) ++prof_->events;
  if (buffering_) obs_.push_back({now_, cur_tiebreak_, at, false, e, 0, {}});
  if (live_observers_) {
    eng_->options_.observers.notify_thread_safe(at, e, now_);
  }
}

void Shard::trip_cap() {
  int expected = -1;
  eng_->cap_shard_.compare_exchange_strong(expected, static_cast<int>(id_),
                                           std::memory_order_acq_rel);
  eng_->abort_.store(true, std::memory_order_release);
}

void Shard::send_packet(ProcessId from, Packet packet) {
  packet.src = from;
  assert(packet.dst < eng_->n_processes_);
  assert((packet.is_control ||
          eng_->universe_[packet.user_msg].src == from) &&
         "user packet emitted by the wrong process");
  switch (sim_detail::classify_send(packet, eng_->send_seen_)) {
    case sim_detail::SendClass::kControl:
      break;
    case sim_detail::SendClass::kFirstSend:
      record(from, {packet.user_msg, EventKind::kSend});
      break;
    case sim_detail::SendClass::kRetransmission:
      ++counts_.trace.retransmissions;
      break;
  }
  // Emission counter and loss draw happen in the same order as the
  // sequential engine: dropped packets consume a key and a loss draw
  // but no channel-delay draw.
  const std::uint64_t tiebreak = make_tiebreak(
      EntryKind::kArrival, from, emit_counter_[local_of(from)]++);
  if (eng_->options_.network.loss_probability > 0 &&
      loss_rngs_[local_of(from)].chance(
          eng_->options_.network.loss_probability)) {
    ++counts_.trace.drops;
    return;
  }
  const SimTime at = network_.arrival_time(from, packet.dst, now_);
  const std::size_t dst_shard = packet.dst % eng_->n_shards_;
  if (dst_shard == id_) {
    heap_.push({at, tiebreak, alloc_slot(std::move(packet))});
    note_heap_depth();
  } else {
    eng_->route(id_, dst_shard, {at, tiebreak, std::move(packet)});
  }
}

void Shard::set_timer(ProcessId at, SimTime delay, std::uint64_t cookie) {
  const std::uint64_t tiebreak = make_tiebreak(
      EntryKind::kTimer, at, timer_counter_[local_of(at)]++);
  heap_.push({now_ + delay, tiebreak, cookie});
  note_heap_depth();
}

void Shard::deliver(ProcessId at, MessageId msg) {
  assert(eng_->universe_[msg].dst == at && "delivery at the wrong process");
  record(at, {msg, EventKind::kDeliver});
}

void Shard::hold(ProcessId at, MessageId msg, const HoldReason& reason) {
  if (!eng_->sink_.attribution_active() && !eng_->sink_.tracelog_active()) {
    return;
  }
  // The hold phase (send vs delivery) is inferred at replay time from
  // the merged event order, exactly as the sequential engine infers it
  // from receive_seen_ — reading that flag here would race with the
  // destination shard.
  obs_.push_back({now_, cur_tiebreak_, at, true, {}, msg, reason});
}

bool Shard::wants_hold_reasons() const {
  return eng_->sink_.attribution_active() || eng_->sink_.tracelog_active();
}

std::size_t Shard::process_count() const { return eng_->process_count(); }

const Message& Shard::message(MessageId msg) const {
  return eng_->message(msg);
}

void Shard::drain_inbox() {
  std::uint64_t spilled_in = 0;
  for (std::size_t from = 0; from < eng_->n_shards_; ++from) {
    if (from == id_) continue;
    SpscRing<CrossMsg>& ring = *eng_->rings_[from * eng_->n_shards_ + id_];
    CrossMsg msg;
    std::uint64_t popped = 0;
    while (ring.try_pop(msg)) {
      admit(std::move(msg));
      ++popped;
    }
    if (prof_ != nullptr) {
      if (popped == 0) {
        ++prof_->ring_empty_polls;
      } else if (popped > prof_->ring_occupancy_hwm) {
        prof_->ring_occupancy_hwm = popped;
      }
    }
    auto& spill = eng_->spills_[from * eng_->n_shards_ + id_];
    spilled_in += spill.size();
    for (CrossMsg& spilled : spill) admit(std::move(spilled));
    spill.clear();
  }
  if (prof_ != nullptr) {
    prof_->spill_drained += spilled_in;
    if (pending_empty_stall_) {
      // The zero-progress window from before this barrier: if spilled
      // packets arrived only now, the ring was the bottleneck.
      if (spilled_in > 0) {
        ++prof_->stall_backpressure;
      } else {
        ++prof_->stall_empty;
      }
      pending_empty_stall_ = false;
    }
  }
}

void Shard::publish_slot() {
  ShardSlot& slot = eng_->slots_[id_];
  SimTime local_min = kInf;
  if (invoke_pos_ < invokes_.size()) local_min = invokes_[invoke_pos_].time;
  if (!heap_.empty()) local_min = std::min(local_min, heap_.top().time);
  slot.local_min = local_min;
  slot.processed = processed_;
  slot.invoked = counts_.trace.invoked;
  slot.delivered = counts_.trace.delivered;
  slot.invokes_left = invokes_.size() - invoke_pos_;
}

void ShardHost::send_packet(Packet packet) {
  shard_->send_packet(self_, std::move(packet));
}
void ShardHost::deliver(MessageId msg) { shard_->deliver(self_, msg); }
void ShardHost::set_timer(SimTime delay, std::uint64_t cookie) {
  shard_->set_timer(self_, delay, cookie);
}
SimTime ShardHost::now() const { return shard_->now(); }
std::size_t ShardHost::process_count() const {
  return shard_->process_count();
}
const Message& ShardHost::message(MessageId msg) const {
  return shard_->message(msg);
}
void ShardHost::hold(MessageId msg, const HoldReason& reason) {
  shard_->hold(self_, msg, reason);
}
bool ShardHost::wants_hold_reasons() const {
  return shard_->wants_hold_reasons();
}

}  // namespace

SimResult simulate_sharded(const Workload& workload,
                           const ProtocolFactory& factory,
                           std::size_t n_processes,
                           const SimOptions& options, std::size_t n_shards,
                           std::size_t n_workers) {
  ShardedEngine engine(workload, factory, n_processes, options, n_shards,
                       n_workers);
  return engine.run();
}

}  // namespace msgorder
