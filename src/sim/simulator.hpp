// The discrete-event simulator: processes run protocol instances, the
// network delays packets, and every system event (invoke / send /
// receive / deliver) is recorded in a Trace whose user view is then
// judged by the independent specification checkers.  This is the
// operational validation layer for the paper's protocol classes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/protocols/protocol.hpp"
#include "src/sim/network.hpp"
#include "src/sim/trace.hpp"
#include "src/sim/workload.hpp"

namespace msgorder {

struct SimOptions {
  NetworkOptions network;
  std::uint64_t seed = 1;
  /// Hard cap on processed events (guards against protocol livelock).
  std::size_t max_events = 10'000'000;
  /// Called after every recorded system event (invoke/send/receive/
  /// deliver) — hook for online monitors (src/checker/monitor.hpp).
  std::function<void(ProcessId, SystemEvent, SimTime)> observer;
};

struct SimResult {
  Trace trace;
  /// True iff the run completed: every invoked message was delivered and
  /// the event cap was not hit.
  bool completed = false;
  std::string error;
};

/// Run `workload` under the protocol produced by `factory` at every
/// process.  The simulation stops when all user messages are delivered
/// (remaining control chatter is dropped) or when nothing is left to do.
SimResult simulate(const Workload& workload, const ProtocolFactory& factory,
                   std::size_t n_processes, const SimOptions& options = {});

}  // namespace msgorder
