// The discrete-event simulator: processes run protocol instances, the
// network delays packets, and every system event (invoke / send /
// receive / deliver) is recorded in a Trace whose user view is then
// judged by the independent specification checkers.  This is the
// operational validation layer for the paper's protocol classes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/obs/observability.hpp"
#include "src/obs/observer.hpp"
#include "src/protocols/protocol.hpp"
#include "src/sim/network.hpp"
#include "src/sim/trace.hpp"
#include "src/sim/workload.hpp"

namespace msgorder {

struct SimOptions {
  NetworkOptions network;
  std::uint64_t seed = 1;
  /// Hard cap on processed events (guards against protocol livelock).
  /// Enforced globally across shards; the error names the shard that
  /// tripped it.
  std::size_t max_events = 10'000'000;
  /// Event-loop shards (ISSUE 6).  1 (the default) runs the sequential
  /// engine; N >= 2 partitions processes round-robin over N shards with
  /// conservative lower-bound-timestamp synchronization (lookahead =
  /// NetworkOptions::base_delay); 0 picks automatically from the
  /// hardware and process count.  The resulting SimResult.trace is
  /// bit-identical for every shard count at the same seed.  When the
  /// lookahead is non-positive the dispatcher falls back to the
  /// sequential engine (see SimResult::shards_used).
  std::size_t shards = 1;
  /// Worker threads driving the shards: 0 (default) = min(shards,
  /// hardware concurrency).  Fewer workers than shards run several
  /// shards per worker cooperatively — same result either way.
  std::size_t shard_workers = 0;
  /// Capacity of each cross-shard SPSC ring (rounded up to a power of
  /// two, minimum 2).  Overflow never blocks — packets spill into a
  /// producer-owned vector drained at the next barrier — so this only
  /// trades memory against spill traffic.  Exposed mainly so the
  /// profiler's ring-backpressure counters (ISSUE 7) are testable with
  /// deliberately tiny rings.
  std::size_t cross_shard_ring_capacity = 2048;
  /// Observer fan-out, called after every recorded system event
  /// (invoke/send/receive/deliver): online monitors
  /// (src/checker/monitor.hpp), tracers, and user callbacks all attach
  /// here via observers.add(...).
  ObserverMux observers;
  /// Optional metrics + span-tracing bundle, owned by the caller and
  /// filled during the run (src/obs/observability.hpp).  nullptr — the
  /// default — disables the whole layer at the cost of one pointer test
  /// per event.
  Observability* observability = nullptr;
};

struct SimResult {
  Trace trace;
  /// True iff the run completed: every invoked message was delivered and
  /// the event cap was not hit.
  bool completed = false;
  std::string error;
  /// How the run actually executed (after auto-selection and the
  /// zero-lookahead fallback).
  std::size_t shards_used = 1;
  std::size_t workers_used = 1;
};

/// Run `workload` under the protocol produced by `factory` at every
/// process.  The simulation stops when all user messages are delivered
/// (remaining control chatter is dropped) or when nothing is left to do.
SimResult simulate(const Workload& workload, const ProtocolFactory& factory,
                   std::size_t n_processes, const SimOptions& options = {});

}  // namespace msgorder
