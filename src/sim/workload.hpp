// Workloads: timed sequences of application send requests (invokes) fed
// to the simulator.
#pragma once

#include <vector>

#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"
#include "src/util/rng.hpp"

namespace msgorder {

struct InvokeRequest {
  SimTime time = 0;
  Message message;  // id assigned densely by the builder
};

using Workload = std::vector<InvokeRequest>;

struct WorkloadOptions {
  std::size_t n_processes = 4;
  std::size_t n_messages = 100;
  /// Mean inter-invoke gap per process (exponential); smaller = hotter.
  SimTime mean_gap = 1.0;
  /// Fraction of messages with color 1 ("red" flush/marker messages).
  double red_fraction = 0.0;
  /// Color used for the red messages.
  int red_color = 1;
};

/// Poisson-ish traffic: each process invokes messages to uniformly random
/// other processes with exponential gaps.  Messages are globally numbered
/// in invoke-time order.
Workload random_workload(const WorkloadOptions& options, Rng& rng);

/// Hand-written workload helper for tests: each entry is
/// (time, src, dst, color).
Workload scripted_workload(
    const std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>>&
        entries);

/// The message universe of a workload.
std::vector<Message> workload_universe(const Workload& workload);

}  // namespace msgorder
