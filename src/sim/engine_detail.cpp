#include "src/sim/engine_detail.hpp"

namespace msgorder::sim_detail {

ObsSink::ObsSink(Observability* observability, const ObserverMux* observers,
                 const Trace* trace, std::size_t n_messages)
    : observers_(observers), trace_(trace) {
  if (observability == nullptr) return;
  // Sizes a fresh attribution table for this run; the flight recorder
  // (if any) persists across runs by design.
  observability->begin_run(n_messages);
  instruments_ = &observability->instruments();
  tracer_ = observability->tracer();
  attribution_ = observability->attribution();
  recorder_ = observability->flight_recorder();
  profile_ = observability->profile();
  tracelog_ = observability->tracelog();
  label_ = observability->options().label;
}

void ObsSink::open_tracelog(const char* engine, std::size_t shards,
                            std::size_t workers, SimTime lookahead,
                            std::uint64_t seed, std::size_t n_processes) {
  if (tracelog_ == nullptr) return;
  TraceLogHeader header;
  header.schema = "msgorder.tracelog/1";
  header.engine = engine;
  header.protocol = label_;
  header.n_processes = n_processes;
  header.n_messages = trace_->universe().size();
  header.seed = seed;
  header.shards = shards;
  header.workers = workers;
  header.lookahead = lookahead;
  tracelog_->begin_run(header);
  tracelog_finished_ = false;
}

void ObsSink::finish_tracelog() {
  if (tracelog_ == nullptr || tracelog_finished_) return;
  tracelog_finished_ = true;
  tracelog_->finish();
  if (instruments_ != nullptr) {
    instruments_->tracelog_events->inc(tracelog_->events_written());
    instruments_->tracelog_bytes->inc(tracelog_->bytes_written());
  }
}

void ObsSink::publish_profile() {
  if (profile_ != nullptr && tracer_ != nullptr) {
    profile_->emit_counter_tracks(*tracer_);
  }
}

void ObsSink::record(ProcessId at, SystemEvent e, SimTime t,
                     std::uint64_t tiebreak, bool merge_only) {
  if (tracelog_ != nullptr) {
    // The peer is the channel's other endpoint: the destination before
    // the message crosses (invoke/send), the source after (receive/
    // deliver) — with the header seed this names the RNG stream the
    // message's delay came from (TraceLogHeader::channel_stream_seed).
    const Message& m = trace_->universe()[e.msg];
    const bool outbound =
        e.kind == EventKind::kInvoke || e.kind == EventKind::kSend;
    tracelog_->append_event(at, e, t, tiebreak, outbound ? m.dst : m.src,
                            m.color);
  }
  if (instruments_ != nullptr) update_instruments(e);
  if (tracer_ != nullptr) tracer_->on_event(at, e, t);
  if (recorder_ != nullptr) recorder_->on_event(at, e, t);
  if (attribution_ != nullptr) {
    // The inhibited event executing closes its open hold segment, so
    // per-reason segment times sum exactly to the recorded delay.
    if (e.kind == EventKind::kSend) {
      publish_closed(attribution_->on_release(e.msg, HoldPhase::kSend, t));
    } else if (e.kind == EventKind::kDeliver) {
      publish_closed(attribution_->on_release(e.msg, HoldPhase::kDelivery, t));
    }
  }
  if (observers_ != nullptr) {
    if (merge_only) {
      observers_->notify_merge_phase(at, e, t);
    } else {
      observers_->notify(at, e, t);
    }
  }
}

void ObsSink::hold(ProcessId at, MessageId msg, const HoldReason& reason,
                   bool received, SimTime t, std::uint64_t tiebreak) {
  if (tracelog_ != nullptr) tracelog_->append_hold(at, msg, reason, t, tiebreak);
  if (attribution_ == nullptr) return;
  // Phase is inferred from the message's lifecycle position: once x.r*
  // was recorded the only inhibitable transition left is the delivery.
  const HoldPhase phase = received ? HoldPhase::kDelivery : HoldPhase::kSend;
  publish_closed(attribution_->on_hold(msg, at, phase, reason, t));
}

void ObsSink::note(std::string text, SimTime t) {
  if (tracelog_ != nullptr) tracelog_->append_note(text, t);
  if (recorder_ != nullptr) recorder_->note(std::move(text), t);
}

void ObsSink::count_control_packet(std::size_t bytes) {
  if (instruments_ == nullptr) return;
  instruments_->control_packets->inc();
  instruments_->control_bytes->inc(bytes);
}

void ObsSink::count_user_packet(std::size_t tag_bytes) {
  if (instruments_ == nullptr) return;
  instruments_->user_packets->inc();
  instruments_->tag_bytes->inc(tag_bytes);
}

void ObsSink::count_drop() {
  if (instruments_ != nullptr) instruments_->drops->inc();
}

void ObsSink::count_retransmission() {
  if (instruments_ != nullptr) instruments_->retransmissions->inc();
}

void ObsSink::count_duplicate_arrival() {
  if (instruments_ != nullptr) instruments_->duplicate_arrivals->inc();
}

void ObsSink::count_timer_fire() {
  if (instruments_ != nullptr) instruments_->timer_fires->inc();
}

void ObsSink::add_counts(const EngineCounters& counters) {
  if (instruments_ == nullptr) return;
  instruments_->control_packets->inc(counters.trace.control_packets);
  instruments_->control_bytes->inc(counters.trace.control_bytes);
  instruments_->user_packets->inc(counters.trace.user_packets);
  instruments_->tag_bytes->inc(counters.trace.tag_bytes);
  instruments_->drops->inc(counters.trace.drops);
  instruments_->retransmissions->inc(counters.trace.retransmissions);
  instruments_->duplicate_arrivals->inc(counters.trace.duplicate_arrivals);
  instruments_->timer_fires->inc(counters.timer_fires);
}

void ObsSink::replay(const std::vector<ObsItem>& items,
                     std::size_t n_messages) {
  std::vector<std::uint8_t> received(n_messages, 0);
  for (const ObsItem& item : items) {
    if (item.is_hold) {
      hold(item.at, item.held_msg, item.reason,
           received[item.held_msg] != 0, item.time, item.entry_tiebreak);
    } else {
      if (item.event.kind == EventKind::kReceive) {
        received[item.event.msg] = 1;
      }
      record(item.at, item.event, item.time, item.entry_tiebreak,
             /*merge_only=*/true);
    }
  }
}

void ObsSink::update_instruments(SystemEvent e) {
  instruments_->events->inc();
  switch (e.kind) {
    case EventKind::kReceive:
      instruments_->buffered_depth->add(1);
      break;
    case EventKind::kDeliver: {
      instruments_->buffered_depth->add(-1);
      const MessageTimes& mt = trace_->times(e.msg);
      // The full lifecycle exists once x.r is recorded (guard anyway:
      // a misbehaving protocol must not turn metrics into UB).
      if (mt.invoke && mt.send && mt.receive) {
        instruments_->latency->record(mt.latency());
        instruments_->send_delay->record(mt.send_delay());
        instruments_->delivery_delay->record(mt.delivery_delay());
      }
      break;
    }
    default:
      break;
  }
}

void ObsSink::publish_closed(const HoldSegment* seg) {
  if (seg == nullptr) return;
  if (instruments_ != nullptr) {
    instruments_->hold_segments->inc();
    const auto k = static_cast<std::size_t>(seg->reason.kind);
    if (instruments_->hold_time[k] != nullptr) {
      instruments_->hold_time[k]->record(seg->duration());
    }
  }
  if (tracer_ != nullptr) tracer_->on_hold_segment(*seg);
  if (recorder_ != nullptr) recorder_->on_hold_segment(*seg);
}

}  // namespace msgorder::sim_detail
