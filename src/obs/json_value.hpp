// A small owning JSON document model plus a strict recursive-descent
// parser (ISSUE 4): the reader side of the observability layer.  The
// writer side (json.hpp) streams; this side loads the emitted artifacts
// — run reports, bench reports, flight-recorder dumps, Chrome traces —
// back in for the msgorder_stats analysis CLI and its tests.  Same
// grammar as json_validate: one complete value, UTF-8 passed through,
// \uXXXX escapes decoded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace msgorder {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  /// Ordered map: keys sort lexicographically, which keeps every
  /// downstream rendering deterministic.
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;
  explicit JsonValue(std::nullptr_t) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a)
      : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o)
      : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find + type filter, as typed optionals for terse call sites.
  std::optional<double> number_at(std::string_view key) const;
  std::optional<std::string> string_at(std::string_view key) const;
  std::optional<bool> bool_at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse exactly one JSON value (whitespace allowed around it).
/// nullopt on malformed input; `error` (if non-null) then receives a
/// short description with the byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

/// Read a whole file and parse it.  nullopt on I/O or parse failure.
std::optional<JsonValue> json_parse_file(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace msgorder
