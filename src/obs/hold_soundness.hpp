// Hold-soundness: the attribution contract of ISSUE 4, checkable on any
// complete run.  A protocol's hold reports are *sound* when
//   (1) every reported inhibition was eventually released — no hold
//       segment is still open once all messages are delivered, and
//   (2) every named blocking message really could unblock the held one:
//       a kWaitPredecessor blocker is delivered inside the segment it
//       explains (after it began, no later than the held delivery), and
//       a kWaitAck / kWaitLock blocker's exchange completes before the
//       held message's send.
// The simulator's attribution tests assert this registry-wide; the
// exhaustive verifier asserts it on EVERY reachable interleaving, which
// is what makes it a property rather than a test vector.
#pragma once

#include <string>
#include <vector>

#include "src/obs/attribution.hpp"
#include "src/sim/trace.hpp"

namespace msgorder {

/// Check hold-soundness of one complete run.  Returns human-readable
/// violation descriptions (empty = sound).  `trace` must satisfy
/// all_delivered(); segments referencing messages without complete
/// times are themselves violations.
std::vector<std::string> hold_soundness_violations(
    const Trace& trace, const DelayAttribution& attribution);

}  // namespace msgorder
