// Causal trace log (ISSUE 9 tentpole): a compact, append-only,
// dependency-free record of a run's full causal history — every
// invoke/send/receive/deliver event with its logical clock, channel
// endpoints, and deterministic engine tiebreak, every protocol hold
// report (the "why is this message blocked" references), and the
// engine's invariant notes.  Both engines emit the SAME byte stream for
// the same (workload, protocol, seed): the sequential engine appends
// inline, the sharded engine appends during its deterministic
// observability replay (merge order == sequential order), so two logs
// can be diffed record-for-record to bisect divergence
// (src/obs/tracelog_index.hpp, tools/msgorder_query.cpp).
//
// On-disk format "msgorder.tracelog/1":
//
//   8 bytes   magic "MOTLOG1\n"
//   u32 LE    header length
//   ...       header JSON (schema/engine/protocol/n_processes/
//             n_messages/seed/shards/workers/lookahead).  The run seed
//             plus a record's channel endpoints recover the channel's
//             RNG stream id (TraceLogHeader::channel_stream_seed), which
//             is everything replay needs — per-channel delay streams
//             depend only on (seed, src, dst), never on interleaving.
//   records   each: u32 LE payload length, then payload
//
// Record payloads (all integers little-endian, times as IEEE-754 bits):
//   event (type 0, 42 bytes): u8 type, u8 kind (EventKind), u32 msg,
//     u32 process, u32 peer (the channel's other endpoint), i32 color,
//     f64 time, u64 tiebreak (the engine's (kind,owner,counter) entry
//     key, engine_detail.hpp), u64 lamport
//   hold (type 1, 35 bytes): u8 type, u8 hold_kind, u8 flags (bit 0:
//     blocking_msg present, bit 1: blocking_proc present), u32 msg,
//     u32 process, u32 blocking_msg, u32 blocking_proc, f64 time,
//     u64 tiebreak
//   note (type 2, 13+n bytes): u8 type, f64 time, u32 length, n bytes
//
// Lamport clocks are computed online by the writer (send transfers the
// sender's clock to the receive side); because both engines append in
// the same order, the clocks — like everything else — are identical
// across engines.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/attribution.hpp"
#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

/// Parsed JSON header of a trace log.
struct TraceLogHeader {
  std::string schema;    // "msgorder.tracelog/1"
  std::string engine;    // "sequential" | "sharded"
  std::string protocol;  // the Observability label (may be empty)
  std::size_t n_processes = 0;
  std::size_t n_messages = 0;
  std::uint64_t seed = 0;
  std::size_t shards = 1;
  std::size_t workers = 1;
  double lookahead = 0;

  /// The RNG stream id of channel src -> dst under this run's seed —
  /// the per-channel SplitMix64 stream Network draws delays from; with
  /// the header seed this is all a replay needs to re-derive every
  /// arrival time on the channel.
  std::uint64_t channel_stream_seed(ProcessId src, ProcessId dst) const;
};

/// One decoded record.  Exactly one of the three sections is
/// meaningful, selected by `type`; the others stay default-initialized
/// so default equality compares whole records (the divergence bisector
/// and the sequential==sharded property tests rely on this).
struct TraceLogRecord {
  enum class Type : std::uint8_t { kEvent = 0, kHold = 1, kNote = 2 };

  Type type = Type::kEvent;
  SimTime time = 0;
  /// Deterministic (kind, owner, counter) key of the queue entry whose
  /// handling produced this record; 0 for notes.
  std::uint64_t tiebreak = 0;

  // kEvent
  SystemEvent event;
  ProcessId process = 0;
  /// The channel's other endpoint: dst for invoke/send, src for
  /// receive/deliver.
  ProcessId peer = 0;
  std::int32_t color = 0;
  std::uint64_t lamport = 0;

  // kHold
  MessageId held_msg = 0;
  HoldReason reason;

  // kNote
  std::string note;

  bool operator==(const TraceLogRecord&) const = default;
};

/// Append-only writer.  One instance serves one Observability bundle;
/// each begin_run truncates and rewrites the file (the log, like the
/// attribution table, describes the most recent run).  All appends are
/// single-threaded by construction: the sequential engine is one
/// thread, and the sharded engine appends only from its single-threaded
/// merge replay.
class TraceLogWriter {
 public:
  explicit TraceLogWriter(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Truncate the file and write magic + header; resets the logical
  /// clocks and the per-run counters.
  void begin_run(const TraceLogHeader& header);

  void append_event(ProcessId at, SystemEvent e, SimTime t,
                    std::uint64_t tiebreak, ProcessId peer,
                    std::int32_t color);
  void append_hold(ProcessId at, MessageId msg, const HoldReason& reason,
                   SimTime t, std::uint64_t tiebreak);
  void append_note(std::string_view text, SimTime t);

  /// Flush buffered records to disk.  Safe to call repeatedly.
  void finish();

  /// Records appended since begin_run (events + holds + notes).
  std::uint64_t events_written() const { return events_written_; }
  /// Bytes written since begin_run, header included.
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void put_bytes(std::string_view payload);

  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  std::string error_;
  std::uint64_t events_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  /// Online Lamport clocks: per-process counters plus the clock each
  /// message's send event carried (consumed by its receive).
  std::vector<std::uint64_t> proc_clock_;
  std::vector<std::uint64_t> msg_clock_;
};

/// Streaming reader: header up front, then one record per next() call.
/// The divergence bisector uses this directly so comparing two
/// multi-million-record logs never loads either into memory.
class TraceLogStream {
 public:
  bool open(const std::string& path, std::string* error = nullptr);

  const TraceLogHeader& header() const { return header_; }
  const std::string& header_json() const { return header_json_; }

  /// 1: a record was decoded into *out.  0: clean end of file.
  /// -1: truncated or malformed input (`error` gets the reason).
  int next(TraceLogRecord* out, std::string* error = nullptr);

 private:
  std::ifstream in_;
  TraceLogHeader header_;
  std::string header_json_;
};

/// A fully loaded log: header plus every record in log order, with the
/// event records additionally indexed for the causal queries.
struct LoadedTraceLog {
  std::string path;
  TraceLogHeader header;
  std::vector<TraceLogRecord> records;
  /// Indices into `records` of the kEvent records, in log order.
  std::vector<std::size_t> events;
};

/// Read a whole log.  `max_records` > 0 stops after that many records
/// (the bisector loads only the prefix up to the divergence); 0 loads
/// everything.  nullopt on I/O or format errors.
std::optional<LoadedTraceLog> load_tracelog(const std::string& path,
                                            std::string* error = nullptr,
                                            std::size_t max_records = 0);

}  // namespace msgorder
