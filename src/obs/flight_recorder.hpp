// Flight recorder (ISSUE 4 tentpole): a fixed-capacity, single-writer
// ring buffer of the most recent system events, closed hold segments,
// and free-form notes.  The simulator appends through cached pointers
// (zero cost when no recorder is attached); when a run goes red — the
// online monitor detects a violation, or a simulator invariant trips
// (event cap, undelivered messages) — the ring is dumped post-mortem as
// JSON (schema msgorder.flight_recorder/1) so every failing run ships
// its own evidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/attribution.hpp"
#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

struct FlightRecord {
  enum class Type : std::uint8_t {
    kEvent,  // a recorded system event (invoke/send/receive/deliver)
    kHold,   // a closed attribution segment
    kNote,   // free-form marker ("violation detected", invariant trips)
  };

  Type type = Type::kEvent;
  SimTime time = 0;
  ProcessId process = 0;
  SystemEvent event;    // kEvent
  HoldSegment segment;  // kHold
  std::string note;     // kNote
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  void on_event(ProcessId p, SystemEvent e, SimTime t);
  void on_hold_segment(const HoldSegment& segment);
  void note(std::string text, SimTime t);

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently retained (== capacity once wrapped).
  std::size_t size() const { return std::min(written_, ring_.size()); }
  /// Monotone count of everything ever recorded; size() < total_records()
  /// iff the ring has wrapped and evicted its oldest records.
  std::uint64_t total_records() const { return written_; }

  /// Visit retained records oldest to newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(written_ - n + i) % ring_.size()]);
    }
  }

  /// The whole ring as a msgorder.flight_recorder/1 document.  `cause`
  /// labels why the dump happened ("monitor violation", ...);
  /// `tracelog_path` (when a causal trace log was active, ISSUE 9)
  /// cross-references the full history the ring is a window of.
  std::string to_json(const std::string& cause = "",
                      const std::string& tracelog_path = "") const;
  /// to_json + write_text_file.
  bool dump(const std::string& path, const std::string& cause = "",
            const std::string& tracelog_path = "",
            std::string* error = nullptr) const;

 private:
  std::vector<FlightRecord> ring_;
  std::size_t written_ = 0;  // total appended; write head = written_ % cap
};

}  // namespace msgorder
