#include "src/obs/tracer.hpp"

#include "src/obs/json.hpp"

namespace msgorder {

namespace {

/// Common fields of every emitted trace event.
void event_head(JsonWriter& w, const char* phase, ProcessId tid, double ts) {
  w.begin_object();
  w.kv("ph", phase);
  w.kv("pid", 1);
  w.kv("tid", static_cast<std::uint64_t>(tid));
  w.kv("ts", ts);
}

}  // namespace

SpanTracer::SpanTracer(SpanTracerOptions options)
    : options_(std::move(options)) {}

SpanTracer::Lifecycle& SpanTracer::lifecycle(MessageId m) {
  if (m >= lifecycles_.size()) lifecycles_.resize(m + 1);
  return lifecycles_[m];
}

void SpanTracer::on_event(ProcessId p, SystemEvent e, SimTime t) {
  if (p + 1 > n_processes_) n_processes_ = p + 1;
  Lifecycle& lc = lifecycle(e.msg);
  switch (e.kind) {
    case EventKind::kInvoke:
      lc.invoke = t;
      lc.sender = p;
      break;
    case EventKind::kSend:
      lc.send = t;
      lc.sender = p;
      break;
    case EventKind::kReceive:
      lc.receive = t;
      lc.receiver = p;
      break;
    case EventKind::kDeliver:
      lc.deliver = t;
      lc.receiver = p;
      break;
  }
}

void SpanTracer::on_hold_segment(const HoldSegment& segment) {
  if (segment.process + 1 > n_processes_) n_processes_ = segment.process + 1;
  hold_segments_.push_back(segment);
}

void SpanTracer::add_counter_sample(const std::string& name, SimTime t,
                                    double value) {
  counters_.push_back({name, t, value});
}

std::size_t SpanTracer::complete_span_count() const {
  std::size_t n = 0;
  for (const Lifecycle& lc : lifecycles_) {
    if (lc.invoke && lc.send && lc.receive && lc.deliver) ++n;
  }
  return n;
}

std::string SpanTracer::chrome_trace_json() const {
  const double scale = options_.time_scale;
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Track metadata: one named thread per simulated process.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.kv("name", "process_name");
  w.key("args").begin_object().kv("name", options_.process_name).end_object();
  w.end_object();
  for (std::size_t p = 0; p < n_processes_; ++p) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", p);
    w.kv("name", "thread_name");
    w.key("args")
        .begin_object()
        .kv("name", "P" + std::to_string(p))
        .end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", p);
    w.kv("name", "thread_sort_index");
    w.key("args").begin_object().kv("sort_index", p).end_object();
    w.end_object();
  }

  for (MessageId m = 0; m < lifecycles_.size(); ++m) {
    const Lifecycle& lc = lifecycles_[m];
    const std::string label = "x" + std::to_string(m);

    // Lifecycle instants, in the paper's notation.
    struct Point {
      const std::optional<SimTime>& t;
      const char* suffix;
      ProcessId at;
    };
    const Point points[] = {
        {lc.invoke, ".s*", lc.sender},
        {lc.send, ".s", lc.sender},
        {lc.receive, ".r*", lc.receiver},
        {lc.deliver, ".r", lc.receiver},
    };
    for (const Point& pt : points) {
      if (!pt.t) continue;
      event_head(w, "i", pt.at, *pt.t * scale);
      w.kv("s", "t");  // thread-scoped instant
      w.kv("name", label + pt.suffix);
      w.kv("cat", "lifecycle");
      w.end_object();
    }

    // Protocol hold interval at the sender: x.s* -> x.s.
    if (lc.invoke && lc.send) {
      event_head(w, "X", lc.sender, *lc.invoke * scale);
      w.kv("dur", (*lc.send - *lc.invoke) * scale);
      w.kv("name", label + " hold");
      w.kv("cat", "hold");
      w.key("args")
          .begin_object()
          .kv("msg", m)
          .kv("invoke", *lc.invoke)
          .kv("send", *lc.send)
          .end_object();
      w.end_object();
    }

    // Protocol buffer interval at the receiver: x.r* -> x.r.  The args
    // carry the complete four-event span.
    if (lc.receive && lc.deliver) {
      event_head(w, "X", lc.receiver, *lc.receive * scale);
      w.kv("dur", (*lc.deliver - *lc.receive) * scale);
      w.kv("name", label + " buffer");
      w.kv("cat", "buffer");
      w.key("args").begin_object();
      w.kv("msg", m);
      w.kv("src", static_cast<std::uint64_t>(lc.sender));
      w.kv("dst", static_cast<std::uint64_t>(lc.receiver));
      if (lc.invoke) w.kv("invoke", *lc.invoke);
      if (lc.send) w.kv("send", *lc.send);
      w.kv("receive", *lc.receive);
      w.kv("deliver", *lc.deliver);
      if (lc.invoke) w.kv("latency", *lc.deliver - *lc.invoke);
      w.end_object();
      w.end_object();
    }

    // Flow arrow along the causal send -> receive edge.
    if (lc.send && lc.receive) {
      event_head(w, "s", lc.sender, *lc.send * scale);
      w.kv("id", m);
      w.kv("name", label);
      w.kv("cat", "causal");
      w.end_object();
      event_head(w, "f", lc.receiver, *lc.receive * scale);
      w.kv("bp", "e");
      w.kv("id", m);
      w.kv("name", label);
      w.kv("cat", "causal");
      w.end_object();
    }
  }

  // Attribution segments: an "inhibit" slice per closed hold segment,
  // named after the reason, nested inside the message's hold/buffer
  // slice on the same track (ISSUE 4).
  for (const HoldSegment& seg : hold_segments_) {
    event_head(w, "X", seg.process, seg.begin * scale);
    w.kv("dur", seg.duration() * scale);
    w.kv("name", "x" + std::to_string(seg.msg) +
                     " inhibit:" + to_string(seg.reason.kind));
    w.kv("cat", "inhibit");
    w.key("args").begin_object();
    w.kv("msg", seg.msg);
    w.kv("phase", to_string(seg.phase));
    w.kv("reason", to_string(seg.reason.kind));
    if (seg.reason.blocking_msg) w.kv("blocking_msg", *seg.reason.blocking_msg);
    if (seg.reason.blocking_proc) {
      w.kv("blocking_proc",
           static_cast<std::uint64_t>(*seg.reason.blocking_proc));
    }
    w.end_object();
    w.end_object();
  }

  // Profiler counter tracks (ISSUE 7): Chrome counter events; Perfetto
  // renders each distinct name as its own counter plot.
  for (const CounterSample& cs : counters_) {
    event_head(w, "C", 0, cs.time * scale);
    w.kv("name", cs.name);
    w.kv("cat", "profile");
    w.key("args").begin_object().kv("value", cs.value).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.take();
}

bool SpanTracer::write_chrome_trace(const std::string& path,
                                    std::string* error) const {
  return write_text_file(path, chrome_trace_json(), error);
}

}  // namespace msgorder
