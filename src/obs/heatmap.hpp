// Per-channel inhibition heatmap (ISSUE 7): DelayAttribution's
// per-message hold table aggregated into a (blocking process -> blocked
// process, HoldKind) matrix — the "who blocks whom" view the ROADMAP
// observability follow-ons asked for, and the channel-level aggregation
// Bollig & Gastin's MSC framing suggests.  Cells whose hold reason
// names no blocking process (e.g. wait_flush with no specific blocker)
// land in an explicit "unknown blocker" bucket, so the per-kind cell
// sums equal DelayAttribution::totals_by_kind() (up to FP summation
// order) — asserted in tests/obs_profile_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/obs/attribution.hpp"

namespace msgorder {

class JsonWriter;

struct HeatmapCell {
  /// Blocking process; nullopt when the hold reason named none.
  std::optional<ProcessId> blocker;
  ProcessId blocked = 0;  // the process the hold happened at
  HoldKind kind = HoldKind::kNone;
  SimTime total = 0;           // summed held time over all segments
  std::uint64_t segments = 0;  // closed segments aggregated into the cell

  SimTime mean() const {
    return segments > 0 ? total / static_cast<SimTime>(segments) : 0;
  }
};

class InhibitionHeatmap {
 public:
  /// Aggregate every closed segment of `attribution`.  Cells come out
  /// sorted by (kind, blocker — unknown last, blocked) so the JSON and
  /// text renderings are deterministic.
  static InhibitionHeatmap build(const DelayAttribution& attribution);

  const std::vector<HeatmapCell>& cells() const { return cells_; }

  /// Per-kind cell-total sums; equals the attribution table's
  /// totals_by_kind() by construction (the parity the tests assert).
  const std::array<SimTime, kHoldKindCount>& totals_by_kind() const {
    return totals_by_kind_;
  }

  /// Append the "inhibition_heatmap" report section as an object value:
  /// {"cells": [{"blocker": p|null, "blocked": p, "kind": "...",
  ///             "segments": n, "total": t, "mean": t}, ...],
  ///  "held_by_kind": {kind: t, ...}}.
  void write_json(JsonWriter& w) const;

 private:
  std::vector<HeatmapCell> cells_;
  std::array<SimTime, kHoldKindCount> totals_by_kind_{};
};

}  // namespace msgorder
