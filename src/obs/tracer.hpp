// Causal span tracer (ISSUE 2 tentpole): records each message's
// four-event lifecycle
//     x.s* (invoke) -> x.s (send) -> x.r* (receive) -> x.r (deliver)
// from the simulator's observer stream and renders it as Chrome Trace
// Event Format JSON, directly loadable in chrome://tracing or Perfetto
// (https://ui.perfetto.dev).  The rendering is
//   * one track (tid) per simulated process,
//   * a "hold" slice on the sender covering the protocol's send delay
//     (x.s* to x.s) and a "buffer" slice on the receiver covering the
//     delivery delay (x.r* to x.r),
//   * an instant event for each of the four lifecycle points, named in
//     the paper's notation ("x3.s*", "x3.r", ...),
//   * a flow arrow along every causal send->receive edge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/attribution.hpp"
#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

struct SpanTracerOptions {
  /// Chrome traces are denominated in microseconds; SimTime is an
  /// abstract unit.  One SimTime unit is rendered as this many trace
  /// microseconds (default: 1 unit = 1ms so typical runs span a
  /// readable few seconds).
  double time_scale = 1000.0;
  /// Track name of the whole simulation ("process" in trace terms).
  std::string process_name = "msgorder simulation";
};

class SpanTracer {
 public:
  explicit SpanTracer(SpanTracerOptions options = {});

  /// Observer entry point (signature matches SimObserver; attach via
  /// SimOptions::observability or ObserverMux::add).
  void on_event(ProcessId p, SystemEvent e, SimTime t);

  /// Attribution entry point (ISSUE 4): a closed hold segment becomes
  /// an "inhibit" slice on the holding process's track, named after the
  /// reason, nested inside the message's hold/buffer slice.
  void on_hold_segment(const HoldSegment& segment);

  /// Profiler entry point (ISSUE 7): one sample on counter track
  /// `name`, rendered as a Chrome "C" (counter) event — Perfetto plots
  /// each track as a counter graph above the process tracks.
  void add_counter_sample(const std::string& name, SimTime t, double value);

  std::size_t counter_sample_count() const { return counters_.size(); }

  std::size_t hold_segment_count() const { return hold_segments_.size(); }

  /// Number of messages whose full four-event lifecycle was observed.
  std::size_t complete_span_count() const;
  /// Number of messages with at least one observed event.
  std::size_t message_count() const { return lifecycles_.size(); }
  std::size_t process_count() const { return n_processes_; }

  /// The trace as a Chrome Trace Event Format document
  /// ({"traceEvents": [...], ...}).
  std::string chrome_trace_json() const;

  /// Serialize chrome_trace_json() to `path`.
  bool write_chrome_trace(const std::string& path,
                          std::string* error = nullptr) const;

 private:
  struct Lifecycle {
    std::optional<SimTime> invoke, send, receive, deliver;
    ProcessId sender = 0;
    ProcessId receiver = 0;
  };

  struct CounterSample {
    std::string name;
    SimTime time = 0;
    double value = 0;
  };

  Lifecycle& lifecycle(MessageId m);

  SpanTracerOptions options_;
  std::vector<Lifecycle> lifecycles_;  // indexed by MessageId
  std::vector<HoldSegment> hold_segments_;
  std::vector<CounterSample> counters_;
  std::size_t n_processes_ = 0;        // max observed process id + 1
};

}  // namespace msgorder
