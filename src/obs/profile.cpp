#include "src/obs/profile.hpp"

#include "src/obs/json.hpp"
#include "src/obs/tracer.hpp"

namespace msgorder {

void SimProfile::begin_run(const char* engine, std::size_t n_shards,
                           std::size_t n_workers, SimTime lookahead,
                           bool sampling) {
  engine_ = engine;
  shards_.assign(n_shards, ShardProfileRow{});
  workers_.assign(n_workers, WorkerProfileRow{});
  lookahead_ = lookahead;
  sampling_ = sampling;
  windows_ = 0;
  prev_window_start_ = 0;
  advance_sum_ = 0;
  advance_max_ = 0;
}

void SimProfile::sample(std::size_t s, SimTime window_end,
                        std::uint64_t entries, std::size_t heap_depth) {
  ShardProfileRow& row = shards_[s];
  if (row.samples.size() >= kMaxSamplesPerShard) {
    ++row.samples_dropped;
    return;
  }
  row.samples.push_back({window_end, static_cast<std::uint32_t>(entries),
                         static_cast<std::uint32_t>(heap_depth)});
}

void SimProfile::on_window(SimTime global_min) {
  if (windows_ > 0) {
    const SimTime advance = global_min - prev_window_start_;
    advance_sum_ += advance;
    if (advance > advance_max_) advance_max_ = advance;
  }
  prev_window_start_ = global_min;
  ++windows_;
}

std::uint64_t SimProfile::total_events() const {
  std::uint64_t n = 0;
  for (const ShardProfileRow& row : shards_) n += row.events;
  return n;
}

std::uint64_t SimProfile::total_entries() const {
  std::uint64_t n = 0;
  for (const ShardProfileRow& row : shards_) n += row.entries;
  return n;
}

std::uint64_t SimProfile::total_stall_lookahead() const {
  std::uint64_t n = 0;
  for (const ShardProfileRow& row : shards_) n += row.stall_lookahead;
  return n;
}

std::uint64_t SimProfile::total_stall_empty() const {
  std::uint64_t n = 0;
  for (const ShardProfileRow& row : shards_) n += row.stall_empty;
  return n;
}

std::uint64_t SimProfile::total_stall_backpressure() const {
  std::uint64_t n = 0;
  for (const ShardProfileRow& row : shards_) n += row.stall_backpressure;
  return n;
}

void SimProfile::write_json(JsonWriter& w) const {
  std::uint64_t samples_retained = 0;
  std::uint64_t samples_dropped = 0;
  for (const ShardProfileRow& row : shards_) {
    samples_retained += row.samples.size();
    samples_dropped += row.samples_dropped;
  }
  w.begin_object();
  w.kv("schema", "msgorder.profile/1");
  w.kv("engine", engine_);
  w.kv("shards", static_cast<std::uint64_t>(shards_.size()));
  w.kv("workers", static_cast<std::uint64_t>(workers_.size()));
  w.kv("lookahead", lookahead_);
  w.kv("windows", windows_);
  w.kv("window_advance_mean",
       windows_ > 1 ? advance_sum_ / static_cast<double>(windows_ - 1) : 0.0);
  w.kv("window_advance_max", advance_max_);
  w.kv("entries_total", total_entries());
  w.kv("events_total", total_events());
  w.key("stalls").begin_object();
  w.kv("lookahead", total_stall_lookahead());
  w.kv("empty_heap", total_stall_empty());
  w.kv("ring_backpressure", total_stall_backpressure());
  w.end_object();
  w.key("per_shard").begin_array();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardProfileRow& row = shards_[s];
    w.begin_object();
    w.kv("shard", static_cast<std::uint64_t>(s));
    w.kv("windows", row.windows);
    w.kv("busy_windows", row.busy_windows);
    w.kv("stall_lookahead", row.stall_lookahead);
    w.kv("stall_empty", row.stall_empty);
    w.kv("stall_backpressure", row.stall_backpressure);
    w.kv("entries", row.entries);
    w.kv("events", row.events);
    w.kv("max_entries_in_window", row.max_entries_in_window);
    w.kv("heap_depth_hwm", row.heap_depth_hwm);
    w.kv("ring_full_spins", row.ring_full_spins);
    w.kv("ring_empty_polls", row.ring_empty_polls);
    w.kv("ring_occupancy_hwm", row.ring_occupancy_hwm);
    w.kv("spill_drained", row.spill_drained);
    w.end_object();
  }
  w.end_array();
  w.key("per_worker").begin_array();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    w.begin_object();
    w.kv("worker", static_cast<std::uint64_t>(i));
    w.kv("barrier_waits", workers_[i].barrier_waits);
    w.kv("barrier_wait_seconds", workers_[i].barrier_wait_seconds);
    w.end_object();
  }
  w.end_array();
  w.kv("samples_retained", samples_retained);
  w.kv("samples_dropped", samples_dropped);
  w.end_object();
}

std::string SimProfile::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

void SimProfile::emit_counter_tracks(SpanTracer& tracer) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "shard" + std::to_string(s);
    const std::string entries_track = prefix + ".entries_per_window";
    const std::string heap_track = prefix + ".heap_depth";
    for (const ProfileSample& sample : shards_[s].samples) {
      tracer.add_counter_sample(entries_track, sample.time,
                                static_cast<double>(sample.entries));
      tracer.add_counter_sample(heap_track, sample.time,
                                static_cast<double>(sample.heap_depth));
    }
  }
}

}  // namespace msgorder
