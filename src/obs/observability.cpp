#include "src/obs/observability.hpp"

namespace msgorder {

SimInstruments SimInstruments::create(
    MetricsRegistry& registry, const std::string& label,
    const HistogramOptions& delay_histogram) {
  const std::string prefix = label.empty() ? "" : label + ".";
  SimInstruments ins;
  ins.events = &registry.counter(prefix + "sim.events");
  ins.timer_fires = &registry.counter(prefix + "sim.timer_fires");
  ins.user_packets = &registry.counter(prefix + "net.user_packets");
  ins.control_packets = &registry.counter(prefix + "net.control_packets");
  ins.control_bytes = &registry.counter(prefix + "net.control_bytes");
  ins.tag_bytes = &registry.counter(prefix + "net.tag_bytes");
  ins.drops = &registry.counter(prefix + "net.drops");
  ins.retransmissions = &registry.counter(prefix + "net.retransmissions");
  ins.duplicate_arrivals =
      &registry.counter(prefix + "net.duplicate_arrivals");
  ins.latency =
      &registry.histogram(prefix + "delay.latency", delay_histogram);
  ins.send_delay =
      &registry.histogram(prefix + "delay.send", delay_histogram);
  ins.delivery_delay =
      &registry.histogram(prefix + "delay.delivery", delay_histogram);
  ins.buffered_depth = &registry.gauge(prefix + "sim.buffered_depth");
  ins.hold_segments = &registry.counter(prefix + "hold.segments");
  ins.tracelog_events = &registry.counter(prefix + "tracelog.events_written");
  ins.tracelog_bytes = &registry.counter(prefix + "tracelog.bytes_written");
  for (std::size_t k = 1; k < kHoldKindCount; ++k) {
    ins.hold_time[k] = &registry.histogram(
        prefix + "hold." + to_string(static_cast<HoldKind>(k)),
        delay_histogram);
  }
  return ins;
}

Observability::Observability(ObservabilityOptions options)
    : options_(std::move(options)),
      instruments_(SimInstruments::create(metrics_, options_.label,
                                          options_.delay_histogram)) {
  if (options_.tracing) tracer_.emplace(options_.tracer);
  if (options_.flight_recorder) {
    recorder_.emplace(options_.flight_recorder_capacity);
  }
  if (options_.profiling) profile_.emplace();
  if (!options_.tracelog.empty()) tracelog_.emplace(options_.tracelog);
}

void Observability::begin_run(std::size_t n_messages) {
  if (options_.attribution) attribution_.emplace(n_messages);
}

}  // namespace msgorder
