#include "src/obs/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace msgorder {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair, no separator
  }
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'O' || top == 'A') {
    out_ += ',';
  } else {
    top = (top == '{') ? 'O' : 'A';  // first element seen
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && (stack_.back() == '{' || stack_.back() == 'O'));
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && (stack_.back() == '[' || stack_.back() == 'A'));
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && (stack_.back() == '{' || stack_.back() == 'O'));
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

namespace {

/// Recursive-descent JSON checker (no value materialization).
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      *error = (error_.empty() ? std::string("invalid JSON") : error_) +
               " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool value() {
    if (++depth_ > 256) {
      error_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
    } else {
      switch (text_[pos_]) {
        case '{':
          ok = object();
          break;
        case '[':
          ok = array();
          break;
        case '"':
          ok = string();
          break;
        case 't':
          ok = literal("true");
          break;
        case 'f':
          ok = literal("false");
          break;
        case 'n':
          ok = literal("null");
          break;
        default:
          ok = number();
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        error_ = "expected object key";
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error_ = "expected ':'";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or ']'";
      return false;
    }
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      error_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        error_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              error_ = "bad \\u escape";
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          error_ = "bad escape";
          return false;
        }
      }
      ++pos_;
    }
    error_ = "unterminated string";
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      error_ = "expected value";
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        error_ = "bad fraction";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        error_ = "bad exponent";
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return Validator(text).run(error);
}

bool write_text_file(const std::string& path, std::string_view contents,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.close();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace msgorder
