#include "src/obs/heatmap.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/obs/json.hpp"

namespace msgorder {

InhibitionHeatmap InhibitionHeatmap::build(
    const DelayAttribution& attribution) {
  InhibitionHeatmap out;
  // Key blockers by process id + 1 with 0 meaning "unknown", so the map
  // order already puts known blockers first in id order ... except that
  // 0 sorts first; remap unknown to the maximum key instead.
  constexpr std::uint64_t kUnknown = ~std::uint64_t{0};
  std::map<std::tuple<std::uint8_t, std::uint64_t, ProcessId>, HeatmapCell>
      cells;
  for (MessageId m = 0; m < attribution.message_count(); ++m) {
    for (const HoldSegment& seg : attribution.segments(m)) {
      const std::uint64_t blocker_key =
          seg.reason.blocking_proc
              ? static_cast<std::uint64_t>(*seg.reason.blocking_proc)
              : kUnknown;
      HeatmapCell& cell =
          cells[{static_cast<std::uint8_t>(seg.reason.kind), blocker_key,
                 seg.process}];
      cell.blocker = seg.reason.blocking_proc;
      cell.blocked = seg.process;
      cell.kind = seg.reason.kind;
      cell.total += seg.duration();
      ++cell.segments;
    }
  }
  out.cells_.reserve(cells.size());
  for (auto& [key, cell] : cells) {
    out.totals_by_kind_[static_cast<std::size_t>(cell.kind)] += cell.total;
    out.cells_.push_back(cell);
  }
  return out;
}

void InhibitionHeatmap::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("cells").begin_array();
  for (const HeatmapCell& cell : cells_) {
    w.begin_object();
    w.key("blocker");
    if (cell.blocker) {
      w.value(static_cast<std::uint64_t>(*cell.blocker));
    } else {
      w.null();
    }
    w.kv("blocked", static_cast<std::uint64_t>(cell.blocked));
    w.kv("kind", to_string(cell.kind));
    w.kv("segments", cell.segments);
    w.kv("total", cell.total);
    w.kv("mean", cell.mean());
    w.end_object();
  }
  w.end_array();
  w.key("held_by_kind").begin_object();
  for (std::size_t k = 1; k < kHoldKindCount; ++k) {
    w.kv(to_string(static_cast<HoldKind>(k)), totals_by_kind_[k]);
  }
  w.end_object();
  w.end_object();
}

}  // namespace msgorder
