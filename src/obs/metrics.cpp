#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/json.hpp"

namespace msgorder {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  assert(options_.width > 0);
  if (options_.buckets == 0) options_.buckets = 1;
  counts_.assign(options_.buckets + 1, 0);  // +1 overflow
}

double Histogram::bucket_upper(std::size_t i) const {
  assert(i < options_.buckets);
  if (options_.scale == HistogramOptions::Scale::kLinear) {
    return options_.width * static_cast<double>(i + 1);
  }
  return options_.width * std::ldexp(1.0, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double v) const {
  if (v <= options_.width) return 0;
  if (options_.scale == HistogramOptions::Scale::kLinear) {
    const double idx = std::ceil(v / options_.width) - 1;
    if (idx >= static_cast<double>(options_.buckets)) return options_.buckets;
    return static_cast<std::size_t>(idx);
  }
  const double idx = std::ceil(std::log2(v / options_.width));
  if (idx >= static_cast<double>(options_.buckets)) return options_.buckets;
  return static_cast<std::size_t>(idx);
}

void Histogram::record(double v) {
  if (v < 0) v = 0;  // delays are nonnegative by construction
  ++counts_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

std::optional<double> Histogram::percentile(double p) const {
  if (count_ == 0) return std::nullopt;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t before = seen;
    seen += counts_[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i == options_.buckets) return max_;  // overflow bucket
    const double hi = std::min(bucket_upper(i), max_);
    double lo = (i == 0) ? std::min(min_, hi)
                         : (options_.scale == HistogramOptions::Scale::kLinear
                                ? bucket_upper(i) - options_.width
                                : bucket_upper(i) / 2);
    lo = std::max(lo, min_);
    if (lo > hi) lo = hi;
    const double frac =
        counts_[i] == 0
            ? 0
            : (rank - static_cast<double>(before)) /
                  static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions options) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(options)).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).begin_object();
    w.kv("value", g.value());
    w.kv("max", g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    write_histogram_json(w, h);
  }
  w.end_object();
}

void write_histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("mean", h.mean());
  w.kv("min", h.min());
  w.kv("max", h.max());
  const auto pct = [&](const char* key, double p) {
    const std::optional<double> v = h.percentile(p);
    if (v.has_value()) {
      w.kv(key, *v);
    } else {
      w.key(key).null();
    }
  };
  pct("p50", 50);
  pct("p90", 90);
  pct("p99", 99);
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.metrics/1");
  write_json(w);
  w.end_object();
  return w.take();
}

}  // namespace msgorder
