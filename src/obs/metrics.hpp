// Metrics registry for the observability layer (ISSUE 2 tentpole):
// counters, gauges, and fixed-bucket histograms with percentile queries.
//
// Design constraints:
//  * "Lock-cheap": the simulator is single-threaded, so instruments are
//    plain integer/double cells with no atomics or locks; the registry
//    hands out *stable* references (node-based storage), so hot paths
//    register once and then touch only the instrument, never the map.
//  * Fixed buckets: histograms pre-allocate their buckets at
//    construction (default: 64 power-of-two buckets, which covers the
//    simulator's full latency range from sub-unit async delivery to the
//    ~10^4 latencies of the sync protocols); recording is an O(1)
//    bucket increment with exact sum/min/max tracked on the side.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace msgorder {

class JsonWriter;

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level with high-watermark tracking (e.g. the number of
/// messages currently buffered by the protocols).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0;
  double max_ = 0;
};

struct HistogramOptions {
  enum class Scale {
    kLinear,  // bucket i covers (i*width, (i+1)*width]
    kExp2,    // bucket i covers (width*2^(i-1), width*2^i], bucket 0 = [0,width]
  };
  Scale scale = Scale::kExp2;
  /// Upper edge of the first bucket (and the linear bucket width).
  double width = 1.0;
  /// Number of finite buckets; values past the last edge land in an
  /// overflow bucket whose percentile estimate is the observed max.
  std::size_t buckets = 64;
};

/// Fixed-bucket histogram: O(1) record, percentile by bucket scan with
/// linear interpolation inside the winning bucket (exact min/max/sum are
/// tracked separately, so p0/p100 and mean are exact).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  /// Estimate of the p-th percentile (p in [0,100]).  nullopt when the
  /// histogram is empty — an empty histogram has no percentiles, and
  /// the old 0 sentinel was indistinguishable from a real 0 sample
  /// (ISSUE 4 satellite).
  std::optional<double> percentile(double p) const;

  const HistogramOptions& options() const { return options_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Upper edge of finite bucket i.
  double bucket_upper(std::size_t i) const;

 private:
  std::size_t bucket_index(double v) const;

  HistogramOptions options_;
  std::vector<std::uint64_t> counts_;  // options_.buckets + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named instrument store.  Same name => same instrument (the first
/// registration's histogram options win).  References remain valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, HistogramOptions options = {});

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Serialize every instrument into the open object of `w` under the
  /// keys "counters" / "gauges" / "histograms"
  /// (see also write_histogram_json below for the histogram layout)
  /// (schema: msgorder.metrics/1, documented in DESIGN.md).
  void write_json(JsonWriter& w) const;
  /// Whole registry as a standalone JSON object.
  std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// The stable histogram summary object used by every report schema:
/// {"count": n, "mean": x, "min": x, "max": x, "p50": x, "p90": x,
///  "p99": x}.  The percentile fields are null when the histogram is
/// empty.
void write_histogram_json(JsonWriter& w, const Histogram& h);

}  // namespace msgorder
