// Machine-readable run reports (ISSUE 2 tentpole): serialize a
// SimResult — plus the attached metrics registry and the online
// monitor's first violation witness, when present — to a stable JSON
// schema, so every simulation is an exportable artifact.
//
// Schema "msgorder.run_report/1" (field-by-field docs in DESIGN.md,
// "Observability"):
//
// {
//   "schema": "msgorder.run_report/1",
//   "protocol": "...", "n_processes": N, "seed": S,
//   "completed": true, "error": "",
//   "messages": {"universe": n, "invoked": n, "delivered": n},
//   "overhead": {"user_packets": n, "control_packets": n,
//                "control_bytes": n, "tag_bytes": n,
//                "control_packets_per_message": x, "mean_tag_bytes": x,
//                "drops": n, "retransmissions": n,
//                "duplicate_arrivals": n},
//   "latency": {"mean": x, "max": x, "mean_delivery_delay": x,
//               "percentiles": {"p50": x, "p90": x, "p99": x} | null},
//   "monitor": {"violated": b, "violation_count": n,
//               "events_seen": n, "events_to_detection": n,
//               "first_violation_time": x,
//               "witness": [{"var": "x", "msg": id, "src": p, "dst": p,
//                            "color": c}, ...] | null} | null,
//   "attribution": {"segments": n, "held_by_reason": {reason: t, ...},
//                   "messages": [{"msg": id, "held_send": t,
//                                 "held_delivery": t,
//                                 "segments": [...]}, ...]} | null,
//   "inhibition_heatmap": {"cells": [{"blocker": p | null, "blocked": p,
//                                     "kind": "...", "segments": n,
//                                     "total": t, "mean": t}, ...],
//                          "held_by_kind": {kind: t, ...}} | null,
//   "profile": {...msgorder.profile/1 body (src/obs/profile.hpp)...}
//              | null,
//   "tracelog": {"path": "...", "events_written": n,
//                "bytes_written": n} | null,
//   "metrics": {...msgorder.metrics/1 body...} | null
// }
//
// "inhibition_heatmap" aggregates the attribution table per channel:
// cell (blocker, blocked, kind) sums every hold segment of that kind
// charged to `blocked` whose reason names `blocker` (null blocker =
// reasons without a blocking process).  Cell totals therefore sum to
// attribution.held_by_reason, kind by kind (up to FP summation order).
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/simulator.hpp"

namespace msgorder {

class OnlineMonitor;

struct RunReportOptions {
  /// Name of the protocol under test (free-form label).
  std::string protocol;
  std::size_t n_processes = 0;
  std::uint64_t seed = 0;
};

/// Render the report document.  `obs` and `monitor` are optional; when
/// absent the corresponding sections are null.
std::string run_report_json(const SimResult& result,
                            const RunReportOptions& options,
                            const Observability* obs = nullptr,
                            const OnlineMonitor* monitor = nullptr);

/// run_report_json + write_text_file.
bool write_run_report(const std::string& path, const SimResult& result,
                      const RunReportOptions& options,
                      const Observability* obs = nullptr,
                      const OnlineMonitor* monitor = nullptr,
                      std::string* error = nullptr);

/// Post-mortem dump (ISSUE 4 tentpole): when the run went red — the
/// monitor detected a violation, or the simulation did not complete
/// (event cap, undelivered messages) — and `obs` carries a flight
/// recorder, annotate the cause (plus the violation witness, when one
/// exists) and dump the ring to `path`.  Returns true iff a dump was
/// written; a green run or a missing recorder writes nothing.
bool dump_postmortem_if_red(const std::string& path, const SimResult& result,
                            Observability* obs,
                            const OnlineMonitor* monitor = nullptr,
                            std::string* error = nullptr);

}  // namespace msgorder
