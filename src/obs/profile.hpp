// Simulation profiling layer (ISSUE 7 tentpole): per-shard, per-window
// counters collected inside both simulator engines so the sharded
// engine's internals — conservative-window stalls, SPSC ring
// backpressure, barrier waits, heap pressure — stop being a black box.
//
// Collection is strictly opt-in: enable ObservabilityOptions::profiling
// and the engines fill the rows below; leave it off (or attach no
// Observability at all) and the engines see a null SimProfile pointer,
// so the hot path pays at most one cached pointer test per window /
// heap push (bounded by bench_protocol_overhead --overhead-guard).
//
// Threading contract: each ShardProfileRow is written only by the
// worker thread driving that shard (rows are cache-line separated), each
// WorkerProfileRow only by its worker, and the window-level aggregates
// only by the single-threaded window reduction — so no counter needs an
// atomic.  Everything is read after the run joins.
//
// Output: a "msgorder.profile/1" JSON section (embedded in
// msgorder.run_report/1 and writable standalone via the examples'
// --profile flag) plus Perfetto counter tracks ("C" phase events)
// through the span tracer when tracing is enabled alongside profiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class JsonWriter;
class SpanTracer;

/// One per-window measurement retained for the Perfetto counter tracks
/// (bounded per shard; overflow is counted, never silently dropped).
struct ProfileSample {
  SimTime time = 0;            // window end
  std::uint32_t entries = 0;   // queue entries processed this window
  std::uint32_t heap_depth = 0;  // shard heap size at the window end
};

/// Per-shard counters.  Cache-line aligned: each row has exactly one
/// writer (the worker driving the shard) for the whole run.
struct alignas(64) ShardProfileRow {
  std::uint64_t windows = 0;        // windows this shard was polled in
  std::uint64_t busy_windows = 0;   // windows with >= 1 entry processed
  /// Zero-progress windows by attributed cause: entries were pending but
  /// all beyond the conservative window (lookahead exhaustion) ...
  std::uint64_t stall_lookahead = 0;
  /// ... nothing was pending at all ...
  std::uint64_t stall_empty = 0;
  /// ... or nothing was pending because the inbound packets were parked
  /// in a producer spill vector behind a full SPSC ring (detected when
  /// the post-window drain admits spilled packets into an idle shard).
  std::uint64_t stall_backpressure = 0;
  std::uint64_t entries = 0;   // queue entries processed (invokes/arrivals/timers)
  std::uint64_t events = 0;    // trace events recorded (sums to sim.events)
  std::uint64_t max_entries_in_window = 0;
  std::uint64_t heap_depth_hwm = 0;
  std::uint64_t ring_full_spins = 0;   // failed try_push -> spill (producer side)
  std::uint64_t ring_empty_polls = 0;  // barrier drains that found a ring empty
  /// Max packets found in any single inbound ring at one barrier drain —
  /// the occupancy high-water mark as observable without a shared size
  /// counter on the ring itself.
  std::uint64_t ring_occupancy_hwm = 0;
  std::uint64_t spill_drained = 0;  // packets admitted from spill vectors
  std::vector<ProfileSample> samples;
  std::uint64_t samples_dropped = 0;
};

/// Per-worker barrier accounting (threaded mode only; the cooperative
/// single-worker loop has no barriers and leaves the row zero).
struct alignas(64) WorkerProfileRow {
  std::uint64_t barrier_waits = 0;
  double barrier_wait_seconds = 0;
};

class SimProfile {
 public:
  /// Cap on retained per-shard counter samples; past it, samples are
  /// counted in samples_dropped instead (the counters stay exact).
  static constexpr std::size_t kMaxSamplesPerShard = 4096;

  /// Called by the engine that owns this run: resets every row and
  /// records the topology.  `sampling` retains per-window samples for
  /// the Perfetto counter tracks (enabled when a tracer is attached).
  void begin_run(const char* engine, std::size_t n_shards,
                 std::size_t n_workers, SimTime lookahead, bool sampling);

  ShardProfileRow& shard(std::size_t s) { return shards_[s]; }
  const ShardProfileRow& shard(std::size_t s) const { return shards_[s]; }
  WorkerProfileRow& worker(std::size_t w) { return workers_[w]; }
  const WorkerProfileRow& worker(std::size_t w) const { return workers_[w]; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t worker_count() const { return workers_.size(); }

  bool sampling() const { return sampling_; }
  /// Retain one per-window sample for shard `s` (bounded; single writer
  /// per shard, same as the row counters).
  void sample(std::size_t s, SimTime window_end, std::uint64_t entries,
              std::size_t heap_depth);

  /// Called by the single-threaded window reduction each time a new
  /// window is agreed; `global_min` is the earliest pending time the
  /// window starts from.
  void on_window(SimTime global_min);

  std::uint64_t windows() const { return windows_; }
  SimTime lookahead() const { return lookahead_; }
  const std::string& engine() const { return engine_; }
  std::uint64_t total_events() const;
  std::uint64_t total_entries() const;
  std::uint64_t total_stall_lookahead() const;
  std::uint64_t total_stall_empty() const;
  std::uint64_t total_stall_backpressure() const;

  /// Append the "msgorder.profile/1" section as an object value (the
  /// "schema" tag is inside, so the section validates standalone too).
  void write_json(JsonWriter& w) const;
  /// The section as a complete standalone JSON document.
  std::string to_json() const;

  /// Render the retained samples as Perfetto counter tracks
  /// ("shard<i>.entries_per_window" and "shard<i>.heap_depth").
  void emit_counter_tracks(SpanTracer& tracer) const;

 private:
  std::string engine_ = "sequential";
  std::vector<ShardProfileRow> shards_;
  std::vector<WorkerProfileRow> workers_;
  SimTime lookahead_ = 0;
  bool sampling_ = false;
  // Window aggregates, written only by the reduction.
  std::uint64_t windows_ = 0;
  SimTime prev_window_start_ = 0;
  SimTime advance_sum_ = 0;
  SimTime advance_max_ = 0;
};

}  // namespace msgorder
