#include "src/obs/attribution.hpp"

#include "src/obs/json.hpp"

namespace msgorder {

std::string to_string(HoldPhase phase) {
  return phase == HoldPhase::kSend ? "send" : "delivery";
}

DelayAttribution::DelayAttribution(std::size_t n_messages)
    : per_message_(n_messages) {}

const HoldSegment* DelayAttribution::close_open(PerMessage& pm,
                                                SimTime now) {
  pm.open = false;
  last_closed_ = HoldSegment{
      static_cast<MessageId>(&pm - per_message_.data()), pm.process,
      pm.phase, pm.reason, pm.begin, now};
  pm.closed.push_back(last_closed_);
  const auto kind = static_cast<std::size_t>(pm.reason.kind);
  if (kind < kHoldKindCount) {
    totals_by_kind_[kind] += last_closed_.duration();
  }
  ++segment_count_;
  return &last_closed_;
}

const HoldSegment* DelayAttribution::on_hold(MessageId msg,
                                             ProcessId process,
                                             HoldPhase phase,
                                             const HoldReason& reason,
                                             SimTime now) {
  if (msg >= per_message_.size()) return nullptr;
  PerMessage& pm = per_message_[msg];
  const HoldSegment* closed = nullptr;
  if (pm.open) {
    // Same phase and reason: the hold simply persists; keep the segment
    // open so re-reports on every drain pass do not fragment the table.
    if (pm.phase == phase && pm.reason == reason) return nullptr;
    closed = close_open(pm, now);
  }
  pm.open = true;
  pm.phase = phase;
  pm.reason = reason;
  pm.process = process;
  pm.begin = now;
  return closed;
}

const HoldSegment* DelayAttribution::on_release(MessageId msg,
                                                HoldPhase phase,
                                                SimTime now) {
  if (msg >= per_message_.size()) return nullptr;
  PerMessage& pm = per_message_[msg];
  if (!pm.open || pm.phase != phase) return nullptr;
  return close_open(pm, now);
}

SimTime DelayAttribution::held_time(MessageId msg, HoldPhase phase) const {
  SimTime total = 0;
  for (const HoldSegment& s : per_message_[msg].closed) {
    if (s.phase == phase) total += s.duration();
  }
  return total;
}

void write_hold_reason_json(JsonWriter& w, const HoldReason& reason) {
  w.begin_object();
  w.kv("kind", to_string(reason.kind));
  if (reason.blocking_msg.has_value()) {
    w.kv("blocking_msg", *reason.blocking_msg);
  }
  if (reason.blocking_proc.has_value()) {
    w.kv("blocking_proc", static_cast<std::uint64_t>(*reason.blocking_proc));
  }
  w.end_object();
}

void DelayAttribution::write_json(JsonWriter& w,
                                  std::size_t max_messages) const {
  w.begin_object();
  w.kv("segments", segment_count_);
  w.key("held_by_reason").begin_object();
  for (std::size_t k = 1; k < kHoldKindCount; ++k) {
    w.kv(to_string(static_cast<HoldKind>(k)), totals_by_kind_[k]);
  }
  w.end_object();
  w.key("messages").begin_array();
  std::size_t written = 0;
  for (MessageId m = 0; m < per_message_.size(); ++m) {
    const PerMessage& pm = per_message_[m];
    if (pm.closed.empty()) continue;
    if (max_messages != 0 && written >= max_messages) break;
    ++written;
    w.begin_object();
    w.kv("msg", m);
    w.kv("held_send", held_time(m, HoldPhase::kSend));
    w.kv("held_delivery", held_time(m, HoldPhase::kDelivery));
    w.key("segments").begin_array();
    for (const HoldSegment& s : pm.closed) {
      w.begin_object();
      w.kv("phase", to_string(s.phase));
      w.kv("process", static_cast<std::uint64_t>(s.process));
      w.kv("begin", s.begin);
      w.kv("end", s.end);
      w.key("reason");
      write_hold_reason_json(w, s.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace msgorder
