// Per-message delay attribution (ISSUE 4 tentpole): the paper's
// inhibitor made measurable.  The simulator forwards every
// Host::hold(msg, reason) here; segments open at the report time and
// close when the reason changes or the inhibited event (x.s or x.r)
// finally executes.  Because protocols report the *first* hold at the
// moment they decline to release (invoke time on the send side,
// receive time on the delivery side) and consecutive segments share
// their boundary instant, the per-reason segment times of a message sum
// exactly to its recorded send/delivery delay — asserted across the
// protocol registry by tests/obs_attribution_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class JsonWriter;

/// Which of a message's two inhibitable transitions a hold delays.
enum class HoldPhase : std::uint8_t {
  kSend,      // x.s* -> x.s, released by the send event
  kDelivery,  // x.r* -> x.r, released by the delivery event
};

std::string to_string(HoldPhase phase);

/// One closed attribution interval: `reason` held `msg` at `process`
/// over [begin, end].
struct HoldSegment {
  MessageId msg = 0;
  ProcessId process = 0;  // where the hold happened (src / dst)
  HoldPhase phase = HoldPhase::kDelivery;
  HoldReason reason;
  SimTime begin = 0;
  SimTime end = 0;

  SimTime duration() const { return end - begin; }
};

/// The run-level attribution table: per message, the closed hold
/// segments in time order, plus aggregate per-reason totals.  Single
/// writer (the simulator engine); size is known up front so hot-path
/// appends never rehash.
class DelayAttribution {
 public:
  explicit DelayAttribution(std::size_t n_messages);

  /// A protocol (re-)reported a hold.  A same-reason re-report extends
  /// the open segment; a new reason closes it at `now` and opens the
  /// next one.  Returns the closed segment, if this report closed one.
  /// `process` is the process the report came from.
  const HoldSegment* on_hold(MessageId msg, ProcessId process,
                             HoldPhase phase, const HoldReason& reason,
                             SimTime now);

  /// The inhibited event executed: close any open segment of `phase` at
  /// `now`.  Returns the closed segment, if any.
  const HoldSegment* on_release(MessageId msg, HoldPhase phase,
                                SimTime now);

  std::size_t message_count() const { return per_message_.size(); }
  const std::vector<HoldSegment>& segments(MessageId msg) const {
    return per_message_[msg].closed;
  }
  /// Sum of closed-segment durations of one phase for one message.
  SimTime held_time(MessageId msg, HoldPhase phase) const;
  /// Run-wide total held time per reason kind (both phases).
  const std::array<SimTime, kHoldKindCount>& totals_by_kind() const {
    return totals_by_kind_;
  }
  std::uint64_t segment_count() const { return segment_count_; }
  /// True iff `msg` has a hold segment that was never closed by a
  /// release — in a complete run this means the engine recorded no
  /// matching send/delivery for a reported inhibition.
  bool has_open_hold(MessageId msg) const {
    return per_message_[msg].open;
  }

  /// Append the "attribution" report section: per-reason totals plus
  /// the per-message table (only messages that were ever held), as an
  /// open value for the current key (schema part of
  /// msgorder.run_report/1, see DESIGN.md "Observability").
  void write_json(JsonWriter& w, std::size_t max_messages = 0) const;

 private:
  struct PerMessage {
    bool open = false;
    HoldPhase phase = HoldPhase::kDelivery;
    HoldReason reason;
    ProcessId process = 0;
    SimTime begin = 0;
    std::vector<HoldSegment> closed;
  };

  const HoldSegment* close_open(PerMessage& pm, SimTime now);

  std::vector<PerMessage> per_message_;
  std::array<SimTime, kHoldKindCount> totals_by_kind_{};
  std::uint64_t segment_count_ = 0;
  HoldSegment last_closed_;
};

/// Serialize one hold reason as an object ({"kind": "...", optional
/// "blocking_msg"/"blocking_proc"}).
void write_hold_reason_json(JsonWriter& w, const HoldReason& reason);

}  // namespace msgorder
