#include "src/obs/flight_recorder.hpp"

#include <utility>

#include "src/obs/json.hpp"

namespace msgorder {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::on_event(ProcessId p, SystemEvent e, SimTime t) {
  FlightRecord& r = ring_[written_++ % ring_.size()];
  r.type = FlightRecord::Type::kEvent;
  r.time = t;
  r.process = p;
  r.event = e;
  r.note.clear();
}

void FlightRecorder::on_hold_segment(const HoldSegment& segment) {
  FlightRecord& r = ring_[written_++ % ring_.size()];
  r.type = FlightRecord::Type::kHold;
  r.time = segment.end;
  r.process = segment.process;
  r.segment = segment;
  r.note.clear();
}

void FlightRecorder::note(std::string text, SimTime t) {
  FlightRecord& r = ring_[written_++ % ring_.size()];
  r.type = FlightRecord::Type::kNote;
  r.time = t;
  r.process = 0;
  r.note = std::move(text);
}

std::string FlightRecorder::to_json(const std::string& cause,
                                    const std::string& tracelog_path) const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.flight_recorder/1");
  w.kv("cause", cause);
  w.key("tracelog");
  if (tracelog_path.empty()) {
    w.null();
  } else {
    w.value(tracelog_path);
  }
  w.kv("capacity", capacity());
  w.kv("total_records", total_records());
  w.kv("dropped", total_records() - size());
  w.key("records").begin_array();
  for_each([&](const FlightRecord& r) {
    w.begin_object();
    w.kv("t", r.time);
    switch (r.type) {
      case FlightRecord::Type::kEvent:
        w.kv("type", "event");
        w.kv("process", static_cast<std::uint64_t>(r.process));
        w.kv("event", to_string(r.event));
        w.kv("msg", r.event.msg);
        break;
      case FlightRecord::Type::kHold:
        w.kv("type", "hold");
        w.kv("process", static_cast<std::uint64_t>(r.process));
        w.kv("msg", r.segment.msg);
        w.kv("phase", to_string(r.segment.phase));
        w.kv("begin", r.segment.begin);
        w.kv("end", r.segment.end);
        w.key("reason");
        write_hold_reason_json(w, r.segment.reason);
        break;
      case FlightRecord::Type::kNote:
        w.kv("type", "note");
        w.kv("note", r.note);
        break;
    }
    w.end_object();
  });
  w.end_array();
  w.end_object();
  return w.take();
}

bool FlightRecorder::dump(const std::string& path, const std::string& cause,
                          const std::string& tracelog_path,
                          std::string* error) const {
  return write_text_file(path, to_json(cause, tracelog_path), error);
}

}  // namespace msgorder
