// Minimal dependency-free JSON support for the observability layer: a
// streaming writer (used by the metrics registry, the span tracer, and
// the run/bench reports) and a strict validator (used by tests to prove
// every emitted artifact is well-formed before it is fed to external
// consumers such as Perfetto).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace msgorder {

/// Escape a string for inclusion inside JSON quotes (no surrounding
/// quotes added).
std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma placement.  Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("protocol").value("fifo");
///   w.key("rows").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// The writer never validates nesting beyond an assert-level depth
/// check; callers are expected to produce balanced documents (tests
/// back this with json_validate).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value or
  /// container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) {
    return value(static_cast<std::uint64_t>(u));
  }
  JsonWriter& null();

  /// key(name) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  /// One char per open container: '{' or '['; top of stack tracks
  /// whether a separator is pending ('O'/'A' after the first element).
  std::string stack_;
  bool pending_key_ = false;
};

/// Strict recursive-descent validation of a complete JSON document.
/// Returns true iff `text` is exactly one valid JSON value (with
/// whitespace allowed around it).  On failure `error` (if non-null)
/// receives a short description with the byte offset.
bool json_validate(std::string_view text, std::string* error = nullptr);

/// Write `contents` to `path` atomically enough for reports (truncate +
/// write + close).  Returns false and fills `error` on I/O failure.
bool write_text_file(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

}  // namespace msgorder
