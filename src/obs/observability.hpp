// The per-run observability bundle (ISSUE 2 tentpole): one object that
// owns a metrics registry wired with the simulator's standard
// instruments and, optionally, the causal span tracer.  Attach it via
// SimOptions::observability; the default (nullptr) keeps the simulator
// on its zero-cost path (a single pointer test per event, verified to
// cost < 2% on bench_protocol_overhead).
//
//   Observability obs({.tracing = true, .label = "fifo"});
//   SimOptions sopts;
//   sopts.observability = &obs;
//   const SimResult result = simulate(workload, factory, n, sopts);
//   obs.metrics().to_json();                       // metrics dump
//   obs.tracer()->write_chrome_trace("run.json");  // open in Perfetto
#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/obs/attribution.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/tracelog.hpp"
#include "src/obs/tracer.hpp"

namespace msgorder {

/// The simulator's standard instruments, registered on a MetricsRegistry.
/// All pointers are non-owning and stable (registry storage is
/// node-based).  Metric names are listed in DESIGN.md ("Observability").
struct SimInstruments {
  Counter* events = nullptr;              // sim.events
  Counter* timer_fires = nullptr;         // sim.timer_fires
  Counter* user_packets = nullptr;        // net.user_packets
  Counter* control_packets = nullptr;     // net.control_packets
  Counter* control_bytes = nullptr;       // net.control_bytes
  Counter* tag_bytes = nullptr;           // net.tag_bytes
  Counter* drops = nullptr;               // net.drops
  Counter* retransmissions = nullptr;     // net.retransmissions
  Counter* duplicate_arrivals = nullptr;  // net.duplicate_arrivals
  Histogram* latency = nullptr;           // delay.latency (x.s* -> x.r)
  Histogram* send_delay = nullptr;        // delay.send (x.s* -> x.s)
  Histogram* delivery_delay = nullptr;    // delay.delivery (x.r* -> x.r)
  Gauge* buffered_depth = nullptr;        // sim.buffered_depth (x.r* seen,
                                          // x.r pending, across processes)
  Counter* hold_segments = nullptr;       // hold.segments (closed segments)
  Counter* tracelog_events = nullptr;     // tracelog.events_written
  Counter* tracelog_bytes = nullptr;      // tracelog.bytes_written
  /// Per-reason hold-time histograms, hold.<reason> (one closed
  /// attribution segment = one sample); index by HoldKind, slot
  /// kNone unused (ISSUE 4).
  std::array<Histogram*, kHoldKindCount> hold_time{};

  /// Register the standard instruments on `registry`.  Non-empty
  /// `label` (e.g. the protocol under test) becomes a "<label>." name
  /// prefix so several runs can share one registry.
  static SimInstruments create(MetricsRegistry& registry,
                               const std::string& label = "",
                               const HistogramOptions& delay_histogram = {});
};

struct ObservabilityOptions {
  /// Attach the causal span tracer (off by default; metrics are always
  /// collected once an Observability is attached at all).
  bool tracing = false;
  /// Collect per-message inhibition attribution (ISSUE 4): hold
  /// reasons reported by the protocols become per-reason histograms,
  /// tracer hold slices, and the run report's attribution table.  On by
  /// default — attribution is the point of attaching observability; the
  /// zero-cost path is "no Observability at all".
  bool attribution = true;
  /// Collect the engine profiler's per-shard window/stall/ring/barrier
  /// counters (ISSUE 7; off by default).  The profile describes the most
  /// recent run and is embedded in msgorder.run_report/1 as the
  /// "profile" section; with tracing also on, per-window samples render
  /// as Perfetto counter tracks.
  bool profiling = false;
  /// Attach a flight recorder of the last `flight_recorder_capacity`
  /// records, dumped post-mortem on red runs (off by default).
  bool flight_recorder = false;
  std::size_t flight_recorder_capacity = 1024;
  /// Write the causal trace log (msgorder.tracelog/1, ISSUE 9) to this
  /// path; empty keeps the log off and the engines on their zero-cost
  /// path (enforced by bench_protocol_overhead --overhead-guard).  Both
  /// engines emit the identical record stream for the same run — query
  /// and diff logs with tools/msgorder_query.cpp.
  std::string tracelog;
  /// Metric name prefix, typically the protocol under test.
  std::string label;
  /// Bucket layout shared by the three delay histograms.
  HistogramOptions delay_histogram = {};
  SpanTracerOptions tracer = {};
};

class Observability {
 public:
  explicit Observability(ObservabilityOptions options = {});

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  SimInstruments& instruments() { return instruments_; }
  const SimInstruments& instruments() const { return instruments_; }

  /// nullptr unless tracing was enabled in the options.
  SpanTracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }
  const SpanTracer* tracer() const { return tracer_ ? &*tracer_ : nullptr; }

  /// nullptr unless attribution was enabled AND a run attached (the
  /// simulator calls begin_run with the universe size; the table always
  /// describes the most recent run).
  DelayAttribution* attribution() {
    return attribution_ ? &*attribution_ : nullptr;
  }
  const DelayAttribution* attribution() const {
    return attribution_ ? &*attribution_ : nullptr;
  }

  /// nullptr unless the flight recorder was enabled in the options.
  FlightRecorder* flight_recorder() {
    return recorder_ ? &*recorder_ : nullptr;
  }
  const FlightRecorder* flight_recorder() const {
    return recorder_ ? &*recorder_ : nullptr;
  }

  /// nullptr unless profiling was enabled in the options.  The engines
  /// reset it (SimProfile::begin_run) with the run's topology; after the
  /// run it holds that run's counters.
  SimProfile* profile() { return profile_ ? &*profile_ : nullptr; }
  const SimProfile* profile() const {
    return profile_ ? &*profile_ : nullptr;
  }

  /// nullptr unless a tracelog path was set in the options.  The engines
  /// rewrite the file each run (like the attribution table, it describes
  /// the most recent run).
  TraceLogWriter* tracelog() { return tracelog_ ? &*tracelog_ : nullptr; }
  const TraceLogWriter* tracelog() const {
    return tracelog_ ? &*tracelog_ : nullptr;
  }

  /// Called by the simulator when a run attaches: sizes a fresh
  /// attribution table to the run's message universe (when enabled).
  /// The flight recorder deliberately persists across runs — its whole
  /// point is to retain the most recent records.
  void begin_run(std::size_t n_messages);

  const ObservabilityOptions& options() const { return options_; }

 private:
  ObservabilityOptions options_;
  MetricsRegistry metrics_;
  SimInstruments instruments_;
  std::optional<SpanTracer> tracer_;
  std::optional<DelayAttribution> attribution_;
  std::optional<FlightRecorder> recorder_;
  std::optional<SimProfile> profile_;
  std::optional<TraceLogWriter> tracelog_;
};

}  // namespace msgorder
