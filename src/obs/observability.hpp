// The per-run observability bundle (ISSUE 2 tentpole): one object that
// owns a metrics registry wired with the simulator's standard
// instruments and, optionally, the causal span tracer.  Attach it via
// SimOptions::observability; the default (nullptr) keeps the simulator
// on its zero-cost path (a single pointer test per event, verified to
// cost < 2% on bench_protocol_overhead).
//
//   Observability obs({.tracing = true, .label = "fifo"});
//   SimOptions sopts;
//   sopts.observability = &obs;
//   const SimResult result = simulate(workload, factory, n, sopts);
//   obs.metrics().to_json();                       // metrics dump
//   obs.tracer()->write_chrome_trace("run.json");  // open in Perfetto
#pragma once

#include <optional>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"

namespace msgorder {

/// The simulator's standard instruments, registered on a MetricsRegistry.
/// All pointers are non-owning and stable (registry storage is
/// node-based).  Metric names are listed in DESIGN.md ("Observability").
struct SimInstruments {
  Counter* events = nullptr;              // sim.events
  Counter* timer_fires = nullptr;         // sim.timer_fires
  Counter* user_packets = nullptr;        // net.user_packets
  Counter* control_packets = nullptr;     // net.control_packets
  Counter* control_bytes = nullptr;       // net.control_bytes
  Counter* tag_bytes = nullptr;           // net.tag_bytes
  Counter* drops = nullptr;               // net.drops
  Counter* retransmissions = nullptr;     // net.retransmissions
  Counter* duplicate_arrivals = nullptr;  // net.duplicate_arrivals
  Histogram* latency = nullptr;           // delay.latency (x.s* -> x.r)
  Histogram* send_delay = nullptr;        // delay.send (x.s* -> x.s)
  Histogram* delivery_delay = nullptr;    // delay.delivery (x.r* -> x.r)
  Gauge* buffered_depth = nullptr;        // sim.buffered_depth (x.r* seen,
                                          // x.r pending, across processes)

  /// Register the standard instruments on `registry`.  Non-empty
  /// `label` (e.g. the protocol under test) becomes a "<label>." name
  /// prefix so several runs can share one registry.
  static SimInstruments create(MetricsRegistry& registry,
                               const std::string& label = "",
                               const HistogramOptions& delay_histogram = {});
};

struct ObservabilityOptions {
  /// Attach the causal span tracer (off by default; metrics are always
  /// collected once an Observability is attached at all).
  bool tracing = false;
  /// Metric name prefix, typically the protocol under test.
  std::string label;
  /// Bucket layout shared by the three delay histograms.
  HistogramOptions delay_histogram = {};
  SpanTracerOptions tracer = {};
};

class Observability {
 public:
  explicit Observability(ObservabilityOptions options = {});

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  SimInstruments& instruments() { return instruments_; }
  const SimInstruments& instruments() const { return instruments_; }

  /// nullptr unless tracing was enabled in the options.
  SpanTracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }
  const SpanTracer* tracer() const { return tracer_ ? &*tracer_ : nullptr; }

  const ObservabilityOptions& options() const { return options_; }

 private:
  ObservabilityOptions options_;
  MetricsRegistry metrics_;
  SimInstruments instruments_;
  std::optional<SpanTracer> tracer_;
};

}  // namespace msgorder
