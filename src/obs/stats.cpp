#include "src/obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

namespace msgorder {

namespace {

/// Deterministic short rendering of a double (no locale, no trailing
/// noise) — the golden-file test depends on this being stable.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_pct(double frac) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", frac * 100.0);
  return buf;
}

/// Final component of a flattened path ("rows[n=200].direct_sync_speedup"
/// -> "direct_sync_speedup").
std::string_view leaf_name(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(dot + 1);
}

enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

Direction direction_of(std::string_view leaf) {
  // Rate fields ("events_per_second") contain the substring "seconds",
  // so the higher-is-better checks must run before the timing ones.
  if (leaf.find("speedup") != std::string_view::npos ||
      leaf.find("per_second") != std::string_view::npos) {
    return Direction::kHigherBetter;
  }
  if (leaf.find("seconds") != std::string_view::npos ||
      leaf.find("latency") != std::string_view::npos ||
      leaf.find("delay") != std::string_view::npos) {
    return Direction::kLowerBetter;
  }
  // Diagnostic counts from msgorder.lint/1 artifacts.
  if (leaf == "error" || leaf == "warning" || leaf == "hint" ||
      leaf == "errors" || leaf == "warnings" || leaf == "hints") {
    return Direction::kLowerBetter;
  }
  return Direction::kNeutral;
}

/// Per-field diff metadata declared by the artifact itself (ISSUE 7):
/// a top-level "field_meta" object mapping leaf names to
/// {"direction": "higher"|"lower"|"neutral", "noise_floor": frac}.
struct FieldMeta {
  Direction direction = Direction::kNeutral;
  double noise_floor = 0.0;
};

std::map<std::string, FieldMeta, std::less<>> collect_field_meta(
    const JsonValue& doc) {
  std::map<std::string, FieldMeta, std::less<>> out;
  if (!doc.is_object()) return out;
  const JsonValue* meta = doc.find("field_meta");
  if (meta == nullptr || !meta->is_object()) return out;
  for (const auto& [name, m] : meta->as_object()) {
    if (!m.is_object()) continue;
    FieldMeta fm;
    // An entry that only declares a noise_floor keeps the name
    // heuristic's direction instead of degrading to neutral.
    const std::string dir =
        m.string_at("direction").value_or(std::string());
    fm.direction = dir == "higher"    ? Direction::kHigherBetter
                   : dir == "lower"   ? Direction::kLowerBetter
                   : dir == "neutral" ? Direction::kNeutral
                                      : direction_of(name);
    fm.noise_floor = m.number_at("noise_floor").value_or(0.0);
    out.emplace(name, fm);
  }
  return out;
}

/// Render " <name>=<value>" for an optionally-present histogram or
/// percentile member: absent -> nothing, null -> "n/a" (never 0).
void append_member(std::ostringstream& out, const JsonValue& h,
                   const char* name) {
  const JsonValue* m = h.find(name);
  if (m == nullptr) return;
  out << " " << name << "=" << (m->is_number() ? fmt(m->as_number()) : "n/a");
}

void summarize_histogram_line(std::ostringstream& out,
                              const std::string& name,
                              const JsonValue& h) {
  out << "    " << name << ": count=" << fmt(h.number_at("count").value_or(0));
  append_member(out, h, "mean");
  append_member(out, h, "p50");
  append_member(out, h, "p99");
  append_member(out, h, "max");
  out << "\n";
}

/// Aligned text heatmap of the per-channel inhibition matrix (ISSUE 7):
/// one blocker-by-blocked table per hold kind, cell = total held time.
/// Row "?" collects segments whose reason names no blocking process.
std::string render_heatmap_text(const JsonValue& hm) {
  const JsonValue* cells = hm.find("cells");
  if (cells == nullptr || !cells->is_array() || cells->as_array().empty()) {
    return "";
  }
  struct Matrix {
    std::set<std::int64_t> blockers;  // -1 = no blocking process
    std::set<std::int64_t> blocked;
    std::map<std::pair<std::int64_t, std::int64_t>, double> total;
  };
  std::map<std::string, Matrix> kinds;
  for (const JsonValue& cell : cells->as_array()) {
    if (!cell.is_object()) continue;
    const std::string kind = cell.string_at("kind").value_or("?");
    const auto blocker =
        static_cast<std::int64_t>(cell.number_at("blocker").value_or(-1));
    const auto blocked =
        static_cast<std::int64_t>(cell.number_at("blocked").value_or(-1));
    Matrix& m = kinds[kind];
    m.blockers.insert(blocker);
    m.blocked.insert(blocked);
    m.total[{blocker, blocked}] += cell.number_at("total").value_or(0);
  }
  const auto label = [](std::int64_t p) {
    return p < 0 ? std::string("?") : "P" + std::to_string(p);
  };
  std::ostringstream out;
  out << "  inhibition heatmap (blocker x blocked, total held):\n";
  for (const auto& [kind, m] : kinds) {
    out << "    " << kind << ":\n";
    std::size_t width = 0;
    for (const std::int64_t b : m.blocked) {
      width = std::max(width, label(b).size());
    }
    for (const auto& [key, total] : m.total) {
      width = std::max(width, fmt(total).size());
    }
    std::size_t row_width = 1;  // "?"
    for (const std::int64_t b : m.blockers) {
      row_width = std::max(row_width, label(b).size());
    }
    const auto pad = [&out](const std::string& s, std::size_t w) {
      for (std::size_t i = s.size(); i < w; ++i) out << ' ';
      out << s;
    };
    out << "      ";
    pad("", row_width);
    for (const std::int64_t b : m.blocked) {
      out << "  ";
      pad(label(b), width);
    }
    out << "\n";
    for (const std::int64_t blocker : m.blockers) {
      out << "      ";
      pad(label(blocker), row_width);
      for (const std::int64_t blocked : m.blocked) {
        out << "  ";
        const auto it = m.total.find({blocker, blocked});
        pad(it == m.total.end() ? "." : fmt(it->second), width);
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string summarize_run_report(const JsonValue& doc) {
  std::ostringstream out;
  out << "run report: protocol=" << doc.string_at("protocol").value_or("?")
      << " processes=" << fmt(doc.number_at("n_processes").value_or(0))
      << " seed=" << fmt(doc.number_at("seed").value_or(0)) << "\n";
  out << "  completed: "
      << (doc.bool_at("completed").value_or(false) ? "yes" : "no");
  if (const auto err = doc.string_at("error"); err && !err->empty()) {
    out << " (" << *err << ")";
  }
  out << "\n";
  if (const JsonValue* msgs = doc.find("messages"); msgs != nullptr) {
    out << "  messages: universe="
        << fmt(msgs->number_at("universe").value_or(0))
        << " invoked=" << fmt(msgs->number_at("invoked").value_or(0))
        << " delivered=" << fmt(msgs->number_at("delivered").value_or(0))
        << "\n";
  }
  if (const JsonValue* lat = doc.find("latency"); lat != nullptr) {
    out << "  latency: mean=" << fmt(lat->number_at("mean").value_or(0))
        << " max=" << fmt(lat->number_at("max").value_or(0));
    if (const JsonValue* pct = lat->find("percentiles"); pct != nullptr) {
      if (pct->is_object()) {
        append_member(out, *pct, "p50");
        append_member(out, *pct, "p90");
        append_member(out, *pct, "p99");
      } else {
        // A null percentiles section (no latency histogram attached)
        // must read as missing data, never as zeros.
        out << " p50=n/a p90=n/a p99=n/a";
      }
    }
    out << "\n";
  }
  if (const JsonValue* attr = doc.find("attribution");
      attr != nullptr && attr->is_object()) {
    out << "  attribution: segments="
        << fmt(attr->number_at("segments").value_or(0)) << "\n";
    if (const JsonValue* by = attr->find("held_by_reason");
        by != nullptr && by->is_object()) {
      for (const auto& [reason, total] : by->as_object()) {
        if (total.is_number() && total.as_number() > 0) {
          out << "    " << reason << ": held " << fmt(total.as_number())
              << "\n";
        }
      }
    }
  }
  if (const JsonValue* hm = doc.find("inhibition_heatmap");
      hm != nullptr && hm->is_object()) {
    out << render_heatmap_text(*hm);
  }
  if (const JsonValue* prof = doc.find("profile");
      prof != nullptr && prof->is_object()) {
    out << "  profile: engine=" << prof->string_at("engine").value_or("?")
        << " shards=" << fmt(prof->number_at("shards").value_or(0))
        << " windows=" << fmt(prof->number_at("windows").value_or(0))
        << " events=" << fmt(prof->number_at("events_total").value_or(0));
    if (const JsonValue* stalls = prof->find("stalls");
        stalls != nullptr && stalls->is_object()) {
      out << " stalls(lookahead/empty/backpressure)="
          << fmt(stalls->number_at("lookahead").value_or(0)) << "/"
          << fmt(stalls->number_at("empty_heap").value_or(0)) << "/"
          << fmt(stalls->number_at("ring_backpressure").value_or(0));
    }
    out << "\n";
  }
  if (const JsonValue* mon = doc.find("monitor");
      mon != nullptr && mon->is_object()) {
    out << "  monitor: violated="
        << (mon->bool_at("violated").value_or(false) ? "yes" : "no")
        << " events_seen=" << fmt(mon->number_at("events_seen").value_or(0))
        << "\n";
  }
  if (const JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const JsonValue* hists = metrics->find("histograms");
        hists != nullptr && hists->is_object()) {
      out << "  delay histograms:\n";
      for (const auto& [name, h] : hists->as_object()) {
        if (name.find("delay.") != std::string::npos && h.is_object() &&
            h.number_at("count").value_or(0) > 0) {
          summarize_histogram_line(out, name, h);
        }
      }
    }
  }
  return out.str();
}

std::string summarize_bench(const JsonValue& doc,
                            const std::string& schema) {
  std::ostringstream out;
  out << "bench report: schema=" << schema << "\n";
  const JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    out << "  (no rows array)\n";
    return out.str();
  }
  for (const JsonValue& row : rows->as_array()) {
    if (!row.is_object()) continue;
    out << "  ";
    if (const auto n = row.number_at("n_messages")) {
      out << "n=" << fmt(*n);
    } else if (const auto s = row.number_at("shards")) {
      out << "shards=" << fmt(*s);
    } else if (const auto p = row.string_at("protocol")) {
      out << *p;
    } else {
      out << "row";
    }
    out << ":";
    for (const auto& [key, v] : row.as_object()) {
      if (!v.is_number()) continue;
      if (key == "n_messages") continue;
      const Direction d = direction_of(key);
      if (d == Direction::kNeutral &&
          key.find("events") == std::string::npos &&
          key.find("parity") == std::string::npos &&
          key.find("automaton") == std::string::npos &&
          key.find("batched") == std::string::npos) {
        continue;  // keep rows readable: timings + speedups + volumes
      }
      out << " " << key << "=" << fmt(v.as_number());
    }
    out << "\n";
  }
  return out.str();
}

std::string summarize_flight_recorder(const JsonValue& doc) {
  std::ostringstream out;
  out << "flight recorder dump: cause=\""
      << doc.string_at("cause").value_or("") << "\"\n";
  out << "  capacity=" << fmt(doc.number_at("capacity").value_or(0))
      << " total_records=" << fmt(doc.number_at("total_records").value_or(0))
      << " dropped=" << fmt(doc.number_at("dropped").value_or(0)) << "\n";
  const JsonValue* records = doc.find("records");
  if (records != nullptr && records->is_array()) {
    std::size_t events = 0, holds = 0, notes = 0;
    std::string last_note;
    for (const JsonValue& r : records->as_array()) {
      const std::string type = r.string_at("type").value_or("");
      if (type == "event") ++events;
      else if (type == "hold") ++holds;
      else if (type == "note") {
        ++notes;
        last_note = r.string_at("note").value_or("");
      }
    }
    out << "  retained: " << events << " events, " << holds << " holds, "
        << notes << " notes\n";
    if (!last_note.empty()) out << "  last note: \"" << last_note << "\"\n";
  }
  return out.str();
}

std::string summarize_lint(const JsonValue& doc) {
  std::ostringstream out;
  out << "lint report: clean="
      << (doc.bool_at("clean").value_or(false) ? "yes" : "no");
  if (const JsonValue* totals = doc.find("totals");
      totals != nullptr && totals->is_object()) {
    out << " inputs=" << fmt(totals->number_at("inputs").value_or(0))
        << "\n";
    out << "  totals: error=" << fmt(totals->number_at("error").value_or(0))
        << " warning=" << fmt(totals->number_at("warning").value_or(0))
        << " hint=" << fmt(totals->number_at("hint").value_or(0))
        << " note=" << fmt(totals->number_at("note").value_or(0)) << "\n";
    if (const JsonValue* by_rule = totals->find("by_rule");
        by_rule != nullptr && by_rule->is_object() &&
        !by_rule->as_object().empty()) {
      out << "  by rule:";
      for (const auto& [rule, n] : by_rule->as_object()) {
        if (n.is_number()) out << " " << rule << "=" << fmt(n.as_number());
      }
      out << "\n";
    }
  } else {
    out << "\n";
  }
  if (const JsonValue* inputs = doc.find("inputs");
      inputs != nullptr && inputs->is_array()) {
    for (const JsonValue& input : inputs->as_array()) {
      if (!input.is_object()) continue;
      out << "  " << input.string_at("name").value_or("?") << ": ";
      if (!input.bool_at("parsed").value_or(true)) {
        out << "parse error\n";
        continue;
      }
      out << "class=" << input.string_at("class").value_or("?");
      if (const JsonValue* counts = input.find("counts");
          counts != nullptr && counts->is_object()) {
        for (const char* severity : {"error", "warning", "hint", "note"}) {
          const double n = counts->number_at(severity).value_or(0);
          if (n > 0) out << " " << severity << "=" << fmt(n);
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string summarize_verify(const JsonValue& doc) {
  std::ostringstream out;
  out << "verify report: verdict="
      << doc.string_at("verdict").value_or("?");
  if (const JsonValue* scope = doc.find("scope");
      scope != nullptr && scope->is_object()) {
    out << " scope=" << fmt(scope->number_at("processes").value_or(0))
        << "p/" << fmt(scope->number_at("messages").value_or(0)) << "m";
  }
  out << " channel=" << doc.string_at("channel_model").value_or("?")
      << " por=" << (doc.bool_at("por").value_or(false) ? "on" : "off")
      << "\n";
  out << "  states=" << fmt(doc.number_at("states_total").value_or(0))
      << " transitions="
      << fmt(doc.number_at("transitions_total").value_or(0)) << "\n";
  if (const JsonValue* stacks = doc.find("stacks");
      stacks != nullptr && stacks->is_array()) {
    for (const JsonValue& stack : stacks->as_array()) {
      if (!stack.is_object()) continue;
      out << "  " << stack.string_at("stack").value_or("?") << ": "
          << stack.string_at("verdict").value_or("?")
          << " states=" << fmt(stack.number_at("states").value_or(0));
      if (const JsonValue* scenarios = stack.find("scenarios");
          scenarios != nullptr && scenarios->is_array()) {
        out << " scenarios=" << scenarios->as_array().size();
        for (const JsonValue& s : scenarios->as_array()) {
          if (!s.is_object() || s.find("counterexample") == nullptr) {
            continue;
          }
          out << "\n    counterexample in "
              << s.string_at("scenario").value_or("?") << ": "
              << s.string_at("detail").value_or(
                     s.string_at("verdict").value_or("?"));
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string summarize_chrome_trace(const JsonValue& doc) {
  std::ostringstream out;
  const JsonValue* events = doc.find("traceEvents");
  out << "chrome trace: " << events->as_array().size() << " events\n";
  std::map<std::string, std::size_t> by_cat;
  for (const JsonValue& e : events->as_array()) {
    if (const auto cat = e.string_at("cat")) ++by_cat[*cat];
  }
  for (const auto& [cat, n] : by_cat) {
    out << "  " << cat << ": " << n << "\n";
  }
  return out.str();
}

}  // namespace

std::string stats_summary(const JsonValue& doc) {
  if (!doc.is_object()) {
    return "json document (not an object)\n";
  }
  const std::string schema = doc.string_at("schema").value_or("");
  if (schema.rfind("msgorder.run_report/", 0) == 0) {
    return summarize_run_report(doc);
  }
  if (schema.rfind("msgorder.bench.", 0) == 0) {
    return summarize_bench(doc, schema);
  }
  if (schema.rfind("msgorder.flight_recorder/", 0) == 0) {
    return summarize_flight_recorder(doc);
  }
  if (schema.rfind("msgorder.lint/", 0) == 0) {
    return summarize_lint(doc);
  }
  if (schema.rfind("msgorder.verify/", 0) == 0) {
    return summarize_verify(doc);
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events != nullptr && events->is_array()) {
    return summarize_chrome_trace(doc);
  }
  std::ostringstream out;
  out << "json document: object with " << doc.as_object().size()
      << " members";
  if (!schema.empty()) out << " (schema=" << schema << ")";
  out << "\n";
  return out.str();
}

void flatten_numeric(const JsonValue& doc, const std::string& prefix,
                     std::map<std::string, double>& out) {
  switch (doc.type()) {
    case JsonValue::Type::kNumber:
      out[prefix] = doc.as_number();
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, v] : doc.as_object()) {
        flatten_numeric(v, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Type::kArray: {
      const auto& arr = doc.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        std::string key;
        if (arr[i].is_object()) {
          if (const auto n = arr[i].number_at("n_messages")) {
            key = prefix + "[n=" + fmt(*n) + "]";
          } else if (const auto s = arr[i].number_at("shards")) {
            key = prefix + "[shards=" + fmt(*s) + "]";
          } else if (const auto p = arr[i].string_at("protocol")) {
            key = prefix + "[" + *p + "]";
          }
        }
        if (key.empty()) key = prefix + "[" + std::to_string(i) + "]";
        flatten_numeric(arr[i], key, out);
      }
      break;
    }
    default:
      break;  // null / bool / string: not numeric leaves
  }
}

StatsDiff stats_diff(const JsonValue& baseline, const JsonValue& current,
                     const StatsDiffOptions& options) {
  std::map<std::string, double> base_leaves;
  std::map<std::string, double> cur_leaves;
  flatten_numeric(baseline, "", base_leaves);
  flatten_numeric(current, "", cur_leaves);

  // Schema-declared metadata wins over the leaf-name heuristic; the
  // current artifact's declarations win over the baseline's (so a
  // schema bump re-gates old baselines on the new rules).
  std::map<std::string, FieldMeta, std::less<>> meta =
      collect_field_meta(current);
  for (const auto& [name, fm] : collect_field_meta(baseline)) {
    meta.emplace(name, fm);
  }

  StatsDiff diff;
  diff.baseline_schema = baseline.string_at("schema").value_or("");
  diff.current_schema = current.string_at("schema").value_or("");
  std::ostringstream out;
  if (diff.schema_mismatch()) {
    out << "schema mismatch: baseline=\"" << diff.baseline_schema
        << "\" current=\"" << diff.current_schema << "\"\n";
  }
  out << "diff threshold: " << fmt(options.threshold * 100.0) << "%\n";
  for (const auto& [path, base] : base_leaves) {
    if (path.rfind("field_meta.", 0) == 0) continue;  // metadata, not data
    const auto it = cur_leaves.find(path);
    if (it == cur_leaves.end()) continue;
    const double cur = it->second;
    const std::string_view leaf = leaf_name(path);
    if (!options.fields.empty() &&
        std::find(options.fields.begin(), options.fields.end(), leaf) ==
            options.fields.end()) {
      continue;
    }
    Direction dir;
    double threshold = options.threshold;
    if (const auto m = meta.find(leaf); m != meta.end()) {
      dir = m->second.direction;
      threshold = std::max(threshold, m->second.noise_floor);
    } else {
      dir = direction_of(leaf);
    }
    if (options.fields.empty() && dir == Direction::kNeutral) continue;
    ++diff.compared;
    if (base == 0.0) {
      out << "  " << path << ": " << fmt(base) << " -> " << fmt(cur)
          << " (zero baseline, skipped)\n";
      continue;
    }
    const double delta = (cur - base) / std::fabs(base);
    const bool bad = dir == Direction::kHigherBetter
                         ? delta < -threshold
                         : dir == Direction::kLowerBetter ? delta > threshold
                                                          : false;
    out << (bad ? "  REGRESSION " : "  ") << path << ": " << fmt(base)
        << " -> " << fmt(cur) << " (" << fmt_pct(delta) << ")\n";
    if (bad) {
      diff.regressions.push_back(path + " " + fmt(base) + " -> " + fmt(cur) +
                                 " (" + fmt_pct(delta) + ")");
    }
  }
  out << "compared " << diff.compared << " leaves, "
      << diff.regressions.size() << " regression"
      << (diff.regressions.size() == 1 ? "" : "s") << "\n";
  diff.text = out.str();
  return diff;
}

}  // namespace msgorder
