#include "src/obs/tracelog_index.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <map>

#include "src/obs/json.hpp"

namespace msgorder {

namespace {

std::string fmt_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", t);
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Compare two records; empty string when equal, else the name of the
/// first differing aspect (the diverge `field`).
std::string describe_difference(const TraceLogRecord& a,
                                const TraceLogRecord& b) {
  if (a.type != b.type) return "type";
  if (a.time != b.time) return "time";
  switch (a.type) {
    case TraceLogRecord::Type::kEvent:
      if (a.event != b.event) return "event";
      if (a.process != b.process) return "process";
      if (a.peer != b.peer) return "peer";
      if (a.color != b.color) return "color";
      if (a.tiebreak != b.tiebreak) return "tiebreak";
      if (a.lamport != b.lamport) return "lamport";
      return "";
    case TraceLogRecord::Type::kHold:
      if (a.held_msg != b.held_msg || a.process != b.process ||
          a.reason != b.reason || a.tiebreak != b.tiebreak) {
        return "hold";
      }
      return "";
    case TraceLogRecord::Type::kNote:
      return a.note == b.note ? "" : "note";
  }
  return "";
}

void write_record_json(JsonWriter& w, const TraceLogRecord& rec) {
  w.begin_object();
  switch (rec.type) {
    case TraceLogRecord::Type::kEvent:
      w.kv("type", "event");
      w.kv("msg", static_cast<std::uint64_t>(rec.event.msg));
      w.kv("kind", kind_name(rec.event.kind));
      w.kv("process", static_cast<std::uint64_t>(rec.process));
      w.kv("peer", static_cast<std::uint64_t>(rec.peer));
      w.kv("color", static_cast<std::int64_t>(rec.color));
      w.kv("time", rec.time);
      w.kv("tiebreak", rec.tiebreak);
      w.kv("lamport", rec.lamport);
      break;
    case TraceLogRecord::Type::kHold: {
      w.kv("type", "hold");
      w.kv("msg", static_cast<std::uint64_t>(rec.held_msg));
      w.kv("process", static_cast<std::uint64_t>(rec.process));
      w.kv("kind", to_string(rec.reason.kind));
      w.key("blocking_msg");
      if (rec.reason.blocking_msg.has_value()) {
        w.value(static_cast<std::uint64_t>(*rec.reason.blocking_msg));
      } else {
        w.null();
      }
      w.key("blocking_proc");
      if (rec.reason.blocking_proc.has_value()) {
        w.value(static_cast<std::uint64_t>(*rec.reason.blocking_proc));
      } else {
        w.null();
      }
      w.kv("time", rec.time);
      w.kv("tiebreak", rec.tiebreak);
      break;
    }
    case TraceLogRecord::Type::kNote:
      w.kv("type", "note");
      w.kv("time", rec.time);
      w.kv("text", rec.note);
      break;
  }
  w.end_object();
}

void write_header_json(JsonWriter& w, const TraceLogHeader& h) {
  w.begin_object();
  w.kv("engine", h.engine);
  w.kv("protocol", h.protocol);
  w.kv("n_processes", static_cast<std::uint64_t>(h.n_processes));
  w.kv("n_messages", static_cast<std::uint64_t>(h.n_messages));
  w.kv("seed", h.seed);
  w.kv("shards", static_cast<std::uint64_t>(h.shards));
  w.kv("workers", static_cast<std::uint64_t>(h.workers));
  w.kv("lookahead", h.lookahead);
  w.end_object();
}

JsonWriter query_json_head(std::string_view subcommand) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.query/1");
  w.kv("subcommand", subcommand);
  return w;
}

QueryOutput query_error(std::string_view subcommand, const std::string& error,
                        int exit_code = 2) {
  QueryOutput out;
  out.exit_code = exit_code;
  out.text = "error: " + error + "\n";
  JsonWriter w = query_json_head(subcommand);
  w.kv("error", error);
  w.end_object();
  out.json = w.take();
  return out;
}

}  // namespace

TraceLogIndex TraceLogIndex::build(const LoadedTraceLog& log,
                                   std::size_t dense_limit) {
  TraceLogIndex index;
  index.log_ = &log;
  const std::size_t n = log.events.size();
  index.succ_.resize(n);
  index.pred_.resize(n);
  std::map<ProcessId, std::uint32_t> last_at;
  std::map<MessageId, std::uint32_t> send_of;
  const auto add_edge = [&index](std::uint32_t from, std::uint32_t to) {
    index.succ_[from].push_back(to);
    index.pred_[to].push_back(from);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const TraceLogRecord& rec = log.records[log.events[i]];
    const auto ei = static_cast<std::uint32_t>(i);
    if (const auto it = last_at.find(rec.process); it != last_at.end()) {
      add_edge(it->second, ei);
    }
    last_at[rec.process] = ei;
    if (rec.event.kind == EventKind::kSend) {
      send_of[rec.event.msg] = ei;
    } else if (rec.event.kind == EventKind::kReceive) {
      if (const auto it = send_of.find(rec.event.msg); it != send_of.end()) {
        add_edge(it->second, ei);
      }
    }
  }
  if (n > 0 && n <= dense_limit) {
    index.dense_ = true;
    BitMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::uint32_t j : index.succ_[i]) m.set(i, j);
    }
    m.transitive_closure();
    index.ancestors_ = m.transposed();
    index.descendants_ = std::move(m);
  }
  return index;
}

std::optional<std::size_t> TraceLogIndex::find_event(MessageId msg,
                                                     EventKind kind) const {
  for (std::size_t i = 0; i < event_count(); ++i) {
    const TraceLogRecord& rec = event(i);
    if (rec.event.msg == msg && rec.event.kind == kind) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> TraceLogIndex::bfs(std::size_t ev,
                                            bool forward) const {
  const auto& adj = forward ? succ_ : pred_;
  std::vector<char> seen(event_count(), 0);
  std::deque<std::size_t> frontier{ev};
  seen[ev] = 1;
  std::vector<std::size_t> out;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    for (const std::uint32_t nxt : adj[cur]) {
      if (seen[nxt] == 0) {
        seen[nxt] = 1;
        frontier.push_back(nxt);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> TraceLogIndex::causal_past(std::size_t ev) const {
  if (!dense_) return bfs(ev, false);
  std::vector<std::size_t> out;
  ancestors_.for_each_set(ev, [&out](std::size_t j) { out.push_back(j); });
  if (!std::binary_search(out.begin(), out.end(), ev)) {
    out.insert(std::upper_bound(out.begin(), out.end(), ev), ev);
  }
  return out;
}

std::vector<std::size_t> TraceLogIndex::causal_future(std::size_t ev) const {
  if (!dense_) return bfs(ev, true);
  std::vector<std::size_t> out;
  descendants_.for_each_set(ev, [&out](std::size_t j) { out.push_back(j); });
  if (!std::binary_search(out.begin(), out.end(), ev)) {
    out.insert(std::upper_bound(out.begin(), out.end(), ev), ev);
  }
  return out;
}

CutResult cut_at(const TraceLogIndex& index, SimTime t) {
  const LoadedTraceLog& log = index.log();
  CutResult cut;
  cut.at = t;
  std::size_t n_processes = log.header.n_processes;
  for (std::size_t i = 0; i < index.event_count(); ++i) {
    n_processes = std::max<std::size_t>(n_processes, index.event(i).process + 1);
  }
  cut.frontier.assign(n_processes, std::nullopt);
  std::map<MessageId, SimTime> sent_at;
  std::map<MessageId, SimTime> received_at;
  for (std::size_t i = 0; i < index.event_count(); ++i) {
    const TraceLogRecord& rec = index.event(i);
    if (rec.event.kind == EventKind::kSend) sent_at[rec.event.msg] = rec.time;
    if (rec.event.kind == EventKind::kReceive) {
      received_at[rec.event.msg] = rec.time;
    }
    if (rec.time > t) continue;
    ++cut.events_in_cut;
    cut.frontier[rec.process] = i;
    // A cut by time is consistent iff no causal edge crosses it
    // backwards; verify against the direct predecessors rather than
    // assuming the writer ordered times correctly.
    for (const std::uint32_t p : index.preds(i)) {
      if (index.event(p).time > t) cut.consistent = false;
    }
  }
  for (const auto& [msg, send_time] : sent_at) {
    if (send_time > t) continue;
    const auto it = received_at.find(msg);
    if (it == received_at.end() || it->second > t) {
      cut.in_flight.push_back(msg);
    }
  }
  return cut;
}

WhyChain why_blocked(const LoadedTraceLog& log, MessageId msg) {
  // Per message: the last hold report wins (it is the reason in force
  // when the message finally moved), but keep the report span/count.
  struct HoldInfo {
    ProcessId process = 0;
    HoldReason reason;
    SimTime first = 0;
    SimTime last = 0;
    std::size_t reports = 0;
  };
  std::map<MessageId, HoldInfo> holds;
  for (const TraceLogRecord& rec : log.records) {
    if (rec.type != TraceLogRecord::Type::kHold) continue;
    HoldInfo& info = holds[rec.held_msg];
    if (info.reports == 0) info.first = rec.time;
    info.last = rec.time;
    info.process = rec.process;
    info.reason = rec.reason;
    ++info.reports;
  }
  WhyChain chain;
  chain.msg = msg;
  std::vector<MessageId> visited;
  MessageId cur = msg;
  while (true) {
    if (std::find(visited.begin(), visited.end(), cur) != visited.end()) {
      chain.cycle = true;
      break;
    }
    visited.push_back(cur);
    const auto it = holds.find(cur);
    if (it == holds.end()) break;  // root: never held (or never logged)
    const HoldInfo& info = it->second;
    chain.links.push_back({cur, info.process, info.reason, info.first,
                           info.last, info.reports});
    if (!info.reason.blocking_msg.has_value()) break;  // root blocker
    cur = *info.reason.blocking_msg;
  }
  return chain;
}

std::string render_record(const TraceLogRecord& rec) {
  std::string out = "t=" + fmt_time(rec.time);
  switch (rec.type) {
    case TraceLogRecord::Type::kEvent:
      out += " p" + std::to_string(rec.process) + " " + to_string(rec.event) +
             " lam=" + fmt_u64(rec.lamport) + " peer=p" +
             std::to_string(rec.peer);
      if (rec.color != 0) out += " color=" + std::to_string(rec.color);
      break;
    case TraceLogRecord::Type::kHold:
      out += " p" + std::to_string(rec.process) + " hold x" +
             std::to_string(rec.held_msg) + " " + to_string(rec.reason.kind);
      if (rec.reason.blocking_msg.has_value()) {
        out += " on x" + std::to_string(*rec.reason.blocking_msg);
      }
      if (rec.reason.blocking_proc.has_value()) {
        out += " at p" + std::to_string(*rec.reason.blocking_proc);
      }
      break;
    case TraceLogRecord::Type::kNote:
      out += " note \"" + rec.note + "\"";
      break;
  }
  return out;
}

std::optional<EventKind> parse_event_kind(const std::string& name) {
  if (name == "invoke" || name == "s*") return EventKind::kInvoke;
  if (name == "send" || name == "s") return EventKind::kSend;
  if (name == "receive" || name == "r*") return EventKind::kReceive;
  if (name == "deliver" || name == "r") return EventKind::kDeliver;
  return std::nullopt;
}

QueryOutput query_summary(const std::string& path) {
  std::string error;
  const auto log = load_tracelog(path, &error);
  if (!log.has_value()) return query_error("summary", error);

  std::array<std::size_t, 4> by_kind{};
  std::array<std::size_t, kHoldKindCount> holds_by_kind{};
  std::size_t holds = 0;
  std::size_t notes = 0;
  SimTime t_min = 0;
  SimTime t_max = 0;
  std::uint64_t max_lamport = 0;
  bool first = true;
  for (const TraceLogRecord& rec : log->records) {
    if (first || rec.time < t_min) t_min = rec.time;
    if (first || rec.time > t_max) t_max = rec.time;
    first = false;
    switch (rec.type) {
      case TraceLogRecord::Type::kEvent:
        ++by_kind[static_cast<std::size_t>(rec.event.kind)];
        max_lamport = std::max(max_lamport, rec.lamport);
        break;
      case TraceLogRecord::Type::kHold:
        ++holds;
        ++holds_by_kind[static_cast<std::size_t>(rec.reason.kind)];
        break;
      case TraceLogRecord::Type::kNote:
        ++notes;
        break;
    }
  }

  QueryOutput out;
  std::string& text = out.text;
  const TraceLogHeader& h = log->header;
  text += "tracelog " + path + "\n";
  text += "  engine " + h.engine + ", protocol \"" + h.protocol + "\", " +
          std::to_string(h.n_processes) + " processes, " +
          std::to_string(h.n_messages) + " messages, seed " +
          fmt_u64(h.seed) + "\n";
  text += "  shards " + std::to_string(h.shards) + ", workers " +
          std::to_string(h.workers) + ", lookahead " +
          fmt_time(h.lookahead) + "\n";
  text += "  records " + std::to_string(log->records.size()) + " (events " +
          std::to_string(log->events.size()) + ", holds " +
          std::to_string(holds) + ", notes " + std::to_string(notes) + ")\n";
  text += "  events: invoke " + std::to_string(by_kind[0]) + ", send " +
          std::to_string(by_kind[1]) + ", receive " +
          std::to_string(by_kind[2]) + ", deliver " +
          std::to_string(by_kind[3]) + "\n";
  if (holds > 0) {
    text += "  holds:";
    for (std::size_t k = 0; k < kHoldKindCount; ++k) {
      if (holds_by_kind[k] == 0) continue;
      text += " " + to_string(static_cast<HoldKind>(k)) + " " +
              std::to_string(holds_by_kind[k]);
    }
    text += "\n";
  }
  if (!log->records.empty()) {
    text += "  time span [" + fmt_time(t_min) + ", " + fmt_time(t_max) +
            "], max lamport " + fmt_u64(max_lamport) + "\n";
  }

  JsonWriter w = query_json_head("summary");
  w.kv("path", path);
  w.key("header");
  write_header_json(w, h);
  w.kv("records", static_cast<std::uint64_t>(log->records.size()));
  w.kv("events", static_cast<std::uint64_t>(log->events.size()));
  w.kv("holds", static_cast<std::uint64_t>(holds));
  w.kv("notes", static_cast<std::uint64_t>(notes));
  w.key("events_by_kind").begin_object();
  w.kv("invoke", static_cast<std::uint64_t>(by_kind[0]));
  w.kv("send", static_cast<std::uint64_t>(by_kind[1]));
  w.kv("receive", static_cast<std::uint64_t>(by_kind[2]));
  w.kv("deliver", static_cast<std::uint64_t>(by_kind[3]));
  w.end_object();
  w.key("holds_by_kind").begin_object();
  for (std::size_t k = 1; k < kHoldKindCount; ++k) {
    if (holds_by_kind[k] == 0) continue;
    w.kv(to_string(static_cast<HoldKind>(k)),
         static_cast<std::uint64_t>(holds_by_kind[k]));
  }
  w.end_object();
  w.kv("time_min", t_min);
  w.kv("time_max", t_max);
  w.kv("max_lamport", max_lamport);
  w.end_object();
  out.json = w.take();
  return out;
}

QueryOutput query_cone(const std::string& path, MessageId msg,
                       EventKind kind, bool future, std::size_t limit) {
  std::string error;
  const auto log = load_tracelog(path, &error);
  if (!log.has_value()) return query_error("cone", error);
  const TraceLogIndex index = TraceLogIndex::build(*log);
  const auto anchor = index.find_event(msg, kind);
  const SystemEvent wanted{msg, kind};
  if (!anchor.has_value()) {
    return query_error("cone",
                       "event " + to_string(wanted) + " not in " + path);
  }
  std::vector<std::size_t> cone =
      future ? index.causal_future(*anchor) : index.causal_past(*anchor);
  const std::size_t total = cone.size();
  std::size_t dropped = 0;
  if (limit != 0 && cone.size() > limit) {
    dropped = cone.size() - limit;
    if (future) {
      cone.resize(limit);  // keep the events nearest the anchor
    } else {
      cone.erase(cone.begin(), cone.end() - static_cast<std::ptrdiff_t>(limit));
    }
  }

  QueryOutput out;
  out.text += std::string("causal ") + (future ? "future" : "past") + " of " +
              to_string(wanted) + ": " + std::to_string(total) + " events\n";
  if (dropped > 0) {
    out.text += "  ... " + std::to_string(dropped) +
                " dropped by --limit, showing the " +
                (future ? "earliest" : "latest") + " " +
                std::to_string(cone.size()) + "\n";
  }
  for (const std::size_t ev : cone) {
    out.text += "  #" + std::to_string(log->events[ev]) + " " +
                render_record(index.event(ev));
    if (ev == *anchor) out.text += "   <- anchor";
    out.text += "\n";
  }

  JsonWriter w = query_json_head("cone");
  w.kv("path", path);
  w.kv("msg", static_cast<std::uint64_t>(msg));
  w.kv("kind", kind_name(kind));
  w.kv("direction", future ? "future" : "past");
  w.kv("total", static_cast<std::uint64_t>(total));
  w.kv("dropped", static_cast<std::uint64_t>(dropped));
  w.key("events").begin_array();
  for (const std::size_t ev : cone) write_record_json(w, index.event(ev));
  w.end_array();
  w.end_object();
  out.json = w.take();
  return out;
}

QueryOutput query_cut(const std::string& path, SimTime at) {
  std::string error;
  const auto log = load_tracelog(path, &error);
  if (!log.has_value()) return query_error("cut", error);
  const TraceLogIndex index = TraceLogIndex::build(*log);
  const CutResult cut = cut_at(index, at);

  QueryOutput out;
  out.text += "cut at t=" + fmt_time(at) + ": " +
              std::to_string(cut.events_in_cut) + " events, " +
              (cut.consistent ? "consistent" : "INCONSISTENT") + "\n";
  for (std::size_t p = 0; p < cut.frontier.size(); ++p) {
    out.text += "  p" + std::to_string(p) + ": ";
    if (cut.frontier[p].has_value()) {
      out.text += render_record(index.event(*cut.frontier[p]));
    } else {
      out.text += "(no events yet)";
    }
    out.text += "\n";
  }
  out.text += "  in flight (" + std::to_string(cut.in_flight.size()) + "):";
  for (const MessageId m : cut.in_flight) {
    out.text += " x" + std::to_string(m);
  }
  out.text += "\n";

  JsonWriter w = query_json_head("cut");
  w.kv("path", path);
  w.kv("at", at);
  w.kv("events_in_cut", static_cast<std::uint64_t>(cut.events_in_cut));
  w.kv("consistent", cut.consistent);
  w.key("frontier").begin_array();
  for (std::size_t p = 0; p < cut.frontier.size(); ++p) {
    if (cut.frontier[p].has_value()) {
      write_record_json(w, index.event(*cut.frontier[p]));
    } else {
      w.null();
    }
  }
  w.end_array();
  w.key("in_flight").begin_array();
  for (const MessageId m : cut.in_flight) {
    w.value(static_cast<std::uint64_t>(m));
  }
  w.end_array();
  w.end_object();
  out.json = w.take();
  return out;
}

QueryOutput query_why(const std::string& path, MessageId msg) {
  std::string error;
  const auto log = load_tracelog(path, &error);
  if (!log.has_value()) return query_error("why", error);
  const WhyChain chain = why_blocked(*log, msg);

  QueryOutput out;
  if (chain.links.empty()) {
    out.text += "x" + std::to_string(msg) +
                " was never reported held in " + path + "\n";
  } else {
    out.text += "why x" + std::to_string(msg) + " was blocked:\n";
    for (std::size_t i = 0; i < chain.links.size(); ++i) {
      const WhyLink& link = chain.links[i];
      out.text += "  ";
      for (std::size_t d = 0; d < i; ++d) out.text += "  ";
      out.text += "x" + std::to_string(link.msg) + " held at p" +
                  std::to_string(link.process) + ": " +
                  to_string(link.reason.kind);
      if (link.reason.blocking_msg.has_value()) {
        out.text += " on x" + std::to_string(*link.reason.blocking_msg);
      }
      if (link.reason.blocking_proc.has_value()) {
        out.text += " at p" + std::to_string(*link.reason.blocking_proc);
      }
      out.text += " (" + std::to_string(link.reports) + " reports, t=" +
                  fmt_time(link.first) + ".." + fmt_time(link.last) + ")\n";
    }
    if (chain.cycle) {
      out.text += "  cycle: the chain revisits a message (mutual blocking)\n";
    } else {
      const WhyLink& root = chain.links.back();
      out.text += "  root blocker: x" + std::to_string(root.msg) + " (" +
                  to_string(root.reason.kind) + ")\n";
    }
  }

  JsonWriter w = query_json_head("why");
  w.kv("path", path);
  w.kv("msg", static_cast<std::uint64_t>(msg));
  w.kv("cycle", chain.cycle);
  w.key("chain").begin_array();
  for (const WhyLink& link : chain.links) {
    w.begin_object();
    w.kv("msg", static_cast<std::uint64_t>(link.msg));
    w.kv("process", static_cast<std::uint64_t>(link.process));
    w.kv("kind", to_string(link.reason.kind));
    w.key("blocking_msg");
    if (link.reason.blocking_msg.has_value()) {
      w.value(static_cast<std::uint64_t>(*link.reason.blocking_msg));
    } else {
      w.null();
    }
    w.key("blocking_proc");
    if (link.reason.blocking_proc.has_value()) {
      w.value(static_cast<std::uint64_t>(*link.reason.blocking_proc));
    } else {
      w.null();
    }
    w.kv("first", link.first);
    w.kv("last", link.last);
    w.kv("reports", static_cast<std::uint64_t>(link.reports));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out.json = w.take();
  return out;
}

namespace {

/// Render the causal-past context of the diverging record from one
/// log's prefix (everything up to and including the divergence).
std::vector<std::string> divergence_context(const LoadedTraceLog& prefix,
                                            std::size_t context) {
  std::vector<std::string> lines;
  if (prefix.records.empty()) return lines;
  const TraceLogIndex index = TraceLogIndex::build(prefix);
  const std::size_t last_record = prefix.records.size() - 1;
  const TraceLogRecord& last = prefix.records[last_record];
  // Anchor on the diverging event itself, or (for a hold/note record)
  // on the last event of the same process / the last event overall.
  std::optional<std::size_t> anchor;
  for (std::size_t i = index.event_count(); i-- > 0;) {
    const bool same_record = prefix.events[i] == last_record;
    const bool same_process = last.type != TraceLogRecord::Type::kNote &&
                              index.event(i).process == last.process;
    if (same_record || same_process ||
        last.type == TraceLogRecord::Type::kNote) {
      anchor = i;
      break;
    }
  }
  if (!anchor.has_value()) {
    lines.push_back("#" + std::to_string(last_record) + " " +
                    render_record(last));
    return lines;
  }
  std::vector<std::size_t> past = index.causal_past(*anchor);
  if (context != 0 && past.size() > context) {
    past.erase(past.begin(),
               past.end() - static_cast<std::ptrdiff_t>(context));
  }
  for (const std::size_t ev : past) {
    std::string line = "#" + std::to_string(prefix.events[ev]) + " " +
                       render_record(index.event(ev));
    if (prefix.events[ev] == last_record) line += "   <- diverging record";
    lines.push_back(std::move(line));
  }
  if (prefix.events.empty() || prefix.events.back() != last_record) {
    lines.push_back("#" + std::to_string(last_record) + " " +
                    render_record(last) + "   <- diverging record");
  }
  return lines;
}

}  // namespace

DivergenceReport diverge_tracelogs(const std::string& path_a,
                                   const std::string& path_b,
                                   std::size_t context) {
  DivergenceReport report;
  TraceLogStream a;
  TraceLogStream b;
  std::string error;
  if (!a.open(path_a, &error) || !b.open(path_b, &error)) {
    report.error = error;
    return report;
  }
  report.header_a = a.header();
  report.header_b = b.header();
  const auto warn_if = [&report](bool differ, const char* what) {
    if (differ) {
      report.warnings.push_back(std::string("headers disagree on ") + what +
                                " — the runs were not set up comparably");
    }
  };
  warn_if(a.header().seed != b.header().seed, "seed");
  warn_if(a.header().n_processes != b.header().n_processes, "n_processes");
  warn_if(a.header().n_messages != b.header().n_messages, "n_messages");

  TraceLogRecord rec_a;
  TraceLogRecord rec_b;
  std::size_t index = 0;
  while (true) {
    const int sa = a.next(&rec_a, &error);
    if (sa < 0) {
      report.error = path_a + ": " + error;
      return report;
    }
    const int sb = b.next(&rec_b, &error);
    if (sb < 0) {
      report.error = path_b + ": " + error;
      return report;
    }
    if (sa == 0 && sb == 0) {
      report.ok = true;
      report.records_compared = index;
      return report;  // identical
    }
    if (sa != sb) {
      report.ok = true;
      report.diverged = true;
      report.index = index;
      report.field = "length";
      if (sa == 1) report.record_a = rec_a;
      if (sb == 1) report.record_b = rec_b;
      break;
    }
    const std::string field = describe_difference(rec_a, rec_b);
    if (!field.empty()) {
      report.ok = true;
      report.diverged = true;
      report.index = index;
      report.field = field;
      report.record_a = rec_a;
      report.record_b = rec_b;
      break;
    }
    ++index;
  }
  report.records_compared = index;
  // Reload only the prefix up to the divergence and build the causal
  // context from each side.
  if (report.record_a.has_value()) {
    if (const auto prefix = load_tracelog(path_a, nullptr, report.index + 1);
        prefix.has_value()) {
      report.context_a = divergence_context(*prefix, context);
    }
  }
  if (report.record_b.has_value()) {
    if (const auto prefix = load_tracelog(path_b, nullptr, report.index + 1);
        prefix.has_value()) {
      report.context_b = divergence_context(*prefix, context);
    }
  }
  return report;
}

QueryOutput query_diverge(const std::string& path_a,
                          const std::string& path_b, std::size_t context) {
  const DivergenceReport report = diverge_tracelogs(path_a, path_b, context);
  if (!report.ok) return query_error("diverge", report.error);

  QueryOutput out;
  out.exit_code = report.diverged ? 1 : 0;
  for (const std::string& warning : report.warnings) {
    out.text += "warning: " + warning + "\n";
  }
  if (!report.diverged) {
    out.text += "no divergence: " + fmt_u64(report.records_compared) +
                " records identical\n  A " + path_a + " (" +
                report.header_a.engine + ", " +
                std::to_string(report.header_a.shards) + " shards)\n  B " +
                path_b + " (" + report.header_b.engine + ", " +
                std::to_string(report.header_b.shards) + " shards)\n";
  } else {
    out.text += "logs diverge at record #" + std::to_string(report.index) +
                " (field: " + report.field + ")\n";
    out.text += "  A " + path_a + ": " +
                (report.record_a.has_value() ? render_record(*report.record_a)
                                             : "(log ends)") +
                "\n";
    out.text += "  B " + path_b + ": " +
                (report.record_b.has_value() ? render_record(*report.record_b)
                                             : "(log ends)") +
                "\n";
    out.text += "causal past of the divergence in A:\n";
    for (const std::string& line : report.context_a) {
      out.text += "  " + line + "\n";
    }
    if (report.context_a.empty()) out.text += "  (log ends before it)\n";
    out.text += "causal past of the divergence in B:\n";
    for (const std::string& line : report.context_b) {
      out.text += "  " + line + "\n";
    }
    if (report.context_b.empty()) out.text += "  (log ends before it)\n";
  }

  JsonWriter w = query_json_head("diverge");
  w.kv("path_a", path_a);
  w.kv("path_b", path_b);
  w.key("header_a");
  write_header_json(w, report.header_a);
  w.key("header_b");
  write_header_json(w, report.header_b);
  w.key("warnings").begin_array();
  for (const std::string& warning : report.warnings) w.value(warning);
  w.end_array();
  w.kv("diverged", report.diverged);
  w.kv("records_compared", report.records_compared);
  if (report.diverged) {
    w.kv("index", static_cast<std::uint64_t>(report.index));
    w.kv("field", report.field);
    w.key("record_a");
    if (report.record_a.has_value()) {
      write_record_json(w, *report.record_a);
    } else {
      w.null();
    }
    w.key("record_b");
    if (report.record_b.has_value()) {
      write_record_json(w, *report.record_b);
    } else {
      w.null();
    }
    w.key("context_a").begin_array();
    for (const std::string& line : report.context_a) w.value(line);
    w.end_array();
    w.key("context_b").begin_array();
    for (const std::string& line : report.context_b) w.value(line);
    w.end_array();
  }
  w.end_object();
  out.json = w.take();
  return out;
}

}  // namespace msgorder
