#include "src/obs/cli.hpp"

#include <cstring>

namespace msgorder {

ObsCli parse_obs_cli(int& argc, char** argv) {
  ObsCli out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string* target = nullptr;
    if (std::strcmp(argv[i], "--json") == 0) {
      target = &out.json_path;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      target = &out.trace_path;
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0) {
      target = &out.flight_path;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      target = &out.profile_path;
    } else if (std::strcmp(argv[i], "--tracelog") == 0) {
      target = &out.tracelog_path;
    }
    if (target == nullptr) {
      argv[kept++] = argv[i];
      continue;
    }
    if (i + 1 >= argc) {
      out.ok = false;
      out.error = std::string(argv[i]) + " requires a path argument";
      break;
    }
    *target = argv[++i];
  }
  argc = kept;
  return out;
}

}  // namespace msgorder
