// The analysis core behind tools/msgorder_stats (ISSUE 4 tentpole):
// load any JSON artifact this repo emits — run reports, checker-scaling
// and protocol-overhead bench reports, flight-recorder dumps, Chrome
// traces — render a human-readable summary, and diff two reports with a
// threshold-based regression verdict (the CI bench gate).
//
// Lives in src/obs (not in tools/) so the unit tests, which link only
// the msgorder library, can exercise summaries and diffs directly; the
// CLI in tools/msgorder_stats.cpp is a thin argv wrapper.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/obs/json_value.hpp"

namespace msgorder {

/// Render a summary of one loaded artifact.  The document kind is
/// auto-detected from its "schema" field (or "traceEvents" for Chrome
/// traces); unknown documents get a generic structural summary.
std::string stats_summary(const JsonValue& doc);

struct StatsDiffOptions {
  /// Allowed fractional change in the bad direction before a leaf
  /// counts as a regression (0.2 = 20%).
  double threshold = 0.2;
  /// Restrict the diff to numeric leaves whose final path component is
  /// listed here (e.g. {"direct_sync_speedup", "monitor_speedup"}).
  /// Empty: every directional leaf participates.
  std::vector<std::string> fields;
};

struct StatsDiff {
  std::string text;  // rendered table, one line per compared leaf
  std::size_t compared = 0;
  std::vector<std::string> regressions;  // one description per failure
  /// The two documents' top-level "schema" strings ("" when absent).
  /// Diffing across schema versions only matches the leaves both
  /// versions share, which silently un-gates every renamed or added
  /// field — so callers (the CLI, the CI bench gate) should refuse a
  /// mismatch outright instead of reporting a hollow pass (ISSUE 8).
  std::string baseline_schema;
  std::string current_schema;
  bool schema_mismatch() const {
    return baseline_schema != current_schema;
  }
  bool regressed() const { return !regressions.empty(); }
};

/// Compare every numeric leaf present in both documents, at matching
/// flattened paths (bench "rows" arrays are matched by their
/// "n_messages" / "protocol" key, so reordered or added rows do not
/// misalign the comparison).
///
/// Direction and per-field noise tolerance come from the artifacts
/// themselves when declared (ISSUE 7): a top-level "field_meta" object
/// mapping leaf names to {"direction": "higher"|"lower"|"neutral",
/// "noise_floor": frac} — the effective threshold for such a leaf is
/// max(options.threshold, noise_floor), and the current document's
/// declarations win over the baseline's.  Leaves without metadata fall
/// back to the name heuristic (old artifacts keep diffing): *speedup* /
/// *per_second* are higher-better; *seconds*, *latency* and *delay*
/// leaves are lower-better; anything else is reported but can never
/// regress.  The "field_meta" subtree itself is never diffed.
StatsDiff stats_diff(const JsonValue& baseline, const JsonValue& current,
                     const StatsDiffOptions& options = {});

/// Flatten the numeric leaves of `doc` into path -> value, using
/// object keys joined with '.' and bench-style array rows keyed as
/// rows[n=<n_messages>] / rows[<protocol>] (plain indices otherwise).
void flatten_numeric(const JsonValue& doc, const std::string& prefix,
                     std::map<std::string, double>& out);

}  // namespace msgorder
