// Index + query engine over a causal trace log (ISSUE 9): the loaded
// log's event records become a poset — per-process program order plus
// the send -> receive channel edge of every message — and the queries
// are reachability questions on it, answered the same way the checker
// answers them: dense BitMatrix transitive closure with transposed
// ancestor rows (src/util/bitmatrix.hpp, the WitnessEngine idiom) when
// the event count is small enough, plain BFS over the adjacency lists
// beyond that.
//
// Four query families, each with a text and a msgorder.query/1 JSON
// rendering shared by tools/msgorder_query.cpp and the golden tests:
//   cone    — causal past/future of one event (Ben-Zvi's cones)
//   cut     — the consistent cut at a wall-clock instant: frontier per
//             process + messages in flight across it
//   why     — the why-blocked chain: walk the latest hold report of a
//             message through its blocking_msg references transitively
//             to the root blocker
//   diverge — bisect two logs: stream records in parallel, find the
//             first index where they differ under the engine's
//             deterministic (kind,owner,counter) order, and show the
//             diverging event's causal past from both logs
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/tracelog.hpp"
#include "src/util/bitmatrix.hpp"

namespace msgorder {

/// Reachability index over the event records of one loaded log.  Event
/// indices below are positions in `log->events` (log order).  Keeps a
/// pointer to the log: the log must outlive the index.
class TraceLogIndex {
 public:
  /// Build program-order + channel edges; close them densely via
  /// BitMatrix when the event count is <= dense_limit (0 forces BFS —
  /// the tests use that to prove both paths agree).
  static TraceLogIndex build(const LoadedTraceLog& log,
                             std::size_t dense_limit = 16384);

  const LoadedTraceLog& log() const { return *log_; }
  std::size_t event_count() const { return succ_.size(); }
  bool dense() const { return dense_; }
  const TraceLogRecord& event(std::size_t ev) const {
    return log_->records[log_->events[ev]];
  }

  /// The event index of (msg, kind), if the log recorded it.
  std::optional<std::size_t> find_event(MessageId msg, EventKind kind) const;

  /// Causal past/future cone of an event, anchor included, ascending
  /// event-index (== log) order.
  std::vector<std::size_t> causal_past(std::size_t ev) const;
  std::vector<std::size_t> causal_future(std::size_t ev) const;

  /// Direct causal predecessors of an event (program-order parent and,
  /// for a receive, the matching send).
  const std::vector<std::uint32_t>& preds(std::size_t ev) const {
    return pred_[ev];
  }

 private:
  std::vector<std::size_t> bfs(std::size_t ev, bool forward) const;

  const LoadedTraceLog* log_ = nullptr;
  std::vector<std::vector<std::uint32_t>> succ_;
  std::vector<std::vector<std::uint32_t>> pred_;
  bool dense_ = false;
  BitMatrix descendants_;  // closed reachability, row = descendant set
  BitMatrix ancestors_;    // its transpose, row = ancestor set
};

/// The consistent cut at time t.
struct CutResult {
  SimTime at = 0;
  std::size_t events_in_cut = 0;
  /// Time cuts are consistent by construction (every causal edge goes
  /// forward in time); this is verified against the edge lists, not
  /// assumed.
  bool consistent = true;
  /// Per process: the last event at or before t, if any.
  std::vector<std::optional<std::size_t>> frontier;
  /// Messages whose send happened at or before t but whose receive
  /// (x.r*) is after t or missing: the channel contents across the cut.
  std::vector<MessageId> in_flight;
};

CutResult cut_at(const TraceLogIndex& index, SimTime t);

/// One link of a why-blocked chain: `msg` was last held at `process`
/// for `reason`; `first`/`last` span the hold reports and `reports`
/// counts them.
struct WhyLink {
  MessageId msg = 0;
  ProcessId process = 0;
  HoldReason reason;
  SimTime first = 0;
  SimTime last = 0;
  std::size_t reports = 0;
};

/// The transitive why-blocked chain of a message: link 0 is the queried
/// message; each next link is the previous reason's blocking_msg.
struct WhyChain {
  MessageId msg = 0;
  std::vector<WhyLink> links;
  /// The walk revisited a message (mutual blocking); the chain stops at
  /// the repeat.
  bool cycle = false;
  bool operator==(const WhyChain&) const = default;
};

WhyChain why_blocked(const LoadedTraceLog& log, MessageId msg);

/// Result of bisecting two logs.
struct DivergenceReport {
  bool ok = false;       // both logs loaded and streamed cleanly
  std::string error;     // load/decode failure when !ok
  bool diverged = false;
  /// Record index (log order, both logs) of the first difference.
  std::size_t index = 0;
  /// Which aspect differs: "type", "time", "event", "process", "peer",
  /// "color", "tiebreak", "lamport", "hold", "note", or "length" when
  /// one log is a strict prefix of the other.
  std::string field;
  std::optional<TraceLogRecord> record_a;
  std::optional<TraceLogRecord> record_b;
  /// Rendered causal past of the diverging event from each log (at most
  /// `context` lines, ending at the divergence).
  std::vector<std::string> context_a;
  std::vector<std::string> context_b;
  std::uint64_t records_compared = 0;
  TraceLogHeader header_a;
  TraceLogHeader header_b;
  /// Semantic header mismatches (seed, n_processes, n_messages) — the
  /// runs were not set up to be comparable.  Engine/shards/workers
  /// differences are expected (that is the point) and not warned about.
  std::vector<std::string> warnings;
};

DivergenceReport diverge_tracelogs(const std::string& path_a,
                                   const std::string& path_b,
                                   std::size_t context = 12);

/// One-line human rendering of a record, e.g.
/// "t=12.375 p1 x3.r* lam=9 peer=p0" — the vocabulary of every text
/// output below and of the diverge context lines.
std::string render_record(const TraceLogRecord& rec);

/// A query's two renderings plus its process exit code (0 ok; 1 is
/// reserved for "diverge found a divergence"; 2 load/usage failure).
struct QueryOutput {
  int exit_code = 0;
  std::string text;
  std::string json;  // msgorder.query/1
};

/// Parse an event-kind name: "invoke"/"send"/"receive"/"deliver" or the
/// paper's "s*"/"s"/"r*"/"r".
std::optional<EventKind> parse_event_kind(const std::string& name);

// The five msgorder_query subcommands, CLI-independent so the golden
// tests drive them directly (the msgorder_stats pattern).
QueryOutput query_summary(const std::string& path);
QueryOutput query_cone(const std::string& path, MessageId msg,
                       EventKind kind, bool future, std::size_t limit);
QueryOutput query_cut(const std::string& path, SimTime at);
QueryOutput query_why(const std::string& path, MessageId msg);
QueryOutput query_diverge(const std::string& path_a,
                          const std::string& path_b, std::size_t context);

}  // namespace msgorder
