#include "src/obs/report.hpp"

#include "src/checker/monitor.hpp"
#include "src/obs/heatmap.hpp"
#include "src/obs/json.hpp"

namespace msgorder {

namespace {

void write_latency_percentiles(JsonWriter& w, const Observability* obs) {
  const Histogram* h = nullptr;
  if (obs != nullptr) {
    const std::string prefix =
        obs->options().label.empty() ? "" : obs->options().label + ".";
    h = obs->metrics().find_histogram(prefix + "delay.latency");
  }
  if (h == nullptr || h->count() == 0) {
    w.key("percentiles").null();
    return;
  }
  w.key("percentiles").begin_object();
  w.kv("p50", h->percentile(50).value());
  w.kv("p90", h->percentile(90).value());
  w.kv("p99", h->percentile(99).value());
  w.end_object();
}

void write_monitor_section(JsonWriter& w, const OnlineMonitor* monitor,
                           const Trace& trace) {
  if (monitor == nullptr) {
    w.key("monitor").null();
    return;
  }
  w.key("monitor").begin_object();
  w.kv("violated", monitor->violated());
  w.kv("violation_count", monitor->violation_count());
  w.kv("events_seen", monitor->events_seen());
  w.kv("events_to_detection", monitor->events_to_detection());
  if (monitor->violated()) {
    w.kv("first_violation_time", monitor->first_violation_time());
    w.kv("specification", monitor->specification().to_string());
    w.key("witness").begin_array();
    const ViolationWitness& witness = *monitor->first_witness();
    for (std::size_t v = 0; v < witness.size(); ++v) {
      const MessageId m = witness[v];
      w.begin_object();
      w.kv("var", monitor->specification().var_name(v));
      w.kv("msg", m);
      if (m < trace.universe().size()) {
        const Message& msg = trace.universe()[m];
        w.kv("src", static_cast<std::uint64_t>(msg.src));
        w.kv("dst", static_cast<std::uint64_t>(msg.dst));
        w.kv("color", msg.color);
      }
      w.end_object();
    }
    w.end_array();
  } else {
    w.key("witness").null();
  }
  w.end_object();
}

}  // namespace

std::string run_report_json(const SimResult& result,
                            const RunReportOptions& options,
                            const Observability* obs,
                            const OnlineMonitor* monitor) {
  const Trace& trace = result.trace;
  std::size_t invoked = 0;
  std::size_t delivered = 0;
  for (MessageId m = 0; m < trace.universe().size(); ++m) {
    const MessageTimes& mt = trace.times(m);
    if (mt.invoke.has_value()) ++invoked;
    if (mt.complete()) ++delivered;
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.run_report/1");
  w.kv("protocol", options.protocol);
  w.kv("n_processes", options.n_processes);
  w.kv("seed", options.seed);
  w.kv("completed", result.completed);
  w.kv("error", result.error);

  w.key("messages").begin_object();
  w.kv("universe", trace.universe().size());
  w.kv("invoked", invoked);
  w.kv("delivered", delivered);
  w.end_object();

  w.key("overhead").begin_object();
  w.kv("user_packets", trace.user_packets());
  w.kv("control_packets", trace.control_packets());
  w.kv("control_bytes", trace.control_bytes());
  w.kv("tag_bytes", trace.tag_bytes());
  w.kv("control_packets_per_message", trace.control_packets_per_message());
  w.kv("mean_tag_bytes", trace.mean_tag_bytes());
  w.kv("drops", trace.drops());
  w.kv("retransmissions", trace.retransmissions());
  w.kv("duplicate_arrivals", trace.duplicate_arrivals());
  w.end_object();

  w.key("latency").begin_object();
  w.kv("mean", trace.mean_latency());
  w.kv("max", trace.max_latency());
  w.kv("mean_delivery_delay", trace.mean_delivery_delay());
  write_latency_percentiles(w, obs);
  w.end_object();

  write_monitor_section(w, monitor, trace);

  // Per-message delay attribution (ISSUE 4): where every unit of send /
  // delivery delay went, by hold reason.
  if (obs != nullptr && obs->attribution() != nullptr) {
    w.key("attribution");
    obs->attribution()->write_json(w);
    // Per-channel aggregate of the same table (ISSUE 7): a (blocker,
    // blocked, kind) matrix whose row sums equal the per-message totals.
    w.key("inhibition_heatmap");
    InhibitionHeatmap::build(*obs->attribution()).write_json(w);
  } else {
    w.key("attribution").null();
    w.key("inhibition_heatmap").null();
  }

  // Engine profiler (ISSUE 7): per-shard window/stall/ring counters,
  // present only when ObservabilityOptions::profiling was set.
  if (obs != nullptr && obs->profile() != nullptr) {
    w.key("profile");
    obs->profile()->write_json(w);
  } else {
    w.key("profile").null();
  }

  // Causal trace log (ISSUE 9): where the full history went and what it
  // cost, so log overhead is itself observable.
  if (obs != nullptr && obs->tracelog() != nullptr) {
    w.key("tracelog").begin_object();
    w.kv("path", obs->tracelog()->path());
    w.kv("events_written", obs->tracelog()->events_written());
    w.kv("bytes_written", obs->tracelog()->bytes_written());
    w.end_object();
  } else {
    w.key("tracelog").null();
  }

  if (obs != nullptr) {
    w.key("metrics").begin_object();
    obs->metrics().write_json(w);
    w.end_object();
  } else {
    w.key("metrics").null();
  }

  w.end_object();
  return w.take();
}

bool write_run_report(const std::string& path, const SimResult& result,
                      const RunReportOptions& options,
                      const Observability* obs, const OnlineMonitor* monitor,
                      std::string* error) {
  return write_text_file(path, run_report_json(result, options, obs, monitor),
                         error);
}

bool dump_postmortem_if_red(const std::string& path, const SimResult& result,
                            Observability* obs, const OnlineMonitor* monitor,
                            std::string* error) {
  if (obs == nullptr) return false;
  FlightRecorder* recorder = obs->flight_recorder();
  if (recorder == nullptr) return false;
  std::string cause;
  if (monitor != nullptr && monitor->violated()) {
    cause = "monitor violation: " + monitor->specification().to_string();
    std::string note = "violation witness:";
    const ViolationWitness& witness = *monitor->first_witness();
    for (std::size_t v = 0; v < witness.size(); ++v) {
      note += " " + monitor->specification().var_name(v) + "=x" +
              std::to_string(witness[v]);
    }
    recorder->note(std::move(note), monitor->first_violation_time());
  } else if (!result.completed) {
    cause = "incomplete run: " + result.error;
  } else {
    return false;  // green run: nothing to explain
  }
  // Cross-reference the causal trace log when one was active: the ring
  // is a bounded window, the log is the full queryable history.
  const std::string tracelog_path =
      obs->tracelog() != nullptr ? obs->tracelog()->path() : "";
  return recorder->dump(path, cause, tracelog_path, error);
}

}  // namespace msgorder
