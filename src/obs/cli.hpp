// Shared flag parsing for the example binaries (ISSUE 2):
//   --json <path>             write a machine-readable report
//   --trace <path>            write a Chrome-trace JSON of a traced run
//   --flight-recorder <path>  arm the flight recorder; dump a post-mortem
//                             JSON there when the run goes red (ISSUE 4)
//   --profile <path>          enable the engine profiler and write its
//                             msgorder.profile/1 JSON there (ISSUE 7)
//   --tracelog <path>         record the causal trace log there
//                             (msgorder.tracelog/1, ISSUE 9); query it
//                             with tools/msgorder_query
// Unrecognized arguments are left in place (compacted to the front of
// argv past argv[0]) so examples with their own positional arguments
// keep working.
#pragma once

#include <string>

namespace msgorder {

struct ObsCli {
  std::string json_path;    // empty = no report requested
  std::string trace_path;   // empty = no chrome trace requested
  std::string flight_path;  // empty = flight recorder not armed
  std::string profile_path;  // empty = profiler off
  std::string tracelog_path;  // empty = no causal trace log
  bool ok = true;
  std::string error;
};

/// Extract --json/--trace from argv, shifting the remaining arguments
/// down and updating argc.
ObsCli parse_obs_cli(int& argc, char** argv);

}  // namespace msgorder
