#include "src/obs/tracelog.hpp"

#include <algorithm>
#include <cstring>

#include "src/obs/json.hpp"
#include "src/obs/json_value.hpp"
#include "src/sim/network.hpp"

namespace msgorder {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'T', 'L', 'O', 'G', '1', '\n'};
constexpr std::size_t kEventPayload = 42;
constexpr std::size_t kHoldPayload = 35;
constexpr std::size_t kNotePayloadMin = 13;
// One length prefix per record plus the payload; caps a malformed
// length field before it turns into a giant allocation.
constexpr std::uint32_t kMaxPayload = 1u << 24;
constexpr std::size_t kFlushThreshold = 1u << 20;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint8_t get_u8(const char* p) { return static_cast<std::uint8_t>(*p); }

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::uint64_t TraceLogHeader::channel_stream_seed(ProcessId src,
                                                  ProcessId dst) const {
  return Network::channel_seed(seed, src, dst);
}

void TraceLogWriter::begin_run(const TraceLogHeader& header) {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  buffer_.clear();
  error_.clear();
  events_written_ = 0;
  bytes_written_ = 0;
  if (!out_) {
    error_ = "cannot open tracelog " + path_;
    return;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.tracelog/1");
  w.kv("engine", header.engine);
  w.kv("protocol", header.protocol);
  w.kv("n_processes", static_cast<std::uint64_t>(header.n_processes));
  w.kv("n_messages", static_cast<std::uint64_t>(header.n_messages));
  w.kv("seed", header.seed);
  w.kv("shards", static_cast<std::uint64_t>(header.shards));
  w.kv("workers", static_cast<std::uint64_t>(header.workers));
  w.kv("lookahead", header.lookahead);
  w.end_object();
  const std::string json = w.take();
  std::string head;
  head.reserve(sizeof kMagic + 4 + json.size());
  head.append(kMagic, sizeof kMagic);
  put_u32(head, static_cast<std::uint32_t>(json.size()));
  head.append(json);
  out_.write(head.data(), static_cast<std::streamsize>(head.size()));
  bytes_written_ = head.size();
  proc_clock_.assign(header.n_processes, 0);
  msg_clock_.assign(header.n_messages, 0);
}

void TraceLogWriter::put_bytes(std::string_view payload) {
  put_u32(buffer_, static_cast<std::uint32_t>(payload.size()));
  buffer_.append(payload);
  ++events_written_;
  bytes_written_ += 4 + payload.size();
  if (buffer_.size() >= kFlushThreshold) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void TraceLogWriter::append_event(ProcessId at, SystemEvent e, SimTime t,
                                  std::uint64_t tiebreak, ProcessId peer,
                                  std::int32_t color) {
  if (!out_.is_open()) return;
  if (at >= proc_clock_.size()) proc_clock_.resize(at + 1, 0);
  if (e.msg >= msg_clock_.size()) msg_clock_.resize(e.msg + 1, 0);
  std::uint64_t clock = 0;
  if (e.kind == EventKind::kReceive) {
    clock = std::max(proc_clock_[at], msg_clock_[e.msg]) + 1;
    proc_clock_[at] = clock;
  } else {
    clock = ++proc_clock_[at];
    if (e.kind == EventKind::kSend) msg_clock_[e.msg] = clock;
  }
  std::string payload;
  payload.reserve(kEventPayload);
  put_u8(payload, static_cast<std::uint8_t>(TraceLogRecord::Type::kEvent));
  put_u8(payload, static_cast<std::uint8_t>(e.kind));
  put_u32(payload, e.msg);
  put_u32(payload, at);
  put_u32(payload, peer);
  put_u32(payload, static_cast<std::uint32_t>(color));
  put_f64(payload, t);
  put_u64(payload, tiebreak);
  put_u64(payload, clock);
  put_bytes(payload);
}

void TraceLogWriter::append_hold(ProcessId at, MessageId msg,
                                 const HoldReason& reason, SimTime t,
                                 std::uint64_t tiebreak) {
  if (!out_.is_open()) return;
  std::string payload;
  payload.reserve(kHoldPayload);
  put_u8(payload, static_cast<std::uint8_t>(TraceLogRecord::Type::kHold));
  put_u8(payload, static_cast<std::uint8_t>(reason.kind));
  std::uint8_t flags = 0;
  if (reason.blocking_msg.has_value()) flags |= 1;
  if (reason.blocking_proc.has_value()) flags |= 2;
  put_u8(payload, flags);
  put_u32(payload, msg);
  put_u32(payload, at);
  put_u32(payload, reason.blocking_msg.value_or(0));
  put_u32(payload, reason.blocking_proc.value_or(0));
  put_f64(payload, t);
  put_u64(payload, tiebreak);
  put_bytes(payload);
}

void TraceLogWriter::append_note(std::string_view text, SimTime t) {
  if (!out_.is_open()) return;
  std::string payload;
  payload.reserve(kNotePayloadMin + text.size());
  put_u8(payload, static_cast<std::uint8_t>(TraceLogRecord::Type::kNote));
  put_f64(payload, t);
  put_u32(payload, static_cast<std::uint32_t>(text.size()));
  payload.append(text);
  put_bytes(payload);
}

void TraceLogWriter::finish() {
  if (!out_.is_open()) return;
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_.flush();
  if (!out_ && error_.empty()) {
    error_ = "write error on tracelog " + path_;
  }
}

bool TraceLogStream::open(const std::string& path, std::string* error) {
  in_.open(path, std::ios::binary);
  if (!in_) {
    fail(error, "cannot open tracelog " + path);
    return false;
  }
  char magic[sizeof kMagic];
  if (!in_.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    fail(error, path + ": not a msgorder.tracelog file (bad magic)");
    return false;
  }
  char len_bytes[4];
  if (!in_.read(len_bytes, 4)) {
    fail(error, path + ": truncated header length");
    return false;
  }
  const std::uint32_t header_len = get_u32(len_bytes);
  if (header_len == 0 || header_len > kMaxPayload) {
    fail(error, path + ": implausible header length");
    return false;
  }
  header_json_.resize(header_len);
  if (!in_.read(header_json_.data(), header_len)) {
    fail(error, path + ": truncated header");
    return false;
  }
  std::string parse_error;
  const auto doc = json_parse(header_json_, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    fail(error, path + ": bad header JSON: " + parse_error);
    return false;
  }
  header_.schema = doc->string_at("schema").value_or("");
  if (header_.schema != "msgorder.tracelog/1") {
    fail(error, path + ": unsupported schema \"" + header_.schema + "\"");
    return false;
  }
  header_.engine = doc->string_at("engine").value_or("");
  header_.protocol = doc->string_at("protocol").value_or("");
  header_.n_processes =
      static_cast<std::size_t>(doc->number_at("n_processes").value_or(0));
  header_.n_messages =
      static_cast<std::size_t>(doc->number_at("n_messages").value_or(0));
  header_.seed =
      static_cast<std::uint64_t>(doc->number_at("seed").value_or(0));
  header_.shards =
      static_cast<std::size_t>(doc->number_at("shards").value_or(1));
  header_.workers =
      static_cast<std::size_t>(doc->number_at("workers").value_or(1));
  header_.lookahead = doc->number_at("lookahead").value_or(0);
  return true;
}

int TraceLogStream::next(TraceLogRecord* out, std::string* error) {
  char len_bytes[4];
  if (!in_.read(len_bytes, 4)) {
    if (in_.gcount() == 0) return 0;  // clean end of file
    fail(error, "truncated record length");
    return -1;
  }
  const std::uint32_t len = get_u32(len_bytes);
  if (len == 0 || len > kMaxPayload) {
    fail(error, "implausible record length");
    return -1;
  }
  std::string payload(len, '\0');
  if (!in_.read(payload.data(), len)) {
    fail(error, "truncated record payload");
    return -1;
  }
  const char* p = payload.data();
  *out = TraceLogRecord{};
  switch (get_u8(p)) {
    case 0: {
      if (len != kEventPayload) {
        fail(error, "bad event record size");
        return -1;
      }
      out->type = TraceLogRecord::Type::kEvent;
      out->event.kind = static_cast<EventKind>(get_u8(p + 1));
      out->event.msg = get_u32(p + 2);
      out->process = get_u32(p + 6);
      out->peer = get_u32(p + 10);
      out->color = static_cast<std::int32_t>(get_u32(p + 14));
      out->time = get_f64(p + 18);
      out->tiebreak = get_u64(p + 26);
      out->lamport = get_u64(p + 34);
      return 1;
    }
    case 1: {
      if (len != kHoldPayload) {
        fail(error, "bad hold record size");
        return -1;
      }
      out->type = TraceLogRecord::Type::kHold;
      out->reason.kind = static_cast<HoldKind>(get_u8(p + 1));
      const std::uint8_t flags = get_u8(p + 2);
      out->held_msg = get_u32(p + 3);
      out->process = get_u32(p + 7);
      if ((flags & 1) != 0) out->reason.blocking_msg = get_u32(p + 11);
      if ((flags & 2) != 0) out->reason.blocking_proc = get_u32(p + 15);
      out->time = get_f64(p + 19);
      out->tiebreak = get_u64(p + 27);
      return 1;
    }
    case 2: {
      if (len < kNotePayloadMin) {
        fail(error, "bad note record size");
        return -1;
      }
      out->type = TraceLogRecord::Type::kNote;
      out->time = get_f64(p + 1);
      const std::uint32_t text_len = get_u32(p + 9);
      if (kNotePayloadMin + text_len != len) {
        fail(error, "bad note text length");
        return -1;
      }
      out->note.assign(p + 13, text_len);
      return 1;
    }
    default:
      fail(error, "unknown record type");
      return -1;
  }
}

std::optional<LoadedTraceLog> load_tracelog(const std::string& path,
                                            std::string* error,
                                            std::size_t max_records) {
  TraceLogStream stream;
  if (!stream.open(path, error)) return std::nullopt;
  LoadedTraceLog log;
  log.path = path;
  log.header = stream.header();
  TraceLogRecord rec;
  std::string rec_error;
  int status = 0;
  while ((status = stream.next(&rec, &rec_error)) == 1) {
    if (rec.type == TraceLogRecord::Type::kEvent) {
      log.events.push_back(log.records.size());
    }
    log.records.push_back(std::move(rec));
    if (max_records != 0 && log.records.size() >= max_records) break;
  }
  if (status < 0) {
    fail(error, path + ": " + rec_error);
    return std::nullopt;
  }
  return log;
}

}  // namespace msgorder
