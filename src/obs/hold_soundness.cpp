#include "src/obs/hold_soundness.hpp"

#include <sstream>

namespace msgorder {

namespace {

std::string describe(MessageId msg, const HoldSegment& seg,
                     const std::string& why) {
  std::ostringstream out;
  out << "x" << msg << " held (" << to_string(seg.reason.kind) << ", "
      << to_string(seg.phase) << ") over [" << seg.begin << ", "
      << seg.end << "]: " << why;
  return out.str();
}

}  // namespace

std::vector<std::string> hold_soundness_violations(
    const Trace& trace, const DelayAttribution& attribution) {
  std::vector<std::string> violations;
  const double kEps = 1e-9;
  for (MessageId msg = 0; msg < attribution.message_count(); ++msg) {
    if (attribution.has_open_hold(msg)) {
      std::ostringstream out;
      out << "x" << msg
          << " has an open hold segment in a complete run (the reported "
             "inhibition was never released by a send/delivery)";
      violations.push_back(out.str());
    }
    const MessageTimes& held = trace.times(msg);
    for (const HoldSegment& seg : attribution.segments(msg)) {
      if (!held.complete()) {
        violations.push_back(
            describe(msg, seg, "held message never completed"));
        continue;
      }
      if (!seg.reason.blocking_msg.has_value()) continue;
      const MessageId blocker = *seg.reason.blocking_msg;
      if (blocker >= trace.universe().size()) {
        violations.push_back(
            describe(msg, seg, "blocking message id out of range"));
        continue;
      }
      const MessageTimes& b = trace.times(blocker);
      if (!b.deliver.has_value()) {
        std::ostringstream why;
        why << "blocker x" << blocker << " was never delivered";
        violations.push_back(describe(msg, seg, why.str()));
        continue;
      }
      switch (seg.reason.kind) {
        case HoldKind::kWaitPredecessor: {
          // The blamed predecessor must be delivered inside the window
          // it explains: no earlier than the segment began (else the
          // report was already stale) and no later than the held
          // message's own delivery (else it could not have unblocked
          // it).
          if (*b.deliver + kEps < seg.begin ||
              *b.deliver > *held.deliver + kEps) {
            std::ostringstream why;
            why << "predecessor x" << blocker << " delivered at "
                << *b.deliver << ", outside [" << seg.begin << ", "
                << *held.deliver << "]";
            violations.push_back(describe(msg, seg, why.str()));
          }
          break;
        }
        case HoldKind::kWaitAck:
        case HoldKind::kWaitLock: {
          // The blamed exchange completes (its delivery happens, then
          // its ack/release) strictly before the held message may even
          // be sent.
          if (*b.deliver > *held.send + kEps) {
            std::ostringstream why;
            why << "blocking exchange x" << blocker << " delivered at "
                << *b.deliver << ", after the held send at "
                << *held.send;
            violations.push_back(describe(msg, seg, why.str()));
          }
          break;
        }
        default:
          break;  // other kinds carry no blocking_msg claim to check
      }
    }
  }
  return violations;
}

}  // namespace msgorder
