// Observer fan-out for the simulator (ISSUE 2 satellite): the old
// SimOptions::observer was a single std::function slot, forcing the
// online monitor, tracers, and user callbacks to wrap each other by
// hand.  ObserverMux lets any number of observers attach to one run;
// the engine notifies them in attachment order after each recorded
// system event.
//
// Shard safety (ISSUE 6).  The sharded engine records events from
// several worker threads, so every observer declares a safety class at
// attachment time:
//
//  - kMergePhase (the default): the observer is NOT thread-safe (online
//    monitors, tracers, anything with unguarded state).  The sharded
//    engine buffers events per shard and replays them to merge-phase
//    observers on one thread, after the run, in the deterministic
//    (time, tiebreak) merge order — the exact order the sequential
//    engine would have produced.  Correct by construction, but the
//    callback sees events after the fact, not live.
//  - kThreadSafe: the observer promises its own synchronization (or is
//    stateless).  The sharded engine calls it inline from the worker
//    thread that recorded the event; events of one shard arrive in
//    order, events of different shards interleave arbitrarily.
//
// The sequential engine ignores the distinction and notifies everyone
// inline in attachment order, so single-shard runs behave exactly as
// before.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

/// Called after every recorded system event (invoke/send/receive/
/// deliver) with the process it occurred at and the simulation time.
using SimObserver = std::function<void(ProcessId, SystemEvent, SimTime)>;

/// Declares when the sharded engine may invoke an observer; see the
/// header comment.  Sequential runs treat both classes identically.
enum class ObserverSafety : std::uint8_t {
  kMergePhase,  ///< not thread-safe: replayed in merge order post-run
  kThreadSafe,  ///< self-synchronized: called live from shard threads
};

class ObserverMux {
 public:
  /// Attach an observer; returns *this so attachments chain.
  ObserverMux& add(SimObserver observer,
                   ObserverSafety safety = ObserverSafety::kMergePhase) {
    observers_.push_back({std::move(observer), safety});
    return *this;
  }

  void clear() { observers_.clear(); }
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  bool has_merge_phase() const {
    return count(ObserverSafety::kMergePhase) > 0;
  }
  bool has_thread_safe() const {
    return count(ObserverSafety::kThreadSafe) > 0;
  }

  /// Notify every observer in attachment order (sequential engine).
  void notify(ProcessId p, SystemEvent e, SimTime t) const {
    for (const Entry& entry : observers_) entry.fn(p, e, t);
  }

  /// Notify only the thread-safe observers (sharded engine, live from a
  /// worker thread).
  void notify_thread_safe(ProcessId p, SystemEvent e, SimTime t) const {
    notify_class(ObserverSafety::kThreadSafe, p, e, t);
  }

  /// Notify only the merge-phase observers (sharded engine, during the
  /// single-threaded deterministic replay).
  void notify_merge_phase(ProcessId p, SystemEvent e, SimTime t) const {
    notify_class(ObserverSafety::kMergePhase, p, e, t);
  }

 private:
  struct Entry {
    SimObserver fn;
    ObserverSafety safety;
  };

  std::size_t count(ObserverSafety safety) const {
    std::size_t n = 0;
    for (const Entry& entry : observers_) n += (entry.safety == safety) ? 1 : 0;
    return n;
  }

  void notify_class(ObserverSafety safety, ProcessId p, SystemEvent e,
                    SimTime t) const {
    for (const Entry& entry : observers_) {
      if (entry.safety == safety) entry.fn(p, e, t);
    }
  }

  std::vector<Entry> observers_;
};

}  // namespace msgorder
