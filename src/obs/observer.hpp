// Observer fan-out for the simulator (ISSUE 2 satellite): the old
// SimOptions::observer was a single std::function slot, forcing the
// online monitor, tracers, and user callbacks to wrap each other by
// hand.  ObserverMux lets any number of observers attach to one run;
// the engine notifies them in attachment order after each recorded
// system event.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "src/poset/event.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

/// Called after every recorded system event (invoke/send/receive/
/// deliver) with the process it occurred at and the simulation time.
using SimObserver = std::function<void(ProcessId, SystemEvent, SimTime)>;

class ObserverMux {
 public:
  /// Attach an observer; returns *this so attachments chain.
  ObserverMux& add(SimObserver observer) {
    observers_.push_back(std::move(observer));
    return *this;
  }

  void clear() { observers_.clear(); }
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void notify(ProcessId p, SystemEvent e, SimTime t) const {
    for (const SimObserver& observer : observers_) observer(p, e, t);
  }

 private:
  std::vector<SimObserver> observers_;
};

}  // namespace msgorder
