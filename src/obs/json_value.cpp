#include "src/obs/json_value.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace msgorder {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<double> JsonValue::number_at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> JsonValue::string_at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<bool> JsonValue::bool_at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->as_bool();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after document";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) const {
    if (error != nullptr) {
      *error = error_ + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue(nullptr);
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!parse_value(member)) return false;
      obj.insert_or_assign(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    out = JsonValue(std::move(obj));
    return true;
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  static void append_utf8(std::string& s, unsigned code) {
    if (code < 0x80) {
      s.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (code >> 6)));
      s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xE0 | (code >> 12)));
      s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            append_utf8(out, code);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

std::optional<JsonValue> json_parse_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::string parse_error;
  auto doc = json_parse(text, &parse_error);
  if (!doc && error != nullptr) *error = path + ": " + parse_error;
  return doc;
}

}  // namespace msgorder
