// A minimal fork-join sweep runner (ISSUE 3): the bench harnesses fan
// independent (seed, n_messages, protocol) cells out over a std::thread
// pool.  Cells must not share mutable state — each writes only its own
// result slot; the caller aggregates after parallel_for returns.
//
// No queues or futures: an atomic next-index counter hands cells to
// workers, which is plenty for the coarse-grained cells the benches run
// (each cell simulates and checks a whole run).
#pragma once

#include <cstddef>
#include <functional>

namespace msgorder {

/// Sensible default worker count for a sweep of `n_cells` cells: the
/// hardware concurrency, capped by the cell count, and at least 1.
std::size_t default_sweep_threads(std::size_t n_cells);

/// Run fn(i) for every i in [0, n_cells), on up to `n_threads` worker
/// threads.  With n_threads <= 1 (or a single cell) everything runs
/// inline on the calling thread — same observable behavior, no spawn.
/// Joins all workers before returning; exceptions escaping fn terminate
/// (the bench cells report failures through their result slots instead).
void parallel_for(std::size_t n_cells, std::size_t n_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace msgorder
