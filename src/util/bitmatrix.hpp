// Dense square bit matrix used for transitive-closure reachability over
// event posets.  Rows are packed into 64-bit words so that the Warshall
// closure runs at word speed: closing an n-event run costs O(n^2 * n/64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msgorder {

class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t n);

  std::size_t size() const { return n_; }

  bool get(std::size_t i, std::size_t j) const {
    return (row(i)[j >> 6] >> (j & 63)) & 1u;
  }
  void set(std::size_t i, std::size_t j) { row(i)[j >> 6] |= 1ULL << (j & 63); }
  void clear(std::size_t i, std::size_t j) {
    row(i)[j >> 6] &= ~(1ULL << (j & 63));
  }

  /// row(i) |= row(j), the word-parallel core of the closure.
  void or_row_into(std::size_t src, std::size_t dst);

  /// Reflexive-free transitive closure in place (Warshall over packed rows).
  void transitive_closure();

  /// True iff some i has get(i, i): the relation has a cycle after closure.
  bool any_diagonal() const;

  /// Number of set bits in row i.
  std::size_t row_popcount(std::size_t i) const;

  /// Total number of set bits.
  std::size_t popcount() const;

  bool operator==(const BitMatrix&) const = default;

 private:
  std::uint64_t* row(std::size_t i) { return bits_.data() + i * words_; }
  const std::uint64_t* row(std::size_t i) const {
    return bits_.data() + i * words_;
  }

  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace msgorder
