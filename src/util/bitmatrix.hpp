// Dense square bit matrix used for transitive-closure reachability over
// event posets.  Rows are packed into 64-bit words so that the Warshall
// closure runs at word speed: closing an n-event run costs O(n^2 * n/64).
// The closure is cache-blocked over 64-column panels, and rows are
// exposed as raw word spans (row_data) so that the checkers can build
// candidate sets by word-parallel intersection instead of per-bit gets.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace msgorder {

/// Compress the 32 bits of `word` at positions congruent to `phase`
/// (mod 2) into the low 32 bits of the result.  With user events packed
/// as 2*msg + kind this projects an event row onto the messages whose
/// send (phase 0) or delivery (phase 1) bit is set.
constexpr std::uint64_t compress_stride2(std::uint64_t word,
                                         unsigned phase) {
  std::uint64_t x = (word >> (phase & 1)) & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return x;
}

class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t n);

  std::size_t size() const { return n_; }
  /// Number of 64-bit words per packed row.
  std::size_t words_per_row() const { return words_; }

  bool get(std::size_t i, std::size_t j) const {
    return (row(i)[j >> 6] >> (j & 63)) & 1u;
  }
  void set(std::size_t i, std::size_t j) { row(i)[j >> 6] |= 1ULL << (j & 63); }
  void clear(std::size_t i, std::size_t j) {
    row(i)[j >> 6] &= ~(1ULL << (j & 63));
  }

  /// Raw packed row i: bit j of word w is get(i, 64*w + j).  For a
  /// closed reachability matrix row i is exactly the descendant set of
  /// i; the transposed() matrix gives ancestor sets the same way.
  const std::uint64_t* row_data(std::size_t i) const { return row(i); }

  /// row(i) |= row(j), the word-parallel core of the closure.  Safe when
  /// src == dst (a no-op).
  void or_row_into(std::size_t src, std::size_t dst);

  /// out[w] = row(a)[w] & row(b)[w] for all words; returns true iff the
  /// intersection is non-empty.  `out` may be nullptr to only test.
  bool and_rows(std::size_t a, std::size_t b,
                std::uint64_t* out = nullptr) const;

  /// row(dst) |= words, where `words` is a packed bitset of
  /// words_per_row() words (e.g. a snapshot taken from row_data).
  void or_words_into(const std::uint64_t* words, std::size_t dst);

  /// Invoke fn(j) for every set bit j of row i, in increasing order.
  template <typename Fn>
  void for_each_set(std::size_t i, Fn&& fn) const;

  /// Reflexive-free transitive closure in place: Warshall over packed
  /// rows, cache-blocked over 64-wide panels of intermediate vertices so
  /// the panel rows stay hot while every other row absorbs them.
  void transitive_closure();

  /// The transposed matrix (64x64 block transpose at word speed);
  /// row i of the result is the predecessor/ancestor set of i.
  BitMatrix transposed() const;

  /// True iff some i has get(i, i): the relation has a cycle after closure.
  bool any_diagonal() const;

  /// Zero every bit, keeping the dimensions (monitor reset support).
  void zero_all() { std::fill(bits_.begin(), bits_.end(), 0); }

  /// Number of set bits in row i.
  std::size_t row_popcount(std::size_t i) const;

  /// Total number of set bits.
  std::size_t popcount() const;

  bool operator==(const BitMatrix&) const = default;

 private:
  std::uint64_t* row(std::size_t i) { return bits_.data() + i * words_; }
  const std::uint64_t* row(std::size_t i) const {
    return bits_.data() + i * words_;
  }

  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

template <typename Fn>
void BitMatrix::for_each_set(std::size_t i, Fn&& fn) const {
  const std::uint64_t* r = row(i);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t bits = r[w];
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      fn(64 * w + b);
      bits &= bits - 1;
    }
  }
}

}  // namespace msgorder
