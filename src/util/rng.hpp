// Deterministic pseudo-random number generation for simulators and
// workload generators.  Every experiment in this repository is seeded, so
// results are exactly reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace msgorder {

/// SplitMix64 PRNG.  Small, fast, and statistically solid for simulation
/// purposes (this is the generator used to seed xoshiro in reference
/// implementations).  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t state_;
};

}  // namespace msgorder
