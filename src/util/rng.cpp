#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace msgorder {

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Debiased multiply-shift (Lemire).  The retry loop terminates with
  // overwhelming probability on the first iteration.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace msgorder
