// Bounded single-producer / single-consumer ring buffer for cross-shard
// message passing in the sharded simulator (ISSUE 6).  One thread calls
// try_push, one thread calls try_pop; head and tail live on their own
// cache lines so the producer and consumer never false-share, and each
// side caches the other's index to avoid re-reading the shared atomic on
// every operation (the classic Rigtorp optimization).
//
// The ring never blocks: try_push returns false when full (the sharded
// engine spills to a producer-owned overflow vector that the consumer
// drains at the next window barrier), try_pop returns false when empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace msgorder {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so the
  /// index-to-slot map is a mask, not a modulo.
  explicit SpscRing(std::size_t min_capacity = 1024)
      : slots_(round_up(min_capacity)), mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side.  Moves from `value` only on success; on a full ring
  /// the value is left intact so the caller can divert it elsewhere.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Moves the front element into `out` if present.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact only on the consumer thread).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 2;
    while (cap < n) cap <<= 1;
    return cap;
  }

  std::vector<T> slots_;
  std::size_t mask_;
  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Consumer-owned line: head plus the consumer's cached view of tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace msgorder
