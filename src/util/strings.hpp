// Small string helpers shared by the parser, the pretty-printers, and the
// table-emitting benchmark harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace msgorder {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True iff text begins with prefix.
bool starts_with(std::string_view text, std::string_view prefix);

/// Join the pieces with the given separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Left-pad / right-pad to the given width (for plain-text tables).
std::string pad_right(std::string_view text, std::size_t width);
std::string pad_left(std::string_view text, std::size_t width);

}  // namespace msgorder
