#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace msgorder {

std::size_t default_sweep_threads(std::size_t n_cells) {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min(n_cells, hw ? hw : 1));
}

void parallel_for(std::size_t n_cells, std::size_t n_threads,
                  const std::function<void(std::size_t)>& fn) {
  n_threads = std::max<std::size_t>(1, std::min(n_threads, n_cells));
  if (n_threads <= 1) {
    for (std::size_t i = 0; i < n_cells; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_cells) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n_threads - 1);
  for (std::size_t t = 0; t + 1 < n_threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace msgorder
