#include "src/util/bitmatrix.hpp"

#include <bit>

namespace msgorder {

BitMatrix::BitMatrix(std::size_t n)
    : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

void BitMatrix::or_row_into(std::size_t src, std::size_t dst) {
  const std::uint64_t* s = row(src);
  std::uint64_t* d = row(dst);
  for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
}

void BitMatrix::transitive_closure() {
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (get(i, k)) or_row_into(k, i);
    }
  }
}

bool BitMatrix::any_diagonal() const {
  for (std::size_t i = 0; i < n_; ++i) {
    if (get(i, i)) return true;
  }
  return false;
}

std::size_t BitMatrix::row_popcount(std::size_t i) const {
  std::size_t total = 0;
  const std::uint64_t* r = row(i);
  for (std::size_t w = 0; w < words_; ++w) total += std::popcount(r[w]);
  return total;
}

std::size_t BitMatrix::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : bits_) total += std::popcount(w);
  return total;
}

}  // namespace msgorder
