#include "src/util/bitmatrix.hpp"

#include <algorithm>
#include <bit>

namespace msgorder {

namespace {

/// In-place transpose of a 64x64 bit block held as 64 row words
/// (Hacker's Delight 7-3, iterative swap of shrinking sub-blocks).
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      // LSB-first columns: the high half of a[k] (the top-right block)
      // swaps with the low half of a[k | j] (the bottom-left block).
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

}  // namespace

BitMatrix::BitMatrix(std::size_t n)
    : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

void BitMatrix::or_row_into(std::size_t src, std::size_t dst) {
  if (src == dst) return;
  const std::uint64_t* s = row(src);
  std::uint64_t* d = row(dst);
  for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
}

bool BitMatrix::and_rows(std::size_t a, std::size_t b,
                         std::uint64_t* out) const {
  const std::uint64_t* ra = row(a);
  const std::uint64_t* rb = row(b);
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t v = ra[w] & rb[w];
    any |= v;
    if (out != nullptr) out[w] = v;
  }
  return any != 0;
}

void BitMatrix::or_words_into(const std::uint64_t* words, std::size_t dst) {
  std::uint64_t* d = row(dst);
  for (std::size_t w = 0; w < words_; ++w) d[w] |= words[w];
}

void BitMatrix::transitive_closure() {
  // Blocked Warshall: for each 64-wide panel K of intermediate vertices,
  // first close the panel's own rows over intermediates in K (the
  // diagonal-block phase of blocked Floyd-Warshall), then let every
  // other row absorb the closed panel rows it can reach.  The panel's 64
  // rows stay cache-hot across the whole second phase, which is where
  // the naive k-major loop thrashes.
  for (std::size_t kb = 0; kb < words_; ++kb) {
    const std::size_t k_base = 64 * kb;
    const std::size_t k_count = std::min<std::size_t>(64, n_ - k_base);
    for (std::size_t k = 0; k < k_count; ++k) {
      for (std::size_t i = 0; i < k_count; ++i) {
        if (i != k && get(k_base + i, k_base + k)) {
          or_row_into(k_base + k, k_base + i);
        }
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if (i - k_base < k_count) continue;  // panel rows already closed
      std::uint64_t* ri = row(i);
      // Absorbing a panel row can reveal new reachable panel vertices in
      // this row's panel word, so re-read it until no bits are pending.
      std::uint64_t done = 0;
      std::uint64_t pending;
      while ((pending = ri[kb] & ~done) != 0) {
        const auto k = static_cast<std::size_t>(std::countr_zero(pending));
        done |= 1ULL << k;
        or_row_into(k_base + k, i);
      }
    }
  }
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix out(n_);
  std::uint64_t block[64];
  const std::size_t row_blocks = (n_ + 63) / 64;
  for (std::size_t bi = 0; bi < row_blocks; ++bi) {
    const std::size_t i_count = std::min<std::size_t>(64, n_ - 64 * bi);
    for (std::size_t bj = 0; bj < words_; ++bj) {
      for (std::size_t i = 0; i < i_count; ++i) {
        block[i] = row(64 * bi + i)[bj];
      }
      std::fill(block + i_count, block + 64, 0);
      transpose64(block);
      const std::size_t j_count = std::min<std::size_t>(64, n_ - 64 * bj);
      for (std::size_t j = 0; j < j_count; ++j) {
        out.row(64 * bj + j)[bi] = block[j];
      }
    }
  }
  return out;
}

bool BitMatrix::any_diagonal() const {
  for (std::size_t i = 0; i < n_; ++i) {
    if (get(i, i)) return true;
  }
  return false;
}

std::size_t BitMatrix::row_popcount(std::size_t i) const {
  std::size_t total = 0;
  const std::uint64_t* r = row(i);
  for (std::size_t w = 0; w < words_; ++w) total += std::popcount(r[w]);
  return total;
}

std::size_t BitMatrix::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : bits_) total += std::popcount(w);
  return total;
}

}  // namespace msgorder
