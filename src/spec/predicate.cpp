#include "src/spec/predicate.hpp"

#include <algorithm>

namespace msgorder {

std::string ForbiddenPredicate::var_name(std::size_t v) const {
  if (v < var_names.size() && !var_names[v].empty()) return var_names[v];
  // Default names x, y, z, w, then x4, x5, ...
  static constexpr const char* kDefaults[] = {"x", "y", "z", "w"};
  if (v < 4) return kDefaults[v];
  return "x" + std::to_string(v);
}

std::string ForbiddenPredicate::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    const Conjunct& c = conjuncts[i];
    if (i) out += " & ";
    out += "(" + var_name(c.lhs) + "." + kind_name(c.p) + " |> " +
           var_name(c.rhs) + "." + kind_name(c.q) + ")";
  }
  if (conjuncts.empty()) out += "true";
  const bool has_where =
      !process_constraints.empty() || !color_constraints.empty();
  if (has_where) out += " where ";
  bool first = true;
  for (const ProcessEquality& pe : process_constraints) {
    if (!first) out += ", ";
    first = false;
    out += "process(" + var_name(pe.var_a) + "." + kind_name(pe.kind_a) +
           ")=process(" + var_name(pe.var_b) + "." + kind_name(pe.kind_b) +
           ")";
  }
  for (const ColorConstraint& cc : color_constraints) {
    if (!first) out += ", ";
    first = false;
    out += "color(" + var_name(cc.var) + ")=" + std::to_string(cc.color);
  }
  return out;
}

NormalizedPredicate normalize(const ForbiddenPredicate& predicate) {
  NormalizedPredicate result;

  // Unsatisfiable self-conjuncts make the whole conjunction false.
  for (const Conjunct& c : predicate.conjuncts) {
    if (c.lhs == c.rhs &&
        !(c.p == UserEventKind::kSend && c.q == UserEventKind::kDeliver)) {
      // x.s |> x.s, x.r |> x.r are irreflexivity violations and
      // x.r |> x.s contradicts x.s |> x.r.
      result.triviality = NormalTriviality::kUnsatisfiable;
      return result;
    }
  }

  // Drop tautological x.s |> x.r conjuncts and duplicates.
  std::vector<Conjunct> kept;
  for (const Conjunct& c : predicate.conjuncts) {
    if (c.lhs == c.rhs) continue;  // x.s |> x.r, always true
    if (std::find(kept.begin(), kept.end(), c) == kept.end()) {
      kept.push_back(c);
    }
  }
  if (kept.empty()) {
    result.triviality = NormalTriviality::kTautological;
    return result;
  }

  // Drop variables mentioned by no conjunct, renumbering densely.
  std::vector<bool> used(predicate.arity, false);
  for (const Conjunct& c : kept) {
    used[c.lhs] = true;
    used[c.rhs] = true;
  }
  std::vector<std::size_t> remap(predicate.arity, 0);
  std::size_t next = 0;
  for (std::size_t v = 0; v < predicate.arity; ++v) {
    if (used[v]) remap[v] = next++;
  }

  ForbiddenPredicate out;
  out.arity = next;
  for (Conjunct c : kept) {
    c.lhs = remap[c.lhs];
    c.rhs = remap[c.rhs];
    out.conjuncts.push_back(c);
  }
  for (ProcessEquality pe : predicate.process_constraints) {
    if (!used[pe.var_a] || !used[pe.var_b]) continue;
    pe.var_a = remap[pe.var_a];
    pe.var_b = remap[pe.var_b];
    out.process_constraints.push_back(pe);
  }
  for (ColorConstraint cc : predicate.color_constraints) {
    if (!used[cc.var]) continue;
    cc.var = remap[cc.var];
    out.color_constraints.push_back(cc);
  }
  if (!predicate.var_names.empty()) {
    out.var_names.resize(next);
    for (std::size_t v = 0; v < predicate.arity; ++v) {
      if (used[v] && v < predicate.var_names.size()) {
        out.var_names[remap[v]] = predicate.var_names[v];
      }
    }
  }
  result.predicate = std::move(out);
  return result;
}

ForbiddenPredicate make_predicate(
    std::size_t arity, std::vector<Conjunct> conjuncts,
    std::vector<ProcessEquality> process_constraints,
    std::vector<ColorConstraint> color_constraints) {
  ForbiddenPredicate p;
  p.arity = arity;
  p.conjuncts = std::move(conjuncts);
  p.process_constraints = std::move(process_constraints);
  p.color_constraints = std::move(color_constraints);
  return p;
}

std::string CountingPredicate::to_string() const {
  std::string out = "concurrent";
  if (color.has_value()) out += "(color=" + std::to_string(*color) + ")";
  out += " <= " + std::to_string(limit);
  return out;
}

std::string CompositeSpec::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    if (i) out += "  AND  ";
    out += "forbid " + predicates[i].to_string();
  }
  for (const CountingPredicate& c : counting) {
    if (!out.empty()) out += "  AND  ";
    out += c.to_string();
  }
  return out;
}

}  // namespace msgorder
