#include "src/spec/witness.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/poset/poset.hpp"

namespace msgorder {

namespace {

/// Tiny union-find for identifying process slots.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::optional<UserRun> witness_run(const ForbiddenPredicate& predicate) {
  const NormalizedPredicate normalized = normalize(predicate);
  if (normalized.triviality != NormalTriviality::kNone) return std::nullopt;
  const ForbiddenPredicate& p = normalized.predicate;

  // --- Processes: slot 2v = sender of x_v, 2v+1 = receiver, identified
  // per the process-equality constraints.
  UnionFind slots(2 * p.arity);
  const auto slot = [](std::size_t var, UserEventKind kind) {
    return 2 * var + (kind == UserEventKind::kDeliver ? 1 : 0);
  };
  for (const ProcessEquality& pe : p.process_constraints) {
    slots.unite(slot(pe.var_a, pe.kind_a), slot(pe.var_b, pe.kind_b));
  }
  std::vector<ProcessId> slot_process(2 * p.arity);
  {
    std::vector<int> remap(2 * p.arity, -1);
    int next = 0;
    for (std::size_t s = 0; s < 2 * p.arity; ++s) {
      const std::size_t root = slots.find(s);
      if (remap[root] < 0) remap[root] = next++;
      slot_process[s] = static_cast<ProcessId>(remap[root]);
    }
  }

  // --- Colors; contradictions make B unsatisfiable.
  std::vector<std::optional<int>> colors(p.arity);
  for (const ColorConstraint& cc : p.color_constraints) {
    if (colors[cc.var].has_value() && *colors[cc.var] != cc.color) {
      return std::nullopt;
    }
    colors[cc.var] = cc.color;
  }

  // --- The abstract relation of the Theorem 2/4 construction: the
  // conjuncts plus every message edge.  A cycle here means B implies
  // some event precedes itself (the order-0 case): unrealizable.
  Poset abstract(2 * p.arity);
  const auto event_index = [&](std::size_t var, UserEventKind kind) {
    return slot(var, kind);  // same packing: 2v / 2v+1
  };
  for (const Conjunct& c : p.conjuncts) {
    abstract.add_edge(event_index(c.lhs, c.p), event_index(c.rhs, c.q));
  }
  for (std::size_t v = 0; v < p.arity; ++v) {
    abstract.add_edge(event_index(v, UserEventKind::kSend),
                      event_index(v, UserEventKind::kDeliver));
  }
  abstract.close();
  const auto topo = abstract.topological_order();
  if (!topo.has_value()) return std::nullopt;

  // --- Messages: the variables, plus one relay per cross-process
  // conjunct.  Relays are the "there exists a message z" of the paper's
  // Lemma 3 equivalence proof: they mediate cross-process causality so
  // that the witness is an actual (schedulable) run, not just a poset.
  std::vector<Message> messages;
  for (std::size_t v = 0; v < p.arity; ++v) {
    Message m;
    m.id = static_cast<MessageId>(v);
    m.src = slot_process[slot(v, UserEventKind::kSend)];
    m.dst = slot_process[slot(v, UserEventKind::kDeliver)];
    m.color = colors[v].value_or(0);
    messages.push_back(m);
  }
  std::vector<std::optional<MessageId>> relay_of(p.conjuncts.size());
  for (std::size_t ci = 0; ci < p.conjuncts.size(); ++ci) {
    const Conjunct& c = p.conjuncts[ci];
    const ProcessId from = slot_process[slot(c.lhs, c.p)];
    const ProcessId to = slot_process[slot(c.rhs, c.q)];
    if (from == to) continue;  // process order will carry the relation
    Message relay;
    relay.id = static_cast<MessageId>(messages.size());
    relay.src = from;
    relay.dst = to;
    relay_of[ci] = relay.id;
    messages.push_back(relay);
  }

  // --- Schedules: walk the events in topological order; relay delivers
  // go immediately before their target event, relay sends immediately
  // after their source event.
  std::size_t n_processes = 0;
  for (const Message& m : messages) {
    n_processes = std::max({n_processes, static_cast<std::size_t>(m.src) + 1,
                            static_cast<std::size_t>(m.dst) + 1});
  }
  std::vector<std::vector<ScheduleStep>> schedules(n_processes);
  for (const std::size_t e : *topo) {
    const auto var = static_cast<MessageId>(e / 2);
    const UserEventKind kind =
        (e % 2) ? UserEventKind::kDeliver : UserEventKind::kSend;
    const ProcessId at = slot_process[e];
    for (std::size_t ci = 0; ci < p.conjuncts.size(); ++ci) {
      const Conjunct& c = p.conjuncts[ci];
      if (relay_of[ci].has_value() && c.rhs == var && c.q == kind) {
        schedules[at].push_back({*relay_of[ci], UserEventKind::kDeliver});
      }
    }
    schedules[at].push_back({var, kind});
    for (std::size_t ci = 0; ci < p.conjuncts.size(); ++ci) {
      const Conjunct& c = p.conjuncts[ci];
      if (relay_of[ci].has_value() && c.lhs == var && c.p == kind) {
        schedules[at].push_back({*relay_of[ci], UserEventKind::kSend});
      }
    }
  }
  return UserRun::from_schedules(std::move(messages), std::move(schedules));
}

}  // namespace msgorder
