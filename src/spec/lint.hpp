// Static analysis of forbidden-predicate specifications (ISSUE 5
// tentpole).  The paper's classification is itself a static analysis —
// the predicate graph and its beta-vertex cycle order decide
// implementability before any run exists — and this layer turns that
// machinery into developer-facing diagnostics: unsatisfiable or
// tautological predicates (with the witness), dead variables, conjuncts
// implied by the transitive closure of the others, contradictory or
// redundant `where` constraints, duplicate predicates inside a
// composite, an explanation pass naming the witness cycle and beta
// vertices behind each ProtocolClass verdict, and an over-strength hint
// that reuses the Lemma 4 weakening to show what forces a high class.
//
// Severity philosophy: classification *verdicts* are notes (that is what
// classify() is for); warnings mean "well-formed but almost certainly
// not what you meant" (vacuous predicates, redundancy); errors mean the
// spec is broken however you look at it (unparseable, contradictory
// where, forbids every messaged run) — except that a spec file can
// declare intent with an `# expect: <class>` pragma (see
// tools/msgorder_lint), which demotes the matching verdict-shaped
// diagnostics to notes and turns a verdict drift into an L014 error.
// The rule catalog with stable IDs lives in lint_rules.{hpp,cpp}.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/spec/classify.hpp"
#include "src/spec/lint_rules.hpp"
#include "src/spec/parser.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct LintDiagnostic {
  /// Catalog entry (never null; points into the static catalog).
  const LintRule* rule = nullptr;
  /// Effective severity: the rule default, possibly demoted to kNote by
  /// a matching declared intent.
  LintSeverity severity = LintSeverity::kNote;
  /// Which predicate of the composite this is about; nullopt for
  /// spec-level diagnostics (L010 names the duplicate's index instead).
  std::optional<std::size_t> predicate_index;
  std::string message;
  /// Source span of the offending construct, when the spec was parsed
  /// from text (absent for programmatically built predicates).
  std::optional<SourceSpan> span;
  /// Suggested edit, empty when there is no mechanical fix.
  std::string fixit;
  /// Supporting detail: normalization traces, witness cycles, implying
  /// chains.  Rendered indented under the main line.
  std::vector<std::string> notes;
};

/// Source text + spans for a composite spec, as produced by parse_spec.
struct SpecSource {
  std::string text;
  std::vector<PredicateSource> predicates;  // parallel to the spec
  std::vector<SourceSpan> counting;         // parallel to spec.counting
  /// Statement id of each predicate (parse_spec's disjunct_group); arms
  /// of one '|' disjunction share an id.  Empty for programmatic specs
  /// — the dead-disjunct analysis (L015) then has nothing to key on.
  std::vector<std::size_t> disjunct_group;
};

struct LintOptions {
  /// Declared intent (`# expect:` pragma or a library entry's recorded
  /// classification).  When it matches the computed class, the
  /// verdict-shaped diagnostics (L002/L003/L011) demote to notes and
  /// the over-strength hint is suppressed; when it differs, an L014
  /// error is added.
  std::optional<ProtocolClass> expected;
  /// Emit the L012 explanation notes (witness cycle, beta vertices,
  /// Lemma 4 canonical form).
  bool explain = true;
};

struct LintResult {
  std::vector<LintDiagnostic> diagnostics;
  /// The computed class of the whole spec (max over predicates).
  ProtocolClass spec_class = ProtocolClass::kNotImplementable;
  /// False iff the input failed to parse (lint_text only).
  bool parsed = true;

  std::size_t count(LintSeverity severity) const;
  std::size_t count_at_least(LintSeverity severity) const;
  /// No diagnostics at `fail_at` or above.
  bool clean(LintSeverity fail_at = LintSeverity::kWarning) const {
    return count_at_least(fail_at) == 0;
  }
  bool has_rule(std::string_view id) const;
};

/// Lint one predicate (wrapped as a single-element composite).
LintResult lint_predicate(const ForbiddenPredicate& predicate,
                          const PredicateSource* source = nullptr,
                          const LintOptions& options = {});

/// Lint a composite spec.  `source` may be null (programmatic specs).
LintResult lint_spec(const CompositeSpec& spec,
                     const SpecSource* source = nullptr,
                     const LintOptions& options = {});

/// Parse `text` with parse_spec and lint it; a parse failure yields a
/// single L001 diagnostic (result.parsed == false).
LintResult lint_text(std::string_view text,
                     const LintOptions& options = {});

/// A spec FILE after comment preprocessing: full-line `#` comments are
/// blanked with spaces (so spans still point at real file positions)
/// and the `# expect: <class>` intent pragma is extracted.  An unknown
/// class name is recorded with its span instead of being dropped —
/// lint_file_text turns it into an L017 diagnostic.
struct SpecFileText {
  std::string text;
  std::optional<ProtocolClass> expected;
  /// Unknown `# expect:` class name (empty when absent or valid) and
  /// where it sits in the original file.
  std::string bad_expect_class;
  SourceSpan bad_expect_span;
};

SpecFileText preprocess_spec_text(std::string_view raw);

/// preprocess_spec_text + lint_text: the whole-file entry point used by
/// tools/msgorder_lint.  A malformed intent pragma produces an L017
/// error diagnostic (and the spec is linted without a declared intent)
/// rather than a hard usage failure, so it flows through the same
/// rendering, artifact, and fail-at machinery as every other rule.
LintResult lint_file_text(std::string_view raw,
                          const LintOptions& options = {},
                          SpecFileText* file_out = nullptr);

/// Render caret-annotated text diagnostics.  `source_text` may be empty
/// (no caret lines then); `input_name` prefixes every line, compiler
/// style ("name:line:col: severity [ID rule-name] message").
std::string render_lint_text(const LintResult& result,
                             std::string_view source_text,
                             std::string_view input_name);

/// One named input of a msgorder.lint/1 artifact.
struct LintInput {
  std::string name;
  std::string source_text;  // empty for programmatic inputs
  LintResult result;
};

/// The machine-readable artifact (schema msgorder.lint/1): per-input
/// diagnostics with rule IDs, severities and spans, plus totals per
/// severity and per rule.  Summarizable by msgorder_stats.
std::string lint_artifact_json(const std::vector<LintInput>& inputs);

}  // namespace msgorder
