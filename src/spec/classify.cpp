#include "src/spec/classify.hpp"

#include <algorithm>

namespace msgorder {

std::string to_string(ProtocolClass c) {
  switch (c) {
    case ProtocolClass::kTagless:
      return "tagless";
    case ProtocolClass::kTagged:
      return "tagged";
    case ProtocolClass::kGeneral:
      return "general";
    case ProtocolClass::kNotImplementable:
      return "not-implementable";
  }
  return "?";
}

std::string Classification::to_string() const {
  std::string out = "class=" + msgorder::to_string(protocol_class);
  out += has_cycle ? ", cyclic" : ", acyclic";
  if (min_order.has_value()) {
    out += ", min order " + std::to_string(*min_order);
  }
  if (normalized.triviality == NormalTriviality::kUnsatisfiable) {
    out += " (predicate unsatisfiable)";
  } else if (normalized.triviality == NormalTriviality::kTautological) {
    out += " (predicate tautological)";
  }
  return out;
}

Classification classify(const ForbiddenPredicate& predicate) {
  Classification result;
  result.normalized = normalize(predicate);
  switch (result.normalized.triviality) {
    case NormalTriviality::kUnsatisfiable:
      // B can never hold, every run is acceptable: X_B = X_async.
      result.protocol_class = ProtocolClass::kTagless;
      return result;
    case NormalTriviality::kTautological:
      // B always holds (given a message): only message-free runs are
      // acceptable, so X_sync is not contained in X_B.
      result.protocol_class = ProtocolClass::kNotImplementable;
      return result;
    case NormalTriviality::kNone:
      break;
  }

  const PredicateGraph graph(result.normalized.predicate);
  result.witness = graph.min_order_closed_walk();
  result.has_cycle = result.witness.has_value();
  if (!result.has_cycle) {
    // Theorem 2: implementable iff the predicate graph has a cycle.
    result.protocol_class = ProtocolClass::kNotImplementable;
    return result;
  }
  result.min_order = result.witness->order;
  if (*result.min_order == 0) {
    result.protocol_class = ProtocolClass::kTagless;
  } else if (*result.min_order == 1) {
    result.protocol_class = ProtocolClass::kTagged;
  } else {
    result.protocol_class = ProtocolClass::kGeneral;
  }
  return result;
}

ProtocolClass classify(const CompositeSpec& spec) {
  ProtocolClass worst = ProtocolClass::kTagless;
  for (const ForbiddenPredicate& p : spec.predicates) {
    const Classification c = classify(p);
    worst = std::max(worst, c.protocol_class,
                     [](ProtocolClass a, ProtocolClass b) {
                       return static_cast<int>(a) < static_cast<int>(b);
                     });
  }
  // A bounded-counting statement is a global in-flight bound: tags on
  // user messages cannot convey the count, so control messages are
  // required — at least the general class.
  if (!spec.counting.empty() &&
      static_cast<int>(worst) < static_cast<int>(ProtocolClass::kGeneral)) {
    worst = ProtocolClass::kGeneral;
  }
  return worst;
}

}  // namespace msgorder
