// Forbidden predicates (paper Section 4).
//
// A forbidden predicate is
//     B  =  exists x_1..x_m in M :  /\ (x_j.p |> x_k.q)
// optionally restricted by attribute range constraints over the
// quantified variables (process equality and message color, Section 4.1).
// The specification X_B is the set of complete user-view runs in which no
// instantiation of the variables satisfies B.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/event.hpp"

namespace msgorder {

/// One conjunct  x_lhs.p |> x_rhs.q .
struct Conjunct {
  std::size_t lhs = 0;
  UserEventKind p = UserEventKind::kSend;
  std::size_t rhs = 0;
  UserEventKind q = UserEventKind::kSend;

  bool operator==(const Conjunct&) const = default;
};

/// Range constraint  process(x_a.kind_a) == process(x_b.kind_b) .
/// (process(x.s) is the sender of x; process(x.r) is the receiver.)
struct ProcessEquality {
  std::size_t var_a = 0;
  UserEventKind kind_a = UserEventKind::kSend;
  std::size_t var_b = 0;
  UserEventKind kind_b = UserEventKind::kSend;

  bool operator==(const ProcessEquality&) const = default;
};

/// Range constraint  color(x_var) == color .
struct ColorConstraint {
  std::size_t var = 0;
  int color = 0;

  bool operator==(const ColorConstraint&) const = default;
};

struct ForbiddenPredicate {
  /// Number of quantified message variables x_0..x_{arity-1}.
  std::size_t arity = 0;
  std::vector<Conjunct> conjuncts;
  std::vector<ProcessEquality> process_constraints;
  std::vector<ColorConstraint> color_constraints;
  /// Optional variable names for pretty-printing (size arity or empty).
  std::vector<std::string> var_names;

  bool operator==(const ForbiddenPredicate&) const = default;

  /// "(x.s |> y.s) & (y.r |> x.r) where color(y)=1" style rendering.
  std::string to_string() const;

  /// Name of variable v ("x", "y", ... or stored names).
  std::string var_name(std::size_t v) const;
};

/// Result of structural normalization (see DESIGN.md, "refinements"):
///  * conjuncts x.s |> x.r are tautological in complete runs -> dropped;
///  * conjuncts x.s |> x.s, x.r |> x.r, x.r |> x.s are unsatisfiable ->
///    the whole predicate can never hold, so X_B = X_async;
///  * duplicate conjuncts are removed, unused variables dropped;
///  * an empty conjunction is identically true, so X_B excludes every run
///    containing at least one message.
enum class NormalTriviality {
  kNone,           // a real predicate remains
  kUnsatisfiable,  // B never holds: X_B = X_async (trivial spec)
  kTautological,   // B always holds: X_B = (runs with no messages)
};

struct NormalizedPredicate {
  NormalTriviality triviality = NormalTriviality::kNone;
  ForbiddenPredicate predicate;  // meaningful iff triviality == kNone
};

NormalizedPredicate normalize(const ForbiddenPredicate& predicate);

/// Convenience builders used throughout tests and the spec library.
ForbiddenPredicate make_predicate(
    std::size_t arity, std::vector<Conjunct> conjuncts,
    std::vector<ProcessEquality> process_constraints = {},
    std::vector<ColorConstraint> color_constraints = {});

/// Bounded-counting specification (ISSUE 8): "at most `limit` matching
/// messages concurrently in flight".  A message is in flight between its
/// send and its delivery; `color` restricts the count to messages of one
/// color (nullopt counts every message).  Online this is a (limit + 2)-
/// state counter automaton over send/deliver symbols; offline it is the
/// width of the interval order  x < y  iff  x.r |> y.s  over the matching
/// messages (see DESIGN.md §9).
struct CountingPredicate {
  std::optional<int> color;
  std::size_t limit = 0;

  bool operator==(const CountingPredicate&) const = default;

  /// "concurrent(color=1) <= 3" style rendering.
  std::string to_string() const;
};

/// A specification given as an intersection of forbidden-predicate sets:
/// X = intersect_i X_{B_i}.  (Two-way flush and full logical synchrony
/// need more than one predicate.)  Disjunction in the DSL desugars here
/// too: forbidding A | B means a valid run avoids both patterns, which
/// is exactly X_A ∩ X_B, so each disjunct becomes its own predicate.
/// Counting specs (ISSUE 8) intersect in the same way.
struct CompositeSpec {
  std::vector<ForbiddenPredicate> predicates;
  std::vector<CountingPredicate> counting;

  std::string to_string() const;
};

}  // namespace msgorder
