#include "src/spec/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace msgorder {

PredicateGraph::PredicateGraph(const ForbiddenPredicate& predicate)
    : n_(predicate.arity), out_edges_(predicate.arity) {
  for (std::size_t i = 0; i < predicate.conjuncts.size(); ++i) {
    const Conjunct& c = predicate.conjuncts[i];
    PredicateEdge e;
    e.from = c.lhs;
    e.to = c.rhs;
    e.p = c.p;
    e.q = c.q;
    e.conjunct_index = i;
    out_edges_[e.from].push_back(edges_.size());
    edges_.push_back(e);
  }
}

std::size_t PredicateGraph::order_of(
    const std::vector<std::size_t>& cycle_edges) const {
  std::size_t order = 0;
  for (std::size_t i = 0; i < cycle_edges.size(); ++i) {
    const PredicateEdge& in = edges_[cycle_edges[i]];
    const PredicateEdge& out =
        edges_[cycle_edges[(i + 1) % cycle_edges.size()]];
    assert(in.to == out.from && "edge sequence must be contiguous");
    if (beta_junction(in, out)) ++order;
  }
  return order;
}

namespace {

struct CycleDfs {
  const std::vector<PredicateEdge>& edges;
  const std::vector<std::vector<std::size_t>>& out_edges;
  std::size_t start = 0;
  std::size_t max_cycles = 0;
  std::vector<char> on_path;
  std::vector<std::size_t> path;  // edge indices
  std::vector<Cycle>* results = nullptr;

  bool full() const { return results->size() >= max_cycles; }

  void visit(std::size_t v) {
    if (full()) return;
    for (std::size_t ei : out_edges[v]) {
      if (full()) return;
      const PredicateEdge& e = edges[ei];
      if (e.to == start) {
        path.push_back(ei);
        results->push_back(Cycle{path, 0});
        path.pop_back();
      } else if (e.to > start && !on_path[e.to]) {
        on_path[e.to] = 1;
        path.push_back(ei);
        visit(e.to);
        path.pop_back();
        on_path[e.to] = 0;
      }
    }
  }
};

}  // namespace

std::vector<Cycle> PredicateGraph::simple_cycles(
    std::size_t max_cycles) const {
  std::vector<Cycle> results;
  for (std::size_t start = 0; start < n_; ++start) {
    CycleDfs dfs{edges_, out_edges_, start, max_cycles, {}, {}, &results};
    dfs.on_path.assign(n_, 0);
    dfs.on_path[start] = 1;
    dfs.visit(start);
    if (results.size() >= max_cycles) break;
  }
  for (Cycle& c : results) c.order = order_of(c.edges);
  return results;
}

bool PredicateGraph::has_cycle() const {
  // Iterative colored DFS over the plain digraph.
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(n_, kWhite);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (vertex, next)
  for (std::size_t root = 0; root < n_; ++root) {
    if (color[root] != kWhite) continue;
    color[root] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < out_edges_[v].size()) {
        const std::size_t to = edges_[out_edges_[v][next++]].to;
        if (color[to] == kGray) return true;
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.emplace_back(to, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::optional<Cycle> PredicateGraph::min_order_closed_walk() const {
  // State graph: state = 2*vertex + (incoming kind == deliver).
  // Traversing edge e out of state (v, kin) costs 1 iff kin == r and
  // e.p == s (a beta passage at v), and leads to state (e.to, e.q).
  // A closed walk of the predicate graph corresponds exactly to a closed
  // path anchor -> anchor in the state graph, and its accumulated cost is
  // the walk's order (the wrap-around junction is charged on the first
  // edge out of the anchor).
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  const std::size_t n_states = 2 * n_;
  const auto state_of = [](std::size_t v, UserEventKind kin) {
    return 2 * v + (kin == UserEventKind::kDeliver ? 1 : 0);
  };
  const auto edge_cost = [&](std::size_t from_state,
                             const PredicateEdge& e) -> std::size_t {
    const bool in_is_deliver = (from_state % 2) != 0;
    return (in_is_deliver && e.p == UserEventKind::kSend) ? 1 : 0;
  };

  std::optional<Cycle> best;
  for (std::size_t anchor = 0; anchor < n_states; ++anchor) {
    if (best.has_value() && best->order == 0) break;  // cannot improve
    std::vector<std::size_t> dist(n_states, kInf);
    std::vector<std::size_t> parent_state(n_states, kNone);
    std::vector<std::size_t> parent_edge(n_states, kNone);
    std::deque<std::size_t> queue;
    std::size_t anchor_cost = kInf;
    std::size_t closing_edge = kNone;
    std::size_t closing_state = kNone;  // state the closing edge left from

    const auto relax = [&](std::size_t from_state, std::size_t ei,
                           std::size_t base) {
      const PredicateEdge& e = edges_[ei];
      const std::size_t nd = base + edge_cost(from_state, e);
      const std::size_t to_state = state_of(e.to, e.q);
      if (to_state == anchor) {
        if (nd < anchor_cost) {
          anchor_cost = nd;
          closing_edge = ei;
          closing_state = from_state;
        }
        return;
      }
      if (nd < dist[to_state]) {
        dist[to_state] = nd;
        parent_state[to_state] = from_state;
        parent_edge[to_state] = ei;
        if (nd == base) {
          queue.push_front(to_state);
        } else {
          queue.push_back(to_state);
        }
      }
    };

    // Seed: leave the anchor (cost base 0); dist[anchor] itself stays
    // infinite so that returning requires >= 1 edge.
    for (std::size_t ei : out_edges_[anchor / 2]) relax(anchor, ei, 0);
    while (!queue.empty()) {
      const std::size_t s = queue.front();
      queue.pop_front();
      const std::size_t d = dist[s];
      for (std::size_t ei : out_edges_[s / 2]) relax(s, ei, d);
    }
    if (anchor_cost == kInf) continue;
    if (!best.has_value() || anchor_cost < best->order) {
      std::vector<std::size_t> walk{closing_edge};
      for (std::size_t s = closing_state; s != anchor;
           s = parent_state[s]) {
        walk.push_back(parent_edge[s]);
      }
      std::reverse(walk.begin(), walk.end());
      Cycle cycle;
      cycle.edges = std::move(walk);
      cycle.order = order_of(cycle.edges);
      assert(cycle.order == anchor_cost);
      if (!best.has_value() || cycle.order < best->order) {
        best = std::move(cycle);
      }
    }
  }
  return best;
}

std::string PredicateGraph::to_string(
    const ForbiddenPredicate& predicate) const {
  std::string out = "vertices: ";
  for (std::size_t v = 0; v < n_; ++v) {
    if (v) out += ", ";
    out += predicate.var_name(v);
  }
  out += "\nedges:\n";
  for (const PredicateEdge& e : edges_) {
    out += "  " + predicate.var_name(e.from) + "." + kind_name(e.p) +
           " -> " + predicate.var_name(e.to) + "." + kind_name(e.q) + "\n";
  }
  return out;
}

}  // namespace msgorder
