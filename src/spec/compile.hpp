// Spec-to-automaton compiler (ISSUE 8 tentpole).
//
// A ForbiddenPredicate describes a pattern over the *message identities*
// of a run, but an online monitor only sees a stream of symbols
// (process, kind, color) — the message identity of each event is erased
// once the pattern must be checked in O(1) per event.  This module
// decides when that erasure is harmless and, when it is, compiles the
// predicate to a dense DFA over compacted symbol classes so the monitor
// can check it with one table lookup per event.
//
// What is compilable (and why the class is narrow):
//  * Unsatisfiable predicates — normalize() flags a self-contradictory
//    conjunct, or the event graph (v.s -> v.r plus one edge per
//    conjunct) has a cycle, so no strict partial order satisfies the
//    conjunction: the automaton is the single-state never-accepting
//    machine (the whole async_zoo family lands here).
//  * Single-cluster patterns: every conjunct endpoint the predicate uses
//    is forced onto ONE process by the where-constraints (the process
//    equalities, closed under union-find, put all used (var, kind)
//    endpoints in one class), and each variable participates through
//    exactly one event kind.  For two events at the same process,
//    causality coincides with execution order (the process chain
//    generates |>, and any causal path respects it), so the pattern
//    reduces to finding an injective, precedence-respecting embedding of
//    the variables into that process's event stream — a regular
//    property.  The DFA is the subset construction over downward-closed
//    sets of matched variables, pruned to maximal antichains (a larger
//    matched set dominates any subset).
//  * Bounded counting (CountingPredicate): a (limit + 2)-state counter.
//
// Everything else — conjuncts relating events on processes the
// constraints do not collocate (causal ordering, FIFO, the crowns),
// variables used through both kinds without collocation, mixed-kind
// clusters over universes with self-loop messages (src == dst lets one
// message bind two "distinct" variables' occurrences) — is NOT decidable
// from the symbol stream: two runs with identical (process, kind, color)
// streams can differ on the verdict.  Those predicates fall back to the
// bitset WitnessEngine with a structured, human-readable reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/event.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// Compacted symbol classes: each *mentioned* color gets its own class,
/// every other color shares one "other" class, and a symbol is the
/// (kind, class) pair.  A spec mentioning c colors therefore has
/// 2 * (c + 1) symbols regardless of how many colors the run uses.
struct SymbolTable {
  std::vector<int> colors;  // distinct mentioned colors, ascending

  std::size_t n_classes() const { return colors.size() + 1; }
  std::size_t n_symbols() const { return 2 * n_classes(); }

  /// Class index of a concrete color (mentioned -> its slot, else the
  /// trailing "other" class).
  std::size_t color_class(int color) const;

  std::size_t symbol(UserEventKind kind, int color) const {
    return 2 * color_class(color) +
           (kind == UserEventKind::kDeliver ? 1 : 0);
  }

  /// "send[color=3]" / "deliver[other]" for diagnostics.
  std::string symbol_name(std::size_t symbol) const;
};

/// A compiled monitor automaton: dense state x symbol transition table.
/// kPerProcess scope runs one state copy per process over that process's
/// events (single-cluster patterns); kCounter scope runs one global copy
/// over all events (bounded counting).
struct MonitorAutomaton {
  enum class Scope : std::uint8_t { kPerProcess, kCounter };

  Scope scope = Scope::kPerProcess;
  SymbolTable symbols;
  std::size_t n_states = 1;
  std::uint32_t initial = 0;
  /// next[state * symbols.n_symbols() + symbol]; acceptance is absorbing.
  std::vector<std::uint32_t> next;
  std::vector<char> accepting;  // per state
  /// States from which no accepting state is reachable (the never-
  /// accepting sink of unsatisfiable predicates, and the L015 signal
  /// for dead disjunction arms).
  std::size_t dead_states = 0;

  std::uint32_t step(std::uint32_t state, std::size_t symbol) const {
    return next[static_cast<std::size_t>(state) * symbols.n_symbols() +
                symbol];
  }
  bool can_accept() const { return dead_states < n_states; }
};

struct CompileResult {
  std::optional<MonitorAutomaton> automaton;
  /// Empty iff compiled; otherwise a structured reason ("fallback:
  /// <category>: <detail>") suitable for reports and lint notes.
  std::string fallback_reason;

  bool compiled() const { return automaton.has_value(); }
};

/// Compiled-form caps: beyond these the dense table stops paying for
/// itself and the compiler falls back instead of exploding.
inline constexpr std::size_t kMaxCompiledArity = 10;
inline constexpr std::size_t kMaxCompiledStates = 4096;

/// Compile one forbidden predicate.  `universe` (optional) is the
/// message population the automaton will monitor: mixed-kind clusters
/// are only sound when no message is a self-loop (src == dst), so
/// without a universe those conservatively fall back.  The predicate
/// must be in normal form (normalize() returns it unchanged) — the
/// engines run the predicate as written, so compiling a *different*
/// normalized predicate would break witness parity.
CompileResult compile_predicate(const ForbiddenPredicate& predicate,
                                const std::vector<Message>* universe =
                                    nullptr);

/// Compile a bounded-counting spec to its counter automaton.  Always
/// succeeds: states 0..limit+1 track the in-flight count of matching
/// messages (saturating), state limit+1 accepts and absorbs.
CompileResult compile_counting(const CountingPredicate& counting);

}  // namespace msgorder
