#include "src/spec/lint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "src/obs/json.hpp"
#include "src/spec/compile.hpp"
#include "src/spec/graph.hpp"
#include "src/spec/weaken.hpp"

namespace msgorder {

namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;
constexpr std::size_t kNoConjunct = static_cast<std::size_t>(-1);

/// Event-level node: one per (variable, kind) pair.
std::size_t event_node(std::size_t var, UserEventKind kind) {
  return 2 * var + (kind == R ? 1 : 0);
}

std::string atom_str(const ForbiddenPredicate& p, std::size_t var,
                     UserEventKind kind) {
  return p.var_name(var) + "." + kind_name(kind);
}

std::string conjunct_str(const ForbiddenPredicate& p, const Conjunct& c) {
  return atom_str(p, c.lhs, c.p) + " |> " + atom_str(p, c.rhs, c.q);
}

/// The event-level precedence graph: every conjunct x.p |> y.q is an
/// edge, and every variable contributes the implicit x.s |> x.r edge
/// (a send strictly precedes its own delivery in a complete run).
/// `skip(i)` excludes conjunct i, for implied-by-the-others queries.
struct EventGraph {
  // adjacency: node -> (to_node, conjunct index or kNoConjunct)
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;

  template <typename SkipFn>
  EventGraph(const ForbiddenPredicate& p, SkipFn skip)
      : adj(2 * p.arity) {
    for (std::size_t i = 0; i < p.conjuncts.size(); ++i) {
      if (skip(i)) continue;
      const Conjunct& c = p.conjuncts[i];
      adj[event_node(c.lhs, c.p)].emplace_back(event_node(c.rhs, c.q), i);
    }
    for (std::size_t v = 0; v < p.arity; ++v) {
      adj[event_node(v, S)].emplace_back(event_node(v, R), kNoConjunct);
    }
  }

  /// BFS path from `from` to `to`; returns the traversed edges as
  /// (conjunct index or kNoConjunct, head node) pairs, empty if
  /// unreachable (or from == to with no edges).
  std::vector<std::pair<std::size_t, std::size_t>> path(
      std::size_t from, std::size_t to) const {
    constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(adj.size(), kUnvisited);
    std::vector<std::size_t> via(adj.size(), kNoConjunct);
    std::deque<std::size_t> queue{from};
    std::vector<char> seen(adj.size(), 0);
    seen[from] = 1;
    while (!queue.empty()) {
      const std::size_t node = queue.front();
      queue.pop_front();
      for (const auto& [next, conjunct] : adj[node]) {
        if (seen[next]) continue;
        seen[next] = 1;
        parent[next] = node;
        via[next] = conjunct;
        if (next == to) {
          std::vector<std::pair<std::size_t, std::size_t>> chain;
          for (std::size_t n = to; n != from; n = parent[n]) {
            chain.emplace_back(via[n], n);
          }
          std::reverse(chain.begin(), chain.end());
          return chain;
        }
        queue.push_back(next);
      }
    }
    return {};
  }
};

/// Canonical key for duplicate-predicate detection: variables relabeled
/// by first appearance across the conjuncts, constraints sorted, then
/// rendered with default names.  Catches renamings; conjunct order is
/// preserved (a reordered duplicate is a different key — documented).
std::string canonical_key(const ForbiddenPredicate& p) {
  std::map<std::size_t, std::size_t> remap;
  const auto relabel = [&](std::size_t v) {
    return remap.try_emplace(v, remap.size()).first->second;
  };
  ForbiddenPredicate out;
  for (const Conjunct& c : p.conjuncts) {
    Conjunct r = c;
    r.lhs = relabel(c.lhs);
    r.rhs = relabel(c.rhs);
    out.conjuncts.push_back(r);
  }
  for (ProcessEquality pe : p.process_constraints) {
    if (remap.count(pe.var_a) == 0 || remap.count(pe.var_b) == 0) continue;
    pe.var_a = remap.at(pe.var_a);
    pe.var_b = remap.at(pe.var_b);
    // Order the equality's two atoms canonically (it is symmetric).
    const auto key_a = std::make_pair(pe.var_a, pe.kind_a == R);
    const auto key_b = std::make_pair(pe.var_b, pe.kind_b == R);
    if (key_b < key_a) {
      std::swap(pe.var_a, pe.var_b);
      std::swap(pe.kind_a, pe.kind_b);
    }
    out.process_constraints.push_back(pe);
  }
  for (ColorConstraint cc : p.color_constraints) {
    if (remap.count(cc.var) == 0) continue;
    cc.var = relabel(cc.var);
    out.color_constraints.push_back(cc);
  }
  const auto pe_key = [](const ProcessEquality& pe) {
    return std::make_tuple(pe.var_a, pe.kind_a == R, pe.var_b,
                           pe.kind_b == R);
  };
  std::sort(out.process_constraints.begin(), out.process_constraints.end(),
            [&](const auto& a, const auto& b) { return pe_key(a) < pe_key(b); });
  std::sort(out.color_constraints.begin(), out.color_constraints.end(),
            [](const auto& a, const auto& b) {
              return std::make_pair(a.var, a.color) <
                     std::make_pair(b.var, b.color);
            });
  out.arity = remap.size();
  return out.to_string();
}

/// Per-predicate analysis state shared by the rules.
struct PredicateLint {
  const ForbiddenPredicate& pred;
  const PredicateSource* src;  // may be null
  std::size_t index;           // position in the composite
  LintResult& out;
  const LintOptions& options;

  Classification cls;
  std::vector<char> self_unsat;    // conjunct can never hold
  std::vector<char> tautological;  // conjunct always holds
  std::vector<char> duplicate;     // exact earlier copy exists
  /// Original index of each conjunct the normalized predicate kept
  /// (normalize drops tautological conjuncts and duplicates, in order).
  std::vector<std::size_t> kept_to_original;

  LintDiagnostic& add(const LintRule& rule) {
    LintDiagnostic d;
    d.rule = &rule;
    d.severity = rule.severity;
    d.predicate_index = index;
    out.diagnostics.push_back(std::move(d));
    return out.diagnostics.back();
  }

  std::optional<SourceSpan> conjunct_span(std::size_t i) const {
    if (src == nullptr || i >= src->conjuncts.size()) return std::nullopt;
    return src->conjuncts[i];
  }

  std::optional<SourceSpan> predicate_span() const {
    if (src == nullptr) return std::nullopt;
    return src->span;
  }

  void run() {
    cls = classify(pred);
    classify_conjuncts();
    check_dead_variables();
    check_redundant_conjuncts();
    check_where();
    check_verdict();
  }

  void classify_conjuncts() {
    const auto& conjuncts = pred.conjuncts;
    self_unsat.assign(conjuncts.size(), 0);
    tautological.assign(conjuncts.size(), 0);
    duplicate.assign(conjuncts.size(), 0);
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      const Conjunct& c = conjuncts[i];
      if (c.lhs == c.rhs) {
        if (c.p == S && c.q == R) {
          tautological[i] = 1;
          LintDiagnostic& d = add(rule_tautological_conjunct());
          d.message = "conjunct '" + conjunct_str(pred, c) +
                      "' always holds (a send precedes its own delivery) "
                      "and is dropped by normalization";
          d.span = conjunct_span(i);
          d.fixit = "remove this conjunct";
        } else {
          self_unsat[i] = 1;
          LintDiagnostic& d = add(rule_unsatisfiable());
          d.message = "conjunct '" + conjunct_str(pred, c) +
                      "' can never hold, so the whole predicate is "
                      "unsatisfiable and the spec forbids nothing";
          d.span = conjunct_span(i);
          d.fixit = "remove or rewrite this conjunct";
          d.notes.push_back(
              "normalization: an always-false conjunct makes B "
              "unsatisfiable; X_B is all of X_async");
        }
        continue;
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (conjuncts[j] == c && !duplicate[j]) {
          duplicate[i] = 1;
          LintDiagnostic& d = add(rule_duplicate_conjunct());
          d.message = "conjunct '" + conjunct_str(pred, c) +
                      "' duplicates conjunct #" + std::to_string(j + 1);
          d.span = conjunct_span(i);
          d.fixit = "remove the duplicate";
          break;
        }
      }
    }
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (!tautological[i] && !duplicate[i]) kept_to_original.push_back(i);
    }
  }

  void check_dead_variables() {
    std::vector<char> used(pred.arity, 0);
    std::vector<char> mentioned(pred.arity, 0);
    for (std::size_t i = 0; i < pred.conjuncts.size(); ++i) {
      const Conjunct& c = pred.conjuncts[i];
      if (c.lhs < pred.arity) mentioned[c.lhs] = 1;
      if (c.rhs < pred.arity) mentioned[c.rhs] = 1;
      if (tautological[i] || duplicate[i]) continue;
      if (c.lhs < pred.arity) used[c.lhs] = 1;
      if (c.rhs < pred.arity) used[c.rhs] = 1;
    }
    for (std::size_t v = 0; v < pred.arity; ++v) {
      if (used[v]) continue;
      LintDiagnostic& d = add(rule_dead_variable());
      d.message =
          "variable '" + pred.var_name(v) + "' " +
          (mentioned[v]
               ? "survives in no conjunct after normalization"
               : "is quantified but appears in no conjunct") +
          "; it only forces the matcher to bind one more message";
      if (src != nullptr && v < src->var_first_use.size()) {
        d.span = src->var_first_use[v];
      }
      d.fixit = "remove the variable and any constraints on it";
    }
  }

  void check_redundant_conjuncts() {
    // Skip the whole pass for vacuous predicates: every conjunct of an
    // unsatisfiable B is "redundant", which would bury the real
    // diagnostic in noise.
    if (std::find(self_unsat.begin(), self_unsat.end(), 1) !=
        self_unsat.end()) {
      return;
    }
    for (std::size_t i = 0; i < pred.conjuncts.size(); ++i) {
      if (tautological[i] || duplicate[i]) continue;
      const Conjunct& c = pred.conjuncts[i];
      const EventGraph graph(pred, [&](std::size_t j) {
        return j == i || pred.conjuncts[j] == c;
      });
      const auto chain = graph.path(event_node(c.lhs, c.p),
                                    event_node(c.rhs, c.q));
      if (chain.empty()) continue;
      LintDiagnostic& d = add(rule_redundant_conjunct());
      d.message = "conjunct '" + conjunct_str(pred, c) +
                  "' is implied by the transitive closure of the other "
                  "conjuncts; dropping it leaves an equivalent predicate";
      d.span = conjunct_span(i);
      d.fixit = "remove this conjunct";
      std::string how = "implied via: " + atom_str(pred, c.lhs, c.p);
      for (const auto& [conjunct, node] : chain) {
        how += " |> " + atom_str(pred, node / 2, node % 2 ? R : S);
        how += conjunct == kNoConjunct ? " (send precedes its delivery)"
                                       : "";
      }
      d.notes.push_back(std::move(how));
    }
  }

  void check_where() {
    // Colors: one variable, two different colors -> contradiction.
    std::map<std::size_t, std::pair<int, std::size_t>> color_of;
    for (std::size_t k = 0; k < pred.color_constraints.size(); ++k) {
      const ColorConstraint& cc = pred.color_constraints[k];
      const auto [it, inserted] = color_of.try_emplace(
          cc.var, std::make_pair(cc.color, k));
      if (inserted) continue;
      const auto span = [&](std::size_t idx) -> std::optional<SourceSpan> {
        if (src == nullptr || idx >= src->color_constraints.size()) {
          return std::nullopt;
        }
        return src->color_constraints[idx];
      };
      if (it->second.first == cc.color) {
        LintDiagnostic& d = add(rule_redundant_where());
        d.message = "duplicate constraint color(" + pred.var_name(cc.var) +
                    ")=" + std::to_string(cc.color);
        d.span = span(k);
        d.fixit = "remove the duplicate constraint";
      } else {
        LintDiagnostic& d = add(rule_contradictory_where());
        d.message = "color(" + pred.var_name(cc.var) +
                    ") is constrained to both " +
                    std::to_string(it->second.first) + " and " +
                    std::to_string(cc.color) +
                    "; no message satisfies the where clause, so the "
                    "spec forbids nothing";
        d.span = span(k);
        d.fixit = "drop one of the conflicting constraints";
        d.notes.push_back("first constrained by constraint #" +
                          std::to_string(it->second.second + 1));
      }
    }

    // Process equalities: union-find over (variable, kind) atoms; a
    // constraint whose atoms are already connected adds nothing.
    std::vector<std::size_t> parent(2 * pred.arity);
    for (std::size_t n = 0; n < parent.size(); ++n) parent[n] = n;
    const auto find = [&](std::size_t n) {
      while (parent[n] != n) n = parent[n] = parent[parent[n]];
      return n;
    };
    for (std::size_t k = 0; k < pred.process_constraints.size(); ++k) {
      const ProcessEquality& pe = pred.process_constraints[k];
      const std::size_t a = event_node(pe.var_a, pe.kind_a);
      const std::size_t b = event_node(pe.var_b, pe.kind_b);
      std::string reason;
      if (a == b) {
        reason = "is trivially true";
      } else if (find(a) == find(b)) {
        reason =
            "is implied by the preceding equalities (transitive closure)";
      } else {
        parent[find(a)] = find(b);
        continue;
      }
      LintDiagnostic& d = add(rule_redundant_where());
      d.message = "constraint process(" +
                  atom_str(pred, pe.var_a, pe.kind_a) + ")=process(" +
                  atom_str(pred, pe.var_b, pe.kind_b) + ") " + reason;
      if (src != nullptr && k < src->process_constraints.size()) {
        d.span = src->process_constraints[k];
      }
      d.fixit = "remove this constraint";
    }
  }

  /// One-line account of what the ISSUE 8 spec compiler does with this
  /// predicate: the compiled automaton's size, or the structured
  /// fallback reason (part of the classifier explanation so spec
  /// authors learn which monitoring engine their spec will get).
  std::string compile_note() const {
    const CompileResult compiled = compile_predicate(pred);
    if (!compiled.compiled()) {
      return "monitor automaton: " + compiled.fallback_reason +
             " (online checking uses the bitset engine)";
    }
    const MonitorAutomaton& a = *compiled.automaton;
    std::string note = "monitor automaton: compiles to " +
                       std::to_string(a.n_states) + " state(s) over " +
                       std::to_string(a.symbols.n_classes()) +
                       " symbol class(es)";
    if (!a.can_accept()) {
      note += "; never accepts (the pattern cannot occur)";
    } else if (a.dead_states > 0) {
      note += "; " + std::to_string(a.dead_states) + " dead state(s)";
    }
    return note;
  }

  /// Human rendering of a witness walk, with its beta vertices, against
  /// the *normalized* predicate the classification graph was built on.
  void witness_notes(LintDiagnostic& d) {
    const ForbiddenPredicate& np = cls.normalized.predicate;
    const PredicateGraph graph(np);
    const auto& walk = cls.witness->edges;
    std::string cycle = "witness cycle:";
    for (std::size_t ei : walk) {
      const PredicateEdge& e = graph.edges()[ei];
      cycle += " (" + atom_str(np, e.from, e.p) + " |> " +
               atom_str(np, e.to, e.q) + ")";
    }
    d.notes.push_back(std::move(cycle));

    std::string betas;
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const PredicateEdge& in =
          graph.edges()[walk[(i + walk.size() - 1) % walk.size()]];
      const PredicateEdge& out = graph.edges()[walk[i]];
      if (PredicateGraph::beta_junction(in, out)) {
        if (!betas.empty()) betas += ", ";
        betas += np.var_name(out.from) + " (enters at .r, leaves at .s)";
      }
    }
    d.notes.push_back("beta vertices: " +
                      (betas.empty() ? std::string("none") : betas));

    const WeakeningTrace trace =
        weaken_to_canonical(cycle_predicate(graph, walk));
    std::string lemma4 = "Lemma 4 weakening: " +
                         trace.steps.front().to_string();
    for (std::size_t i = 1; i < trace.steps.size(); ++i) {
      lemma4 += "  =>  " + trace.steps[i].to_string();
    }
    if (trace.steps.size() == 1) lemma4 += "  (already canonical)";
    d.notes.push_back(std::move(lemma4));
  }

  /// Span of the original conjunct behind edge `ei` of the normalized
  /// predicate's graph (edge order follows normalized conjunct order).
  std::optional<SourceSpan> witness_span() {
    if (!cls.witness.has_value() || cls.witness->edges.empty()) {
      return predicate_span();
    }
    const ForbiddenPredicate& np = cls.normalized.predicate;
    const PredicateGraph graph(np);
    const std::size_t kept =
        graph.edges()[cls.witness->edges.front()].conjunct_index;
    if (kept < kept_to_original.size()) {
      return conjunct_span(kept_to_original[kept]);
    }
    return predicate_span();
  }

  void check_verdict() {
    switch (cls.normalized.triviality) {
      case NormalTriviality::kUnsatisfiable:
        return;  // reported per offending conjunct in classify_conjuncts
      case NormalTriviality::kTautological: {
        LintDiagnostic& d = add(rule_tautological());
        d.message =
            pred.conjuncts.empty()
                ? "the predicate has no conjuncts: B holds for every "
                  "message, so the spec admits only message-free runs"
                : "every conjunct always holds, so B matches every "
                  "message and the spec admits only message-free runs";
        d.span = predicate_span();
        return;
      }
      case NormalTriviality::kNone:
        break;
    }
    if (!cls.has_cycle) {
      LintDiagnostic& d = add(rule_not_implementable());
      d.message =
          "the predicate graph is acyclic: by Theorem 2 no protocol "
          "implements this specification (an adversarial scheduler can "
          "always complete the forbidden pattern)";
      d.span = predicate_span();
      if (options.explain) {
        d.notes.push_back(
            "implementability requires a conjunct cycle x_1 -> x_2 -> "
            "... -> x_1 in the predicate graph; none exists here");
        d.notes.push_back(compile_note());
      }
      return;
    }
    if (cls.min_order == 0) {
      LintDiagnostic& d = add(rule_unsatisfiable());
      d.message =
          "the witness cycle has no beta vertex: B forces an event to "
          "precede itself and can never hold, so the spec forbids "
          "nothing (X_B is all of X_async)";
      d.span = witness_span();
      d.fixit = "break the order-0 cycle or re-orient one conjunct";
      witness_notes(d);
      if (options.explain) d.notes.push_back(compile_note());
      return;
    }
    if (options.explain) {
      LintDiagnostic& d = add(rule_class_explanation());
      const char* why =
          cls.protocol_class == ProtocolClass::kTagged
              ? "order 1: tagging user messages suffices, control "
                "messages are provably unnecessary (X_co subset of X_B)"
              : "order >= 2: control messages are necessary and "
                "sufficient (X_sync subset of X_B, X_co is not)";
      d.message = "classified '" + to_string(cls.protocol_class) +
                  "' with minimum closed-walk order " +
                  std::to_string(*cls.min_order) + "; " + why;
      d.span = witness_span();
      witness_notes(d);
      d.notes.push_back(compile_note());
    }
  }
};

void demote_declared_intent(LintResult& result, ProtocolClass expected) {
  for (LintDiagnostic& d : result.diagnostics) {
    const bool verdict_shaped =
        (expected == ProtocolClass::kTagless &&
         d.rule == &rule_unsatisfiable()) ||
        (expected == ProtocolClass::kNotImplementable &&
         (d.rule == &rule_not_implementable() ||
          d.rule == &rule_tautological()));
    if (!verdict_shaped || d.severity == LintSeverity::kNote) continue;
    d.severity = LintSeverity::kNote;
    d.message += " [declared intent: " + to_string(expected) + "]";
  }
}

}  // namespace

std::size_t LintResult::count(LintSeverity severity) const {
  std::size_t n = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::size_t LintResult::count_at_least(LintSeverity severity) const {
  std::size_t n = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity >= severity) ++n;
  }
  return n;
}

bool LintResult::has_rule(std::string_view id) const {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.rule != nullptr && d.rule->id == id) return true;
  }
  return false;
}

LintResult lint_predicate(const ForbiddenPredicate& predicate,
                          const PredicateSource* source,
                          const LintOptions& options) {
  CompositeSpec spec;
  spec.predicates.push_back(predicate);
  if (source == nullptr) return lint_spec(spec, nullptr, options);
  SpecSource spec_source;
  spec_source.predicates.push_back(*source);
  return lint_spec(spec, &spec_source, options);
}

LintResult lint_spec(const CompositeSpec& spec, const SpecSource* source,
                     const LintOptions& options) {
  LintResult result;
  std::vector<ProtocolClass> classes;
  for (std::size_t i = 0; i < spec.predicates.size(); ++i) {
    const PredicateSource* pred_source =
        source != nullptr && i < source->predicates.size()
            ? &source->predicates[i]
            : nullptr;
    PredicateLint lint{spec.predicates[i], pred_source, i, result, options,
                       {}, {}, {}, {}, {}};
    lint.run();
    classes.push_back(lint.cls.protocol_class);
  }

  // L015: dead disjunction arms.  Only statements the parser recorded
  // as multi-arm disjunctions are analyzed (the groups are how the spec
  // was *written*; programmatic composites have no disjunction intent).
  // An arm is dead iff its compiled monitor automaton can never accept
  // — X_{A or B} = X_A intersect X_B, so a never-firing arm leaves the
  // intersection unchanged.
  if (source != nullptr &&
      source->disjunct_group.size() == spec.predicates.size()) {
    std::map<std::size_t, std::size_t> group_size;
    for (const std::size_t g : source->disjunct_group) ++group_size[g];
    std::map<std::size_t, std::size_t> arm_within_group;
    for (std::size_t i = 0; i < spec.predicates.size(); ++i) {
      const std::size_t group = source->disjunct_group[i];
      const std::size_t arm = ++arm_within_group[group];
      if (group_size[group] < 2) continue;
      const CompileResult compiled = compile_predicate(spec.predicates[i]);
      if (!compiled.compiled() || compiled.automaton->can_accept()) {
        continue;
      }
      LintDiagnostic d;
      d.rule = &rule_dead_disjunct();
      d.severity = d.rule->severity;
      d.predicate_index = i;
      d.message = "disjunct arm #" + std::to_string(arm) +
                  " can never fire; the disjunction forbids exactly what "
                  "the remaining arm(s) forbid";
      if (i < source->predicates.size()) {
        d.span = source->predicates[i].span;
      }
      d.fixit = "drop this arm";
      d.notes.push_back(
          "compiled monitor automaton: " +
          std::to_string(compiled.automaton->n_states) +
          " state(s), none of which reaches acceptance");
      result.diagnostics.push_back(std::move(d));
    }
  }

  // L016: a concurrency bound of 0 forbids ever *sending* a matching
  // message — legal, but almost always a fencepost mistake.
  for (std::size_t i = 0; i < spec.counting.size(); ++i) {
    const CountingPredicate& counting = spec.counting[i];
    if (counting.limit != 0) continue;
    LintDiagnostic d;
    d.rule = &rule_degenerate_counting();
    d.severity = d.rule->severity;
    d.message =
        "'" + counting.to_string() + "' rejects every run that sends a " +
        (counting.color.has_value()
             ? "color-" + std::to_string(*counting.color) + " message"
             : std::string("message")) +
        " (the count exceeds 0 the moment one is in flight)";
    if (source != nullptr && i < source->counting.size()) {
      d.span = source->counting[i];
    }
    d.fixit = "raise the bound or drop the statement";
    result.diagnostics.push_back(std::move(d));
  }

  // L010: duplicate predicates (identical up to variable renaming).
  std::map<std::string, std::size_t> first_with_key;
  for (std::size_t i = 0; i < spec.predicates.size(); ++i) {
    const auto [it, inserted] =
        first_with_key.try_emplace(canonical_key(spec.predicates[i]), i);
    if (inserted) continue;
    LintDiagnostic d;
    d.rule = &rule_duplicate_predicate();
    d.severity = d.rule->severity;
    d.predicate_index = i;
    d.message = "predicate #" + std::to_string(i + 1) +
                " is identical (up to variable renaming) to predicate #" +
                std::to_string(it->second + 1) +
                "; the intersection is unchanged by dropping one";
    if (source != nullptr && i < source->predicates.size()) {
      d.span = source->predicates[i].span;
    }
    d.fixit = "remove this predicate";
    result.diagnostics.push_back(std::move(d));
  }

  result.spec_class = ProtocolClass::kTagless;
  std::size_t binding = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (static_cast<int>(classes[i]) >
        static_cast<int>(result.spec_class)) {
      result.spec_class = classes[i];
      binding = i;
    }
  }

  // A bounded-counting statement is a *global* constraint: enforcing it
  // requires processes to agree on the in-flight count, which tags on
  // user messages cannot convey — control messages are needed, so the
  // composite needs at least the general class.
  const bool counting_binds =
      !spec.counting.empty() &&
      static_cast<int>(result.spec_class) <
          static_cast<int>(ProtocolClass::kGeneral);
  if (counting_binds) result.spec_class = ProtocolClass::kGeneral;
  if (counting_binds && options.explain) {
    LintDiagnostic d;
    d.rule = &rule_class_explanation();
    d.severity = d.rule->severity;
    d.message =
        "the bounded-counting statement(s) raise the required class to "
        "'general': a global in-flight bound needs control-message "
        "coordination, not just tags";
    result.diagnostics.push_back(std::move(d));
  }

  if (options.explain && spec.predicates.size() > 1) {
    LintDiagnostic d;
    d.rule = &rule_class_explanation();
    d.severity = d.rule->severity;
    d.message = "composite of " + std::to_string(spec.predicates.size()) +
                " predicates requires class '" +
                to_string(result.spec_class) + "', forced by predicate #" +
                std::to_string(binding + 1) +
                " (the verdict is the most demanding component)";
    result.diagnostics.push_back(std::move(d));
  }

  // L013: over-strength — dropping the binding predicate(s) of a
  // composite weakens the spec (the intersection loses a factor) and
  // lowers the required class.
  const bool declared_ok = options.expected.has_value() &&
                           *options.expected == result.spec_class;
  if (spec.predicates.size() > 1 && !declared_ok &&
      result.spec_class != ProtocolClass::kTagless) {
    std::vector<std::size_t> at_max;
    ProtocolClass rest = ProtocolClass::kTagless;
    bool have_rest = false;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (classes[i] == result.spec_class) {
        at_max.push_back(i);
      } else {
        have_rest = true;
        rest = std::max(rest, classes[i], [](ProtocolClass a,
                                             ProtocolClass b) {
          return static_cast<int>(a) < static_cast<int>(b);
        });
      }
    }
    if (have_rest && rest != result.spec_class) {
      for (std::size_t i : at_max) {
        LintDiagnostic d;
        d.rule = &rule_over_strength();
        d.severity = d.rule->severity;
        d.predicate_index = i;
        d.message =
            at_max.size() == 1
                ? "dropping this predicate lowers the required protocol "
                  "class from '" + to_string(result.spec_class) +
                      "' to '" + to_string(rest) + "'"
                : "this is one of " + std::to_string(at_max.size()) +
                      " predicates forcing class '" +
                      to_string(result.spec_class) +
                      "'; dropping them lowers the requirement to '" +
                      to_string(rest) + "'";
        if (source != nullptr && i < source->predicates.size()) {
          d.span = source->predicates[i].span;
        }
        result.diagnostics.push_back(std::move(d));
      }
    }
  }

  if (options.expected.has_value()) {
    if (*options.expected == result.spec_class) {
      demote_declared_intent(result, *options.expected);
    } else {
      LintDiagnostic d;
      d.rule = &rule_class_mismatch();
      d.severity = d.rule->severity;
      d.message = "declared intent is class '" +
                  to_string(*options.expected) +
                  "' but the spec classifies as '" +
                  to_string(result.spec_class) + "'";
      result.diagnostics.push_back(std::move(d));
    }
  }
  return result;
}

LintResult lint_text(std::string_view text, const LintOptions& options) {
  ParseSpecResult parsed = parse_spec(text);
  if (!parsed.ok()) {
    LintResult result;
    result.parsed = false;
    LintDiagnostic d;
    d.rule = &rule_parse_error();
    d.severity = d.rule->severity;
    d.message = parsed.detail->message;
    if (!parsed.detail->lexeme.empty()) {
      d.message += " (found '" + parsed.detail->lexeme + "')";
    }
    d.span = parsed.detail->span;
    result.diagnostics.push_back(std::move(d));
    return result;
  }
  SpecSource source;
  source.text = std::string(text);
  source.predicates = std::move(parsed.sources);
  source.counting = std::move(parsed.counting_sources);
  source.disjunct_group = std::move(parsed.disjunct_group);
  return lint_spec(*parsed.spec, &source, options);
}

namespace {

std::optional<ProtocolClass> class_by_name(const std::string& name) {
  for (const ProtocolClass c :
       {ProtocolClass::kTagless, ProtocolClass::kTagged,
        ProtocolClass::kGeneral, ProtocolClass::kNotImplementable}) {
    if (to_string(c) == name) return c;
  }
  return std::nullopt;
}

}  // namespace

SpecFileText preprocess_spec_text(std::string_view raw) {
  SpecFileText file;
  file.text = std::string(raw);
  std::size_t line_start = 0;
  while (line_start <= file.text.size()) {
    std::size_t line_end = file.text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = file.text.size();
    std::size_t first = line_start;
    while (first < line_end &&
           (file.text[first] == ' ' || file.text[first] == '\t')) {
      ++first;
    }
    if (first < line_end && file.text[first] == '#') {
      const std::string comment =
          file.text.substr(first + 1, line_end - first - 1);
      const std::size_t key = comment.find("expect:");
      if (key != std::string::npos) {
        std::string value = comment.substr(key + 7);
        const std::size_t begin = value.find_first_not_of(" \t");
        const std::size_t end = value.find_last_not_of(" \t\r");
        value = begin == std::string::npos
                    ? ""
                    : value.substr(begin, end - begin + 1);
        file.expected = class_by_name(value);
        if (!file.expected.has_value()) {
          file.bad_expect_class = value;
          // Span of the class name in the ORIGINAL text (an empty
          // value points at the pragma keyword instead).
          const std::size_t value_offset =
              value.empty() ? first + 1 + key
                            : first + 1 + key + 7 + begin;
          const std::size_t value_length =
              value.empty() ? 7 : value.size();
          file.bad_expect_span = span_in(raw, value_offset, value_length);
        }
      }
      for (std::size_t i = line_start; i < line_end; ++i) {
        file.text[i] = ' ';
      }
    }
    line_start = line_end + 1;
  }
  return file;
}

LintResult lint_file_text(std::string_view raw, const LintOptions& options,
                          SpecFileText* file_out) {
  SpecFileText file = preprocess_spec_text(raw);
  LintOptions effective = options;
  if (file.expected.has_value()) effective.expected = file.expected;
  LintResult result = lint_text(file.text, effective);
  if (!file.bad_expect_class.empty() || file.bad_expect_span.length > 0) {
    LintDiagnostic d;
    d.rule = &rule_unknown_expect_class();
    d.severity = d.rule->severity;
    d.message = "unknown '# expect:' class '" + file.bad_expect_class +
                "'; valid classes are tagless, tagged, general, and "
                "not-implementable";
    d.span = file.bad_expect_span;
    d.fixit = "# expect: " + to_string(result.spec_class);
    // Put the pragma diagnostic first: it sits above the spec text and
    // explains why no intent demotion happened.
    result.diagnostics.insert(result.diagnostics.begin(), std::move(d));
  }
  if (file_out != nullptr) *file_out = std::move(file);
  return result;
}

std::string render_lint_text(const LintResult& result,
                             std::string_view source_text,
                             std::string_view input_name) {
  std::ostringstream out;
  for (const LintDiagnostic& d : result.diagnostics) {
    out << input_name;
    if (d.span.has_value()) {
      out << ":" << d.span->line << ":" << d.span->column;
    }
    out << ": " << to_string(d.severity) << " [" << d.rule->id << " "
        << d.rule->name << "] " << d.message << "\n";
    if (d.span.has_value() && !source_text.empty() &&
        d.span->offset <= source_text.size()) {
      std::size_t line_begin =
          source_text.rfind('\n', d.span->offset == 0 ? 0
                                                      : d.span->offset - 1);
      line_begin = line_begin == std::string_view::npos ? 0 : line_begin + 1;
      std::size_t line_end = source_text.find('\n', d.span->offset);
      if (line_end == std::string_view::npos) line_end = source_text.size();
      out << "    "
          << source_text.substr(line_begin, line_end - line_begin) << "\n";
      out << "    " << std::string(d.span->offset - line_begin, ' ') << "^";
      const std::size_t underline =
          std::min(d.span->length, line_end - d.span->offset);
      if (underline > 1) out << std::string(underline - 1, '~');
      out << "\n";
    }
    for (const std::string& note : d.notes) {
      out << "    note: " << note << "\n";
    }
    if (!d.fixit.empty()) out << "    fix-it: " << d.fixit << "\n";
  }
  out << input_name << ": " << result.count(LintSeverity::kError)
      << " error(s), " << result.count(LintSeverity::kWarning)
      << " warning(s), " << result.count(LintSeverity::kHint)
      << " hint(s)";
  if (result.parsed) {
    out << " — class: " << to_string(result.spec_class);
  }
  out << "\n";
  return out.str();
}

std::string lint_artifact_json(const std::vector<LintInput>& inputs) {
  JsonWriter w;
  std::map<std::string, std::uint64_t> by_rule;
  std::map<std::string, std::uint64_t> by_severity{
      {"error", 0}, {"warning", 0}, {"hint", 0}, {"note", 0}};
  w.begin_object();
  w.kv("schema", "msgorder.lint/1");
  w.key("inputs").begin_array();
  for (const LintInput& input : inputs) {
    w.begin_object();
    w.kv("name", input.name);
    w.kv("parsed", input.result.parsed);
    if (input.result.parsed) {
      w.kv("class", to_string(input.result.spec_class));
    }
    w.kv("clean", input.result.clean());
    w.key("counts").begin_object();
    for (const LintSeverity sev :
         {LintSeverity::kError, LintSeverity::kWarning, LintSeverity::kHint,
          LintSeverity::kNote}) {
      const std::uint64_t n = input.result.count(sev);
      w.kv(to_string(sev), n);
      by_severity[to_string(sev)] += n;
    }
    w.end_object();
    w.key("diagnostics").begin_array();
    for (const LintDiagnostic& d : input.result.diagnostics) {
      ++by_rule[std::string(d.rule->id)];
      w.begin_object();
      w.kv("rule", d.rule->id);
      w.kv("name", d.rule->name);
      w.kv("severity", to_string(d.severity));
      w.kv("message", d.message);
      if (d.predicate_index.has_value()) {
        w.kv("predicate",
             static_cast<std::uint64_t>(*d.predicate_index));
      }
      if (d.span.has_value()) {
        w.key("span").begin_object();
        w.kv("offset", static_cast<std::uint64_t>(d.span->offset));
        w.kv("length", static_cast<std::uint64_t>(d.span->length));
        w.kv("line", static_cast<std::uint64_t>(d.span->line));
        w.kv("column", static_cast<std::uint64_t>(d.span->column));
        w.end_object();
      }
      if (!d.fixit.empty()) w.kv("fixit", d.fixit);
      if (!d.notes.empty()) {
        w.key("notes").begin_array();
        for (const std::string& note : d.notes) w.value(note);
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  w.kv("inputs", static_cast<std::uint64_t>(inputs.size()));
  for (const auto& [severity, n] : by_severity) w.kv(severity, n);
  w.key("by_rule").begin_object();
  for (const auto& [rule, n] : by_rule) w.kv(rule, n);
  w.end_object();
  w.end_object();
  bool clean = true;
  for (const LintInput& input : inputs) {
    clean = clean && input.result.clean();
  }
  w.kv("clean", clean);
  w.end_object();
  return w.take();
}

}  // namespace msgorder
