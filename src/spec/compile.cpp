#include "src/spec/compile.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace msgorder {

namespace {

/// The single-state never-accepting machine: the compiled form of a
/// predicate whose pattern cannot occur (unsatisfiable conjunction or a
/// cyclic precedence requirement).  Sound for parity: the engines never
/// find a witness either.
MonitorAutomaton dead_automaton() {
  MonitorAutomaton a;
  a.scope = MonitorAutomaton::Scope::kPerProcess;
  a.n_states = 1;
  a.initial = 0;
  a.next.assign(a.symbols.n_symbols(), 0);
  a.accepting.assign(1, 0);
  a.dead_states = 1;
  return a;
}

CompileResult fallback(std::string reason) {
  CompileResult r;
  r.fallback_reason = std::move(reason);
  return r;
}

CompileResult success(MonitorAutomaton automaton) {
  CompileResult r;
  r.automaton = std::move(automaton);
  return r;
}

/// Union-find over the 2*arity (var, kind) endpoints.
struct EndpointUnion {
  std::vector<std::size_t> parent;

  explicit EndpointUnion(std::size_t arity) : parent(2 * arity) {
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  }
  static std::size_t id(std::size_t var, UserEventKind kind) {
    return 2 * var + (kind == UserEventKind::kDeliver ? 1 : 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

/// Mark states from which no accepting state is reachable.
std::size_t count_dead_states(const MonitorAutomaton& a) {
  const std::size_t n_symbols = a.symbols.n_symbols();
  std::vector<char> alive(a.n_states, 0);
  std::vector<std::uint32_t> queue;
  // Reverse edges are sparse enough to rebuild: predecessors per state.
  std::vector<std::vector<std::uint32_t>> preds(a.n_states);
  for (std::uint32_t s = 0; s < a.n_states; ++s) {
    for (std::size_t sym = 0; sym < n_symbols; ++sym) {
      preds[a.step(s, sym)].push_back(s);
    }
    if (a.accepting[s]) {
      alive[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t s = queue.back();
    queue.pop_back();
    for (std::uint32_t p : preds[s]) {
      if (!alive[p]) {
        alive[p] = 1;
        queue.push_back(p);
      }
    }
  }
  std::size_t dead = 0;
  for (std::uint32_t s = 0; s < a.n_states; ++s) {
    if (!alive[s]) ++dead;
  }
  return dead;
}

}  // namespace

std::size_t SymbolTable::color_class(int color) const {
  const auto it = std::lower_bound(colors.begin(), colors.end(), color);
  if (it != colors.end() && *it == color) {
    return static_cast<std::size_t>(it - colors.begin());
  }
  return colors.size();  // the "other" class
}

std::string SymbolTable::symbol_name(std::size_t symbol) const {
  const std::size_t cls = symbol / 2;
  std::string name = (symbol % 2) == 0 ? "send" : "deliver";
  if (cls < colors.size()) {
    name += "[color=" + std::to_string(colors[cls]) + "]";
  } else {
    name += "[other]";
  }
  return name;
}

CompileResult compile_predicate(const ForbiddenPredicate& predicate,
                                const std::vector<Message>* universe) {
  // --- structural gate, cheapest checks first (find_violation attempts
  // a compile per call, so non-compilable specs must bail fast) ---
  if (predicate.arity > kMaxCompiledArity) {
    return fallback("fallback: arity: " + std::to_string(predicate.arity) +
                    " variables exceed the compiled-automaton cap of " +
                    std::to_string(kMaxCompiledArity));
  }

  // Unsatisfiable patterns compile to the never-accepting machine no
  // matter their shape, so normalize() runs before the structural
  // gates below (the Lemma 3.3 zoo is cyclic AND cross-process).  The
  // compiler otherwise runs the predicate exactly as the engines will:
  // a predicate normalize() would rewrite must be normalized by the
  // caller first or witness parity breaks.
  const NormalizedPredicate normal = normalize(predicate);
  if (normal.triviality == NormalTriviality::kUnsatisfiable) {
    return success(dead_automaton());
  }
  if (normal.triviality == NormalTriviality::kTautological) {
    return fallback(
        "fallback: degenerate: the conjunction is tautological after "
        "normalization; its violations are not a property of the event "
        "stream");
  }
  if (!(normal.predicate == predicate)) {
    return fallback(
        "fallback: normal-form: the predicate is not normalize()-stable "
        "(redundant or tautological parts remain); compile the "
        "normalized form instead");
  }

  // Event-level cycle: nodes v.s, v.r with the implicit v.s -> v.r edge
  // plus one edge per conjunct.  A cycle means no strict partial order
  // satisfies the conjunction at all (the Lemma 3.3 zoo lives here), so
  // the never-accepting machine is the exact compiled form.
  {
    const std::size_t n_nodes = 2 * predicate.arity;
    std::vector<std::vector<std::size_t>> out(n_nodes);
    for (std::size_t v = 0; v < predicate.arity; ++v) {
      out[2 * v].push_back(2 * v + 1);
    }
    for (const Conjunct& c : predicate.conjuncts) {
      out[EndpointUnion::id(c.lhs, c.p)].push_back(
          EndpointUnion::id(c.rhs, c.q));
    }
    std::vector<std::size_t> in_degree(n_nodes, 0);
    for (const auto& edges : out) {
      for (const std::size_t to : edges) ++in_degree[to];
    }
    std::vector<std::size_t> ready;
    for (std::size_t n = 0; n < n_nodes; ++n) {
      if (in_degree[n] == 0) ready.push_back(n);
    }
    std::size_t removed = 0;
    while (!ready.empty()) {
      const std::size_t n = ready.back();
      ready.pop_back();
      ++removed;
      for (const std::size_t to : out[n]) {
        if (--in_degree[to] == 0) ready.push_back(to);
      }
    }
    if (removed != n_nodes) return success(dead_automaton());
  }

  // Each variable must participate through exactly one event kind:
  // a variable observed at both its send and its delivery either lives
  // on two processes (not a single-cluster pattern) or forces a
  // self-loop message — neither is symbol-decidable in general.
  std::vector<unsigned> kinds_used(predicate.arity, 0);
  for (const Conjunct& c : predicate.conjuncts) {
    kinds_used[c.lhs] |= c.p == UserEventKind::kSend ? 1U : 2U;
    kinds_used[c.rhs] |= c.q == UserEventKind::kSend ? 1U : 2U;
  }
  for (std::size_t v = 0; v < predicate.arity; ++v) {
    if (kinds_used[v] == 3U) {
      return fallback("fallback: alphabet: variable " +
                      predicate.var_name(v) +
                      " participates through both its send and its "
                      "delivery, which no single-process symbol stream "
                      "can relate");
    }
  }

  // Collocation: the where-constraints must force every used endpoint
  // onto one process, and must not reference endpoints the conjuncts
  // never use (those constrain message attributes invisible to the
  // cluster's symbols).
  EndpointUnion uf(predicate.arity);
  for (const ProcessEquality& pe : predicate.process_constraints) {
    const unsigned bit_a = pe.kind_a == UserEventKind::kSend ? 1U : 2U;
    const unsigned bit_b = pe.kind_b == UserEventKind::kSend ? 1U : 2U;
    if (pe.var_a >= predicate.arity || pe.var_b >= predicate.arity ||
        (kinds_used[pe.var_a] & bit_a) == 0 ||
        (kinds_used[pe.var_b] & bit_b) == 0) {
      return fallback(
          "fallback: constraints: a process equality references an "
          "event no conjunct uses, constraining attributes outside the "
          "monitored symbol stream");
    }
    uf.unite(EndpointUnion::id(pe.var_a, pe.kind_a),
             EndpointUnion::id(pe.var_b, pe.kind_b));
  }
  std::optional<std::size_t> cluster;
  for (std::size_t v = 0; v < predicate.arity; ++v) {
    for (UserEventKind k : {UserEventKind::kSend, UserEventKind::kDeliver}) {
      const unsigned bit = k == UserEventKind::kSend ? 1U : 2U;
      if ((kinds_used[v] & bit) == 0) continue;
      const std::size_t root = uf.find(EndpointUnion::id(v, k));
      if (!cluster.has_value()) {
        cluster = root;
      } else if (*cluster != root) {
        return fallback(
            "fallback: collocation: the where-constraints do not force "
            "every used event onto one process (event " +
            predicate.var_name(v) + "." +
            (k == UserEventKind::kSend ? "s" : "r") +
            " floats free), so the pattern depends on cross-process "
            "causality the symbol stream erases");
      }
    }
  }

  // Mixed-kind clusters: a send-bound variable and a deliver-bound
  // variable could bind the *same* message if some message self-loops
  // (src == dst) — the symbols cannot see the identity collision.
  const bool has_send_var =
      std::any_of(kinds_used.begin(), kinds_used.end(),
                  [](unsigned k) { return k == 1U; });
  const bool has_deliver_var =
      std::any_of(kinds_used.begin(), kinds_used.end(),
                  [](unsigned k) { return k == 2U; });
  if (has_send_var && has_deliver_var) {
    if (universe == nullptr) {
      return fallback(
          "fallback: distinctness: the cluster mixes send-bound and "
          "deliver-bound variables; without the message universe the "
          "compiler cannot rule out self-loop messages (src == dst) "
          "binding one message to two variables");
    }
    for (const Message& m : *universe) {
      if (m.src == m.dst) {
        return fallback(
            "fallback: distinctness: message m" + std::to_string(m.id) +
            " is a self-loop (src == dst), so one message could serve "
            "both a send-bound and a deliver-bound variable");
      }
    }
  }

  // Per-variable symbol admissibility: kind plus allowed color classes.
  SymbolTable symbols;
  for (const ColorConstraint& cc : predicate.color_constraints) {
    symbols.colors.push_back(cc.color);
  }
  std::sort(symbols.colors.begin(), symbols.colors.end());
  symbols.colors.erase(
      std::unique(symbols.colors.begin(), symbols.colors.end()),
      symbols.colors.end());

  const std::size_t n_classes = symbols.n_classes();
  // allowed[v] is a bitmask over color classes.
  std::vector<std::uint64_t> allowed(predicate.arity,
                                     (1ULL << n_classes) - 1);
  for (const ColorConstraint& cc : predicate.color_constraints) {
    allowed[cc.var] &= 1ULL << symbols.color_class(cc.color);
  }
  bool contradictory_colors = false;
  for (std::size_t v = 0; v < predicate.arity; ++v) {
    if (allowed[v] == 0) contradictory_colors = true;
  }

  // Precedence DAG over variables: conjunct x.p |> y.q between two
  // same-process events means x's occurrence executes strictly earlier.
  std::vector<std::uint32_t> preds(predicate.arity, 0);
  for (const Conjunct& c : predicate.conjuncts) {
    preds[c.rhs] |= 1U << c.lhs;
  }
  // Cycle check via Kahn: a cyclic precedence requirement (or an
  // unsatisfiable color demand) makes the pattern impossible — compile
  // the never-accepting machine, matching the engines' "no witness".
  {
    std::vector<std::uint32_t> preds_left = preds;
    std::uint32_t done = 0;
    const std::uint32_t full =
        predicate.arity == 32 ? ~0U : (1U << predicate.arity) - 1;
    bool progress = true;
    while (progress && done != full) {
      progress = false;
      for (std::size_t v = 0; v < predicate.arity; ++v) {
        if ((done >> v) & 1U) continue;
        if ((preds_left[v] & ~done) == 0) {
          done |= 1U << v;
          progress = true;
        }
      }
    }
    if (done != full || contradictory_colors) {
      return success(dead_automaton());
    }
  }

  // --- subset construction over downward-closed matched-variable sets,
  // pruned to maximal antichains (supersets dominate: anything a
  // smaller matched set can still accept, the larger one accepts at
  // least as early) ---
  const std::uint32_t full = (1U << predicate.arity) - 1;
  const std::size_t n_symbols = symbols.n_symbols();

  // enabled[sym] precomputed per symbol: which vars can match it.
  // Symbol layout is 2 * color_class + (deliver ? 1 : 0).
  std::vector<std::uint32_t> enabled(n_symbols, 0);
  for (std::size_t v = 0; v < predicate.arity; ++v) {
    const std::size_t kind_bit = kinds_used[v] == 1U ? 0 : 1;
    for (std::size_t cls = 0; cls < n_classes; ++cls) {
      if ((allowed[v] >> cls) & 1ULL) {
        enabled[2 * cls + kind_bit] |= 1U << v;
      }
    }
  }

  using Antichain = std::vector<std::uint32_t>;
  std::map<Antichain, std::uint32_t> state_ids;
  std::vector<Antichain> states;
  const auto intern = [&](Antichain chain) -> std::uint32_t {
    const auto it = state_ids.find(chain);
    if (it != state_ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(states.size());
    state_ids.emplace(chain, id);
    states.push_back(std::move(chain));
    return id;
  };

  const std::uint32_t initial = intern({0});
  std::vector<std::uint32_t> table;
  std::optional<std::uint32_t> accept_id;
  for (std::uint32_t s = 0; s < states.size(); ++s) {
    if (states.size() > kMaxCompiledStates) {
      return fallback("fallback: state-blowup: subset construction "
                      "exceeded " +
                      std::to_string(kMaxCompiledStates) + " states");
    }
    table.resize((static_cast<std::size_t>(s) + 1) * n_symbols, 0);
    const Antichain chain = states[s];  // copy: states may reallocate
    const bool is_accept = accept_id.has_value() && *accept_id == s;
    for (std::size_t sym = 0; sym < n_symbols; ++sym) {
      if (is_accept) {  // acceptance absorbs
        table[static_cast<std::size_t>(s) * n_symbols + sym] = s;
        continue;
      }
      std::set<std::uint32_t> out(chain.begin(), chain.end());
      bool accepted = false;
      for (const std::uint32_t m : chain) {
        std::uint32_t candidates = enabled[sym] & ~m;
        while (candidates != 0) {
          const unsigned v =
              static_cast<unsigned>(__builtin_ctz(candidates));
          candidates &= candidates - 1;
          if ((preds[v] & ~m) != 0) continue;  // predecessors unmatched
          const std::uint32_t grown = m | (1U << v);
          if (grown == full) {
            accepted = true;
            break;
          }
          out.insert(grown);
        }
        if (accepted) break;
      }
      std::uint32_t target = 0;
      if (accepted) {
        if (!accept_id.has_value()) {
          accept_id = intern({full});
        }
        target = *accept_id;
      } else {
        // Keep only the maximal masks.
        Antichain maximal;
        for (const std::uint32_t m : out) {
          bool dominated = false;
          for (const std::uint32_t other : out) {
            if (other != m && (m & other) == m) {
              dominated = true;
              break;
            }
          }
          if (!dominated) maximal.push_back(m);
        }
        target = intern(std::move(maximal));
      }
      table[static_cast<std::size_t>(s) * n_symbols + sym] = target;
    }
  }

  MonitorAutomaton automaton;
  automaton.scope = MonitorAutomaton::Scope::kPerProcess;
  automaton.symbols = std::move(symbols);
  automaton.n_states = states.size();
  automaton.initial = initial;
  automaton.next = std::move(table);
  automaton.accepting.assign(states.size(), 0);
  if (accept_id.has_value()) automaton.accepting[*accept_id] = 1;
  automaton.dead_states = count_dead_states(automaton);
  return success(std::move(automaton));
}

CompileResult compile_counting(const CountingPredicate& counting) {
  MonitorAutomaton a;
  a.scope = MonitorAutomaton::Scope::kCounter;
  if (counting.color.has_value()) a.symbols.colors = {*counting.color};
  const std::size_t n_symbols = a.symbols.n_symbols();
  a.n_states = counting.limit + 2;
  a.initial = 0;
  a.next.assign(a.n_states * n_symbols, 0);
  a.accepting.assign(a.n_states, 0);
  const auto over = static_cast<std::uint32_t>(counting.limit + 1);
  a.accepting[over] = 1;
  // The matching color class is class 0 when a color is named (its
  // slot), otherwise the single "other" class.
  const std::size_t match_cls = 0;
  for (std::uint32_t k = 0; k <= over; ++k) {
    for (std::size_t sym = 0; sym < n_symbols; ++sym) {
      std::uint32_t target = k;  // default: irrelevant symbol
      if (k == over) {
        target = over;  // acceptance absorbs
      } else if (sym / 2 == match_cls) {
        if (sym % 2 == 0) {  // matching send: one more in flight
          target = k + 1;
        } else {  // matching delivery: one fewer (floor at 0)
          target = k > 0 ? k - 1 : 0;
        }
      }
      a.next[static_cast<std::size_t>(k) * n_symbols + sym] = target;
    }
  }
  a.dead_states = 0;  // any state can count up to acceptance
  return success(std::move(a));
}

}  // namespace msgorder
