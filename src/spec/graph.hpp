// The predicate graph G_B(V, E) of Definition 4.2 and the beta-vertex
// machinery of Definition 4.3.
//
// Vertices are the predicate variables; every conjunct x_j.p |> x_k.q
// contributes a directed edge j -> k labelled (p, q) (the graph is a
// multigraph).  Given a cycle, a vertex is a *beta vertex* iff the cycle
// enters it at .r and leaves it from .s — enforcing that junction needs
// knowledge of the future (delivery before a later send of the same
// message variable), which is what separates the protocol classes.
//
// Two analyses are provided:
//   * enumeration of simple cycles (Johnson-style DFS) with their orders,
//     used for reporting and for exhibiting witness cycles; and
//   * the minimum order over *closed walks*, computed on a labelled state
//     graph (state = (vertex, incoming event kind), passage cost 1 iff
//     in = r and out = s) by 0-1 BFS.  The walk minimum provably equals
//     the simple-cycle minimum (see DESIGN.md: merging cycles at a shared
//     vertex cannot drop the beta count below the best component), so
//     this gives the paper's classification in O(V*E) instead of
//     enumerating exponentially many cycles.  Lemma 4's contraction is
//     sound for walks, so witness walks remain valid weakening inputs.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/spec/predicate.hpp"

namespace msgorder {

struct PredicateEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  UserEventKind p = UserEventKind::kSend;  // kind at `from`
  UserEventKind q = UserEventKind::kSend;  // kind at `to`
  std::size_t conjunct_index = 0;

  bool operator==(const PredicateEdge&) const = default;
};

/// A cycle or closed walk, as the sequence of edge indices traversed.
struct Cycle {
  std::vector<std::size_t> edges;
  std::size_t order = 0;  // number of beta passages

  bool operator==(const Cycle&) const = default;
};

class PredicateGraph {
 public:
  PredicateGraph() = default;
  explicit PredicateGraph(const ForbiddenPredicate& predicate);

  std::size_t vertex_count() const { return n_; }
  const std::vector<PredicateEdge>& edges() const { return edges_; }

  /// Is the junction "arrive via `in`, leave via `out`" a beta passage?
  static bool beta_junction(const PredicateEdge& in,
                            const PredicateEdge& out) {
    return in.q == UserEventKind::kDeliver && out.p == UserEventKind::kSend;
  }

  /// Number of beta passages around a cyclic edge sequence.
  std::size_t order_of(const std::vector<std::size_t>& cycle_edges) const;

  /// All simple cycles (distinct vertices; parallel edges give distinct
  /// cycles; self-loops are length-1 cycles).  Enumeration stops after
  /// `max_cycles` results to bound the worst case.
  std::vector<Cycle> simple_cycles(std::size_t max_cycles = 100000) const;

  bool has_cycle() const;

  /// Minimum order over all closed walks, together with a witness walk;
  /// nullopt if the graph is acyclic.
  std::optional<Cycle> min_order_closed_walk() const;

  std::string to_string(const ForbiddenPredicate& predicate) const;

 private:
  std::size_t n_ = 0;
  std::vector<PredicateEdge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;  // by vertex
};

}  // namespace msgorder
