#include "src/spec/library.hpp"

namespace msgorder {

namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

}  // namespace

ForbiddenPredicate causal_ordering() {
  // B2 = (x.s |> y.s) & (y.r |> x.r)
  return make_predicate(2, {{0, S, 1, S}, {1, R, 0, R}});
}

ForbiddenPredicate causal_ordering_b1() {
  // B1 = (x.s |> y.r) & (y.r |> x.r)
  return make_predicate(2, {{0, S, 1, R}, {1, R, 0, R}});
}

ForbiddenPredicate causal_ordering_b3() {
  // B3 = (x.s |> y.s) & (y.s |> x.r)
  return make_predicate(2, {{0, S, 1, S}, {1, S, 0, R}});
}

ForbiddenPredicate fifo() {
  ForbiddenPredicate p = causal_ordering();
  p.process_constraints = {{0, S, 1, S}, {0, R, 1, R}};
  return p;
}

ForbiddenPredicate sync_crown(std::size_t k) {
  ForbiddenPredicate p;
  p.arity = k;
  for (std::size_t i = 0; i < k; ++i) {
    p.conjuncts.push_back({i, S, (i + 1) % k, R});
  }
  return p;
}

std::vector<ForbiddenPredicate> async_zoo() {
  // The Lemma 3.3 catalogue: every one of these forces some event to
  // precede itself, so no partial order satisfies it and the
  // specification set is all of X_async.
  return {
      make_predicate(2, {{0, S, 1, S}, {1, S, 0, S}}),
      make_predicate(2, {{0, S, 1, S}, {1, R, 0, S}}),
      make_predicate(2, {{0, R, 1, R}, {1, R, 0, S}}),
      make_predicate(2, {{0, S, 1, R}, {1, R, 0, S}}),
      make_predicate(2, {{0, R, 1, R}, {1, R, 0, R}}),
  };
}

ForbiddenPredicate k_weaker_causal(std::size_t k) {
  // (s1 |> s2) & ... & (s_{k+1} |> s_{k+2}) & (r_{k+2} |> r_1):
  // a chain of k+2 causally ordered sends whose last delivery overtakes
  // the first.  k = 0 degenerates to causal ordering.
  const std::size_t m = k + 2;
  ForbiddenPredicate p;
  p.arity = m;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    p.conjuncts.push_back({i, S, i + 1, S});
  }
  p.conjuncts.push_back({m - 1, R, 0, R});
  return p;
}

ForbiddenPredicate local_forward_flush(int red) {
  ForbiddenPredicate p = fifo();
  p.color_constraints = {{1, red}};
  return p;
}

ForbiddenPredicate global_forward_flush(int red) {
  ForbiddenPredicate p = causal_ordering();
  p.color_constraints = {{1, red}};
  return p;
}

ForbiddenPredicate local_backward_flush(int red) {
  ForbiddenPredicate p = fifo();
  p.color_constraints = {{0, red}};
  return p;
}

CompositeSpec two_way_flush(int red) {
  CompositeSpec spec;
  spec.predicates = {local_forward_flush(red), local_backward_flush(red)};
  return spec;
}

ForbiddenPredicate global_backward_flush(int red) {
  ForbiddenPredicate p = causal_ordering();
  p.color_constraints = {{0, red}};
  return p;
}

CompositeSpec global_two_way_flush(int red) {
  CompositeSpec spec;
  spec.predicates = {global_forward_flush(red),
                     global_backward_flush(red)};
  return spec;
}

ForbiddenPredicate mobile_handoff(int handoff) {
  ForbiddenPredicate p = sync_crown(2);
  p.color_constraints = {{0, handoff}};
  return p;
}

ForbiddenPredicate receive_second_before_first() {
  // The user *wants* r2 |> r1 whenever s1 |> s2; the forbidden pattern is
  // the in-order completion (s1 |> s2) & (r1 |> r2).
  return make_predicate(2, {{0, S, 1, S}, {0, R, 1, R}});
}

ForbiddenPredicate marked_send_order(int first, int second) {
  // Both sends collocated by the process equality, one kind per
  // variable, colors distinguishing the two — the canonical pattern the
  // ISSUE 8 automaton compiler accepts.
  ForbiddenPredicate p = make_predicate(2, {{0, S, 1, S}}, {{0, S, 1, S}},
                                        {{0, first}, {1, second}});
  p.var_names = {"x", "y"};
  return p;
}

CompositeSpec logically_synchronous(std::size_t max_k) {
  CompositeSpec spec;
  for (std::size_t k = 2; k <= max_k; ++k) {
    spec.predicates.push_back(sync_crown(k));
  }
  return spec;
}

std::vector<NamedSpec> spec_zoo() {
  std::vector<NamedSpec> zoo;
  const auto add = [&](std::string name, std::string description,
                       std::string ref, ForbiddenPredicate predicate,
                       ProtocolClass expected) {
    zoo.push_back({std::move(name), std::move(description), std::move(ref),
                   std::move(predicate), expected});
  };

  add("causal (B2)", "causal ordering, defining form", "Lemma 3.2b",
      causal_ordering(), ProtocolClass::kTagged);
  add("causal (B1)", "causal ordering, variant", "Lemma 3.2a",
      causal_ordering_b1(), ProtocolClass::kTagged);
  add("causal (B3)", "causal ordering, variant", "Lemma 3.2c",
      causal_ordering_b3(), ProtocolClass::kTagged);
  add("FIFO", "per-channel ordering", "Section 5", fifo(),
      ProtocolClass::kTagged);

  const auto async_predicates = async_zoo();
  for (std::size_t i = 0; i < async_predicates.size(); ++i) {
    add("async #" + std::to_string(i + 1),
        "unsatisfiable crossing (specification = X_async)",
        "Lemma 3.3" + std::string(1, static_cast<char>('a' + i)),
        async_predicates[i], ProtocolClass::kTagless);
  }

  for (std::size_t k = 2; k <= 5; ++k) {
    add("sync crown k=" + std::to_string(k),
        "no crossing cycle of " + std::to_string(k) + " messages",
        "Lemma 3.1", sync_crown(k), ProtocolClass::kGeneral);
  }

  for (std::size_t k = 1; k <= 3; ++k) {
    add("k-weaker causal k=" + std::to_string(k),
        "out of order by at most " + std::to_string(k) + " messages",
        "Section 5", k_weaker_causal(k), ProtocolClass::kTagged);
  }

  add("local forward flush", "red message flushes its channel",
      "Section 5", local_forward_flush(), ProtocolClass::kTagged);
  add("global forward flush", "red message flushes all channels",
      "Section 5", global_forward_flush(), ProtocolClass::kTagged);
  add("local backward flush", "nothing sent after red overtakes it",
      "F-channels [1]", local_backward_flush(), ProtocolClass::kTagged);
  add("global backward flush", "red is a causal floor on all channels",
      "causal flush [12]", global_backward_flush(),
      ProtocolClass::kTagged);
  add("mobile handoff", "handoff messages cross nothing",
      "Section 5 discussion", mobile_handoff(), ProtocolClass::kGeneral);
  add("receive 2nd before 1st", "deliberately inverted delivery",
      "Section 5 discussion", receive_second_before_first(),
      ProtocolClass::kNotImplementable);
  add("marked send order", "no marked send after a terminal-marked send",
      "ISSUE 8 automaton example", marked_send_order(),
      ProtocolClass::kNotImplementable);
  return zoo;
}

}  // namespace msgorder
