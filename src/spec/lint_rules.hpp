// The msgorder_lint rule catalog (ISSUE 5 tentpole): stable rule IDs,
// default severities, and one-line summaries for every diagnostic the
// spec static analyzer can emit.  IDs are append-only — external
// tooling (the CI gate, msgorder_stats summaries of msgorder.lint/1
// artifacts) keys on them, so a rule may be retired but its ID is never
// reused with a different meaning.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace msgorder {

/// Ordered from least to most severe so thresholds ("fail on warning
/// and above") are plain comparisons.
enum class LintSeverity {
  kNote,     // explanation output, never a defect
  kHint,     // stylistic / over-strength suggestions
  kWarning,  // the spec is well-formed but almost certainly not intended
  kError,    // the spec is broken (unparseable, contradictory, or
             // rejects every interesting run)
};

std::string to_string(LintSeverity severity);

struct LintRule {
  std::string_view id;        // "L002" — stable, append-only
  std::string_view name;      // "unsatisfiable-predicate"
  LintSeverity severity;      // default severity (intent pragmas demote)
  std::string_view summary;   // one-line catalog entry
};

/// The full catalog, in ID order.
const std::vector<LintRule>& lint_rules();

/// Lookup by "L007"-style ID; nullptr when unknown.
const LintRule* find_lint_rule(std::string_view id);

// Convenience accessors for the individual rules (so call sites cannot
// typo an ID).  See lint_rules.cpp for the catalog text.
const LintRule& rule_parse_error();            // L001
const LintRule& rule_unsatisfiable();          // L002
const LintRule& rule_tautological();           // L003
const LintRule& rule_tautological_conjunct();  // L004
const LintRule& rule_dead_variable();          // L005
const LintRule& rule_duplicate_conjunct();     // L006
const LintRule& rule_redundant_conjunct();     // L007
const LintRule& rule_contradictory_where();    // L008
const LintRule& rule_redundant_where();        // L009
const LintRule& rule_duplicate_predicate();    // L010
const LintRule& rule_not_implementable();      // L011
const LintRule& rule_class_explanation();      // L012
const LintRule& rule_over_strength();          // L013
const LintRule& rule_class_mismatch();         // L014
const LintRule& rule_dead_disjunct();          // L015
const LintRule& rule_degenerate_counting();    // L016
const LintRule& rule_unknown_expect_class();   // L017

}  // namespace msgorder
