// Lemma 4: cycle contraction.  Given a predicate whose graph is a cycle,
// repeatedly eliminate non-beta vertices by composing their incident
// conjuncts:
//    (x.p |> y.s) & (y.s |> z.q)   =>  (x.p |> z.q)     (transitivity)
//    (x.p |> y.s) & (y.r |> z.q)   =>  (x.p |> z.q)     (via y.s |> y.r)
//    (x.p |> y.r) & (y.r |> z.q)   =>  (x.p |> z.q)     (transitivity)
// Each step yields a strictly weaker predicate (B => B') with the same
// number of beta vertices, ending in a canonical cycle that either has
// two vertices or consists solely of beta vertices — one of the Lemma 3
// forms.
#pragma once

#include <vector>

#include "src/spec/graph.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// The contraction trace: steps[0] is the input cycle predicate, each
/// subsequent entry removes one non-beta vertex, and steps.back() is the
/// canonical form.
struct WeakeningTrace {
  std::vector<ForbiddenPredicate> steps;

  const ForbiddenPredicate& canonical() const { return steps.back(); }
};

/// Extract the cycle of `graph` given by `cycle_edges` as a standalone
/// predicate over fresh variables v_0..v_{k-1} (conjunct i relates v_i to
/// v_{i+1 mod k}).  This realizes the paper's B_c with B => B_c.
ForbiddenPredicate cycle_predicate(const PredicateGraph& graph,
                                   const std::vector<std::size_t>&
                                       cycle_edges);

/// Run Lemma 4's contraction to a canonical form.  `cycle` must be a
/// predicate whose conjuncts form one cycle v_0 -> v_1 -> ... -> v_0 (as
/// produced by cycle_predicate); passing anything else is a precondition
/// violation.
WeakeningTrace weaken_to_canonical(const ForbiddenPredicate& cycle);

}  // namespace msgorder
