// The catalogue of message-ordering specifications discussed in the paper:
// the Lemma 3 canonical predicates, the classical orderings (FIFO, causal,
// logically synchronous), the flush-channel family, k-weaker causal
// ordering, and the Section 5 examples (mobile handoff, receive-second-
// before-first).  Each entry records the classification the paper
// derives, so the Table-1 benchmark can print paper-vs-measured rows.
#pragma once

#include <string>
#include <vector>

#include "src/spec/classify.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct NamedSpec {
  std::string name;
  std::string description;
  std::string paper_ref;  // where in the paper this spec appears
  ForbiddenPredicate predicate;
  ProtocolClass expected;  // the classification the paper derives
};

/// All single-predicate zoo entries.
std::vector<NamedSpec> spec_zoo();

/// Individual builders (used directly by protocols and tests).

/// Causal ordering, canonical form B2:  (x.s |> y.s) & (y.r |> x.r).
ForbiddenPredicate causal_ordering();
/// Lemma 3.2 variants B1 and B3 (equivalent to causal ordering).
ForbiddenPredicate causal_ordering_b1();
ForbiddenPredicate causal_ordering_b3();

/// FIFO: causal shape restricted to a single channel via process
/// equalities (Section 5).
ForbiddenPredicate fifo();

/// The k-crown crossing predicate of X_sync (Lemma 3.1):
///   (x1.s |> x2.r) & (x2.s |> x3.r) & ... & (xk.s |> x1.r).
ForbiddenPredicate sync_crown(std::size_t k);

/// The five Lemma 3.3 predicates whose specification set is X_async.
std::vector<ForbiddenPredicate> async_zoo();

/// k-weaker causal ordering (Section 5): messages may be overtaken by at
/// most k causally later sends:
///   (s1 |> s2) & ... & (s_{k+1} |> s_{k+2}) & (r_{k+2} |> r1).
ForbiddenPredicate k_weaker_causal(std::size_t k);

/// Local forward flush (Section 5): on each channel, messages sent before
/// a red message are delivered before it.
ForbiddenPredicate local_forward_flush(int red = 1);
/// Global forward flush (Section 5): same without the channel restriction.
ForbiddenPredicate global_forward_flush(int red = 1);
/// Backward flush: messages sent after a red message are delivered after
/// it (the F-channel dual of forward flush).
ForbiddenPredicate local_backward_flush(int red = 1);
/// Two-way flush: the intersection of forward and backward flush.
CompositeSpec two_way_flush(int red = 1);
/// The causal-ordering flush primitives of [12]: the global (cross-
/// channel) backward flush, and the global two-way flush composite.
ForbiddenPredicate global_backward_flush(int red = 1);
CompositeSpec global_two_way_flush(int red = 1);

/// Mobile handoff (Section 5 discussion): handoff messages (color =
/// `handoff`) must not cross any other message — modelled as the 2-crown
/// restricted to a handoff participant, the weakest consequence of the
/// paper's "totally ordered with everything" requirement.  Order 2, so
/// control messages are necessary, matching the paper's conclusion.
ForbiddenPredicate mobile_handoff(int handoff = 2);

/// "Deliver the second message before the first" (Section 5): forbids
/// (s1 |> s2) & (r1 |> r2); acyclic graph, hence not implementable.
ForbiddenPredicate receive_second_before_first();

/// Marked-send ordering (ISSUE 8): forbid one process sending a
/// `first`-colored message and later a `second`-colored one —
///   (x.s |> y.s) where process(x.s)=process(y.s),
///                       color(x)=first, color(y)=second.
/// The canonical single-cluster pattern the automaton compiler accepts
/// (a monitoring spec: like receive-2nd-before-1st its graph is
/// acyclic, so no protocol can *enforce* it, but the compiled DFA
/// detects it in O(1) per event).
ForbiddenPredicate marked_send_order(int first = 1, int second = 2);

/// Full logical synchrony as a composite spec: crowns k = 2..max_k.
CompositeSpec logically_synchronous(std::size_t max_k);

}  // namespace msgorder
