#include "src/spec/parser.hpp"

#include <cctype>
#include <map>

namespace msgorder {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    ForbiddenPredicate predicate;
    if (!parse_conjunct(predicate)) return fail();
    skip_space();
    while (peek() == '&') {
      ++pos_;
      if (!parse_conjunct(predicate)) return fail();
      skip_space();
    }
    if (match_word("where")) {
      do {
        if (!parse_constraint(predicate)) return fail();
        skip_space();
      } while (consume(','));
    }
    skip_space();
    if (pos_ != text_.size()) {
      error("unexpected trailing input");
      return fail();
    }
    predicate.arity = vars_.size();
    predicate.var_names.resize(vars_.size());
    for (const auto& [name, id] : vars_) predicate.var_names[id] = name;
    result.predicate = std::move(predicate);
    return result;
  }

 private:
  ParseResult fail() {
    ParseResult r;
    r.error = error_.empty() ? "parse error" : error_;
    return r;
  }

  void error(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_word(std::string_view word) {
    skip_space();
    if (text_.substr(pos_, word.size()) != word) return false;
    const std::size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;  // prefix of a longer identifier
    }
    pos_ = end;
    return true;
  }

  std::optional<std::string> parse_ident() {
    skip_space();
    if (!std::isalpha(static_cast<unsigned char>(peek())) && peek() != '_') {
      error("expected identifier");
      return std::nullopt;
    }
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::size_t var_id(const std::string& name) {
    auto [it, inserted] = vars_.try_emplace(name, vars_.size());
    return it->second;
  }

  /// atom := ident '.' ('s' | 'r')
  bool parse_atom(std::size_t& var, UserEventKind& kind) {
    const auto name = parse_ident();
    if (!name.has_value()) return false;
    if (!consume('.')) {
      error("expected '.' after variable name");
      return false;
    }
    if (match_word("s")) {
      kind = UserEventKind::kSend;
    } else if (match_word("r")) {
      kind = UserEventKind::kDeliver;
    } else {
      error("expected event kind 's' or 'r'");
      return false;
    }
    var = var_id(*name);
    return true;
  }

  bool parse_rel() {
    skip_space();
    if (text_.substr(pos_, 2) == "|>") {
      pos_ += 2;
      return true;
    }
    if (text_.substr(pos_, 2) == "->") {
      pos_ += 2;
      return true;
    }
    if (peek() == '<') {
      ++pos_;
      return true;
    }
    error("expected relation '|>', '->' or '<'");
    return false;
  }

  bool parse_conjunct(ForbiddenPredicate& predicate) {
    skip_space();
    const bool parens = consume('(');
    Conjunct c;
    if (!parse_atom(c.lhs, c.p)) return false;
    if (!parse_rel()) return false;
    if (!parse_atom(c.rhs, c.q)) return false;
    if (parens && !consume(')')) {
      error("expected ')'");
      return false;
    }
    predicate.conjuncts.push_back(c);
    return true;
  }

  bool parse_constraint(ForbiddenPredicate& predicate) {
    skip_space();
    if (match_word("process")) {
      ProcessEquality pe;
      if (!consume('(')) return error("expected '('"), false;
      if (!parse_atom(pe.var_a, pe.kind_a)) return false;
      if (!consume(')')) return error("expected ')'"), false;
      if (!consume('=')) return error("expected '='"), false;
      if (!match_word("process")) {
        return error("expected 'process'"), false;
      }
      if (!consume('(')) return error("expected '('"), false;
      if (!parse_atom(pe.var_b, pe.kind_b)) return false;
      if (!consume(')')) return error("expected ')'"), false;
      predicate.process_constraints.push_back(pe);
      return true;
    }
    if (match_word("color")) {
      ColorConstraint cc;
      if (!consume('(')) return error("expected '('"), false;
      const auto name = parse_ident();
      if (!name.has_value()) return false;
      cc.var = var_id(*name);
      if (!consume(')')) return error("expected ')'"), false;
      if (!consume('=')) return error("expected '='"), false;
      skip_space();
      bool neg = consume('-');
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("expected integer color"), false;
      }
      int value = 0;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        value = value * 10 + (text_[pos_++] - '0');
      }
      cc.color = neg ? -value : value;
      predicate.color_constraints.push_back(cc);
      return true;
    }
    error("expected 'process' or 'color' constraint");
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::map<std::string, std::size_t> vars_;
};

}  // namespace

ParseResult parse_predicate(std::string_view text) {
  return Parser(text).run();
}

ParseSpecResult parse_spec(std::string_view text) {
  ParseSpecResult result;
  CompositeSpec spec;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != ';') continue;
    const std::string_view piece = text.substr(start, i - start);
    start = i + 1;
    bool blank = true;
    for (char c : piece) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    ParseResult parsed = parse_predicate(piece);
    if (!parsed.ok()) {
      result.error = parsed.error;
      return result;
    }
    spec.predicates.push_back(std::move(*parsed.predicate));
  }
  if (spec.predicates.empty()) {
    result.error = "empty specification";
    return result;
  }
  result.spec = std::move(spec);
  return result;
}

}  // namespace msgorder
