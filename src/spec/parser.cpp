#include "src/spec/parser.hpp"

#include <cctype>
#include <map>

namespace msgorder {

SourceSpan span_in(std::string_view text, std::size_t offset,
                   std::size_t length) {
  SourceSpan span;
  span.offset = offset;
  span.length = length;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++span.line;
      span.column = 1;
    } else {
      ++span.column;
    }
  }
  return span;
}

std::string ParseError::to_string() const {
  std::string out = std::to_string(span.line) + ":" +
                    std::to_string(span.column) + ": " + message;
  if (!lexeme.empty()) out += " near '" + lexeme + "'";
  out += " (offset " + std::to_string(span.offset) + ")";
  return out;
}

namespace {

/// Parses one predicate inside text[begin, end); spans are relative to
/// the full `text` so that parse_spec pieces report file positions.
class Parser {
 public:
  Parser(std::string_view text, std::size_t begin, std::size_t end)
      : text_(text), begin_(begin), end_(end), pos_(begin) {}

  ParseResult run() {
    ParseResult result;
    ForbiddenPredicate predicate;
    PredicateSource source;
    skip_space();
    const std::size_t predicate_start = pos_;
    if (!parse_conjunct(predicate, source)) return fail();
    skip_space();
    while (peek() == '&') {
      ++pos_;
      if (!parse_conjunct(predicate, source)) return fail();
      skip_space();
    }
    if (match_word("where")) {
      do {
        if (!parse_constraint(predicate, source)) return fail();
        skip_space();
      } while (consume(','));
    }
    skip_space();
    if (pos_ != end_) {
      error("unexpected trailing input");
      return fail();
    }
    predicate.arity = vars_.size();
    predicate.var_names.resize(vars_.size());
    source.var_first_use.resize(vars_.size());
    for (const auto& [name, reg] : vars_) {
      predicate.var_names[reg.id] = name;
      source.var_first_use[reg.id] = span_in(text_, reg.first_use.offset,
                                             reg.first_use.length);
    }
    std::size_t predicate_end = pos_;
    while (predicate_end > predicate_start &&
           std::isspace(static_cast<unsigned char>(text_[predicate_end - 1]))) {
      --predicate_end;
    }
    source.span = span_in(text_, predicate_start,
                          predicate_end - predicate_start);
    result.predicate = std::move(predicate);
    result.source = std::move(source);
    return result;
  }

 private:
  struct VarRegistration {
    std::size_t id = 0;
    SourceSpan first_use;  // offset/length only; line/col filled at the end
  };

  ParseResult fail() {
    ParseResult r;
    if (!detail_.has_value()) {
      ParseError e;
      e.message = "parse error";
      e.span = span_in(text_, pos_, 0);
      detail_ = std::move(e);
    }
    r.detail = detail_;
    r.error = detail_->to_string();
    return r;
  }

  void error(const std::string& what) { error_at(what, pos_); }

  void error_at(const std::string& what, std::size_t offset) {
    if (detail_.has_value()) return;
    ParseError e;
    e.message = what;
    e.lexeme = lexeme_at(offset);
    e.span = span_in(text_, offset, e.lexeme.size());
    detail_ = std::move(e);
  }

  /// The token starting at `offset`: an identifier, a number, or a single
  /// punctuation character; empty at end of input.
  std::string lexeme_at(std::size_t offset) const {
    if (offset >= end_) return "";
    const auto word_char = [&](std::size_t i) {
      return std::isalnum(static_cast<unsigned char>(text_[i])) ||
             text_[i] == '_';
    };
    std::size_t stop = offset;
    if (word_char(offset)) {
      while (stop < end_ && word_char(stop)) ++stop;
    } else {
      stop = offset + 1;
    }
    return std::string(text_.substr(offset, stop - offset));
  }

  char peek() const { return pos_ < end_ ? text_[pos_] : '\0'; }

  void skip_space() {
    while (pos_ < end_ &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_word(std::string_view word) {
    skip_space();
    if (pos_ + word.size() > end_ ||
        text_.substr(pos_, word.size()) != word) {
      return false;
    }
    const std::size_t end = pos_ + word.size();
    if (end < end_ &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;  // prefix of a longer identifier
    }
    pos_ = end;
    return true;
  }

  std::optional<std::string> parse_ident() {
    skip_space();
    if (!std::isalpha(static_cast<unsigned char>(peek())) && peek() != '_') {
      error("expected identifier");
      return std::nullopt;
    }
    std::size_t start = pos_;
    while (pos_ < end_ &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::size_t declare_var(const std::string& name, std::size_t offset) {
    VarRegistration reg;
    reg.id = vars_.size();
    reg.first_use.offset = offset;
    reg.first_use.length = name.size();
    auto [it, inserted] = vars_.try_emplace(name, reg);
    return it->second.id;
  }

  /// atom := ident '.' ('s' | 'r').  Inside `where` constraints the
  /// variable must already be quantified by some conjunct.
  bool parse_atom(std::size_t& var, UserEventKind& kind, bool declare) {
    skip_space();
    const std::size_t name_offset = pos_;
    const auto name = parse_ident();
    if (!name.has_value()) return false;
    if (!consume('.')) {
      error("expected '.' after variable name");
      return false;
    }
    if (match_word("s")) {
      kind = UserEventKind::kSend;
    } else if (match_word("r")) {
      kind = UserEventKind::kDeliver;
    } else {
      error("expected event kind 's' or 'r'");
      return false;
    }
    if (declare) {
      var = declare_var(*name, name_offset);
      return true;
    }
    return lookup_var(*name, name_offset, var);
  }

  bool lookup_var(const std::string& name, std::size_t offset,
                  std::size_t& var) {
    const auto it = vars_.find(name);
    if (it == vars_.end()) {
      error_at("variable '" + name + "' is not used in any conjunct",
               offset);
      return false;
    }
    var = it->second.id;
    return true;
  }

  bool parse_rel() {
    skip_space();
    if (pos_ + 2 <= end_ && (text_.substr(pos_, 2) == "|>" ||
                             text_.substr(pos_, 2) == "->")) {
      pos_ += 2;
      return true;
    }
    if (peek() == '<') {
      ++pos_;
      return true;
    }
    error("expected relation '|>', '->' or '<'");
    return false;
  }

  bool parse_conjunct(ForbiddenPredicate& predicate,
                      PredicateSource& source) {
    skip_space();
    const std::size_t start = pos_;
    const bool parens = consume('(');
    Conjunct c;
    if (!parse_atom(c.lhs, c.p, /*declare=*/true)) return false;
    if (!parse_rel()) return false;
    if (!parse_atom(c.rhs, c.q, /*declare=*/true)) return false;
    if (parens && !consume(')')) {
      error("expected ')'");
      return false;
    }
    predicate.conjuncts.push_back(c);
    source.conjuncts.push_back(span_in(text_, start, pos_ - start));
    return true;
  }

  bool parse_constraint(ForbiddenPredicate& predicate,
                        PredicateSource& source) {
    skip_space();
    const std::size_t start = pos_;
    if (match_word("process")) {
      ProcessEquality pe;
      if (!consume('(')) return error("expected '('"), false;
      if (!parse_atom(pe.var_a, pe.kind_a, /*declare=*/false)) return false;
      if (!consume(')')) return error("expected ')'"), false;
      if (!consume('=')) return error("expected '='"), false;
      if (!match_word("process")) {
        return error("expected 'process'"), false;
      }
      if (!consume('(')) return error("expected '('"), false;
      if (!parse_atom(pe.var_b, pe.kind_b, /*declare=*/false)) return false;
      if (!consume(')')) return error("expected ')'"), false;
      predicate.process_constraints.push_back(pe);
      source.process_constraints.push_back(
          span_in(text_, start, pos_ - start));
      return true;
    }
    if (match_word("color")) {
      ColorConstraint cc;
      if (!consume('(')) return error("expected '('"), false;
      skip_space();
      const std::size_t name_offset = pos_;
      const auto name = parse_ident();
      if (!name.has_value()) return false;
      if (!lookup_var(*name, name_offset, cc.var)) return false;
      if (!consume(')')) return error("expected ')'"), false;
      if (!consume('=')) return error("expected '='"), false;
      skip_space();
      bool neg = consume('-');
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("expected integer color"), false;
      }
      int value = 0;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        value = value * 10 + (text_[pos_++] - '0');
      }
      cc.color = neg ? -value : value;
      predicate.color_constraints.push_back(cc);
      source.color_constraints.push_back(span_in(text_, start, pos_ - start));
      return true;
    }
    error("expected 'process' or 'color' constraint");
    return false;
  }

  std::string_view text_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  std::size_t pos_ = 0;
  std::optional<ParseError> detail_;
  std::map<std::string, VarRegistration> vars_;
};

/// Parses a counting statement within text[begin, end):
///   'concurrent' ['(' 'color' '=' integer ')'] '<=' integer
/// Returns the error, or nullopt on success (filling `out` and `span`).
std::optional<ParseError> parse_counting_statement(std::string_view text,
                                                   std::size_t begin,
                                                   std::size_t end,
                                                   CountingPredicate& out,
                                                   SourceSpan& span) {
  std::size_t pos = begin;
  const auto skip_space = [&] {
    while (pos < end &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  const auto error = [&](const std::string& what) {
    ParseError e;
    e.message = what;
    e.span = span_in(text, pos, 0);
    return e;
  };
  const auto consume = [&](char c) {
    skip_space();
    if (pos < end && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  const auto parse_int = [&](int& value) {
    skip_space();
    const bool neg = consume('-');
    skip_space();
    if (pos >= end || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return false;
    }
    value = 0;
    while (pos < end &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      value = value * 10 + (text[pos++] - '0');
    }
    if (neg) value = -value;
    return true;
  };

  skip_space();
  const std::size_t statement_start = pos;
  pos += std::string_view("concurrent").size();  // caller checked the word
  if (consume('(')) {
    skip_space();
    if (text.substr(pos, 5) != "color") {
      return error("expected 'color' in concurrent statement");
    }
    pos += 5;
    if (!consume('=')) return error("expected '=' after 'color'");
    int color = 0;
    if (!parse_int(color)) return error("expected integer color");
    if (!consume(')')) return error("expected ')'");
    out.color = color;
  }
  skip_space();
  if (text.substr(pos, 2) != "<=") {
    return error("expected '<=' after 'concurrent'");
  }
  pos += 2;
  int limit = 0;
  if (!parse_int(limit) || limit < 0) {
    return error("expected non-negative integer bound");
  }
  out.limit = static_cast<std::size_t>(limit);
  skip_space();
  if (pos != end) return error("unexpected trailing input");
  std::size_t statement_end = end;
  while (statement_end > statement_start &&
         std::isspace(static_cast<unsigned char>(text[statement_end - 1]))) {
    --statement_end;
  }
  span = span_in(text, statement_start, statement_end - statement_start);
  return std::nullopt;
}

/// Does text[begin, end) start (after whitespace) with the word `word`?
bool starts_with_word(std::string_view text, std::size_t begin,
                      std::size_t end, std::string_view word) {
  std::size_t pos = begin;
  while (pos < end && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos + word.size() > end || text.substr(pos, word.size()) != word) {
    return false;
  }
  const std::size_t stop = pos + word.size();
  return stop >= end ||
         (!std::isalnum(static_cast<unsigned char>(text[stop])) &&
          text[stop] != '_');
}

}  // namespace

ParseResult parse_predicate(std::string_view text) {
  return Parser(text, 0, text.size()).run();
}

ParseSpecResult parse_spec(std::string_view text) {
  ParseSpecResult result;
  CompositeSpec spec;
  std::vector<PredicateSource> sources;
  std::vector<SourceSpan> counting_sources;
  std::vector<std::size_t> disjunct_group;
  std::size_t statement_id = 0;

  const auto fail = [&](ParseError e) {
    result.detail = std::move(e);
    result.error = result.detail->to_string();
    return result;
  };

  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != ';') continue;
    const std::size_t piece_start = start;
    const std::size_t piece_end = i;
    start = i + 1;
    bool blank = true;
    for (std::size_t j = piece_start; j < piece_end; ++j) {
      if (!std::isspace(static_cast<unsigned char>(text[j]))) blank = false;
    }
    if (blank) continue;
    const std::size_t statement = statement_id++;

    if (starts_with_word(text, piece_start, piece_end, "concurrent")) {
      CountingPredicate counting;
      SourceSpan span;
      if (auto e = parse_counting_statement(text, piece_start, piece_end,
                                            counting, span)) {
        return fail(std::move(*e));
      }
      spec.counting.push_back(counting);
      counting_sources.push_back(span);
      continue;
    }

    // Split the statement into disjunction arms on every '|' that does
    // not begin a '|>' relation.
    std::size_t arm_start = piece_start;
    for (std::size_t j = piece_start; j <= piece_end; ++j) {
      const bool split =
          j == piece_end ||
          (text[j] == '|' && (j + 1 >= piece_end || text[j + 1] != '>'));
      if (!split) continue;
      bool arm_blank = true;
      for (std::size_t k = arm_start; k < j; ++k) {
        if (!std::isspace(static_cast<unsigned char>(text[k]))) {
          arm_blank = false;
        }
      }
      if (arm_blank) {
        ParseError e;
        e.message = "empty disjunct";
        e.span = span_in(text, j < piece_end ? j : arm_start, 0);
        return fail(std::move(e));
      }
      ParseResult parsed = Parser(text, arm_start, j).run();
      if (!parsed.ok()) return fail(std::move(*parsed.detail));
      spec.predicates.push_back(std::move(*parsed.predicate));
      sources.push_back(std::move(parsed.source));
      disjunct_group.push_back(statement);
      arm_start = j + 1;
    }
  }
  if (spec.predicates.empty() && spec.counting.empty()) {
    ParseError e;
    e.message = "empty specification";
    e.span = span_in(text, 0, 0);
    return fail(std::move(e));
  }
  result.spec = std::move(spec);
  result.sources = std::move(sources);
  result.counting_sources = std::move(counting_sources);
  result.disjunct_group = std::move(disjunct_group);
  return result;
}

}  // namespace msgorder
