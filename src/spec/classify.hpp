// The classification algorithm of the paper (Theorems 2, 3 and 4 and the
// table of Section 4.3): given a forbidden predicate, decide whether the
// specification X_B is implementable, and if so which protocol class is
// necessary and sufficient.
#pragma once

#include <optional>
#include <string>

#include "src/spec/graph.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// The protocol classes of Section 3.2, ordered by strength of the
/// knowledge they require.  The enum names answer "what is necessary and
/// sufficient to implement the specification":
///   kTagless -- the do-nothing protocol suffices (X_async subset of X_B),
///   kTagged  -- tagging user messages suffices, control messages are
///               provably unnecessary (X_co subset of X_B),
///   kGeneral -- control messages are necessary and sufficient
///               (X_sync subset of X_B but X_co is not),
///   kNotImplementable -- no protocol guarantees safety and liveness
///               (X_sync is not a subset of X_B).
enum class ProtocolClass {
  kTagless,
  kTagged,
  kGeneral,
  kNotImplementable,
};

std::string to_string(ProtocolClass c);

struct Classification {
  ProtocolClass protocol_class = ProtocolClass::kNotImplementable;
  /// Structural facts backing the verdict.
  bool has_cycle = false;
  /// Minimum order over closed walks; nullopt when acyclic or trivial.
  std::optional<std::size_t> min_order;
  /// A witness closed walk achieving min_order (edge indices into the
  /// graph built from the *normalized* predicate).
  std::optional<Cycle> witness;
  /// The normalized predicate the graph was built from.
  NormalizedPredicate normalized;

  std::string to_string() const;
};

/// Classify one forbidden predicate (Theorem 2 + the Section 4.3 table):
///   no cycle            -> kNotImplementable,
///   min walk order 0    -> kTagless,
///   min walk order 1    -> kTagged,
///   min walk order >= 2 -> kGeneral.
/// Normalization corner cases: an unsatisfiable B yields X_B = X_async
/// (kTagless); a tautological B yields X_B = no-message runs only
/// (kNotImplementable).
Classification classify(const ForbiddenPredicate& predicate);

/// Classify an intersection of forbidden-predicate specs: the verdict is
/// the most demanding component class (X_sync subset of an intersection
/// iff it is a subset of every component, and likewise for X_co/X_async).
ProtocolClass classify(const CompositeSpec& spec);

}  // namespace msgorder
