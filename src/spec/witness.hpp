// The witness-run construction used by the proofs of Theorems 2 and 4:
// given a forbidden predicate B(x_1..x_m), build the *smallest run
// realizing B* — one message per variable, with the causality relation
// the transitive closure of B's conjuncts plus the message edges, and
// attributes (colors, process identifications) chosen to satisfy B's
// range constraints.
//
// The construction characterizes the classification exactly:
//   * min cycle order 0        -> the relation is cyclic, no witness
//                                 exists (B is unsatisfiable in any
//                                 partial order; X_B = X_async);
//   * min order 1              -> witness exists, lies in X_async \ X_co;
//   * min order >= 2           -> witness exists, lies in X_co \ X_sync;
//   * acyclic (no cycle)       -> witness exists and is logically
//                                 synchronous, which is why no protocol
//                                 can forbid it (Theorem 2).
// These invariants are enforced by witness_test.cpp for exhaustive
// predicate censuses.
#pragma once

#include <optional>

#include "src/poset/user_run.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

/// Build the Theorem-2/4 witness run for the (normalized) predicate, or
/// nullopt when none exists: the predicate is trivial, its constraints
/// are contradictory (two colors for one variable), or the induced
/// relation is cyclic (the order-0 case).
std::optional<UserRun> witness_run(const ForbiddenPredicate& predicate);

}  // namespace msgorder
