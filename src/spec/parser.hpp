// A small text syntax for forbidden predicates, used by the classify_spec
// example, the msgorder_lint static analyzer, and tests.  Grammar
// (whitespace-insensitive):
//
//   predicate  := conjunct ('&' conjunct)* ['where' constraint (',' constraint)*]
//   conjunct   := '(' atom rel atom ')'  |  atom rel atom
//   atom       := ident '.' ('s' | 'r')
//   rel        := '|>' | '->' | '<'
//   constraint := 'process' '(' atom ')' '=' 'process' '(' atom ')'
//              |  'color' '(' ident ')' '=' integer
//
// Example (causal ordering):   (x.s |> y.s) & (y.r |> x.r)
// Example (FIFO):              x.s < y.s & y.r < x.r
//                              where process(x.s)=process(y.s),
//                                    process(x.r)=process(y.r)
//
// Variables are registered on first use inside a conjunct, in order of
// appearance.  `where` constraints may only reference variables that some
// conjunct quantified — constraining a never-used variable is rejected
// (it is always a typo, and it would otherwise silently widen the arity).
//
// Every parse records source spans (byte offset + 1-based line/column)
// for the predicate, each conjunct, each constraint, and each variable's
// first use; parse errors carry the same span plus the offending lexeme.
// The spans feed the caret diagnostics of src/spec/lint.*.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/spec/predicate.hpp"

namespace msgorder {

/// A half-open byte range of the input, with the 1-based line/column of
/// its first byte (column counts bytes, tabs are one column).
struct SourceSpan {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::size_t line = 1;
  std::size_t column = 1;

  std::size_t end() const { return offset + length; }
  bool operator==(const SourceSpan&) const = default;
};

/// Compute the span of text[offset, offset+length) within `text`.
SourceSpan span_in(std::string_view text, std::size_t offset,
                   std::size_t length);

/// A structured parse failure: what was expected, where, and what was
/// found instead (`lexeme` is empty at end of input).
struct ParseError {
  std::string message;
  SourceSpan span;
  std::string lexeme;

  /// "3:7: expected ')' near 'where' (offset 42)".
  std::string to_string() const;
};

/// Source spans for one parsed predicate; vectors are index-parallel to
/// the corresponding ForbiddenPredicate vectors.
struct PredicateSource {
  SourceSpan span;  // the whole predicate (trimmed)
  std::vector<SourceSpan> conjuncts;
  std::vector<SourceSpan> process_constraints;
  std::vector<SourceSpan> color_constraints;
  std::vector<SourceSpan> var_first_use;  // indexed by variable id
};

struct ParseResult {
  std::optional<ForbiddenPredicate> predicate;
  /// Meaningful iff ok().
  PredicateSource source;
  /// Structured failure; present iff !ok().
  std::optional<ParseError> detail;
  std::string error;  // rendered `detail`, non-empty iff !ok()

  bool ok() const { return predicate.has_value(); }
};

ParseResult parse_predicate(std::string_view text);

/// A composite specification: semicolon-separated statements.
///
///   spec      := statement (';' statement)*
///   statement := predicate ('|' predicate)*      -- disjunction of arms
///              | counting
///   counting  := 'concurrent' ['(' 'color' '=' integer ')'] '<=' integer
///
/// Each statement is independently forbidden (the intersection of the
/// X_B sets).  A `|` disjunction forbids *any* arm matching — and since
/// X_{A or B} = X_A  intersect  X_B, the arms desugar to separate
/// predicates of the composite; `disjunct_group` records which
/// statement each predicate came from so lint can reason about the
/// disjunction as written.  The '|' must not begin a '|>' relation
/// (whitespace disambiguates: `a.s |> b.s | c.s |> d.s` is two arms).
/// A counting statement bounds how many matching messages may be
/// simultaneously in flight.  Two-way flush, for instance, is two
/// forward/backward predicate statements.  All spans are relative to
/// the full spec text, not the statement piece.
struct ParseSpecResult {
  std::optional<CompositeSpec> spec;
  /// Index-parallel to spec->predicates; meaningful iff ok().
  std::vector<PredicateSource> sources;
  /// Index-parallel to spec->counting; meaningful iff ok().
  std::vector<SourceSpan> counting_sources;
  /// Index-parallel to spec->predicates: the statement each predicate
  /// came from.  Arms of one `|` disjunction share a statement id;
  /// lint's dead-disjunct analysis keys off groups with >= 2 members.
  std::vector<std::size_t> disjunct_group;
  std::optional<ParseError> detail;
  std::string error;

  bool ok() const { return spec.has_value(); }
};

ParseSpecResult parse_spec(std::string_view text);

}  // namespace msgorder
