// A small text syntax for forbidden predicates, used by the classify_spec
// example and by tests.  Grammar (whitespace-insensitive):
//
//   predicate  := conjunct ('&' conjunct)* ['where' constraint (',' constraint)*]
//   conjunct   := '(' atom rel atom ')'  |  atom rel atom
//   atom       := ident '.' ('s' | 'r')
//   rel        := '|>' | '->' | '<'
//   constraint := 'process' '(' atom ')' '=' 'process' '(' atom ')'
//              |  'color' '(' ident ')' '=' integer
//
// Example (causal ordering):   (x.s |> y.s) & (y.r |> x.r)
// Example (FIFO):              x.s < y.s & y.r < x.r
//                              where process(x.s)=process(y.s),
//                                    process(x.r)=process(y.r)
//
// Variables are registered on first use, in order of appearance.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/spec/predicate.hpp"

namespace msgorder {

struct ParseResult {
  std::optional<ForbiddenPredicate> predicate;
  std::string error;  // non-empty iff predicate is nullopt

  bool ok() const { return predicate.has_value(); }
};

ParseResult parse_predicate(std::string_view text);

/// A composite specification: semicolon-separated predicates, each
/// independently forbidden (the intersection of their X_B sets):
///
///   spec := predicate (';' predicate)*
///
/// Two-way flush, for instance, is two forward/backward predicates.
struct ParseSpecResult {
  std::optional<CompositeSpec> spec;
  std::string error;

  bool ok() const { return spec.has_value(); }
};

ParseSpecResult parse_spec(std::string_view text);

}  // namespace msgorder
