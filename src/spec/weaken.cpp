#include "src/spec/weaken.hpp"

#include <cassert>
#include <map>

namespace msgorder {

namespace {

/// Internal ring form of a cyclic predicate: position i holds variable
/// ring_vars[i]; edge i runs from position i to position (i+1) % L with
/// labels (p, q).
struct Ring {
  std::vector<std::size_t> vars;
  std::vector<std::pair<UserEventKind, UserEventKind>> labels;

  std::size_t length() const { return vars.size(); }

  /// Is the junction at position i (between edge i-1 and edge i) beta?
  bool beta_at(std::size_t i) const {
    const std::size_t prev = (i + length() - 1) % length();
    return labels[prev].second == UserEventKind::kDeliver &&
           labels[i].first == UserEventKind::kSend;
  }

  ForbiddenPredicate to_predicate() const {
    // Renumber the (possibly repeated) ring variables densely.
    std::map<std::size_t, std::size_t> remap;
    for (std::size_t v : vars) {
      remap.emplace(v, remap.size());
    }
    ForbiddenPredicate p;
    p.arity = remap.size();
    for (std::size_t i = 0; i < length(); ++i) {
      Conjunct c;
      c.lhs = remap.at(vars[i]);
      c.p = labels[i].first;
      c.rhs = remap.at(vars[(i + 1) % length()]);
      c.q = labels[i].second;
      p.conjuncts.push_back(c);
    }
    return p;
  }
};

}  // namespace

ForbiddenPredicate cycle_predicate(
    const PredicateGraph& graph,
    const std::vector<std::size_t>& cycle_edges) {
  assert(!cycle_edges.empty());
  ForbiddenPredicate p;
  p.arity = graph.vertex_count();
  for (std::size_t ei : cycle_edges) {
    const PredicateEdge& e = graph.edges()[ei];
    Conjunct c;
    c.lhs = e.from;
    c.p = e.p;
    c.rhs = e.to;
    c.q = e.q;
    p.conjuncts.push_back(c);
  }
  // Drop quantified-but-unused variables, keeping conjunct (ring) order.
  const NormalizedPredicate normalized = normalize(p);
  assert(normalized.triviality == NormalTriviality::kNone);
  return normalized.predicate;
}

WeakeningTrace weaken_to_canonical(const ForbiddenPredicate& cycle) {
  // Reconstruct the ring; precondition: conjunct i's rhs is conjunct
  // (i+1)'s lhs, closing back to conjunct 0.
  Ring ring;
  const std::size_t L = cycle.conjuncts.size();
  assert(L >= 1);
  for (std::size_t i = 0; i < L; ++i) {
    const Conjunct& c = cycle.conjuncts[i];
    const Conjunct& next = cycle.conjuncts[(i + 1) % L];
    assert(c.rhs == next.lhs && "conjuncts must form a closed walk");
    (void)next;
    ring.vars.push_back(c.lhs);
    ring.labels.emplace_back(c.p, c.q);
  }

  WeakeningTrace trace;
  trace.steps.push_back(ring.to_predicate());
  for (;;) {
    if (ring.length() <= 2) break;
    // Find a non-beta position to contract.
    std::size_t victim = ring.length();
    for (std::size_t i = 0; i < ring.length(); ++i) {
      if (!ring.beta_at(i)) {
        victim = i;
        break;
      }
    }
    if (victim == ring.length()) break;  // all beta: canonical SYNC form

    // Merge edge (victim-1) and edge victim into one edge
    // (prev_vertex -> next_vertex) with labels (p_{victim-1}, q_victim).
    const std::size_t prev = (victim + ring.length() - 1) % ring.length();
    ring.labels[prev] = {ring.labels[prev].first,
                         ring.labels[victim].second};
    ring.vars.erase(ring.vars.begin() + static_cast<long>(victim));
    ring.labels.erase(ring.labels.begin() + static_cast<long>(victim));
    trace.steps.push_back(ring.to_predicate());
  }
  return trace;
}

}  // namespace msgorder
