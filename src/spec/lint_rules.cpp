#include "src/spec/lint_rules.hpp"

namespace msgorder {

std::string to_string(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kHint:
      return "hint";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

namespace {

constexpr LintSeverity kNote = LintSeverity::kNote;
constexpr LintSeverity kHint = LintSeverity::kHint;
constexpr LintSeverity kWarning = LintSeverity::kWarning;
constexpr LintSeverity kError = LintSeverity::kError;

const std::vector<LintRule>& catalog() {
  static const std::vector<LintRule> rules = {
      {"L001", "parse-error", kError,
       "the spec text does not parse; the span points at the offending "
       "lexeme"},
      {"L002", "unsatisfiable-predicate", kWarning,
       "the forbidden pattern can never occur (it forces an event to "
       "precede itself), so the spec is all of X_async and forbids "
       "nothing"},
      {"L003", "tautological-predicate", kError,
       "every conjunct is always true, so the spec rejects every run "
       "that contains a message"},
      {"L004", "tautological-conjunct", kWarning,
       "a conjunct of the form x.s |> x.r holds in every complete run "
       "and is dropped by normalization"},
      {"L005", "dead-variable", kWarning,
       "a quantified variable survives in no conjunct after "
       "normalization; it only widens the match arity"},
      {"L006", "duplicate-conjunct", kWarning,
       "the same conjunct appears more than once"},
      {"L007", "redundant-conjunct", kWarning,
       "the conjunct is implied by the transitive closure of the other "
       "conjuncts (with the implicit x.s |> x.r edges), so dropping it "
       "leaves an equivalent predicate"},
      {"L008", "contradictory-where", kError,
       "the where clause can never be satisfied (e.g. one variable "
       "constrained to two different colors), so the spec forbids "
       "nothing"},
      {"L009", "redundant-where", kWarning,
       "a where constraint is trivially true, duplicated, or implied by "
       "the transitive closure of the preceding equalities"},
      {"L010", "duplicate-predicate", kWarning,
       "two predicates of the composite spec are identical up to "
       "variable renaming; the intersection is unchanged by dropping "
       "one"},
      {"L011", "not-implementable", kError,
       "the predicate graph is acyclic, so by Theorem 2 no protocol can "
       "implement the specification"},
      {"L012", "class-explanation", kNote,
       "names the witness cycle, its beta vertices, and the Lemma 4 "
       "canonical form behind the protocol-class verdict"},
      {"L013", "over-strength", kHint,
       "dropping the named forbidden predicate(s) from the composite "
       "lowers the required protocol class"},
      {"L014", "class-mismatch", kError,
       "the computed protocol class differs from the declared "
       "'# expect:' intent"},
      {"L015", "dead-disjunct", kWarning,
       "an arm of a '|' disjunction can never fire (its compiled monitor "
       "automaton has no live state), so the disjunction is unchanged by "
       "dropping it"},
      {"L016", "degenerate-counting", kWarning,
       "a 'concurrent <= 0' bound rejects every run that sends a "
       "matching message; the bound is almost certainly off by one"},
      {"L017", "unknown-expect-class", kError,
       "the '# expect:' intent pragma names an unknown protocol class, "
       "so the declared intent cannot be checked; valid classes are "
       "tagless, tagged, general, and not-implementable"},
  };
  return rules;
}

const LintRule& by_id(std::string_view id) {
  const LintRule* rule = find_lint_rule(id);
  // The catalog is compile-time data; a miss is a programming error.
  return *rule;
}

}  // namespace

const std::vector<LintRule>& lint_rules() { return catalog(); }

const LintRule* find_lint_rule(std::string_view id) {
  for (const LintRule& rule : catalog()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

const LintRule& rule_parse_error() { return by_id("L001"); }
const LintRule& rule_unsatisfiable() { return by_id("L002"); }
const LintRule& rule_tautological() { return by_id("L003"); }
const LintRule& rule_tautological_conjunct() { return by_id("L004"); }
const LintRule& rule_dead_variable() { return by_id("L005"); }
const LintRule& rule_duplicate_conjunct() { return by_id("L006"); }
const LintRule& rule_redundant_conjunct() { return by_id("L007"); }
const LintRule& rule_contradictory_where() { return by_id("L008"); }
const LintRule& rule_redundant_where() { return by_id("L009"); }
const LintRule& rule_duplicate_predicate() { return by_id("L010"); }
const LintRule& rule_not_implementable() { return by_id("L011"); }
const LintRule& rule_class_explanation() { return by_id("L012"); }
const LintRule& rule_over_strength() { return by_id("L013"); }
const LintRule& rule_class_mismatch() { return by_id("L014"); }
const LintRule& rule_dead_disjunct() { return by_id("L015"); }
const LintRule& rule_degenerate_counting() { return by_id("L016"); }
const LintRule& rule_unknown_expect_class() { return by_id("L017"); }

}  // namespace msgorder
