#include "src/verify/report.hpp"

#include "src/obs/tracelog.hpp"
#include "src/protocols/reliable.hpp"
#include "src/verify/execution.hpp"

namespace msgorder {

void write_verify_json(JsonWriter& w,
                       const std::vector<StackReport>& reports,
                       std::size_t n_processes, std::size_t n_messages,
                       const VerifyOptions& options) {
  std::string verdict = "verified";
  std::size_t states_total = 0;
  std::size_t transitions_total = 0;
  for (const StackReport& report : reports) {
    states_total += report.states_total;
    transitions_total += report.transitions_total;
    if (!report.ok()) {
      verdict = "failed";
    } else if (report.verdict == "bounded" && verdict == "verified") {
      verdict = "bounded";
    }
  }
  w.begin_object();
  w.kv("schema", "msgorder.verify/1");
  w.kv("verdict", verdict);
  w.key("scope").begin_object();
  w.kv("processes", static_cast<std::uint64_t>(n_processes));
  w.kv("messages", static_cast<std::uint64_t>(n_messages));
  w.end_object();
  w.kv("channel_model", to_string(options.channel_model));
  w.kv("por", options.por);
  w.kv("state_cache", options.state_cache);
  w.kv("max_states", static_cast<std::uint64_t>(options.max_states));
  w.kv("states_total", static_cast<std::uint64_t>(states_total));
  w.kv("transitions_total",
       static_cast<std::uint64_t>(transitions_total));
  w.key("stacks").begin_array();
  for (const StackReport& report : reports) {
    w.begin_object();
    w.kv("stack", report.stack);
    w.kv("verdict", report.verdict);
    w.kv("states", static_cast<std::uint64_t>(report.states_total));
    w.kv("transitions",
         static_cast<std::uint64_t>(report.transitions_total));
    w.key("scenarios").begin_array();
    for (const ScenarioResult& s : report.scenarios) {
      w.begin_object();
      w.kv("scenario", s.scenario);
      w.kv("verdict", s.verdict);
      if (!s.detail.empty()) w.kv("detail", s.detail);
      w.kv("states", static_cast<std::uint64_t>(s.states));
      w.kv("transitions", static_cast<std::uint64_t>(s.transitions));
      w.kv("complete_runs",
           static_cast<std::uint64_t>(s.complete_runs));
      w.kv("complete_states",
           static_cast<std::uint64_t>(s.complete_states));
      w.kv("max_depth", static_cast<std::uint64_t>(s.max_depth_seen));
      if (s.uncached) w.kv("uncached", true);
      if (s.counterexample.has_value()) {
        w.key("counterexample").begin_object();
        w.kv("property", s.counterexample->property);
        w.kv("schedule_length",
             static_cast<std::uint64_t>(
                 s.counterexample->schedule.size()));
        w.key("schedule").begin_array();
        for (const VerifyAction& a : s.counterexample->schedule) {
          w.value(to_string(a));
        }
        w.end_array();
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool replay_counterexample(const Scenario& scenario,
                           const ProtocolFactory& factory,
                           const std::string& stack_name,
                           const VerifyOptions& options,
                           const VerifyCounterexample& counterexample,
                           const std::string& path, std::string* error) {
  ProtocolFactory effective = factory;
  if (options.channel_model == ChannelModel::kLossy) {
    effective = ReliableProtocol::wrap(factory, {});
  }
  Execution exec(scenario, effective, options.channel_model,
                 options.max_drops);
  TraceLogWriter writer(path);
  TraceLogHeader header;
  header.schema = "msgorder.tracelog/1";
  header.engine = "verifier";
  header.protocol = stack_name;
  header.n_processes = scenario.n_processes;
  header.n_messages = scenario.messages.size();
  header.seed = 0;
  header.shards = 1;
  header.workers = 1;
  header.lookahead = 0;
  writer.begin_run(header);
  exec.set_tracelog(&writer);
  // Replay from a FRESH reset so the tracelog sees everything,
  // including constructor-time control traffic.
  exec.reset();
  for (const VerifyAction& action : counterexample.schedule) {
    exec.apply(action);
  }
  writer.append_note("counterexample (" + counterexample.property +
                         " in scenario " + scenario.name + "): " +
                         counterexample.detail,
                     static_cast<SimTime>(exec.steps()));
  writer.finish();
  if (!writer.ok()) {
    if (error != nullptr) *error = writer.error();
    return false;
  }
  return true;
}

}  // namespace msgorder
