// One controlled execution of a protocol stack (ISSUE 10): the
// verifier's replacement for the discrete-event simulator's clock.  An
// Execution holds the live per-process protocol instances, the
// per-channel in-flight packet queues, and the run bookkeeping (trace,
// user-event histories, delay attribution), and exposes the state-space
// interface the model checker drives:
//
//   enabled()  — the schedulable actions of the current state,
//   apply(a)   — execute one action through the SAME delivery-
//                application step the simulator engines use
//                (sim_detail::apply_arrival / classify_send), so a
//                verified schedule and a simulated run execute
//                identical protocol code,
//   replay(s)  — reset and re-execute a schedule prefix (the stateless
//                backtracking step), and
//   fingerprint() — a canonical encoding of the full state for the
//                visited-state set, built from the protocols' own
//                snapshot() hooks plus channel/timer/history digests.
//
// Time is the step index: action k executes at SimTime k, which keeps
// hold-attribution segment arithmetic exact and gives counterexample
// tracelogs monotone timestamps.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/obs/attribution.hpp"
#include "src/obs/tracelog.hpp"
#include "src/poset/user_run.hpp"
#include "src/protocols/protocol.hpp"
#include "src/sim/trace.hpp"
#include "src/verify/scenario.hpp"

namespace msgorder {

/// One schedulable transition.  Identity is stable along a path: a
/// deliver/drop names its packet by emission uid (not queue position),
/// so sleep-set membership survives sibling exploration.
struct VerifyAction {
  enum class Kind : std::uint8_t { kInvoke, kDeliver, kDrop, kTimer };

  Kind kind = Kind::kInvoke;
  /// The acting process: invoke = the sender, deliver/drop = the
  /// destination, timer = the owner.  Action code only touches this
  /// process's protocol state and its outgoing channels, which is what
  /// makes different-process actions independent.
  ProcessId proc = 0;
  /// Channel source for deliver/drop; unused otherwise.
  ProcessId peer = 0;
  /// invoke: the message id; deliver/drop: the packet uid; timer: the
  /// cookie.
  std::uint64_t id = 0;

  bool operator==(const VerifyAction&) const = default;
};

std::string to_string(const VerifyAction& action);

/// Sleep-set independence: two actions commute when they act at
/// different processes.  Timers are conservatively dependent with
/// everything — their enabledness is globally gated (they only fire
/// when nothing else can run), so commuting them is not sound.
inline bool independent_actions(const VerifyAction& a,
                                const VerifyAction& b) {
  return a.proc != b.proc && a.kind != VerifyAction::Kind::kTimer &&
         b.kind != VerifyAction::Kind::kTimer;
}

class Execution {
 public:
  Execution(const Scenario& scenario, const ProtocolFactory& factory,
            ChannelModel model, std::size_t max_drops);
  ~Execution();

  /// Back to the initial state (fresh protocol instances).
  void reset();
  /// reset() then apply every action of `schedule` in order.
  void replay(const std::vector<VerifyAction>& schedule);
  void apply(const VerifyAction& action);

  /// The schedulable actions of the current state, in deterministic
  /// order.  Timers are enabled only when no invoke/deliver/drop is —
  /// the verifier's timer abstraction (timeouts fire only once the
  /// system is otherwise idle; retransmission timers are the only
  /// registry use and only need to fire after a drop starved the run).
  std::vector<VerifyAction> enabled() const;

  bool all_delivered() const {
    return delivered_count_ == scenario_->messages.size();
  }
  bool all_invoked() const;
  /// Every protocol instance reports no outstanding obligations.
  bool protocols_quiescent() const;
  /// A user packet is still sitting in some channel.
  bool user_packets_in_flight() const;

  /// Canonical full-state encoding for the visited-state set; false
  /// when some protocol instance does not support snapshots (the
  /// verifier then runs uncached).  Excludes packet uids and the step
  /// counter so idle control cycles (a circulating token) close.
  bool fingerprint(std::string& out) const;

  /// Digest of the user-event histories alone (spec-check memo key).
  std::uint64_t history_digest() const;

  /// The delivered run as a user-view poset (needs all_delivered()).
  std::optional<UserRun> user_run(std::string* error) const;

  const Trace& trace() const { return trace_; }
  const DelayAttribution& attribution() const { return attribution_; }
  const std::vector<std::vector<ScheduleStep>>& histories() const {
    return histories_;
  }
  std::size_t steps() const { return step_; }
  std::size_t drops_used() const { return drops_used_; }

  /// Attach a tracelog writer: every subsequent record/hold is
  /// appended (counterexample replay).  Caller keeps ownership and
  /// calls begin_run/finish itself.
  void set_tracelog(TraceLogWriter* writer) { tracelog_ = writer; }

 private:
  class ProcHost;
  friend class ProcHost;

  struct InFlight {
    Packet packet;
    std::uint64_t uid = 0;
  };

  void record(ProcessId at, SystemEvent e);
  void on_hold(ProcessId at, MessageId msg, const HoldReason& reason);
  void send_from(ProcessId from, Packet packet);
  SimTime now() const { return static_cast<SimTime>(step_); }

  const Scenario* scenario_;
  ProtocolFactory factory_;
  ChannelModel model_;
  std::size_t max_drops_;

  std::vector<std::unique_ptr<ProcHost>> hosts_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  /// In-flight packets per channel (src, dst), in emission order.
  std::map<std::pair<ProcessId, ProcessId>, std::deque<InFlight>> channels_;
  /// Armed timers as (process, cookie); re-arming is idempotent.
  std::set<std::pair<ProcessId, std::uint64_t>> timers_;
  /// Per-process invoke program and progress cursor.
  std::vector<std::vector<MessageId>> invoke_order_;
  std::vector<std::size_t> next_invoke_;

  std::vector<std::uint8_t> send_seen_;
  std::vector<std::uint8_t> receive_seen_;
  std::vector<std::vector<ScheduleStep>> histories_;
  Trace trace_;
  DelayAttribution attribution_;
  std::size_t delivered_count_ = 0;
  std::size_t drops_used_ = 0;
  std::size_t step_ = 0;
  std::uint64_t next_uid_ = 0;
  TraceLogWriter* tracelog_ = nullptr;
};

}  // namespace msgorder
