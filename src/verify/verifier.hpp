// The stateless model checker (ISSUE 10 tentpole): exhaustively explore
// every delivery interleaving a channel model allows for a protocol
// stack on a bounded scenario, and check at every reachable state that
//
//   * no complete run violates the stack's declared specification
//     (checked through the same satisfies()/find_violation() oracle the
//     simulator's conformance tests use),
//   * the stack never deadlocks: a terminal state with undelivered
//     messages is a counterexample,
//   * hold attribution is sound on every complete run (every reported
//     HoldReason is matched by the release the ISSUE-4 contract
//     promises — src/obs/hold_soundness.hpp), and
//   * the stack leaks no obligations: some complete state with all
//     protocol instances quiescent and no user packet in flight must be
//     reachable (a circulating idle token is fine; an undelivered
//     buffered message or unacked exchange is not).
//
// Exploration is depth-first over re-executed schedules (stateless: the
// only stored state is the visited-set fingerprints), reduced by
//
//   * sleep sets keyed on per-process independence — actions at
//     different processes touch disjoint protocol state and disjoint
//     (src, dst) channels, so they commute; timers stay dependent with
//     everything because their enabledness is globally gated — and
//   * visited-state subsumption: a state is pruned when it was already
//     explored with a sleep set no larger than the current one.  Keys
//     are the FULL canonical encodings (not hashes): a collision would
//     silently prune unexplored behavior, and "verified" must mean
//     verified.
//
// Sleep sets alone (unlike persistent sets) still visit every reachable
// state, so deadlock, leak, and quiescence detection remain exact; spec
// checks on one interleaving per Mazurkiewicz trace are sound because
// the delivered poset is a trace invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"
#include "src/spec/predicate.hpp"
#include "src/verify/execution.hpp"
#include "src/verify/scenario.hpp"

namespace msgorder {

struct VerifyOptions {
  ChannelModel channel_model = ChannelModel::kReorder;
  /// Sleep-set partial-order reduction (sound to disable; slower).
  bool por = true;
  /// Visited-state subsumption cache.  Disabling is sound only for
  /// stacks without control cycles — a circulating token never
  /// terminates without it (the run then ends "bounded" at max_depth).
  bool state_cache = true;
  /// Stop after this many states with a "bounded" verdict (0 = none):
  /// the --quick budget.  Never produces a false "verified".
  std::size_t max_states = 0;
  /// Schedule-length safety net for uncached cyclic stacks.
  std::size_t max_depth = 4096;
  /// Drop budget for ChannelModel::kLossy.
  std::size_t max_drops = 1;
};

/// A failing schedule: replayable into a msgorder.tracelog/1 log.
struct VerifyCounterexample {
  std::string property;  // violation|deadlock|hold-unsound|control-leak
  std::string detail;
  std::vector<VerifyAction> schedule;
};

struct ScenarioResult {
  std::string scenario;
  /// verified | violation | deadlock | hold-unsound | control-leak |
  /// no-completion | bounded
  std::string verdict;
  std::string detail;
  std::size_t states = 0;
  std::size_t transitions = 0;
  /// Terminal all-delivered states reached (distinct explored maximal
  /// runs; the enumeration tests pin exact values for this).  Cyclic
  /// stacks (a circulating token) have no terminal states, so this
  /// stays 0 for them — see complete_states.
  std::size_t complete_runs = 0;
  /// States entered with every message delivered (terminal or not);
  /// >= 1 whenever the scenario is completable at all.
  std::size_t complete_states = 0;
  std::size_t max_depth_seen = 0;
  /// State caching was requested but some protocol lacks snapshot().
  bool uncached = false;
  std::optional<VerifyCounterexample> counterexample;

  bool ok() const { return verdict == "verified" || verdict == "bounded"; }
};

/// Per-stack rollup over a scenario set.
struct StackReport {
  std::string stack;
  std::string verdict;  // worst scenario verdict
  std::vector<ScenarioResult> scenarios;
  std::size_t states_total = 0;
  std::size_t transitions_total = 0;

  bool ok() const { return verdict == "verified" || verdict == "bounded"; }
};

/// Exhaustively verify one stack on one scenario.
ScenarioResult verify_scenario(const Scenario& scenario,
                               const ProtocolFactory& factory,
                               const CompositeSpec& spec,
                               const VerifyOptions& options);

/// Verify one stack across a scenario set, aggregating the worst
/// verdict (violation-class verdicts dominate bounded dominates
/// verified).  Stops at the first counterexample.
StackReport verify_stack(const std::string& stack_name,
                         const ProtocolFactory& factory,
                         const CompositeSpec& spec,
                         const std::vector<Scenario>& scenarios,
                         const VerifyOptions& options);

}  // namespace msgorder
