// Bounded verification scenarios (ISSUE 10): the small closed workloads
// the exhaustive verifier explores.  A scenario fixes the message
// universe — who sends what to whom, in which per-process invoke order
// — and the verifier then enumerates EVERY delivery interleaving the
// channel model allows, which is what turns a test vector into a proof
// at that scope.
//
// The standard scenario set is chosen to cover the communication shapes
// that distinguish the registry's protocols: a ring (every process both
// sends and receives), a fan-in (receiver-side buffering pressure), a
// ping-pong (alternating directions on one channel pair), a scatter
// (one sender, rotating destinations), a burst (one hot channel — the
// shape that exposes FIFO bugs), and a relay (a causal chain through a
// middle process — the shape that exposes missing transitivity).  Each
// shape also runs in a colored variant so the flush family's per-kind
// barriers are exercised.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/poset/event.hpp"

namespace msgorder {

/// What reorderings the verifier's channels may perform.
enum class ChannelModel : std::uint8_t {
  kFifo,     // per-(src,dst) queues deliver in emission order
  kReorder,  // any in-flight packet on a channel may arrive next
  kLossy,    // kReorder plus a bounded budget of packet drops
             // (the stack under test is wrapped in the reliability
             // layer, whose retransmissions must mask every drop)
};

std::string to_string(ChannelModel model);
std::optional<ChannelModel> parse_channel_model(const std::string& name);

/// One bounded workload: `messages[i].id == i`, and each process invokes
/// its messages in id order (the verifier interleaves invokes across
/// processes freely; the per-process order is the program order).
struct Scenario {
  std::string name;
  std::size_t n_processes = 2;
  std::vector<Message> messages;
};

/// The deterministic scenario set at the given scope: six shapes (ring,
/// fanin, pingpong, scatter, burst, relay), each plain and colored.
std::vector<Scenario> standard_scenarios(std::size_t n_processes,
                                         std::size_t n_messages);

/// A seeded random scenario (uniform endpoints, src != dst, colors in
/// {0..3}) for --scenarios K sweeps beyond the standard set.
Scenario random_scenario(std::size_t n_processes, std::size_t n_messages,
                         std::uint64_t seed);

}  // namespace msgorder
