#include "src/verify/execution.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/protocols/state_codec.hpp"
#include "src/sim/engine_detail.hpp"

namespace msgorder {

std::string to_string(const VerifyAction& action) {
  std::ostringstream out;
  switch (action.kind) {
    case VerifyAction::Kind::kInvoke:
      out << "invoke(x" << action.id << " at p" << action.proc << ")";
      break;
    case VerifyAction::Kind::kDeliver:
      out << "deliver(p" << action.peer << "->p" << action.proc << " uid "
          << action.id << ")";
      break;
    case VerifyAction::Kind::kDrop:
      out << "drop(p" << action.peer << "->p" << action.proc << " uid "
          << action.id << ")";
      break;
    case VerifyAction::Kind::kTimer:
      out << "timer(p" << action.proc << " cookie " << action.id << ")";
      break;
  }
  return out.str();
}

/// The Host facade for one process of a controlled execution.
class Execution::ProcHost final : public Host {
 public:
  ProcHost(Execution* exec, ProcessId self) : exec_(exec), self_(self) {}

  void send_packet(Packet packet) override {
    exec_->send_from(self_, std::move(packet));
  }
  void deliver(MessageId msg) override {
    exec_->record(self_, {msg, EventKind::kDeliver});
  }
  void set_timer(SimTime delay, std::uint64_t cookie) override {
    (void)delay;  // timers fire only when the system is otherwise idle
    exec_->timers_.insert({self_, cookie});
  }
  void hold(MessageId msg, const HoldReason& reason) override {
    exec_->on_hold(self_, msg, reason);
  }
  bool wants_hold_reasons() const override { return true; }
  SimTime now() const override { return exec_->now(); }
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override {
    return exec_->scenario_->n_processes;
  }
  const Message& message(MessageId msg) const override {
    return exec_->scenario_->messages[msg];
  }

 private:
  Execution* exec_;
  ProcessId self_;
};

Execution::Execution(const Scenario& scenario,
                     const ProtocolFactory& factory, ChannelModel model,
                     std::size_t max_drops)
    : scenario_(&scenario),
      factory_(factory),
      model_(model),
      max_drops_(model == ChannelModel::kLossy ? max_drops : 0),
      trace_(scenario.messages, scenario.n_processes),
      attribution_(scenario.messages.size()) {
  invoke_order_.resize(scenario.n_processes);
  for (const Message& m : scenario.messages) {
    invoke_order_[m.src].push_back(m.id);
  }
  reset();
}

Execution::~Execution() = default;

void Execution::reset() {
  const std::size_t n = scenario_->n_processes;
  const std::size_t m = scenario_->messages.size();
  channels_.clear();
  timers_.clear();
  next_invoke_.assign(n, 0);
  send_seen_.assign(m, 0);
  receive_seen_.assign(m, 0);
  histories_.assign(n, {});
  trace_ = Trace(scenario_->messages, n);
  attribution_ = DelayAttribution(m);
  delivered_count_ = 0;
  drops_used_ = 0;
  step_ = 0;
  next_uid_ = 0;
  // Hosts first: protocol constructors may already send (the token ring
  // starts circulating from its constructor).
  protocols_.clear();
  hosts_.clear();
  hosts_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    hosts_.push_back(std::make_unique<ProcHost>(this, p));
  }
  protocols_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    protocols_.push_back(factory_(*hosts_[p]));
  }
}

void Execution::replay(const std::vector<VerifyAction>& schedule) {
  reset();
  for (const VerifyAction& action : schedule) apply(action);
}

void Execution::record(ProcessId at, SystemEvent e) {
  trace_.record(at, e, now());
  if (e.kind == EventKind::kSend || e.kind == EventKind::kDeliver) {
    histories_[at].push_back(
        {e.msg, e.kind == EventKind::kSend ? UserEventKind::kSend
                                           : UserEventKind::kDeliver});
  }
  // Mirror the simulator's ObsSink release contract exactly: the send
  // event closes the send-phase hold, the delivery the delivery-phase.
  if (e.kind == EventKind::kSend) {
    attribution_.on_release(e.msg, HoldPhase::kSend, now());
  } else if (e.kind == EventKind::kDeliver) {
    attribution_.on_release(e.msg, HoldPhase::kDelivery, now());
    ++delivered_count_;
  }
  if (tracelog_ != nullptr) {
    const Message& msg = scenario_->messages[e.msg];
    const bool at_src =
        e.kind == EventKind::kInvoke || e.kind == EventKind::kSend;
    tracelog_->append_event(at, e, now(),
                            static_cast<std::uint64_t>(step_),
                            at_src ? msg.dst : msg.src, msg.color);
  }
}

void Execution::on_hold(ProcessId at, MessageId msg,
                        const HoldReason& reason) {
  const HoldPhase phase =
      receive_seen_[msg] != 0 ? HoldPhase::kDelivery : HoldPhase::kSend;
  attribution_.on_hold(msg, at, phase, reason, now());
  if (tracelog_ != nullptr) {
    tracelog_->append_hold(at, msg, reason, now(),
                           static_cast<std::uint64_t>(step_));
  }
}

void Execution::send_from(ProcessId from, Packet packet) {
  packet.src = from;
  assert(packet.dst < scenario_->n_processes);
  switch (sim_detail::classify_send(packet, send_seen_)) {
    case sim_detail::SendClass::kControl:
      break;
    case sim_detail::SendClass::kFirstSend:
      record(from, {packet.user_msg, EventKind::kSend});
      break;
    case sim_detail::SendClass::kRetransmission:
      trace_.count_retransmission();
      break;
  }
  const auto key = std::make_pair(from, packet.dst);
  channels_[key].push_back({std::move(packet), next_uid_++});
}

void Execution::apply(const VerifyAction& action) {
  switch (action.kind) {
    case VerifyAction::Kind::kInvoke: {
      const auto msg = static_cast<MessageId>(action.id);
      const Message& m = scenario_->messages[msg];
      assert(m.src == action.proc);
      assert(next_invoke_[m.src] < invoke_order_[m.src].size() &&
             invoke_order_[m.src][next_invoke_[m.src]] == msg);
      ++next_invoke_[m.src];
      record(m.src, {msg, EventKind::kInvoke});
      protocols_[m.src]->on_invoke(m);
      break;
    }
    case VerifyAction::Kind::kDeliver:
    case VerifyAction::Kind::kDrop: {
      auto& queue = channels_[{action.peer, action.proc}];
      auto it = std::find_if(queue.begin(), queue.end(),
                             [&](const InFlight& f) {
                               return f.uid == action.id;
                             });
      assert(it != queue.end() && "scheduled packet not in flight");
      Packet pkt = std::move(it->packet);
      queue.erase(it);
      if (action.kind == VerifyAction::Kind::kDrop) {
        ++drops_used_;
        trace_.count_drop();
        break;
      }
      sim_detail::apply_arrival(
          *protocols_[action.proc], pkt, receive_seen_,
          [&](sim_detail::ArrivalClass cls) {
            switch (cls) {
              case sim_detail::ArrivalClass::kControl:
                trace_.count_control_packet(pkt.tag_bytes);
                break;
              case sim_detail::ArrivalClass::kFirstUser:
                trace_.count_user_packet(pkt.tag_bytes);
                record(action.proc, {pkt.user_msg, EventKind::kReceive});
                break;
              case sim_detail::ArrivalClass::kDuplicate:
                trace_.count_duplicate_arrival();
                break;
            }
          });
      break;
    }
    case VerifyAction::Kind::kTimer: {
      timers_.erase({action.proc, action.id});
      protocols_[action.proc]->on_timer(action.id);
      break;
    }
  }
  ++step_;
}

std::vector<VerifyAction> Execution::enabled() const {
  std::vector<VerifyAction> actions;
  for (ProcessId p = 0; p < scenario_->n_processes; ++p) {
    if (next_invoke_[p] < invoke_order_[p].size()) {
      actions.push_back({VerifyAction::Kind::kInvoke, p, 0,
                         invoke_order_[p][next_invoke_[p]]});
    }
  }
  for (const auto& [key, queue] : channels_) {
    if (queue.empty()) continue;
    const auto [src, dst] = key;
    if (model_ == ChannelModel::kFifo) {
      actions.push_back(
          {VerifyAction::Kind::kDeliver, dst, src, queue.front().uid});
    } else {
      for (const InFlight& f : queue) {
        actions.push_back({VerifyAction::Kind::kDeliver, dst, src, f.uid});
      }
    }
  }
  if (model_ == ChannelModel::kLossy && drops_used_ < max_drops_) {
    for (const auto& [key, queue] : channels_) {
      const auto [src, dst] = key;
      for (const InFlight& f : queue) {
        actions.push_back({VerifyAction::Kind::kDrop, dst, src, f.uid});
      }
    }
  }
  if (actions.empty()) {
    // Timer abstraction: timeouts fire only once the system is
    // otherwise idle (registry timers are retransmission timeouts, and
    // a retransmission is only ever *needed* after drops starved the
    // run).  This also keeps timer chatter from exploding the state
    // space with schedules no property depends on.
    for (const auto& [p, cookie] : timers_) {
      actions.push_back({VerifyAction::Kind::kTimer, p, 0, cookie});
    }
  }
  return actions;
}

bool Execution::all_invoked() const {
  for (ProcessId p = 0; p < scenario_->n_processes; ++p) {
    if (next_invoke_[p] < invoke_order_[p].size()) return false;
  }
  return true;
}

bool Execution::protocols_quiescent() const {
  for (const auto& protocol : protocols_) {
    if (!protocol->quiescent()) return false;
  }
  return true;
}

bool Execution::user_packets_in_flight() const {
  for (const auto& [key, queue] : channels_) {
    for (const InFlight& f : queue) {
      if (!f.packet.is_control) return true;
    }
  }
  return false;
}

bool Execution::fingerprint(std::string& out) const {
  for (const auto& protocol : protocols_) {
    std::string snap;
    if (!protocol->snapshot(snap)) return false;
    codec::put_str(out, snap);
  }
  for (ProcessId p = 0; p < scenario_->n_processes; ++p) {
    codec::put_u32(out, static_cast<std::uint32_t>(next_invoke_[p]));
    codec::put_u32(out, static_cast<std::uint32_t>(histories_[p].size()));
    for (const ScheduleStep& s : histories_[p]) {
      codec::put_u32(out, s.msg);
      codec::put_u8(out, s.kind == UserEventKind::kSend ? 0 : 1);
    }
  }
  std::uint32_t nonempty = 0;
  for (const auto& [key, queue] : channels_) {
    if (!queue.empty()) ++nonempty;
  }
  codec::put_u32(out, nonempty);
  for (const auto& [key, queue] : channels_) {
    if (queue.empty()) continue;  // drained channels are not state
    codec::put_u32(out, key.first);
    codec::put_u32(out, key.second);
    codec::put_u32(out, static_cast<std::uint32_t>(queue.size()));
    // Per-packet digests: content identity, never emission uids (the
    // same state reached with different emission histories must
    // coincide, or idle control cycles would never close).
    std::vector<std::uint64_t> digests;
    digests.reserve(queue.size());
    for (const InFlight& f : queue) {
      std::uint64_t h = codec::kFnvOffset;
      h = codec::fnv1a(h, f.packet.is_control ? 1 : 0);
      h = codec::fnv1a_bytes(h, f.packet.kind);
      h = codec::fnv1a(h, f.packet.user_msg);
      h = codec::fnv1a(h, f.packet.content_key);
      digests.push_back(h);
    }
    if (model_ != ChannelModel::kFifo) {
      // Queue order is invisible to a reordering channel: canonicalize
      // to the sorted multiset.
      std::sort(digests.begin(), digests.end());
    }
    for (const std::uint64_t d : digests) codec::put_u64(out, d);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(timers_.size()));
  for (const auto& [p, cookie] : timers_) {
    codec::put_u32(out, p);
    codec::put_u64(out, cookie);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(drops_used_));
  return true;
}

std::uint64_t Execution::history_digest() const {
  std::string enc;
  for (const auto& history : histories_) {
    codec::put_u32(enc, static_cast<std::uint32_t>(history.size()));
    for (const ScheduleStep& s : history) {
      codec::put_u32(enc, s.msg);
      codec::put_u8(enc, s.kind == UserEventKind::kSend ? 0 : 1);
    }
  }
  return codec::digest(enc);
}

std::optional<UserRun> Execution::user_run(std::string* error) const {
  return UserRun::from_schedules(scenario_->messages, histories_, error);
}

}  // namespace msgorder
