// Seeded-mutant protocols (ISSUE 10): deliberately broken variants of
// registry stacks, each carrying the spec its clean counterpart
// declares.  They exist to prove the verifier catches real
// interleaving bugs — every mutant must be flagged with a replayable
// counterexample at the CI scope, and the flagging is itself gated
// (tests/verify_mutant_test.cpp, the msgorder_verify CI step).
//
// The four mutants cover the four counterexample classes:
//   fifo-overtake      — flushes its resequencing buffer out of order
//                        once two packets are queued: an ordering
//                        VIOLATION under a reordering burst.
//   fifo-stuck         — skips ahead on an out-of-order arrival,
//                        stranding the earlier message in the buffer:
//                        a DEADLOCK (and a hold that never releases).
//   causal-no-merge    — RST without the transitive knowledge merge on
//                        delivery: a causal VIOLATION on a relay chain.
//   token-early-release— a token ring that transmits without awaiting
//                        the receiver's ack: a 2-crown (logical-
//                        synchrony) VIOLATION under a reordered burst.
#pragma once

#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct MutantProtocol {
  std::string name;         // "mutant:fifo-overtake", ...
  std::string description;  // what was broken
  /// The counterexample class the verifier must report ("violation",
  /// "deadlock"); asserted by the mutant tests.
  std::string expected_verdict;
  ProtocolFactory factory;
  /// The CLEAN stack's declared spec — what the mutant falsely claims.
  CompositeSpec spec;
};

std::vector<MutantProtocol> mutant_protocols();

}  // namespace msgorder
