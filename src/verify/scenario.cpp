#include "src/verify/scenario.hpp"

#include <cassert>

#include "src/util/rng.hpp"

namespace msgorder {

std::string to_string(ChannelModel model) {
  switch (model) {
    case ChannelModel::kFifo:
      return "fifo";
    case ChannelModel::kReorder:
      return "reorder";
    case ChannelModel::kLossy:
      return "lossy";
  }
  return "unknown";
}

std::optional<ChannelModel> parse_channel_model(const std::string& name) {
  if (name == "fifo") return ChannelModel::kFifo;
  if (name == "reorder") return ChannelModel::kReorder;
  if (name == "lossy") return ChannelModel::kLossy;
  return std::nullopt;
}

namespace {

/// Endpoint pattern for message i of a named shape.
struct Endpoints {
  ProcessId src;
  ProcessId dst;
};

Endpoints shape_endpoints(const std::string& shape, std::size_t i,
                          std::size_t n) {
  const auto p = static_cast<ProcessId>(n);
  if (shape == "ring") {
    const auto s = static_cast<ProcessId>(i % n);
    return {s, static_cast<ProcessId>((s + 1) % p)};
  }
  if (shape == "fanin") {
    // Everyone else sends to process 0.
    const auto s = static_cast<ProcessId>(1 + i % (n - 1));
    return {s, 0};
  }
  if (shape == "pingpong") {
    return (i % 2 == 0) ? Endpoints{0, 1} : Endpoints{1, 0};
  }
  if (shape == "scatter") {
    // Process 0 sends to rotating destinations.
    return {0, static_cast<ProcessId>(1 + i % (n - 1))};
  }
  if (shape == "burst") {
    // One hot channel: the shape that exposes FIFO bugs.
    return {0, 1};
  }
  // relay: a causal chain through the middle — 0 seeds both the far end
  // and the middle, the middle forwards and answers.  Contains the
  // crossing that exposes missing causal transitivity.
  const auto far = static_cast<ProcessId>(n - 1);
  const ProcessId mid = n > 2 ? 1 : far;
  switch (i % 4) {
    case 0:
      return {0, far};
    case 1:
      return {0, mid};
    case 2:
      return {mid, far};
    default:
      return {mid, 0};
  }
}

Scenario make_scenario(const std::string& shape, std::size_t n_processes,
                       std::size_t n_messages, bool colored) {
  assert(n_processes >= 2);
  Scenario scenario;
  scenario.name = colored ? shape + "-colored" : shape;
  scenario.n_processes = n_processes;
  scenario.messages.reserve(n_messages);
  for (std::size_t i = 0; i < n_messages; ++i) {
    Endpoints e = shape_endpoints(shape, i, n_processes);
    if (e.src == e.dst) e.dst = static_cast<ProcessId>((e.dst + 1) % n_processes);
    Message m;
    m.id = static_cast<MessageId>(i);
    m.src = e.src;
    m.dst = e.dst;
    m.color = colored ? static_cast<int>(i % 4) : 0;
    scenario.messages.push_back(m);
  }
  return scenario;
}

}  // namespace

std::vector<Scenario> standard_scenarios(std::size_t n_processes,
                                         std::size_t n_messages) {
  const char* shapes[] = {"ring",    "fanin", "pingpong",
                          "scatter", "burst", "relay"};
  std::vector<Scenario> scenarios;
  for (const char* shape : shapes) {
    // pingpong and burst use only two processes; the other shapes need
    // the full scope to differ from them.
    scenarios.push_back(make_scenario(shape, n_processes, n_messages,
                                      /*colored=*/false));
    scenarios.push_back(make_scenario(shape, n_processes, n_messages,
                                      /*colored=*/true));
  }
  return scenarios;
}

Scenario random_scenario(std::size_t n_processes, std::size_t n_messages,
                         std::uint64_t seed) {
  Rng rng(seed ^ 0x76657269667921ULL);
  Scenario scenario;
  scenario.name = "random-" + std::to_string(seed);
  scenario.n_processes = n_processes;
  for (std::size_t i = 0; i < n_messages; ++i) {
    Message m;
    m.id = static_cast<MessageId>(i);
    m.src = static_cast<ProcessId>(rng.below(n_processes));
    m.dst = static_cast<ProcessId>(rng.below(n_processes - 1));
    if (m.dst >= m.src) ++m.dst;
    m.color = static_cast<int>(rng.below(4));
    scenario.messages.push_back(m);
  }
  return scenario;
}

}  // namespace msgorder
