// The verifier's target registry (ISSUE 10): everything
// tools/msgorder_verify can check — the ten registry stacks with their
// declared specs, the synthesized causal stack (Theorem 3's
// construction, verified against the spec it was synthesized from),
// and, when requested, the seeded mutants.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct VerifyTarget {
  std::string name;
  std::string description;
  ProtocolFactory factory;
  CompositeSpec spec;
  bool is_mutant = false;
  /// For mutants: the counterexample class the verifier must report.
  std::string expected_verdict = "verified";
};

/// Registry stacks + "synth:causal" (+ mutants when asked).
std::vector<VerifyTarget> verify_targets(bool include_mutants);

std::optional<VerifyTarget> find_verify_target(const std::string& name);

}  // namespace msgorder
