#include "src/verify/mutants.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/poset/clocks.hpp"
#include "src/protocols/state_codec.hpp"
#include "src/spec/library.hpp"

namespace msgorder {

namespace {

// ---------------------------------------------------------------------
// fifo-overtake: a resequencer that loses patience.  Identical to the
// clean FIFO stack until two packets are buffered on one channel; then
// it flushes the whole buffer immediately — out of order — and skips
// the expected counter past everything flushed.
class FifoOvertakeMutant final : public Protocol {
 public:
  explicit FifoOvertakeMutant(Host& host) : host_(host) {}

  void on_invoke(const Message& m) override {
    Packet pkt;
    pkt.dst = m.dst;
    pkt.user_msg = m.id;
    pkt.tag_bytes = sizeof(std::uint32_t);
    const std::uint32_t seq = next_out_[m.dst]++;
    pkt.content = seq;
    pkt.content_key = seq;
    host_.send_packet(std::move(pkt));
  }

  void on_packet(const Packet& packet) override {
    if (packet.is_control) return;
    const auto seq = std::any_cast<std::uint32_t>(packet.content);
    auto& expected = next_in_[packet.src];
    auto& buffer = buffer_[packet.src];
    if (seq < expected) {
      // A flush already skipped past this packet: deliver it late —
      // still out of order, but nothing is ever stranded, so every run
      // completes and the verifier reports the ordering violation
      // (not a deadlock).
      host_.deliver(packet.user_msg);
      return;
    }
    buffer.push_back({packet.user_msg, seq});
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = buffer.begin(); it != buffer.end(); ++it) {
        if (it->seq == expected) {
          host_.deliver(it->msg);
          ++expected;
          buffer.erase(it);
          progressed = true;
          break;
        }
      }
    }
    if (buffer.size() >= 2) {
      // THE BUG: impatience.  Flush everything buffered in arrival
      // order, gaps and all, and never look back.
      for (const Pending& p : buffer) {
        host_.deliver(p.msg);
        if (p.seq >= expected) expected = p.seq + 1;
      }
      buffer.clear();
    }
  }

  std::string name() const override { return "mutant:fifo-overtake"; }

  bool snapshot(std::string& out) const override {
    encode_seq_maps(out, next_out_, next_in_, buffer_);
    return true;
  }
  bool quiescent() const override {
    for (const auto& [src, pendings] : buffer_) {
      if (!pendings.empty()) return false;
    }
    return true;
  }

  struct Pending {
    MessageId msg;
    std::uint32_t seq;
  };

  static void encode_seq_maps(
      std::string& out, const std::map<ProcessId, std::uint32_t>& next_out,
      const std::map<ProcessId, std::uint32_t>& next_in,
      const std::map<ProcessId, std::vector<Pending>>& buffers) {
    codec::put_u32(out, static_cast<std::uint32_t>(next_out.size()));
    for (const auto& [dst, seq] : next_out) {
      codec::put_u32(out, dst);
      codec::put_u32(out, seq);
    }
    codec::put_u32(out, static_cast<std::uint32_t>(next_in.size()));
    for (const auto& [src, seq] : next_in) {
      codec::put_u32(out, src);
      codec::put_u32(out, seq);
    }
    codec::put_u32(out, static_cast<std::uint32_t>(buffers.size()));
    for (const auto& [src, pendings] : buffers) {
      std::vector<Pending> sorted = pendings;
      std::sort(sorted.begin(), sorted.end(),
                [](const Pending& a, const Pending& b) {
                  return a.seq < b.seq;
                });
      codec::put_u32(out, src);
      codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
      for (const Pending& p : sorted) {
        codec::put_u32(out, p.msg);
        codec::put_u32(out, p.seq);
      }
    }
  }

 protected:
  Host& host_;
  std::map<ProcessId, std::uint32_t> next_out_;
  std::map<ProcessId, std::uint32_t> next_in_;
  std::map<ProcessId, std::vector<Pending>> buffer_;
};

// ---------------------------------------------------------------------
// fifo-stuck: an off-by-one that strands messages.  On an out-of-order
// arrival it buffers the packet but ALSO advances the expected counter,
// so once the missing predecessor finally arrives its sequence number
// is already in the past and the drain never matches it: the buffered
// message is stuck forever (a deadlock the verifier must reach).
class FifoStuckMutant final : public Protocol {
 public:
  explicit FifoStuckMutant(Host& host)
      : host_(host), report_holds_(host.wants_hold_reasons()) {}

  void on_invoke(const Message& m) override {
    Packet pkt;
    pkt.dst = m.dst;
    pkt.user_msg = m.id;
    pkt.tag_bytes = sizeof(std::uint32_t);
    const std::uint32_t seq = next_out_[m.dst]++;
    pkt.content = seq;
    pkt.content_key = seq;
    host_.send_packet(std::move(pkt));
  }

  void on_packet(const Packet& packet) override {
    if (packet.is_control) return;
    const auto seq = std::any_cast<std::uint32_t>(packet.content);
    auto& expected = next_in_[packet.src];
    auto& buffer = buffer_[packet.src];
    if (seq == expected) {
      host_.deliver(packet.user_msg);
      ++expected;
    } else {
      buffer.push_back({packet.user_msg, seq});
      ++expected;  // THE BUG: skipping ahead strands the predecessor
    }
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = buffer.begin(); it != buffer.end(); ++it) {
        if (it->seq == expected) {
          host_.deliver(it->msg);
          ++expected;
          buffer.erase(it);
          progressed = true;
          break;
        }
      }
    }
    if (report_holds_) {
      for (const FifoOvertakeMutant::Pending& p : buffer) {
        host_.hold(p.msg,
                   HoldReason::predecessor(std::nullopt, packet.src));
      }
    }
  }

  std::string name() const override { return "mutant:fifo-stuck"; }

  bool snapshot(std::string& out) const override {
    FifoOvertakeMutant::encode_seq_maps(out, next_out_, next_in_, buffer_);
    return true;
  }
  bool quiescent() const override {
    for (const auto& [src, pendings] : buffer_) {
      if (!pendings.empty()) return false;
    }
    return true;
  }

 private:
  Host& host_;
  const bool report_holds_;
  std::map<ProcessId, std::uint32_t> next_out_;
  std::map<ProcessId, std::uint32_t> next_in_;
  std::map<ProcessId, std::vector<FifoOvertakeMutant::Pending>> buffer_;
};

// ---------------------------------------------------------------------
// causal-no-merge: Raynal-Schiper-Toueg without the transitive
// knowledge merge.  Delivery updates the per-channel count for the
// delivered message itself but does NOT merge the sender's matrix, so
// knowledge acquired through an intermediary is lost and a relay chain
// can overtake its causal past.
class CausalNoMergeMutant final : public Protocol {
 public:
  explicit CausalNoMergeMutant(Host& host)
      : host_(host),
        sent_(host.process_count()),
        delivered_(host.process_count(), 0) {}

  struct Tag {
    MatrixClock sent;
  };

  void on_invoke(const Message& m) override {
    Packet pkt;
    pkt.dst = m.dst;
    pkt.user_msg = m.id;
    Tag tag{sent_};
    pkt.tag_bytes = sent_.byte_size();
    pkt.content = tag;
    std::string enc;
    codec::put_matrix_clock(enc, tag.sent);
    pkt.content_key = codec::digest(enc);
    sent_.at(host_.self(), m.dst) += 1;
    host_.send_packet(std::move(pkt));
  }

  void on_packet(const Packet& packet) override {
    if (packet.is_control) return;
    buffer_.push_back({packet.user_msg, packet.src,
                       std::any_cast<Tag>(packet.content)});
    drain();
  }

  std::string name() const override { return "mutant:causal-no-merge"; }

  bool snapshot(std::string& out) const override {
    codec::put_matrix_clock(out, sent_);
    for (const std::uint32_t d : delivered_) codec::put_u32(out, d);
    std::vector<const Buffered*> sorted;
    sorted.reserve(buffer_.size());
    for (const Buffered& b : buffer_) sorted.push_back(&b);
    std::sort(sorted.begin(), sorted.end(),
              [](const Buffered* a, const Buffered* b) {
                return a->msg < b->msg;
              });
    codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
    for (const Buffered* b : sorted) {
      codec::put_u32(out, b->msg);
      codec::put_u32(out, b->src);
      codec::put_matrix_clock(out, b->tag.sent);
    }
    return true;
  }
  bool quiescent() const override { return buffer_.empty(); }

 private:
  struct Buffered {
    MessageId msg;
    ProcessId src;
    Tag tag;
  };

  bool deliverable(const Tag& tag) const {
    const ProcessId self = host_.self();
    for (std::size_t k = 0; k < delivered_.size(); ++k) {
      if (delivered_[k] < tag.sent.at(k, self)) return false;
    }
    return true;
  }

  void drain() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
        if (deliverable(it->tag)) {
          host_.deliver(it->msg);
          delivered_[it->src] += 1;
          // THE BUG: no sent_.merge(it->tag.sent) — transitively
          // learned sends are forgotten, so this process's future tags
          // under-constrain receivers downstream of the relay.
          auto& cell = sent_.at(it->src, host_.self());
          const std::uint32_t with_self =
              it->tag.sent.at(it->src, host_.self()) + 1;
          if (cell < with_self) cell = with_self;
          buffer_.erase(it);
          progressed = true;
          break;
        }
      }
    }
  }

  Host& host_;
  MatrixClock sent_;
  std::vector<std::uint32_t> delivered_;
  std::vector<Buffered> buffer_;
};

// ---------------------------------------------------------------------
// token-early-release: a token ring that transmits every queued
// message the moment it holds the token and passes it on without
// waiting for any acknowledgement.  Exchanges are no longer serialized
// into disjoint intervals: two back-to-back sends can cross on a
// reordering channel — a causal (and 2-crown) violation of the
// logical-synchrony claim.
class TokenEarlyReleaseMutant final : public Protocol {
 public:
  explicit TokenEarlyReleaseMutant(Host& host) : host_(host) {
    if (host_.self() == 0 && host_.process_count() > 1) {
      holding_ = true;
    }
  }

  void on_invoke(const Message& m) override {
    pending_.push_back(m.id);
    if (holding_) serve_and_pass();
  }

  void on_packet(const Packet& packet) override {
    if (!packet.is_control) {
      host_.deliver(packet.user_msg);  // THE BUG: no ack back
      return;
    }
    if (packet.kind == "TOKEN") {
      holding_ = true;
      serve_and_pass();
    }
  }

  std::string name() const override {
    return "mutant:token-early-release";
  }

  bool snapshot(std::string& out) const override {
    codec::put_u8(out, holding_ ? 1 : 0);
    codec::put_u32(out, static_cast<std::uint32_t>(pending_.size()));
    for (const MessageId msg : pending_) codec::put_u32(out, msg);
    return true;
  }
  bool quiescent() const override { return pending_.empty(); }

 private:
  void serve_and_pass() {
    while (!pending_.empty()) {
      const MessageId msg = pending_.front();
      pending_.pop_front();
      Packet pkt;
      pkt.dst = host_.message(msg).dst;
      pkt.user_msg = msg;
      pkt.tag_bytes = 0;
      host_.send_packet(std::move(pkt));
    }
    holding_ = false;
    Packet token;
    token.dst = static_cast<ProcessId>((host_.self() + 1) %
                                       host_.process_count());
    token.is_control = true;
    token.kind = "TOKEN";
    token.tag_bytes = 4;
    host_.send_packet(std::move(token));
  }

  Host& host_;
  std::deque<MessageId> pending_;
  bool holding_ = false;
};

CompositeSpec spec_of(std::vector<ForbiddenPredicate> predicates) {
  CompositeSpec spec;
  spec.predicates = std::move(predicates);
  return spec;
}

CompositeSpec sync_spec() {
  CompositeSpec spec = logically_synchronous(4);
  spec.predicates.push_back(causal_ordering());
  return spec;
}

template <class P>
ProtocolFactory factory_of() {
  return [](Host& host) { return std::make_unique<P>(host); };
}

}  // namespace

std::vector<MutantProtocol> mutant_protocols() {
  return {
      {"mutant:fifo-overtake",
       "fifo resequencer that flushes its buffer out of order once two "
       "packets queue up",
       "violation", factory_of<FifoOvertakeMutant>(), spec_of({fifo()})},
      {"mutant:fifo-stuck",
       "fifo resequencer that advances the expected counter on an "
       "out-of-order arrival, stranding the predecessor",
       "deadlock", factory_of<FifoStuckMutant>(), spec_of({fifo()})},
      {"mutant:causal-no-merge",
       "RST causal protocol without the transitive matrix merge on "
       "delivery",
       "violation", factory_of<CausalNoMergeMutant>(),
       spec_of({fifo(), causal_ordering()})},
      {"mutant:token-early-release",
       "token ring that transmits and passes the token without awaiting "
       "the receiver's ack",
       "violation", factory_of<TokenEarlyReleaseMutant>(), sync_spec()},
  };
}

}  // namespace msgorder
