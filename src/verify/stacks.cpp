#include "src/verify/stacks.hpp"

#include "src/protocols/registry.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/spec/library.hpp"
#include "src/verify/mutants.hpp"

namespace msgorder {

std::vector<VerifyTarget> verify_targets(bool include_mutants) {
  std::vector<VerifyTarget> targets;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    targets.push_back(
        {rp.name, rp.description, rp.factory, rp.spec, false, "verified"});
  }
  // The Theorem 3 synthesis, checked against the very spec it was
  // synthesized from.
  const SynthesisResult synthesis = synthesize(causal_ordering());
  if (synthesis.factory.has_value()) {
    CompositeSpec spec;
    spec.predicates.push_back(causal_ordering());
    targets.push_back({"synth:causal",
                       "synthesized stack for causal ordering (Theorem 3)",
                       *synthesis.factory, spec, false, "verified"});
  }
  if (include_mutants) {
    for (const MutantProtocol& m : mutant_protocols()) {
      targets.push_back(
          {m.name, m.description, m.factory, m.spec, true,
           m.expected_verdict});
    }
  }
  return targets;
}

std::optional<VerifyTarget> find_verify_target(const std::string& name) {
  for (VerifyTarget& t : verify_targets(true)) {
    if (t.name == name) return std::move(t);
  }
  return std::nullopt;
}

}  // namespace msgorder
