// Verifier reporting (ISSUE 10): the msgorder.verify/1 JSON artifact
// and counterexample replay into msgorder.tracelog/1 logs, so a failing
// schedule can be interrogated with the existing causal tooling
// (`msgorder_query why x3` / `diverge`) instead of being a bare action
// list.
#pragma once

#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/verify/scenario.hpp"
#include "src/verify/verifier.hpp"

namespace msgorder {

/// Append the msgorder.verify/1 document (an object) for one run of the
/// verifier over a set of stacks.
void write_verify_json(JsonWriter& w, const std::vector<StackReport>& reports,
                       std::size_t n_processes, std::size_t n_messages,
                       const VerifyOptions& options);

/// Re-execute a counterexample schedule with a tracelog attached,
/// producing a msgorder.tracelog/1 file (engine "verifier") whose final
/// note names the violated property.  `factory` must be the SAME stack
/// the verifier ran (for ChannelModel::kLossy the reliability wrap is
/// applied here, as the verifier did).  Returns false with `error` on
/// I/O failure.
bool replay_counterexample(const Scenario& scenario,
                           const ProtocolFactory& factory,
                           const std::string& stack_name,
                           const VerifyOptions& options,
                           const VerifyCounterexample& counterexample,
                           const std::string& path, std::string* error);

}  // namespace msgorder
