#include "src/verify/verifier.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/checker/violation.hpp"
#include "src/obs/hold_soundness.hpp"
#include "src/protocols/reliable.hpp"
#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {

bool contains(const std::vector<VerifyAction>& set,
              const VerifyAction& a) {
  return std::find(set.begin(), set.end(), a) != set.end();
}

/// z ⊆ sleep: the stored exploration already covered at least as much.
bool subset_of(const std::vector<VerifyAction>& z,
               const std::vector<VerifyAction>& sleep) {
  for (const VerifyAction& a : z) {
    if (!contains(sleep, a)) return false;
  }
  return true;
}

/// Full (collision-free) spec-memo key: the complete user histories.
std::string history_key(const Execution& exec) {
  std::string key;
  for (const auto& history : exec.histories()) {
    codec::put_u32(key, static_cast<std::uint32_t>(history.size()));
    for (const ScheduleStep& s : history) {
      codec::put_u32(key, s.msg);
      codec::put_u8(key, s.kind == UserEventKind::kSend ? 0 : 1);
    }
  }
  return key;
}

std::string join(const std::vector<std::string>& parts,
                 std::size_t limit) {
  std::string out;
  for (std::size_t i = 0; i < parts.size() && i < limit; ++i) {
    if (!out.empty()) out += "; ";
    out += parts[i];
  }
  if (parts.size() > limit) out += "; ...";
  return out;
}

struct Frame {
  std::vector<VerifyAction> actions;
  std::vector<VerifyAction> sleep;
  std::size_t next = 0;
};

constexpr int verdict_rank(const std::string& v) {
  if (v == "verified") return 0;
  if (v == "bounded") return 1;
  return 2;  // every counterexample-class verdict dominates
}

}  // namespace

ScenarioResult verify_scenario(const Scenario& scenario,
                               const ProtocolFactory& factory,
                               const CompositeSpec& spec,
                               const VerifyOptions& options) {
  // A lossy channel only makes sense under the reliability layer: the
  // stack under test is wrapped, and the drops the verifier injects
  // must be masked by its retransmissions.
  ProtocolFactory effective = factory;
  if (options.channel_model == ChannelModel::kLossy) {
    effective = ReliableProtocol::wrap(factory, {});
  }
  Execution exec(scenario, effective, options.channel_model,
                 options.max_drops);

  ScenarioResult res;
  res.scenario = scenario.name;

  bool caching = options.state_cache;
  /// fingerprint -> sleep sets it was explored with (subsumption).
  std::unordered_map<std::string, std::vector<std::vector<VerifyAction>>>
      visited;
  /// Histories already proven to satisfy the spec.
  std::unordered_set<std::string> spec_ok;

  bool bounded = false;
  bool state_budget_hit = false;
  bool saw_complete = false;
  bool saw_quiescent_complete = false;
  std::vector<VerifyAction> last_complete_schedule;
  std::optional<VerifyCounterexample> ce;

  std::vector<VerifyAction> schedule;
  std::vector<Frame> stack;

  // Inspect the current state; push a frame when it has successors to
  // explore.  Returns false for leaves (terminal / pruned / budget).
  auto enter = [&](std::vector<VerifyAction> sleep) -> bool {
    ++res.states;
    res.max_depth_seen = std::max(res.max_depth_seen, schedule.size());
    if (exec.all_delivered()) {
      saw_complete = true;
      ++res.complete_states;
      last_complete_schedule = schedule;
      if (exec.protocols_quiescent() && !exec.user_packets_in_flight()) {
        saw_quiescent_complete = true;
      }
      const std::string hkey = history_key(exec);
      if (spec_ok.find(hkey) == spec_ok.end()) {
        std::string err;
        const std::optional<UserRun> run = exec.user_run(&err);
        if (!run.has_value()) {
          ce = {"violation", "malformed delivered run: " + err, schedule};
          return false;
        }
        for (const ForbiddenPredicate& predicate : spec.predicates) {
          if (const auto witness = find_violation(*run, predicate)) {
            ce = {"violation",
                  "forbidden " + predicate.to_string() + " with " +
                      witness_to_string(predicate, *witness),
                  schedule};
            return false;
          }
        }
        if (!satisfies(*run, spec)) {
          ce = {"violation", "counting predicate exceeded", schedule};
          return false;
        }
        spec_ok.insert(hkey);
      }
      const std::vector<std::string> unsound =
          hold_soundness_violations(exec.trace(), exec.attribution());
      if (!unsound.empty()) {
        ce = {"hold-unsound", join(unsound, 3), schedule};
        return false;
      }
    }
    std::vector<VerifyAction> actions = exec.enabled();
    if (actions.empty()) {
      if (!exec.all_delivered()) {
        std::ostringstream detail;
        detail << "terminal state with undelivered messages:";
        for (const Message& m : scenario.messages) {
          if (!exec.trace().times(m.id).deliver.has_value()) {
            detail << " x" << m.id;
          }
        }
        ce = {"deadlock", detail.str(), schedule};
        return false;
      }
      ++res.complete_runs;
      if (!exec.protocols_quiescent()) {
        ce = {"control-leak",
              "terminal complete state with non-quiescent protocol "
              "instances (outstanding obligations never discharged)",
              schedule};
        return false;
      }
      return false;
    }
    if (options.max_states != 0 && res.states >= options.max_states) {
      // The --quick budget is a hard stop (the main loop halts), so a
      // budgeted run never burns more than max_states states.
      bounded = true;
      state_budget_hit = true;
      return false;
    }
    if (schedule.size() >= options.max_depth) {
      // Depth, unlike the state budget, prunes only this path: other
      // branches keep exploring (the net for uncached cyclic stacks).
      bounded = true;
      return false;
    }
    if (caching) {
      std::string fp;
      if (exec.fingerprint(fp)) {
        std::vector<std::vector<VerifyAction>>& stored = visited[fp];
        for (const std::vector<VerifyAction>& z : stored) {
          if (subset_of(z, sleep)) return false;  // already covered
        }
        stored.push_back(sleep);
      } else {
        caching = false;  // sound fallback: explore uncached
        res.uncached = true;
      }
    }
    stack.push_back({std::move(actions), std::move(sleep), 0});
    return true;
  };

  enter({});
  while (!stack.empty() && !ce.has_value() && !state_budget_hit) {
    Frame& f = stack.back();
    if (f.next >= f.actions.size()) {
      stack.pop_back();
      if (!schedule.empty()) {
        const VerifyAction last = schedule.back();
        schedule.pop_back();
        if (!stack.empty()) {
          stack.back().sleep.push_back(last);
          exec.replay(schedule);
        }
      }
      continue;
    }
    const VerifyAction a = f.actions[f.next++];
    if (options.por && contains(f.sleep, a)) continue;
    std::vector<VerifyAction> child_sleep;
    if (options.por) {
      for (const VerifyAction& b : f.sleep) {
        if (independent_actions(a, b)) child_sleep.push_back(b);
      }
    }
    exec.apply(a);
    ++res.transitions;
    schedule.push_back(a);
    if (!enter(std::move(child_sleep))) {
      if (ce.has_value()) break;
      schedule.pop_back();
      stack.back().sleep.push_back(a);
      exec.replay(schedule);
    }
  }

  if (ce.has_value()) {
    res.verdict = ce->property;
    res.detail = ce->detail;
    res.counterexample = std::move(ce);
  } else if (bounded) {
    res.verdict = "bounded";
    res.detail = "exploration budget reached (" +
                 std::to_string(res.states) +
                 " states); no violation found, NOT a proof";
  } else if (!saw_complete) {
    res.verdict = "no-completion";
    res.detail = "no reachable state delivers every message";
  } else if (!saw_quiescent_complete) {
    res.verdict = "control-leak";
    res.detail =
        "no reachable complete state is quiescent with empty channels";
    res.counterexample = VerifyCounterexample{
        "control-leak", res.detail, last_complete_schedule};
  } else {
    res.verdict = "verified";
  }
  return res;
}

StackReport verify_stack(const std::string& stack_name,
                         const ProtocolFactory& factory,
                         const CompositeSpec& spec,
                         const std::vector<Scenario>& scenarios,
                         const VerifyOptions& options) {
  StackReport report;
  report.stack = stack_name;
  report.verdict = "verified";
  for (const Scenario& scenario : scenarios) {
    ScenarioResult result =
        verify_scenario(scenario, factory, spec, options);
    report.states_total += result.states;
    report.transitions_total += result.transitions;
    if (verdict_rank(result.verdict) > verdict_rank(report.verdict)) {
      report.verdict = result.verdict;
    }
    const bool stop = result.counterexample.has_value();
    report.scenarios.push_back(std::move(result));
    if (stop) break;  // first counterexample wins
  }
  return report;
}

}  // namespace msgorder
