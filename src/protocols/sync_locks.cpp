#include "src/protocols/sync_locks.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
constexpr std::size_t kControlBytes = 8;
}

void SyncLocksProtocol::on_invoke(const Message& m) {
  pending_.push_back(m.id);
  if (!active_.has_value()) start_next_exchange();
  if (report_holds_ && active_.has_value() && active_->msg != m.id) {
    // Queued behind the exchange this sender is already driving.
    host_.hold(m.id, HoldReason::lock(active_->msg, std::nullopt));
  }
}

void SyncLocksProtocol::start_next_exchange() {
  if (pending_.empty()) return;
  const MessageId msg = pending_.front();
  pending_.pop_front();
  const ProcessId self = host_.self();
  const ProcessId dst = host_.message(msg).dst;
  Exchange exchange;
  exchange.msg = msg;
  exchange.first_lock = std::min(self, dst);
  exchange.second_lock = std::max(self, dst);
  active_ = exchange;
  request_lock(exchange.first_lock, msg);
  if (report_holds_ && active_.has_value() && active_->msg == msg &&
      active_->locks_held == 0) {
    // The grant did not come back synchronously: the exchange now waits
    // on its first endpoint lock.
    host_.hold(msg, HoldReason::lock(std::nullopt, exchange.first_lock));
  }
}

void SyncLocksProtocol::request_lock(ProcessId owner, MessageId msg) {
  if (owner == host_.self()) {
    enqueue_request(host_.self(), msg);
    return;
  }
  Packet req;
  req.dst = owner;
  req.is_control = true;
  req.kind = "LREQ";
  req.tag_bytes = kControlBytes;
  req.content = msg;
  req.content_key = msg;
  host_.send_packet(std::move(req));
}

void SyncLocksProtocol::lock_granted(MessageId msg) {
  assert(active_.has_value() && active_->msg == msg);
  active_->locks_held += 1;
  if (active_->locks_held == 1 &&
      active_->second_lock != active_->first_lock) {
    request_lock(active_->second_lock, msg);
    if (report_holds_ && active_.has_value() && active_->msg == msg &&
        active_->locks_held == 1) {
      // Still waiting: re-attribute to the second endpoint lock (this
      // closes the first-lock segment at the boundary instant).
      host_.hold(msg, HoldReason::lock(std::nullopt, active_->second_lock));
    }
    return;
  }
  // Both endpoint locks held: the exchange owns its interval; transmit.
  Packet pkt;
  pkt.dst = host_.message(msg).dst;
  pkt.user_msg = msg;
  pkt.tag_bytes = 0;
  host_.send_packet(std::move(pkt));
}

void SyncLocksProtocol::finish_exchange(MessageId msg) {
  assert(active_.has_value() && active_->msg == msg);
  const Exchange exchange = *active_;
  active_.reset();
  for (ProcessId owner : {exchange.first_lock, exchange.second_lock}) {
    if (owner == host_.self()) {
      release(host_.self(), msg);
    } else {
      Packet rel;
      rel.dst = owner;
      rel.is_control = true;
      rel.kind = "LREL";
      rel.tag_bytes = kControlBytes;
      rel.content = msg;
      rel.content_key = msg;
      host_.send_packet(std::move(rel));
    }
    if (exchange.first_lock == exchange.second_lock) break;
  }
  start_next_exchange();
  if (report_holds_ && active_.has_value()) {
    // The queue moved up: whatever is still pending now waits behind
    // the newly started exchange.
    for (const MessageId p : pending_) {
      host_.hold(p, HoldReason::lock(active_->msg, std::nullopt));
    }
  }
}

void SyncLocksProtocol::enqueue_request(ProcessId requester,
                                        MessageId msg) {
  lock_.queue.emplace_back(requester, msg);
  try_grant();
}

void SyncLocksProtocol::try_grant() {
  if (lock_.holder.has_value() || lock_.queue.empty()) return;
  lock_.holder = lock_.queue.front();
  lock_.queue.pop_front();
  send_grant(lock_.holder->first, lock_.holder->second);
}

void SyncLocksProtocol::send_grant(ProcessId requester, MessageId msg) {
  if (requester == host_.self()) {
    lock_granted(msg);
    return;
  }
  Packet grant;
  grant.dst = requester;
  grant.is_control = true;
  grant.kind = "LGRANT";
  grant.tag_bytes = kControlBytes;
  grant.content = msg;
  grant.content_key = msg;
  host_.send_packet(std::move(grant));
}

void SyncLocksProtocol::release(ProcessId requester, MessageId msg) {
  assert(lock_.holder.has_value() &&
         lock_.holder->first == requester &&
         lock_.holder->second == msg);
  (void)requester;
  (void)msg;
  lock_.holder.reset();
  try_grant();
}

void SyncLocksProtocol::on_packet(const Packet& packet) {
  if (!packet.is_control) {
    host_.deliver(packet.user_msg);
    Packet ack;
    ack.dst = packet.src;
    ack.is_control = true;
    ack.kind = "MACK";
    ack.tag_bytes = kControlBytes;
    ack.content = packet.user_msg;
    ack.content_key = packet.user_msg;
    host_.send_packet(std::move(ack));
    return;
  }
  const auto msg = std::any_cast<MessageId>(packet.content);
  if (packet.kind == "LREQ") {
    enqueue_request(packet.src, msg);
  } else if (packet.kind == "LGRANT") {
    lock_granted(msg);
  } else if (packet.kind == "LREL") {
    release(packet.src, msg);
  } else if (packet.kind == "MACK") {
    finish_exchange(msg);
  }
}

bool SyncLocksProtocol::snapshot(std::string& out) const {
  codec::put_u32(out, static_cast<std::uint32_t>(pending_.size()));
  for (const MessageId msg : pending_) codec::put_u32(out, msg);
  codec::put_u8(out, active_.has_value() ? 1 : 0);
  if (active_.has_value()) {
    codec::put_u32(out, active_->msg);
    codec::put_u32(out, active_->first_lock);
    codec::put_u32(out, active_->second_lock);
    codec::put_u8(out, static_cast<std::uint8_t>(active_->locks_held));
  }
  codec::put_u8(out, lock_.holder.has_value() ? 1 : 0);
  if (lock_.holder.has_value()) {
    codec::put_u32(out, lock_.holder->first);
    codec::put_u32(out, lock_.holder->second);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(lock_.queue.size()));
  for (const auto& [requester, msg] : lock_.queue) {
    codec::put_u32(out, requester);
    codec::put_u32(out, msg);
  }
  return true;
}

ProtocolFactory SyncLocksProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<SyncLocksProtocol>(host);
  };
}

}  // namespace msgorder
