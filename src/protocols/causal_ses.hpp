// The Schiper-Eggli-Sandoz causal-ordering protocol [21]: instead of the
// full n x n matrix, each message carries the sender's vector time plus
// one (destination, vector-time) pair per destination it knows about —
// O(n) in the common case.  Delivery of m at j waits until every message
// to j that the piggybacked pair list proves causally earlier has been
// delivered (reflected in j's merged vector time).
//
// Together with causal-rst this gives two independent tagged
// implementations of X_co; the conformance tests check they accept and
// produce exactly causally ordered runs, and bench E2 contrasts their
// tag sizes.
#pragma once

#include <map>
#include <vector>

#include "src/poset/clocks.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

class CausalSesProtocol final : public Protocol {
 public:
  explicit CausalSesProtocol(Host& host)
      : host_(host),
        report_holds_(host.wants_hold_reasons()),
        time_(host.process_count()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "causal-ses"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override { return buffer_.empty(); }

  static ProtocolFactory factory();

  struct Tag {
    VectorClock timestamp;  // send event's vector time
    /// Per-destination vector times of the latest causally known message
    /// to that destination (the V_SND set of the original paper).
    std::map<ProcessId, VectorClock> last_sent;

    std::size_t byte_size(std::size_t n) const {
      return (1 + last_sent.size()) * n * sizeof(std::uint32_t) +
             last_sent.size() * sizeof(ProcessId);
    }
  };

 private:
  bool deliverable(const Tag& tag) const;
  /// The first vector component where the tag's proof of a causally
  /// prior message to us outruns our merged time (only meaningful when
  /// !deliverable(tag)).
  ProcessId blocking_component(const Tag& tag) const;
  void drain();
  void absorb(const Tag& tag);

  struct Buffered {
    MessageId msg;
    Tag tag;
  };

  Host& host_;
  const bool report_holds_;
  /// Merged vector time of everything delivered here plus own sends.
  VectorClock time_;
  /// This process's knowledge of the last message sent to each
  /// destination (merged from delivered tags and own sends).
  std::map<ProcessId, VectorClock> last_sent_;
  std::vector<Buffered> buffer_;
};

}  // namespace msgorder
