// Tagged FIFO protocol: a per-channel sequence number is tagged on each
// message; the receiver delivers channel (i, j) traffic in sequence
// order.  FIFO's forbidden predicate has an order-1 cycle, so tagging is
// sufficient (Section 5) — and indeed the tag here is 4 bytes with no
// control messages.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class FifoProtocol final : public Protocol {
 public:
  explicit FifoProtocol(Host& host)
      : host_(host), report_holds_(host.wants_hold_reasons()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "fifo"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override;

  static ProtocolFactory factory();

 private:
  struct Pending {
    MessageId msg;
    std::uint32_t seq;
  };

  Host& host_;
  const bool report_holds_;
  /// Next sequence number per destination (this process is the source).
  std::map<ProcessId, std::uint32_t> next_out_;
  /// Next expected sequence per source, and the out-of-order buffer.
  std::map<ProcessId, std::uint32_t> next_in_;
  std::map<ProcessId, std::vector<Pending>> buffer_;
};

}  // namespace msgorder
