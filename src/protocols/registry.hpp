// A name -> factory registry of all shipped protocol stacks, used by the
// conformance matrix example and the overhead benchmarks.
#pragma once

#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct RegisteredProtocol {
  std::string name;
  std::string description;
  ProtocolFactory factory;
  /// The ordering specification this stack claims to enforce on every
  /// run (empty composite = no guarantee beyond delivery).  The
  /// exhaustive verifier checks it at every reachable complete run.
  CompositeSpec spec;
};

std::vector<RegisteredProtocol> standard_protocols();

}  // namespace msgorder
