// A name -> factory registry of all shipped protocol stacks, used by the
// conformance matrix example and the overhead benchmarks.
#pragma once

#include <string>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

struct RegisteredProtocol {
  std::string name;
  std::string description;
  ProtocolFactory factory;
};

std::vector<RegisteredProtocol> standard_protocols();

}  // namespace msgorder
