#include "src/protocols/sync_sequencer.hpp"

#include <cassert>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
constexpr std::size_t kControlBytes = 8;
}

void SyncSequencerProtocol::on_invoke(const Message& m) {
  // Unless this is the idle sequencer granting itself, the message now
  // waits for the sequencer's grant; the segment the engine opens here
  // closes exactly at x.s when the grant arrives.
  const bool immediate =
      host_.self() == kSequencer && !busy_ && grant_queue_.empty();
  if (report_holds_ && !immediate) {
    host_.hold(m.id, HoldReason::sequencer(kSequencer));
  }
  request(m.id);
}

void SyncSequencerProtocol::request(MessageId msg) {
  if (host_.self() == kSequencer) {
    enqueue(kSequencer, msg);
    return;
  }
  Packet req;
  req.dst = kSequencer;
  req.is_control = true;
  req.kind = "REQ";
  req.tag_bytes = kControlBytes;
  req.content = msg;
  req.content_key = msg;
  host_.send_packet(std::move(req));
}

void SyncSequencerProtocol::enqueue(ProcessId requester, MessageId msg) {
  assert(host_.self() == kSequencer);
  grant_queue_.emplace_back(requester, msg);
  try_grant();
}

void SyncSequencerProtocol::try_grant() {
  if (busy_ || grant_queue_.empty()) return;
  busy_ = true;
  const auto [requester, msg] = grant_queue_.front();
  grant_queue_.pop_front();
  if (requester == kSequencer) {
    granted(msg);
    return;
  }
  Packet grant;
  grant.dst = requester;
  grant.is_control = true;
  grant.kind = "GRANT";
  grant.tag_bytes = kControlBytes;
  grant.content = msg;
  grant.content_key = msg;
  host_.send_packet(std::move(grant));
}

void SyncSequencerProtocol::granted(MessageId msg) {
  Packet pkt;
  pkt.dst = host_.message(msg).dst;
  pkt.user_msg = msg;
  pkt.tag_bytes = 0;
  host_.send_packet(std::move(pkt));
}

void SyncSequencerProtocol::exchange_done() {
  assert(host_.self() == kSequencer);
  busy_ = false;
  try_grant();
}

void SyncSequencerProtocol::on_packet(const Packet& packet) {
  if (!packet.is_control) {
    host_.deliver(packet.user_msg);
    if (host_.self() == kSequencer) {
      exchange_done();
    } else {
      Packet done;
      done.dst = kSequencer;
      done.is_control = true;
      done.kind = "DONE";
      done.tag_bytes = kControlBytes;
      host_.send_packet(std::move(done));
    }
    return;
  }
  if (packet.kind == "REQ") {
    enqueue(packet.src, std::any_cast<MessageId>(packet.content));
  } else if (packet.kind == "GRANT") {
    granted(std::any_cast<MessageId>(packet.content));
  } else if (packet.kind == "DONE") {
    exchange_done();
  }
}

bool SyncSequencerProtocol::snapshot(std::string& out) const {
  codec::put_u8(out, busy_ ? 1 : 0);
  codec::put_u32(out, static_cast<std::uint32_t>(grant_queue_.size()));
  for (const auto& [requester, msg] : grant_queue_) {
    codec::put_u32(out, requester);
    codec::put_u32(out, msg);
  }
  return true;
}

ProtocolFactory SyncSequencerProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<SyncSequencerProtocol>(host);
  };
}

}  // namespace msgorder
