// Logically synchronous ordering via a circulating token — the
// decentralized alternative to the sequencer (ablation E6).  The token
// visits processes in ring order; only the holder may transmit, one
// message at a time, each acknowledged by the receiver before the next.
// Exchanges are therefore serialized globally and every run is
// logically synchronous, at the cost of continuous token circulation
// (control traffic even when idle) and ring-latency before a send.
#pragma once

#include <deque>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class SyncTokenProtocol final : public Protocol {
 public:
  explicit SyncTokenProtocol(Host& host);

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "sync-token"; }
  bool snapshot(std::string& out) const override;
  /// The idle token circulating is not an obligation; an unsent message
  /// or an unacked exchange is.
  bool quiescent() const override { return pending_.empty() && !awaiting_ack_; }

  static ProtocolFactory factory();

 private:
  void serve_or_pass();
  /// Re-attribute every queued (not yet sent) message: waiting on the
  /// in-flight exchange's ack, or on the token being elsewhere.
  void report_pending_holds();

  Host& host_;
  bool report_holds_ = false;
  std::deque<MessageId> pending_;
  bool holding_ = false;
  bool awaiting_ack_ = false;
};

}  // namespace msgorder
