#include "src/protocols/async.hpp"

#include <memory>

namespace msgorder {

void AsyncProtocol::on_invoke(const Message& m) {
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = 0;
  host_.send_packet(std::move(pkt));
}

void AsyncProtocol::on_packet(const Packet& packet) {
  if (!packet.is_control) host_.deliver(packet.user_msg);
}

ProtocolFactory AsyncProtocol::factory() {
  return [](Host& host) { return std::make_unique<AsyncProtocol>(host); };
}

}  // namespace msgorder
