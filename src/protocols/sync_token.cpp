#include "src/protocols/sync_token.hpp"

#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
constexpr std::size_t kControlBytes = 4;
}

SyncTokenProtocol::SyncTokenProtocol(Host& host)
    : host_(host), report_holds_(host.wants_hold_reasons()) {
  // Process 0 starts with the token and immediately begins circulation.
  if (host_.self() == 0 && host_.process_count() > 1) {
    holding_ = true;
    serve_or_pass();
  }
}

void SyncTokenProtocol::on_invoke(const Message& m) {
  pending_.push_back(m.id);
  if (holding_ && !awaiting_ack_) serve_or_pass();
  report_pending_holds();
}

void SyncTokenProtocol::report_pending_holds() {
  if (!report_holds_) return;
  if (awaiting_ack_) {
    // pending_.front() is in flight (its x.s happened); everything
    // behind it waits on that exchange's acknowledgement.
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      host_.hold(pending_[i], HoldReason::ack(pending_.front()));
    }
  } else {
    // Not serving means the token is elsewhere on the ring.
    for (const MessageId msg : pending_) {
      host_.hold(msg, HoldReason::token());
    }
  }
}

void SyncTokenProtocol::serve_or_pass() {
  if (!holding_ || awaiting_ack_) return;
  if (!pending_.empty()) {
    const MessageId msg = pending_.front();
    Packet pkt;
    pkt.dst = host_.message(msg).dst;
    pkt.user_msg = msg;
    pkt.tag_bytes = 0;
    awaiting_ack_ = true;
    host_.send_packet(std::move(pkt));
    return;
  }
  holding_ = false;
  Packet token;
  token.dst = static_cast<ProcessId>((host_.self() + 1) %
                                     host_.process_count());
  token.is_control = true;
  token.kind = "TOKEN";
  token.tag_bytes = kControlBytes;
  host_.send_packet(std::move(token));
}

void SyncTokenProtocol::on_packet(const Packet& packet) {
  if (!packet.is_control) {
    host_.deliver(packet.user_msg);
    Packet ack;
    ack.dst = packet.src;
    ack.is_control = true;
    ack.kind = "ACK";
    ack.tag_bytes = kControlBytes;
    host_.send_packet(std::move(ack));
    return;
  }
  if (packet.kind == "TOKEN") {
    holding_ = true;
    serve_or_pass();
    report_pending_holds();
  } else if (packet.kind == "ACK") {
    pending_.pop_front();
    awaiting_ack_ = false;
    serve_or_pass();
    report_pending_holds();
  }
}

bool SyncTokenProtocol::snapshot(std::string& out) const {
  codec::put_u8(out, holding_ ? 1 : 0);
  codec::put_u8(out, awaiting_ack_ ? 1 : 0);
  codec::put_u32(out, static_cast<std::uint32_t>(pending_.size()));
  for (const MessageId msg : pending_) codec::put_u32(out, msg);
  return true;
}

ProtocolFactory SyncTokenProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<SyncTokenProtocol>(host);
  };
}

}  // namespace msgorder
