// Protocol synthesis from a forbidden predicate — the constructive side
// of Theorem 3.  classify() decides the class; the synthesized stack is
// then the canonical protocol for the limit set the theorem's
// sufficiency proof uses:
//
//   order 0 cycle  -> X_async subset of X_B : the do-nothing protocol,
//   order 1 cycle  -> X_co    subset of X_B : a tagged causal protocol,
//   order >=2 only -> X_sync  subset of X_B : a control-message protocol,
//   no cycle       -> no protocol exists (synthesize() reports failure).
//
// The companion paper [19] derives *specialized* efficient protocols per
// predicate; here we implement the theorem's general construction, plus
// one specialization: predicates whose canonical weakening is FIFO-shaped
// (the Section 5 FIFO spec) get the O(1)-tag FIFO stack instead of the
// O(n^2) causal stack.
#pragma once

#include <optional>
#include <string>

#include "src/protocols/protocol.hpp"
#include "src/spec/classify.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {

struct SynthesisResult {
  /// Factory for the synthesized per-process protocol stack; nullopt when
  /// the specification is not implementable.
  std::optional<ProtocolFactory> factory;
  Classification classification;
  /// Human-readable account of the decision.
  std::string rationale;
};

SynthesisResult synthesize(const ForbiddenPredicate& predicate);

/// True iff the predicate is (a strengthening of) the FIFO shape:
/// an order-1 two-variable cycle whose process constraints pin both
/// sends to one process and both deliveries to another.
bool is_fifo_shaped(const ForbiddenPredicate& predicate);

/// True iff the predicate is the global-forward-flush shape: the causal
/// 2-cycle with a color constraint on the overtaking variable and no
/// process constraints.  Returns the red color via `red_color`.
bool is_global_flush_shaped(const ForbiddenPredicate& predicate,
                            int* red_color = nullptr);

}  // namespace msgorder
