// A specification-specialized tagged protocol for *global forward flush*
// (Section 5):   forbid (x.s |> y.s) & (y.r |> x.r) where color(y)=red.
//
// Running full causal ordering would be sufficient (Theorem 3), but
// overly strong: ordinary messages may overtake each other freely; only
// red messages must not overtake anything sent causally before them.
// This protocol keeps RST's knowledge (sends matrix, merged on delivery
// and carried on every message — the knowledge must travel on ordinary
// traffic too, or red tags would undercount) but relaxes the delivery
// condition:
//
//   * a red message waits for every message to this destination that was
//     sent causally before it (its full matrix column), and
//   * an ordinary message waits only for the *red frontier* — the merged
//     pre-send knowledge of all red messages in its causal past — which
//     prevents a red delivery from leaking ahead through an ordinary
//     relay chain (the cross-process instance of the predicate).
//
// Because ordinary messages may overtake each other on a channel, the
// RST count comparison (delivered >= matrix cell) is unsound here: a
// later message can inflate the count past a missing earlier one.  The
// receiver therefore tracks the *set* of per-channel sequence numbers
// delivered and requires the barrier's prefix to be complete.
//
// Compared to causal-rst: identical tag size, strictly less delivery
// buffering; the gap is measured in bench_flush_specialization.  This is
// the flavor of specialization the companion paper [19] automates.
#pragma once

#include <cstdint>
#include <vector>

#include "src/poset/clocks.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

class GlobalFlushProtocol final : public Protocol {
 public:
  GlobalFlushProtocol(Host& host, int red_color)
      : host_(host),
        report_holds_(host.wants_hold_reasons()),
        red_color_(red_color),
        sent_(host.process_count()),
        red_frontier_(host.process_count()),
        delivered_seqs_(host.process_count()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "global-flush"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override { return buffer_.empty(); }

  static ProtocolFactory factory(int red_color = 1);

  struct Tag {
    MatrixClock sent;          // full knowledge (for merging + red check)
    MatrixClock red_frontier;  // pre-send knowledge of past red messages
    bool red = false;
  };

 private:
  bool deliverable(const Tag& tag) const;
  /// All channel sequence numbers 0..n-1 from source k delivered here?
  bool prefix_complete(std::size_t k, std::uint32_t n) const;
  /// The first channel whose barrier prefix is incomplete (only
  /// meaningful when !deliverable(tag)).
  ProcessId blocking_channel(const Tag& tag) const;
  void drain();

  struct Buffered {
    MessageId msg;
    ProcessId src;
    Tag tag;
  };

  Host& host_;
  const bool report_holds_;
  int red_color_;
  MatrixClock sent_;
  MatrixClock red_frontier_;
  /// delivered_seqs_[k][s]: message s on channel k -> self delivered.
  std::vector<std::vector<bool>> delivered_seqs_;
  std::vector<Buffered> buffer_;
};

}  // namespace msgorder
