// The tagless "do nothing" protocol: sends immediately, delivers on
// arrival.  Its run set is all of X_async — this is the protocol whose
// existence makes every specification containing X_async trivially
// implementable (Theorem 1.3).
#pragma once

#include "src/protocols/protocol.hpp"

namespace msgorder {

class AsyncProtocol final : public Protocol {
 public:
  explicit AsyncProtocol(Host& host) : host_(host) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "async"; }
  /// Stateless: the empty encoding is the canonical snapshot.
  bool snapshot(std::string& out) const override {
    (void)out;
    return true;
  }

  static ProtocolFactory factory();

 private:
  Host& host_;
};

}  // namespace msgorder
