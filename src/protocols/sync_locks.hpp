// Logically synchronous ordering via decentralized pairwise locks — the
// binary-interaction approach of the CSP implementations the paper cites
// ([2, 3, 6, 8, 23]), adapted to message passing.
//
// Every process owns a lock with a FIFO grant queue.  To transmit m from
// i to j, the sender acquires the locks of i and j in ascending process
// id (ordered acquisition: no deadlock), emits m, waits for the
// receiver's ack, and releases both locks.  An exchange therefore owns
// both endpoints for its whole send-to-delivery interval:
//   * two exchanges sharing a process are serialized by its lock, and
//   * causality between disjoint exchanges only arises through chains of
//     such serialized intervals,
// so the intervals form an interval order and any linear extension gives
// the SYNC timestamps — every run is logically synchronous.
//
// Unlike the sequencer and the token ring, *disjoint pairs run
// concurrently*: throughput scales with the number of independent pairs
// (bench E6b), at a cost of up to ~6 control packets per message.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class SyncLocksProtocol final : public Protocol {
 public:
  explicit SyncLocksProtocol(Host& host)
      : host_(host), report_holds_(host.wants_hold_reasons()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "sync-locks"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override {
    return pending_.empty() && !active_.has_value() &&
           !lock_.holder.has_value() && lock_.queue.empty();
  }

  static ProtocolFactory factory();

 private:
  /// A pending exchange at its *sender*.
  struct Exchange {
    MessageId msg = 0;
    ProcessId first_lock = 0;   // min(self, dst)
    ProcessId second_lock = 0;  // max(self, dst)
    int locks_held = 0;
  };

  /// Lock-owner side: grant to the head of the queue when free.
  struct LockState {
    /// Holder exchange, as (sender process, message id); nullopt = free.
    std::optional<std::pair<ProcessId, MessageId>> holder;
    std::deque<std::pair<ProcessId, MessageId>> queue;
  };

  // Sender-side steps.
  void start_next_exchange();
  void request_lock(ProcessId owner, MessageId msg);
  void lock_granted(MessageId msg);
  void finish_exchange(MessageId msg);

  // Owner-side steps.
  void enqueue_request(ProcessId requester, MessageId msg);
  void try_grant();
  void release(ProcessId requester, MessageId msg);
  void send_grant(ProcessId requester, MessageId msg);

  Host& host_;
  const bool report_holds_;
  std::deque<MessageId> pending_;            // invoked, not yet started
  std::optional<Exchange> active_;           // exchange we are driving
  LockState lock_;                           // the lock this process owns
};

}  // namespace msgorder
