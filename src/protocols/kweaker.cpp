#include "src/protocols/kweaker.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
void encode_chains(std::string& out,
                   const std::map<MessageId,
                                  KWeakerCausalProtocol::ChainEntry>& chains) {
  codec::put_u32(out, static_cast<std::uint32_t>(chains.size()));
  for (const auto& [msg, entry] : chains) {
    codec::put_u32(out, msg);
    codec::put_u32(out, entry.dst);
    codec::put_u32(out, entry.depth);
  }
}
}  // namespace

void KWeakerCausalProtocol::on_invoke(const Message& m) {
  // chainlen(x, m) = d(x) + 1 for every known x: the longest chain to a
  // send in our causal past extends by this new send.
  Tag tag;
  for (const auto& [msg, entry] : known_) {
    tag.chains.emplace(msg, ChainEntry{entry.dst, entry.depth + 1});
  }
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = tag.byte_size();
  pkt.content = tag;
  {
    std::string enc;
    encode_chains(enc, tag.chains);
    pkt.content_key = codec::digest(enc);
  }
  // The new send joins our causal past with a self chain of length 1,
  // and every previous chain now extends through it.
  for (auto& [msg, entry] : known_) entry.depth += 1;
  known_[m.id] = ChainEntry{m.dst, 1};
  host_.send_packet(std::move(pkt));
}

bool KWeakerCausalProtocol::deliverable(const Tag& tag) const {
  for (const auto& [msg, entry] : tag.chains) {
    if (entry.dst == host_.self() && entry.depth >= k_ + 2 &&
        delivered_here_.count(msg) == 0) {
      return false;
    }
  }
  return true;
}

std::optional<MessageId> KWeakerCausalProtocol::blocking_message(
    const Tag& tag) const {
  for (const auto& [msg, entry] : tag.chains) {
    if (entry.dst == host_.self() && entry.depth >= k_ + 2 &&
        delivered_here_.count(msg) == 0) {
      return msg;
    }
  }
  return std::nullopt;
}

void KWeakerCausalProtocol::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(it->tag)) {
        host_.deliver(it->msg);
        delivered_here_.insert(it->msg);
        buffer_.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    for (const Buffered& b : buffer_) {
      host_.hold(b.msg, HoldReason::predecessor(blocking_message(b.tag),
                                                std::nullopt));
    }
  }
}

void KWeakerCausalProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  const Tag tag = std::any_cast<Tag>(packet.content);
  // The receive event puts the sender's knowledge in our causal past.
  for (const auto& [msg, entry] : tag.chains) {
    auto [it, inserted] = known_.try_emplace(msg, entry);
    if (!inserted) it->second.depth = std::max(it->second.depth, entry.depth);
  }
  // The received message's own send is also now known (depth 1 chain).
  const Message& m = host_.message(packet.user_msg);
  auto [it, inserted] =
      known_.try_emplace(packet.user_msg, ChainEntry{m.dst, 1});
  if (!inserted) it->second.depth = std::max<std::uint32_t>(
      it->second.depth, 1);
  buffer_.push_back({packet.user_msg, tag});
  drain();
}

bool KWeakerCausalProtocol::snapshot(std::string& out) const {
  codec::put_u64(out, k_);
  encode_chains(out, known_);
  codec::put_u32(out, static_cast<std::uint32_t>(delivered_here_.size()));
  for (const MessageId msg : delivered_here_) codec::put_u32(out, msg);
  // Buffer order is behaviorally irrelevant (the drain rescans); encode
  // sorted by message id: canonical.
  std::vector<const Buffered*> sorted;
  sorted.reserve(buffer_.size());
  for (const Buffered& b : buffer_) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const Buffered* a, const Buffered* b) { return a->msg < b->msg; });
  codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const Buffered* b : sorted) {
    codec::put_u32(out, b->msg);
    encode_chains(out, b->tag.chains);
  }
  return true;
}

ProtocolFactory KWeakerCausalProtocol::factory(std::size_t k) {
  return [k](Host& host) {
    return std::make_unique<KWeakerCausalProtocol>(host, k);
  };
}

}  // namespace msgorder
