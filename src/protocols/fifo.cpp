#include "src/protocols/fifo.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

void FifoProtocol::on_invoke(const Message& m) {
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = sizeof(std::uint32_t);
  const std::uint32_t seq = next_out_[m.dst]++;
  pkt.content = seq;
  pkt.content_key = seq;
  host_.send_packet(std::move(pkt));
}

void FifoProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  const auto seq = std::any_cast<std::uint32_t>(packet.content);
  auto& expected = next_in_[packet.src];
  auto& buffer = buffer_[packet.src];
  buffer.push_back({packet.user_msg, seq});
  // Drain everything now in sequence.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer.begin(); it != buffer.end(); ++it) {
      if (it->seq == expected) {
        host_.deliver(it->msg);
        ++expected;
        buffer.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    // Whatever stayed buffered is inhibited by its missing channel
    // predecessor (the message carrying `expected` on this channel).
    for (const Pending& p : buffer) {
      host_.hold(p.msg, HoldReason::predecessor(std::nullopt, packet.src));
    }
  }
}

bool FifoProtocol::snapshot(std::string& out) const {
  codec::put_u32(out, static_cast<std::uint32_t>(next_out_.size()));
  for (const auto& [dst, seq] : next_out_) {
    codec::put_u32(out, dst);
    codec::put_u32(out, seq);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(next_in_.size()));
  for (const auto& [src, seq] : next_in_) {
    codec::put_u32(out, src);
    codec::put_u32(out, seq);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(buffer_.size()));
  for (const auto& [src, pendings] : buffer_) {
    // Buffer arrival order is behaviorally irrelevant (the drain scans
    // for the expected sequence), so encode sorted by seq: canonical.
    std::vector<Pending> sorted = pendings;
    std::sort(sorted.begin(), sorted.end(),
              [](const Pending& a, const Pending& b) { return a.seq < b.seq; });
    codec::put_u32(out, src);
    codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
    for (const Pending& p : sorted) {
      codec::put_u32(out, p.msg);
      codec::put_u32(out, p.seq);
    }
  }
  return true;
}

bool FifoProtocol::quiescent() const {
  for (const auto& [src, pendings] : buffer_) {
    if (!pendings.empty()) return false;
  }
  return true;
}

ProtocolFactory FifoProtocol::factory() {
  return [](Host& host) { return std::make_unique<FifoProtocol>(host); };
}

}  // namespace msgorder
