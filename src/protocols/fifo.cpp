#include "src/protocols/fifo.hpp"

#include <algorithm>
#include <memory>

namespace msgorder {

void FifoProtocol::on_invoke(const Message& m) {
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = sizeof(std::uint32_t);
  pkt.content = next_out_[m.dst]++;
  host_.send_packet(std::move(pkt));
}

void FifoProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  const auto seq = std::any_cast<std::uint32_t>(packet.content);
  auto& expected = next_in_[packet.src];
  auto& buffer = buffer_[packet.src];
  buffer.push_back({packet.user_msg, seq});
  // Drain everything now in sequence.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer.begin(); it != buffer.end(); ++it) {
      if (it->seq == expected) {
        host_.deliver(it->msg);
        ++expected;
        buffer.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    // Whatever stayed buffered is inhibited by its missing channel
    // predecessor (the message carrying `expected` on this channel).
    for (const Pending& p : buffer) {
      host_.hold(p.msg, HoldReason::predecessor(std::nullopt, packet.src));
    }
  }
}

ProtocolFactory FifoProtocol::factory() {
  return [](Host& host) { return std::make_unique<FifoProtocol>(host); };
}

}  // namespace msgorder
