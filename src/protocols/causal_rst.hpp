// The Raynal-Schiper-Toueg causal-ordering protocol [20] (Section 2 of
// the paper): every message is tagged with an n x n matrix m where
// m[j][k] is the sender's knowledge of how many messages P_j has sent to
// P_k.  The receiver delays delivery until all messages addressed to it
// that the tag proves were sent causally earlier have been delivered.
// Tag cost O(n^2), zero control messages — the canonical witness that
// causal ordering sits in the *tagged* protocol class.
#pragma once

#include <cstdint>
#include <vector>

#include "src/poset/clocks.hpp"
#include "src/protocols/protocol.hpp"

namespace msgorder {

class CausalRstProtocol final : public Protocol {
 public:
  explicit CausalRstProtocol(Host& host)
      : host_(host),
        report_holds_(host.wants_hold_reasons()),
        sent_(host.process_count()),
        delivered_(host.process_count(), 0) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "causal-rst"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override { return buffer_.empty(); }

  static ProtocolFactory factory();

  /// The tag piggybacked on each user packet.
  struct Tag {
    MatrixClock sent;  // sender's knowledge BEFORE this message
  };

 private:
  bool deliverable(const Tag& tag) const;
  /// The first channel whose causally-prior deliveries are incomplete
  /// (only meaningful when !deliverable(tag)).
  ProcessId blocking_channel(const Tag& tag) const;
  void drain();

  struct Buffered {
    MessageId msg;
    ProcessId src;
    Tag tag;
  };

  Host& host_;
  const bool report_holds_;
  MatrixClock sent_;
  /// delivered_[k]: messages from P_k delivered here.
  std::vector<std::uint32_t> delivered_;
  std::vector<Buffered> buffer_;
};

}  // namespace msgorder
