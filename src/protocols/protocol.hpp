// The operational protocol interface used by the discrete-event
// simulator.  A protocol instance runs at each process and mediates the
// four-part life of a message (Section 3.1):
//
//   invoke  x.s* : the application asks to send (on_invoke),
//   send    x.s  : the protocol emits the user packet (host.send_packet),
//   receive x.r* : the packet arrives (on_packet),
//   deliver x.r  : the protocol hands it to the application (host.deliver).
//
// Tagged protocols piggyback data on user packets (Packet::tag_bytes
// accounts for it); general protocols additionally exchange control
// packets (Packet::is_control).  Tagless protocols do neither.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "src/poset/event.hpp"

namespace msgorder {

using SimTime = double;

struct Packet {
  ProcessId src = 0;
  ProcessId dst = 0;
  bool is_control = false;
  /// The user message carried (valid iff !is_control).
  MessageId user_msg = 0;
  /// Protocol-specific label for diagnostics ("REQ", "TOKEN", ...).
  std::string kind;
  /// Bytes of piggybacked protocol data (tag on a user packet, or the
  /// whole body of a control packet) — the overhead metric of bench E2.
  std::size_t tag_bytes = 0;
  /// Protocol-specific content.
  std::any content;
};

/// Services the simulator offers a protocol instance.
class Host {
 public:
  virtual ~Host() = default;

  /// Put a packet on the network (from this instance's process).  For a
  /// user packet this is the send event x.s.  On a lossy network the
  /// packet may be dropped (see NetworkOptions::loss_probability); the
  /// trace records x.s on the first emission of each user message and
  /// x.r* on its first arrival, so retransmissions are transparent to
  /// the run model.
  virtual void send_packet(Packet packet) = 0;

  /// Hand a received user message to the application: the delivery event
  /// x.r.  Must be called exactly once per message addressed here.
  virtual void deliver(MessageId msg) = 0;

  /// Schedule on_timer(cookie) at now() + delay.  Timers are local and
  /// never lost.
  virtual void set_timer(SimTime delay, std::uint64_t cookie) = 0;

  virtual SimTime now() const = 0;
  virtual ProcessId self() const = 0;
  virtual std::size_t process_count() const = 0;

  /// The full message record for a user message id (color, endpoints).
  virtual const Message& message(MessageId msg) const = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// The application requested transmission of m (the invoke event; the
  /// simulator records x.s* before calling this).
  virtual void on_invoke(const Message& m) = 0;

  /// A packet addressed to this process arrived (for a user packet the
  /// simulator records x.r* before calling this).
  virtual void on_packet(const Packet& packet) = 0;

  /// A timer set via Host::set_timer fired.
  virtual void on_timer(std::uint64_t cookie) { (void)cookie; }

  virtual std::string name() const = 0;
};

/// Creates the per-process instance; `host` outlives the protocol.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(Host& host)>;

}  // namespace msgorder
