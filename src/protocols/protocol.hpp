// The operational protocol interface used by the discrete-event
// simulator.  A protocol instance runs at each process and mediates the
// four-part life of a message (Section 3.1):
//
//   invoke  x.s* : the application asks to send (on_invoke),
//   send    x.s  : the protocol emits the user packet (host.send_packet),
//   receive x.r* : the packet arrives (on_packet),
//   deliver x.r  : the protocol hands it to the application (host.deliver).
//
// Tagged protocols piggyback data on user packets (Packet::tag_bytes
// accounts for it); general protocols additionally exchange control
// packets (Packet::is_control).  Tagless protocols do neither.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/poset/event.hpp"

namespace msgorder {

using SimTime = double;

/// Why a protocol is currently inhibiting (holding) a message rather
/// than releasing it — the observable face of the paper's inhibitor
/// (§3.2: a protocol *is* the set of events it delays).  The taxonomy
/// is deliberately coarse: one kind per mechanism, refined by the
/// optional blocking message / process below (ISSUE 4).
enum class HoldKind : std::uint8_t {
  kNone = 0,         // not held (never reported; the attribution default)
  kWaitPredecessor,  // a causally/sequence-prior delivery is missing
  kWaitToken,        // the circulating transmit token is elsewhere
  kWaitFlush,        // a flush barrier's prefix is incomplete
  kWaitSeq,          // waiting on the central sequencer's grant
  kWaitLock,         // an endpoint lock is owned by another exchange
  kWaitAck,          // an earlier exchange's acknowledgement is pending
};
constexpr std::size_t kHoldKindCount = 7;

/// Stable lower-snake name ("wait_predecessor", ...), used for metric
/// names and every JSON schema that carries hold reasons.
std::string to_string(HoldKind kind);

/// A structured hold reason: the mechanism plus, when the protocol can
/// name it, the specific message or process the hold is waiting on.
struct HoldReason {
  HoldKind kind = HoldKind::kNone;
  /// The message whose delivery/ack unblocks this one, if known.
  std::optional<MessageId> blocking_msg;
  /// The process the hold waits on (missing predecessor's channel,
  /// token holder, sequencer, lock owner), if known.
  std::optional<ProcessId> blocking_proc;

  bool operator==(const HoldReason&) const = default;

  static HoldReason predecessor(std::optional<MessageId> msg,
                                std::optional<ProcessId> proc) {
    return {HoldKind::kWaitPredecessor, msg, proc};
  }
  static HoldReason token() { return {HoldKind::kWaitToken, {}, {}}; }
  static HoldReason flush(std::optional<ProcessId> proc) {
    return {HoldKind::kWaitFlush, {}, proc};
  }
  static HoldReason sequencer(ProcessId seq) {
    return {HoldKind::kWaitSeq, {}, seq};
  }
  static HoldReason lock(std::optional<MessageId> msg,
                         std::optional<ProcessId> owner) {
    return {HoldKind::kWaitLock, msg, owner};
  }
  static HoldReason ack(MessageId msg) {
    return {HoldKind::kWaitAck, msg, {}};
  }
};

struct Packet {
  ProcessId src = 0;
  ProcessId dst = 0;
  bool is_control = false;
  /// The user message carried (valid iff !is_control).
  MessageId user_msg = 0;
  /// Protocol-specific label for diagnostics ("REQ", "TOKEN", ...).
  std::string kind;
  /// Bytes of piggybacked protocol data (tag on a user packet, or the
  /// whole body of a control packet) — the overhead metric of bench E2.
  std::size_t tag_bytes = 0;
  /// Protocol-specific content.
  std::any content;
  /// Canonical 64-bit digest of `content`, set alongside it (std::any is
  /// not hashable).  The exhaustive verifier (ISSUE 10) folds this into
  /// its channel-state fingerprints: two in-flight packets for the same
  /// message can carry different tags on different interleavings, and
  /// the visited-state set must tell those states apart.
  std::uint64_t content_key = 0;
};

/// Services the simulator offers a protocol instance.
class Host {
 public:
  virtual ~Host() = default;

  /// Put a packet on the network (from this instance's process).  For a
  /// user packet this is the send event x.s.  On a lossy network the
  /// packet may be dropped (see NetworkOptions::loss_probability); the
  /// trace records x.s on the first emission of each user message and
  /// x.r* on its first arrival, so retransmissions are transparent to
  /// the run model.
  virtual void send_packet(Packet packet) = 0;

  /// Hand a received user message to the application: the delivery event
  /// x.r.  Must be called exactly once per message addressed here.
  virtual void deliver(MessageId msg) = 0;

  /// Schedule on_timer(cookie) at now() + delay.  Timers are local and
  /// never lost.
  virtual void set_timer(SimTime delay, std::uint64_t cookie) = 0;

  /// Inhibition attribution (ISSUE 4).  A protocol that decides *not*
  /// to release a message right now reports why: before the message's
  /// send event this attributes the send delay (x.s* -> x.s), after its
  /// receive event the delivery delay (x.r* -> x.r).  Re-reporting with
  /// a new reason closes the previous attribution segment; the matching
  /// release is implicit in the send/deliver event, so per-message
  /// per-reason hold times always sum exactly to the recorded delays.
  /// The default is a no-op; hosts that collect attribution return true
  /// from wants_hold_reasons(), letting protocols skip computing
  /// reasons (and the re-reports on every drain pass) on the zero-cost
  /// path.
  virtual void hold(MessageId msg, const HoldReason& reason) {
    (void)msg;
    (void)reason;
  }
  virtual bool wants_hold_reasons() const { return false; }

  virtual SimTime now() const = 0;
  virtual ProcessId self() const = 0;
  virtual std::size_t process_count() const = 0;

  /// The full message record for a user message id (color, endpoints).
  virtual const Message& message(MessageId msg) const = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// The application requested transmission of m (the invoke event; the
  /// simulator records x.s* before calling this).
  virtual void on_invoke(const Message& m) = 0;

  /// A packet addressed to this process arrived (for a user packet the
  /// simulator records x.r* before calling this).
  virtual void on_packet(const Packet& packet) = 0;

  /// A timer set via Host::set_timer fired.
  virtual void on_timer(std::uint64_t cookie) { (void)cookie; }

  virtual std::string name() const = 0;

  /// Verifier hooks (ISSUE 10).  snapshot() appends a *canonical*
  /// encoding of the instance's full state — two instances that would
  /// behave identically on every future input must encode identically,
  /// and counters that only grow with control chatter (emission counts,
  /// timer ids) must be left out so idle control cycles close in the
  /// visited-state set.  Returns false when the protocol does not
  /// support canonical snapshots (the verifier then explores without
  /// state caching — sound, just slower).
  virtual bool snapshot(std::string& out) const {
    (void)out;
    return false;
  }

  /// No internal obligations outstanding: nothing buffered for
  /// delivery, no lock held, no ack awaited, no grant in progress.
  /// Perpetual background traffic (a circulating idle token) does NOT
  /// count as an obligation.  The verifier's control-leak check demands
  /// that every complete execution can reach a state where all
  /// instances are quiescent.
  virtual bool quiescent() const { return true; }
};

/// Creates the per-process instance; `host` outlives the protocol.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(Host& host)>;

}  // namespace msgorder
