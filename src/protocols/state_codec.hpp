// Canonical state encoding helpers for Protocol::snapshot() and
// Packet::content_key (ISSUE 10).  The exhaustive verifier keys its
// visited-state set on these encodings, so they must be deterministic
// and injective over behaviorally distinct states: fixed-width
// little-endian integers, explicit length prefixes for variable parts,
// and ordered containers (std::map/std::set iterate sorted, so encoding
// them in iteration order is already canonical).
#pragma once

#include <cstdint>
#include <string>

#include "src/poset/clocks.hpp"

namespace msgorder::codec {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

inline void put_vector_clock(std::string& out, const VectorClock& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) put_u32(out, v[i]);
}

inline void put_matrix_clock(std::string& out, const MatrixClock& m) {
  put_u32(out, static_cast<std::uint32_t>(m.size()));
  for (std::size_t j = 0; j < m.size(); ++j) {
    for (std::size_t k = 0; k < m.size(); ++k) put_u32(out, m.at(j, k));
  }
}

/// Incremental FNV-1a, used to derive Packet::content_key digests.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * kFnvPrime;
  }
  return h;
}

/// Digest of a whole canonical encoding (content_key for tags that are
/// themselves encoded with the helpers above).
inline std::uint64_t digest(const std::string& encoded) {
  return fnv1a_bytes(kFnvOffset, encoded);
}

}  // namespace msgorder::codec
