#include "src/protocols/causal_rst.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
std::uint64_t tag_key(const CausalRstProtocol::Tag& tag) {
  std::string enc;
  codec::put_matrix_clock(enc, tag.sent);
  return codec::digest(enc);
}
}  // namespace

void CausalRstProtocol::on_invoke(const Message& m) {
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  Tag tag{sent_};
  pkt.tag_bytes = sent_.byte_size();
  pkt.content = tag;
  pkt.content_key = tag_key(tag);
  // Record this send in the local knowledge *after* stamping the tag:
  // the tag describes the causal past of the send event.
  sent_.at(host_.self(), m.dst) += 1;
  host_.send_packet(std::move(pkt));
}

bool CausalRstProtocol::deliverable(const Tag& tag) const {
  const ProcessId self = host_.self();
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (delivered_[k] < tag.sent.at(k, self)) return false;
  }
  return true;
}

ProcessId CausalRstProtocol::blocking_channel(const Tag& tag) const {
  const ProcessId self = host_.self();
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (delivered_[k] < tag.sent.at(k, self)) {
      return static_cast<ProcessId>(k);
    }
  }
  return self;  // unreachable when the tag is genuinely undeliverable
}

void CausalRstProtocol::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(it->tag)) {
        host_.deliver(it->msg);
        delivered_[it->src] += 1;
        sent_.merge(it->tag.sent);
        // This message itself is number tag[src][self] + 1 on its channel.
        auto& cell = sent_.at(it->src, host_.self());
        const std::uint32_t with_self = it->tag.sent.at(it->src,
                                                        host_.self()) + 1;
        if (cell < with_self) cell = with_self;
        buffer_.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    for (const Buffered& b : buffer_) {
      host_.hold(b.msg, HoldReason::predecessor(std::nullopt,
                                                blocking_channel(b.tag)));
    }
  }
}

void CausalRstProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  buffer_.push_back({packet.user_msg, packet.src,
                     std::any_cast<Tag>(packet.content)});
  drain();
}

bool CausalRstProtocol::snapshot(std::string& out) const {
  codec::put_matrix_clock(out, sent_);
  for (const std::uint32_t d : delivered_) codec::put_u32(out, d);
  // Buffer order is behaviorally irrelevant (the drain rescans); encode
  // sorted by message id: canonical.
  std::vector<const Buffered*> sorted;
  sorted.reserve(buffer_.size());
  for (const Buffered& b : buffer_) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const Buffered* a, const Buffered* b) { return a->msg < b->msg; });
  codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const Buffered* b : sorted) {
    codec::put_u32(out, b->msg);
    codec::put_u32(out, b->src);
    codec::put_matrix_clock(out, b->tag.sent);
  }
  return true;
}

ProtocolFactory CausalRstProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<CausalRstProtocol>(host);
  };
}

}  // namespace msgorder
