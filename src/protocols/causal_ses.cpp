#include "src/protocols/causal_ses.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
void encode_tag(std::string& out, const CausalSesProtocol::Tag& tag) {
  codec::put_vector_clock(out, tag.timestamp);
  codec::put_u32(out, static_cast<std::uint32_t>(tag.last_sent.size()));
  for (const auto& [dst, v] : tag.last_sent) {
    codec::put_u32(out, dst);
    codec::put_vector_clock(out, v);
  }
}
}  // namespace

void CausalSesProtocol::on_invoke(const Message& m) {
  // Stamp: this send is a new event of self.
  time_.tick(host_.self());
  Tag tag;
  tag.timestamp = time_;
  tag.last_sent = last_sent_;  // knowledge EXCLUDING this message
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = tag.byte_size(host_.process_count());
  pkt.content = tag;
  {
    std::string enc;
    encode_tag(enc, tag);
    pkt.content_key = codec::digest(enc);
  }
  // Now remember this message as the latest sent to m.dst.
  auto [it, inserted] = last_sent_.try_emplace(m.dst, time_);
  if (!inserted) it->second.merge(time_);
  host_.send_packet(std::move(pkt));
}

bool CausalSesProtocol::deliverable(const Tag& tag) const {
  const auto it = tag.last_sent.find(host_.self());
  if (it == tag.last_sent.end()) return true;
  // Everything the sender knew was previously sent to us must already be
  // reflected in our merged time.
  return it->second.leq(time_);
}

ProcessId CausalSesProtocol::blocking_component(const Tag& tag) const {
  const auto it = tag.last_sent.find(host_.self());
  if (it != tag.last_sent.end()) {
    for (std::size_t k = 0; k < it->second.size(); ++k) {
      if (it->second[k] > time_[k]) return static_cast<ProcessId>(k);
    }
  }
  return host_.self();  // unreachable for a genuinely undeliverable tag
}

void CausalSesProtocol::absorb(const Tag& tag) {
  time_.merge(tag.timestamp);
  for (const auto& [dst, v] : tag.last_sent) {
    if (dst == host_.self()) continue;  // our own inbox history is local
    auto [it, inserted] = last_sent_.try_emplace(dst, v);
    if (!inserted) it->second.merge(v);
  }
}

void CausalSesProtocol::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(it->tag)) {
        host_.deliver(it->msg);
        absorb(it->tag);
        buffer_.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    for (const Buffered& b : buffer_) {
      host_.hold(b.msg, HoldReason::predecessor(std::nullopt,
                                                blocking_component(b.tag)));
    }
  }
}

void CausalSesProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  buffer_.push_back({packet.user_msg, std::any_cast<Tag>(packet.content)});
  drain();
}

bool CausalSesProtocol::snapshot(std::string& out) const {
  codec::put_vector_clock(out, time_);
  codec::put_u32(out, static_cast<std::uint32_t>(last_sent_.size()));
  for (const auto& [dst, v] : last_sent_) {
    codec::put_u32(out, dst);
    codec::put_vector_clock(out, v);
  }
  // Buffer order is behaviorally irrelevant (the drain rescans); encode
  // sorted by message id: canonical.
  std::vector<const Buffered*> sorted;
  sorted.reserve(buffer_.size());
  for (const Buffered& b : buffer_) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const Buffered* a, const Buffered* b) { return a->msg < b->msg; });
  codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const Buffered* b : sorted) {
    codec::put_u32(out, b->msg);
    encode_tag(out, b->tag);
  }
  return true;
}

ProtocolFactory CausalSesProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<CausalSesProtocol>(host);
  };
}

}  // namespace msgorder
