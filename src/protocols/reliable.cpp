#include "src/protocols/reliable.hpp"

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
constexpr std::size_t kEnvelopeBytes = 12;  // seq + channel id
constexpr std::size_t kAckBytes = 12;
}  // namespace

/// The Host facade handed to the inner protocol: deliveries, clocks and
/// identity pass through; packets are intercepted and enveloped; timer
/// cookies are mapped to the even half so they cannot collide with the
/// layer's own (odd) retransmission cookies.
class ReliableProtocol::InnerHost final : public Host {
 public:
  InnerHost(ReliableProtocol* outer, Host& real)
      : outer_(outer), real_(real) {}

  void send_packet(Packet packet) override {
    outer_->ship(std::move(packet));
  }
  void deliver(MessageId msg) override { real_.deliver(msg); }
  void set_timer(SimTime delay, std::uint64_t cookie) override {
    real_.set_timer(delay, 2 * cookie);
  }
  SimTime now() const override { return real_.now(); }
  ProcessId self() const override { return real_.self(); }
  std::size_t process_count() const override {
    return real_.process_count();
  }
  const Message& message(MessageId msg) const override {
    return real_.message(msg);
  }
  void hold(MessageId msg, const HoldReason& reason) override {
    real_.hold(msg, reason);
  }
  bool wants_hold_reasons() const override {
    return real_.wants_hold_reasons();
  }

 private:
  ReliableProtocol* outer_;
  Host& real_;
};

ReliableProtocol::ReliableProtocol(Host& host,
                                   const ProtocolFactory& inner_factory,
                                   ReliableOptions options)
    : host_(host), options_(options) {
  inner_host_ = std::make_unique<InnerHost>(this, host);
  inner_ = inner_factory(*inner_host_);
}

ReliableProtocol::~ReliableProtocol() = default;

std::string ReliableProtocol::name() const {
  return "reliable(" + inner_->name() + ")";
}

void ReliableProtocol::on_invoke(const Message& m) { inner_->on_invoke(m); }

void ReliableProtocol::ship(Packet inner_packet) {
  const std::uint64_t seq = next_seq_++;
  Envelope envelope;
  envelope.seq = seq;
  envelope.inner_content = std::move(inner_packet.content);
  inner_packet.content = envelope;
  // Fold the envelope sequence number into the inner payload's digest so
  // distinct (re)transmissions of otherwise identical inner packets stay
  // distinguishable to the verifier's visited-state set.
  inner_packet.content_key =
      codec::fnv1a(codec::fnv1a(codec::kFnvOffset, seq),
                   inner_packet.content_key);
  inner_packet.tag_bytes += kEnvelopeBytes;
  pending_[seq] = PendingPacket{inner_packet, 0, false};
  host_.send_packet(std::move(inner_packet));
  host_.set_timer(options_.retransmit_timeout, 2 * seq + 1);
}

void ReliableProtocol::retransmit(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked and reaped
  PendingPacket& entry = it->second;
  if (options_.max_retransmissions != 0 &&
      entry.retransmissions >= options_.max_retransmissions) {
    pending_.erase(it);  // give up
    return;
  }
  ++entry.retransmissions;
  host_.send_packet(entry.packet);
  host_.set_timer(options_.retransmit_timeout, 2 * seq + 1);
}

void ReliableProtocol::on_timer(std::uint64_t cookie) {
  if (cookie % 2 == 1) {
    retransmit((cookie - 1) / 2);
  } else {
    inner_->on_timer(cookie / 2);
  }
}

void ReliableProtocol::on_packet(const Packet& packet) {
  if (packet.is_control && packet.kind == "RACK") {
    pending_.erase(std::any_cast<std::uint64_t>(packet.content));
    return;
  }
  const auto envelope = std::any_cast<Envelope>(packet.content);
  // Acknowledge every arrival (the original ACK may have been lost).
  Packet ack;
  ack.dst = packet.src;
  ack.is_control = true;
  ack.kind = "RACK";
  ack.tag_bytes = kAckBytes;
  ack.content = envelope.seq;
  ack.content_key = envelope.seq;
  host_.send_packet(std::move(ack));
  // De-duplicate per source, then hand the restored packet up.
  if (!seen_[packet.src].insert(envelope.seq).second) return;
  Packet restored = packet;
  restored.content = envelope.inner_content;
  restored.tag_bytes -= kEnvelopeBytes;
  inner_->on_packet(restored);
}

bool ReliableProtocol::snapshot(std::string& out) const {
  std::string inner_state;
  if (!inner_->snapshot(inner_state)) return false;
  // next_seq_ is determined by the number of ships so far, which the
  // pending_/seen_ contents do not fully pin down once entries are
  // reaped; encode it so replays that diverge in ship count differ.
  codec::put_u64(out, next_seq_);
  codec::put_u32(out, static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [seq, entry] : pending_) {
    codec::put_u64(out, seq);
    codec::put_u32(out, entry.packet.dst);
    codec::put_u64(out, static_cast<std::uint64_t>(entry.retransmissions));
  }
  codec::put_u32(out, static_cast<std::uint32_t>(seen_.size()));
  for (const auto& [src, seqs] : seen_) {
    codec::put_u32(out, src);
    codec::put_u32(out, static_cast<std::uint32_t>(seqs.size()));
    for (const std::uint64_t seq : seqs) codec::put_u64(out, seq);
  }
  codec::put_str(out, inner_state);
  return true;
}

bool ReliableProtocol::quiescent() const {
  // An unacked shipment is an obligation: a retransmission is owed.
  return pending_.empty() && inner_->quiescent();
}

ProtocolFactory ReliableProtocol::wrap(ProtocolFactory inner,
                                       ReliableOptions options) {
  return [inner = std::move(inner), options](Host& host) {
    return std::make_unique<ReliableProtocol>(host, inner, options);
  };
}

}  // namespace msgorder
