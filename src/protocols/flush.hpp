// Flush channels (F-channels [1], Section 2): a per-channel protocol in
// which each message is one of four types, encoded in Message::color:
//
//   color 0 : ordinary send       (no ordering constraint of its own)
//   color 1 : forward-flush send  (delivered after everything sent
//                                  earlier on the channel)
//   color 2 : backward-flush send (everything sent later on the channel
//                                  is delivered after it)
//   color 3 : two-way-flush send  (both)
//
// Implementation: a per-channel sequence number plus, on every message,
// the sequence number of the latest preceding backward/two-way barrier.
// The receiver delivers an ordinary message once its barrier is
// delivered, and a forward/two-way message once *all* earlier channel
// messages are delivered.  Tag O(1), no control messages — flush
// orderings are tagged-class, as the paper's predicate analysis shows.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

enum FlushKind : int {
  kOrdinary = 0,
  kForwardFlush = 1,
  kBackwardFlush = 2,
  kTwoWayFlush = 3,
};

class FlushChannelProtocol final : public Protocol {
 public:
  explicit FlushChannelProtocol(Host& host)
      : host_(host), report_holds_(host.wants_hold_reasons()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "flush-channel"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override;

  static ProtocolFactory factory();

  struct Tag {
    std::uint32_t seq = 0;
    /// Sequence of the latest earlier backward/two-way barrier on this
    /// channel, or kNoBarrier.
    std::uint32_t barrier = kNoBarrier;
    int kind = kOrdinary;

    static constexpr std::uint32_t kNoBarrier = 0xffffffffu;
  };

 private:
  struct ChannelIn {
    /// delivered[seq] for the prefix we have seen.
    std::vector<bool> delivered;
    std::vector<std::pair<MessageId, Tag>> buffer;

    bool all_delivered_below(std::uint32_t seq) const;
    bool is_delivered(std::uint32_t seq) const;
  };

  bool deliverable(const ChannelIn& in, const Tag& tag) const;
  void drain(ProcessId src, ChannelIn& in);

  Host& host_;
  const bool report_holds_;
  struct ChannelOut {
    std::uint32_t next_seq = 0;
    std::uint32_t last_barrier = Tag::kNoBarrier;
  };
  std::map<ProcessId, ChannelOut> out_;
  std::map<ProcessId, ChannelIn> in_;
};

}  // namespace msgorder
