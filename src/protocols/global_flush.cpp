#include "src/protocols/global_flush.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

namespace {
void encode_tag(std::string& out, const GlobalFlushProtocol::Tag& tag) {
  codec::put_matrix_clock(out, tag.sent);
  codec::put_matrix_clock(out, tag.red_frontier);
  codec::put_u8(out, tag.red ? 1 : 0);
}
}  // namespace

void GlobalFlushProtocol::on_invoke(const Message& m) {
  Tag tag;
  tag.red = (m.color == red_color_);
  tag.sent = sent_;
  if (tag.red) {
    // Everything known-sent so far must precede this message everywhere.
    red_frontier_.merge(sent_);
  }
  tag.red_frontier = red_frontier_;
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = tag.sent.byte_size() + tag.red_frontier.byte_size() + 1;
  pkt.content = tag;
  {
    std::string enc;
    encode_tag(enc, tag);
    pkt.content_key = codec::digest(enc);
  }
  sent_.at(host_.self(), m.dst) += 1;
  host_.send_packet(std::move(pkt));
}

bool GlobalFlushProtocol::prefix_complete(std::size_t k,
                                          std::uint32_t n) const {
  const auto& seqs = delivered_seqs_[k];
  if (seqs.size() < n) return false;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!seqs[s]) return false;
  }
  return true;
}

bool GlobalFlushProtocol::deliverable(const Tag& tag) const {
  const ProcessId self = host_.self();
  for (std::size_t k = 0; k < delivered_seqs_.size(); ++k) {
    if (!prefix_complete(k, tag.red_frontier.at(k, self))) return false;
    if (tag.red && !prefix_complete(k, tag.sent.at(k, self))) {
      return false;
    }
  }
  return true;
}

ProcessId GlobalFlushProtocol::blocking_channel(const Tag& tag) const {
  const ProcessId self = host_.self();
  for (std::size_t k = 0; k < delivered_seqs_.size(); ++k) {
    if (!prefix_complete(k, tag.red_frontier.at(k, self)) ||
        (tag.red && !prefix_complete(k, tag.sent.at(k, self)))) {
      return static_cast<ProcessId>(k);
    }
  }
  return self;  // unreachable when the tag is genuinely undeliverable
}

void GlobalFlushProtocol::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(it->tag)) {
        host_.deliver(it->msg);
        // This message's channel sequence number is the sender's
        // pre-send count for this channel.
        const std::uint32_t seq = it->tag.sent.at(it->src, host_.self());
        auto& seqs = delivered_seqs_[it->src];
        if (seqs.size() <= seq) seqs.resize(seq + 1, false);
        seqs[seq] = true;
        sent_.merge(it->tag.sent);
        auto& cell = sent_.at(it->src, host_.self());
        const std::uint32_t with_self = seq + 1;
        if (cell < with_self) cell = with_self;
        red_frontier_.merge(it->tag.red_frontier);
        if (it->tag.red) {
          // The red message itself now bounds later ordinary traffic.
          red_frontier_.merge(it->tag.sent);
        }
        buffer_.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    for (const Buffered& b : buffer_) {
      host_.hold(b.msg, HoldReason::flush(blocking_channel(b.tag)));
    }
  }
}

void GlobalFlushProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  buffer_.push_back({packet.user_msg, packet.src,
                     std::any_cast<Tag>(packet.content)});
  drain();
}

bool GlobalFlushProtocol::snapshot(std::string& out) const {
  codec::put_u32(out, static_cast<std::uint32_t>(red_color_));
  codec::put_matrix_clock(out, sent_);
  codec::put_matrix_clock(out, red_frontier_);
  codec::put_u32(out, static_cast<std::uint32_t>(delivered_seqs_.size()));
  for (const auto& seqs : delivered_seqs_) {
    codec::put_u32(out, static_cast<std::uint32_t>(seqs.size()));
    for (const bool s : seqs) codec::put_u8(out, s ? 1 : 0);
  }
  // Buffer order is behaviorally irrelevant (the drain rescans); encode
  // sorted by message id: canonical.
  std::vector<const Buffered*> sorted;
  sorted.reserve(buffer_.size());
  for (const Buffered& b : buffer_) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const Buffered* a, const Buffered* b) { return a->msg < b->msg; });
  codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const Buffered* b : sorted) {
    codec::put_u32(out, b->msg);
    codec::put_u32(out, b->src);
    encode_tag(out, b->tag);
  }
  return true;
}

ProtocolFactory GlobalFlushProtocol::factory(int red_color) {
  return [red_color](Host& host) {
    return std::make_unique<GlobalFlushProtocol>(host, red_color);
  };
}

}  // namespace msgorder
