#include "src/protocols/synthesized.hpp"

#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/global_flush.hpp"
#include "src/protocols/sync_sequencer.hpp"

namespace msgorder {

bool is_fifo_shaped(const ForbiddenPredicate& predicate) {
  const NormalizedPredicate normalized = normalize(predicate);
  if (normalized.triviality != NormalTriviality::kNone) return false;
  const ForbiddenPredicate& p = normalized.predicate;
  if (p.arity != 2 || p.conjuncts.size() != 2) return false;
  // Both sends on one process and both deliveries on another?
  bool sends_equal = false;
  bool delivers_equal = false;
  for (const ProcessEquality& pe : p.process_constraints) {
    if (pe.var_a == pe.var_b) continue;
    if (pe.kind_a == UserEventKind::kSend &&
        pe.kind_b == UserEventKind::kSend) {
      sends_equal = true;
    }
    if (pe.kind_a == UserEventKind::kDeliver &&
        pe.kind_b == UserEventKind::kDeliver) {
      delivers_equal = true;
    }
  }
  if (!sends_equal || !delivers_equal) return false;
  const Classification c = classify(p);
  return c.min_order.has_value() && *c.min_order == 1;
}

bool is_global_flush_shaped(const ForbiddenPredicate& predicate,
                            int* red_color) {
  const NormalizedPredicate normalized = normalize(predicate);
  if (normalized.triviality != NormalTriviality::kNone) return false;
  const ForbiddenPredicate& p = normalized.predicate;
  if (p.arity != 2 || p.conjuncts.size() != 2) return false;
  if (!p.process_constraints.empty()) return false;
  if (p.color_constraints.size() != 1) return false;
  // The B2 shape (a.s |> b.s) & (b.r |> a.r) with the color on b.
  const std::size_t colored = p.color_constraints[0].var;
  const std::size_t other = 1 - colored;
  const Conjunct send_edge{other, UserEventKind::kSend, colored,
                           UserEventKind::kSend};
  const Conjunct deliver_edge{colored, UserEventKind::kDeliver, other,
                              UserEventKind::kDeliver};
  const bool matches =
      (p.conjuncts[0] == send_edge && p.conjuncts[1] == deliver_edge) ||
      (p.conjuncts[0] == deliver_edge && p.conjuncts[1] == send_edge);
  if (!matches) return false;
  if (red_color != nullptr) *red_color = p.color_constraints[0].color;
  return true;
}

SynthesisResult synthesize(const ForbiddenPredicate& predicate) {
  SynthesisResult result;
  result.classification = classify(predicate);
  switch (result.classification.protocol_class) {
    case ProtocolClass::kNotImplementable:
      result.rationale =
          "predicate graph is acyclic: X_sync is not contained in the "
          "specification, so by Corollary 1 no protocol exists";
      return result;
    case ProtocolClass::kTagless:
      result.rationale =
          "an order-0 cycle exists: X_async is contained in the "
          "specification, the do-nothing protocol suffices";
      result.factory = AsyncProtocol::factory();
      return result;
    case ProtocolClass::kTagged:
      if (is_fifo_shaped(predicate)) {
        result.rationale =
            "order-1 cycle with per-channel process constraints: the "
            "O(1)-tag FIFO protocol suffices";
        result.factory = FifoProtocol::factory();
      } else if (int red = 0; is_global_flush_shaped(predicate, &red)) {
        result.rationale =
            "order-1 cycle constraining only colored messages: the "
            "red-frontier global-flush protocol suffices (less delivery "
            "buffering than full causal ordering)";
        result.factory = GlobalFlushProtocol::factory(red);
      } else {
        result.rationale =
            "an order-1 cycle exists: X_co is contained in the "
            "specification, a tagged causal protocol suffices";
        result.factory = CausalRstProtocol::factory();
      }
      return result;
    case ProtocolClass::kGeneral:
      result.rationale =
          "all cycles have order >= 2: only X_sync is contained in the "
          "specification, control messages are necessary; using the "
          "sequencer protocol";
      result.factory = SyncSequencerProtocol::factory();
      return result;
  }
  return result;
}

}  // namespace msgorder
