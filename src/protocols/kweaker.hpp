// k-weaker causal ordering (Section 5): a delivery may overtake an
// earlier-sent message unless they are linked by a causal *send chain* of
// k+2 or more messages, i.e. the forbidden predicate is
//   (s1 |> s2) & ... & (s_{k+1} |> s_{k+2}) & (r_{k+2} |> r_1).
//
// The predicate graph has an order-1 cycle, so tagging suffices; this
// implementation tags each message y with its *send-chain depth map*:
// for every message x in y's causal past, the length of the longest
// chain of causally ordered sends from x to y (chainlen(x, y); a message
// is chained to itself with length 1).  The receiver blocks y only on
// undelivered local messages x with chainlen(x, y) >= k+2.
//
// Knowledge merges on receive (the receive event puts the sender's
// history in the causal past), so the blocking relation propagates
// transitively and the cross-process instances of the predicate are
// covered as well — the property tests check this against the oracle.
//
// The tag grows with the causal past (entries are pruned once their
// depth can no longer matter for *new* chains is impossible to detect
// locally, so entries persist); the measured tag size is part of the
// k-vs-overhead tradeoff that bench E5 reports.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class KWeakerCausalProtocol final : public Protocol {
 public:
  KWeakerCausalProtocol(Host& host, std::size_t k)
      : host_(host), report_holds_(host.wants_hold_reasons()), k_(k) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override {
    return "kweaker-causal(k=" + std::to_string(k_) + ")";
  }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override { return buffer_.empty(); }

  static ProtocolFactory factory(std::size_t k);

  struct ChainEntry {
    ProcessId dst = 0;         // destination of the past message
    std::uint32_t depth = 0;   // longest send chain ending at the tagged send
  };

  struct Tag {
    /// chainlen(x, y) for every x in the causal past of the tagged y.
    std::map<MessageId, ChainEntry> chains;

    std::size_t byte_size() const {
      return chains.size() *
             (sizeof(MessageId) + sizeof(ProcessId) + sizeof(std::uint32_t));
    }
  };

 private:
  bool deliverable(const Tag& tag) const;
  /// The undelivered local message the chain condition is waiting on
  /// (only meaningful when !deliverable(tag)).
  std::optional<MessageId> blocking_message(const Tag& tag) const;
  void drain();

  struct Buffered {
    MessageId msg;
    Tag tag;
  };

  Host& host_;
  const bool report_holds_;
  std::size_t k_;
  /// d(x) = longest send chain from x's send to any send in our causal
  /// past (including x itself: at least 1 once known).
  std::map<MessageId, ChainEntry> known_;
  std::set<MessageId> delivered_here_;
  std::vector<Buffered> buffer_;
};

}  // namespace msgorder
