// Reliability layer: a decorator that makes any protocol stack survive a
// lossy network (NetworkOptions::loss_probability > 0) by sequencing,
// acknowledging, de-duplicating, and retransmitting every packet the
// inner protocol sends.
//
// The paper's model assumes reliable channels ("all messages sent are
// eventually delivered in a reliable system"); this layer is the
// substrate that discharges that assumption over a faulty network, so
// the ordering protocols above it remain oblivious to loss.  It adds a
// per-packet 12-byte envelope, one ACK per received packet, and
// timer-driven retransmissions; it does NOT reorder traffic (the inner
// protocol still sees arrival order), so it adds no ordering guarantee
// of its own — composition with the ordering stacks is orthogonal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "src/protocols/protocol.hpp"

namespace msgorder {

struct ReliableOptions {
  /// Retransmission timeout; should exceed one round trip.
  SimTime retransmit_timeout = 6.0;
  /// Give up after this many retransmissions (0 = never; liveness over a
  /// loss_probability < 1 network then holds with probability 1).
  std::size_t max_retransmissions = 0;
};

class ReliableProtocol final : public Protocol {
 public:
  ReliableProtocol(Host& host, const ProtocolFactory& inner_factory,
                   ReliableOptions options);
  ~ReliableProtocol() override;

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  void on_timer(std::uint64_t cookie) override;
  std::string name() const override;
  bool snapshot(std::string& out) const override;
  bool quiescent() const override;

  /// Wrap a factory: reliable(fifo), reliable(causal-rst), ...
  static ProtocolFactory wrap(ProtocolFactory inner,
                              ReliableOptions options = {});

 private:
  class InnerHost;

  struct Envelope {
    std::uint64_t seq = 0;
    std::any inner_content;
  };
  struct PendingPacket {
    Packet packet;  // the enveloped packet, ready to re-send
    std::size_t retransmissions = 0;
    bool acked = false;
  };

  void ship(Packet inner_packet);
  void retransmit(std::uint64_t seq);

  Host& host_;
  ReliableOptions options_;
  std::unique_ptr<InnerHost> inner_host_;
  std::unique_ptr<Protocol> inner_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, PendingPacket> pending_;
  /// Per-source set of sequence numbers already handed up (dedup).
  std::map<ProcessId, std::set<std::uint64_t>> seen_;
};

}  // namespace msgorder
