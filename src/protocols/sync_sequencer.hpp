// Logically synchronous ordering via a central sequencer — a *general*
// protocol (it needs control messages, as Theorem 1 proves any
// implementation of X_sync must).
//
// Process 0 doubles as the sequencer and grants one message exchange at
// a time: REQ -> GRANT -> (user message) -> DONE.  At most one user
// message is ever in flight, so the message intervals are disjoint in
// real time and every produced run is logically synchronous.
// Control cost: up to 3 control packets per user message.
#pragma once

#include <deque>

#include "src/protocols/protocol.hpp"

namespace msgorder {

class SyncSequencerProtocol final : public Protocol {
 public:
  explicit SyncSequencerProtocol(Host& host)
      : host_(host), report_holds_(host.wants_hold_reasons()) {}

  void on_invoke(const Message& m) override;
  void on_packet(const Packet& packet) override;
  std::string name() const override { return "sync-sequencer"; }
  bool snapshot(std::string& out) const override;
  bool quiescent() const override { return !busy_ && grant_queue_.empty(); }

  static ProtocolFactory factory();

 private:
  static constexpr ProcessId kSequencer = 0;

  void request(MessageId msg);                  // sender side
  void granted(MessageId msg);                  // sender side
  void enqueue(ProcessId requester, MessageId msg);  // sequencer side
  void try_grant();                             // sequencer side
  void exchange_done();                         // sequencer side

  Host& host_;
  const bool report_holds_;
  // Sequencer state (only used at process 0).
  std::deque<std::pair<ProcessId, MessageId>> grant_queue_;
  bool busy_ = false;
};

}  // namespace msgorder
