#include "src/protocols/flush.hpp"

#include <algorithm>
#include <memory>

#include "src/protocols/state_codec.hpp"

namespace msgorder {

bool FlushChannelProtocol::ChannelIn::is_delivered(
    std::uint32_t seq) const {
  return seq < delivered.size() && delivered[seq];
}

bool FlushChannelProtocol::ChannelIn::all_delivered_below(
    std::uint32_t seq) const {
  if (seq > delivered.size()) return false;  // gaps we have not even seen
  for (std::uint32_t s = 0; s < seq; ++s) {
    if (!delivered[s]) return false;
  }
  return true;
}

void FlushChannelProtocol::on_invoke(const Message& m) {
  ChannelOut& out = out_[m.dst];
  Tag tag;
  tag.seq = out.next_seq++;
  tag.barrier = out.last_barrier;
  tag.kind = m.color;
  if (m.color == kBackwardFlush || m.color == kTwoWayFlush) {
    out.last_barrier = tag.seq;
  }
  Packet pkt;
  pkt.dst = m.dst;
  pkt.user_msg = m.id;
  pkt.tag_bytes = 2 * sizeof(std::uint32_t) + sizeof(int);
  pkt.content = tag;
  pkt.content_key = (static_cast<std::uint64_t>(tag.seq) << 34) |
                    (static_cast<std::uint64_t>(tag.barrier) << 2) |
                    static_cast<std::uint64_t>(tag.kind & 3);
  host_.send_packet(std::move(pkt));
}

bool FlushChannelProtocol::deliverable(const ChannelIn& in,
                                       const Tag& tag) const {
  if (tag.kind == kForwardFlush || tag.kind == kTwoWayFlush) {
    return in.all_delivered_below(tag.seq);
  }
  if (tag.barrier == Tag::kNoBarrier) return true;
  return in.is_delivered(tag.barrier);
}

void FlushChannelProtocol::drain(ProcessId src, ChannelIn& in) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = in.buffer.begin(); it != in.buffer.end(); ++it) {
      if (deliverable(in, it->second)) {
        host_.deliver(it->first);
        if (it->second.seq >= in.delivered.size()) {
          in.delivered.resize(it->second.seq + 1, false);
        }
        in.delivered[it->second.seq] = true;
        in.buffer.erase(it);
        progressed = true;
        break;
      }
    }
  }
  if (report_holds_) {
    // Still-buffered messages wait on their flush barrier (or, for a
    // forward/two-way flush, the channel's whole earlier prefix).
    for (const auto& [msg, tag] : in.buffer) {
      (void)tag;
      host_.hold(msg, HoldReason::flush(src));
    }
  }
}

void FlushChannelProtocol::on_packet(const Packet& packet) {
  if (packet.is_control) return;
  ChannelIn& in = in_[packet.src];
  in.buffer.emplace_back(packet.user_msg,
                         std::any_cast<Tag>(packet.content));
  drain(packet.src, in);
}

bool FlushChannelProtocol::snapshot(std::string& out) const {
  codec::put_u32(out, static_cast<std::uint32_t>(out_.size()));
  for (const auto& [dst, ch] : out_) {
    codec::put_u32(out, dst);
    codec::put_u32(out, ch.next_seq);
    codec::put_u32(out, ch.last_barrier);
  }
  codec::put_u32(out, static_cast<std::uint32_t>(in_.size()));
  for (const auto& [src, ch] : in_) {
    codec::put_u32(out, src);
    codec::put_u32(out, static_cast<std::uint32_t>(ch.delivered.size()));
    for (const bool d : ch.delivered) codec::put_u8(out, d ? 1 : 0);
    // Buffer order is behaviorally irrelevant (the drain rescans);
    // encode sorted by seq: canonical.
    auto sorted = ch.buffer;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.second.seq < b.second.seq;
              });
    codec::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
    for (const auto& [msg, tag] : sorted) {
      codec::put_u32(out, msg);
      codec::put_u32(out, tag.seq);
      codec::put_u32(out, tag.barrier);
      codec::put_u32(out, static_cast<std::uint32_t>(tag.kind));
    }
  }
  return true;
}

bool FlushChannelProtocol::quiescent() const {
  for (const auto& [src, ch] : in_) {
    if (!ch.buffer.empty()) return false;
  }
  return true;
}

ProtocolFactory FlushChannelProtocol::factory() {
  return [](Host& host) {
    return std::make_unique<FlushChannelProtocol>(host);
  };
}

}  // namespace msgorder
