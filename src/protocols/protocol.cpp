#include "src/protocols/protocol.hpp"

#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/causal_ses.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/flush.hpp"
#include "src/protocols/global_flush.hpp"
#include "src/protocols/kweaker.hpp"
#include "src/protocols/registry.hpp"
#include "src/protocols/sync_locks.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/protocols/sync_token.hpp"
#include "src/spec/library.hpp"

namespace msgorder {

namespace {

CompositeSpec spec_of(std::vector<ForbiddenPredicate> predicates) {
  CompositeSpec spec;
  spec.predicates = std::move(predicates);
  return spec;
}

/// The flush stack's contract: forward/backward flush per FlushKind
/// color plus both directions for two-way sends.
CompositeSpec flush_spec() {
  CompositeSpec spec = two_way_flush(kTwoWayFlush);
  spec.predicates.push_back(local_forward_flush(kForwardFlush));
  spec.predicates.push_back(local_backward_flush(kBackwardFlush));
  return spec;
}

/// Logically synchronous stacks: crowns up to size 4 (the scopes the
/// verifier explores cannot build larger ones) plus causal ordering,
/// which logical synchrony implies.
CompositeSpec sync_spec() {
  CompositeSpec spec = logically_synchronous(4);
  spec.predicates.push_back(causal_ordering());
  return spec;
}

}  // namespace

std::string to_string(HoldKind kind) {
  switch (kind) {
    case HoldKind::kNone:
      return "none";
    case HoldKind::kWaitPredecessor:
      return "wait_predecessor";
    case HoldKind::kWaitToken:
      return "wait_token";
    case HoldKind::kWaitFlush:
      return "wait_flush";
    case HoldKind::kWaitSeq:
      return "wait_seq";
    case HoldKind::kWaitLock:
      return "wait_lock";
    case HoldKind::kWaitAck:
      return "wait_ack";
  }
  return "unknown";
}

std::vector<RegisteredProtocol> standard_protocols() {
  return {
      {"async", "tagless, delivers on arrival", AsyncProtocol::factory(),
       CompositeSpec{}},
      {"fifo", "tagged, per-channel sequence numbers",
       FifoProtocol::factory(), spec_of({fifo()})},
      {"causal-rst", "tagged, n x n matrix clock",
       CausalRstProtocol::factory(),
       spec_of({fifo(), causal_ordering()})},
      {"causal-ses", "tagged, vector clocks + destination pairs",
       CausalSesProtocol::factory(),
       spec_of({fifo(), causal_ordering()})},
      {"kweaker-1", "tagged, chain-depth map (k = 1)",
       KWeakerCausalProtocol::factory(1), spec_of({k_weaker_causal(1)})},
      {"flush", "tagged, per-channel flush barriers",
       FlushChannelProtocol::factory(), flush_spec()},
      {"global-flush", "tagged, red-frontier barrier matrices",
       GlobalFlushProtocol::factory(1),
       spec_of({global_forward_flush(1)})},
      {"sync-sequencer", "general, central grant sequencer",
       SyncSequencerProtocol::factory(), sync_spec()},
      {"sync-token", "general, circulating token ring",
       SyncTokenProtocol::factory(), sync_spec()},
      {"sync-locks", "general, pairwise ordered endpoint locks",
       SyncLocksProtocol::factory(), sync_spec()},
  };
}

}  // namespace msgorder
