#include "src/protocols/protocol.hpp"

#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/causal_ses.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/flush.hpp"
#include "src/protocols/global_flush.hpp"
#include "src/protocols/kweaker.hpp"
#include "src/protocols/registry.hpp"
#include "src/protocols/sync_locks.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/protocols/sync_token.hpp"

namespace msgorder {

std::string to_string(HoldKind kind) {
  switch (kind) {
    case HoldKind::kNone:
      return "none";
    case HoldKind::kWaitPredecessor:
      return "wait_predecessor";
    case HoldKind::kWaitToken:
      return "wait_token";
    case HoldKind::kWaitFlush:
      return "wait_flush";
    case HoldKind::kWaitSeq:
      return "wait_seq";
    case HoldKind::kWaitLock:
      return "wait_lock";
    case HoldKind::kWaitAck:
      return "wait_ack";
  }
  return "unknown";
}

std::vector<RegisteredProtocol> standard_protocols() {
  return {
      {"async", "tagless, delivers on arrival", AsyncProtocol::factory()},
      {"fifo", "tagged, per-channel sequence numbers",
       FifoProtocol::factory()},
      {"causal-rst", "tagged, n x n matrix clock",
       CausalRstProtocol::factory()},
      {"causal-ses", "tagged, vector clocks + destination pairs",
       CausalSesProtocol::factory()},
      {"kweaker-1", "tagged, chain-depth map (k = 1)",
       KWeakerCausalProtocol::factory(1)},
      {"flush", "tagged, per-channel flush barriers",
       FlushChannelProtocol::factory()},
      {"global-flush", "tagged, red-frontier barrier matrices",
       GlobalFlushProtocol::factory(1)},
      {"sync-sequencer", "general, central grant sequencer",
       SyncSequencerProtocol::factory()},
      {"sync-token", "general, circulating token ring",
       SyncTokenProtocol::factory()},
      {"sync-locks", "general, pairwise ordered endpoint locks",
       SyncLocksProtocol::factory()},
  };
}

}  // namespace msgorder
