// Experiment E11: specification-driven protocol specialization (the
// companion paper's [19] theme, executed).  For the global-forward-flush
// spec, compare the Theorem-3 generic sufficiency protocol (full causal
// ordering) against the specialized red-frontier protocol, sweeping the
// red fraction: the specialized protocol buffers strictly less, and at
// red = 100% the two converge.  The async baseline shows how often the
// spec breaks with no protocol at all.
#include <cstdio>

#include "src/checker/violation.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/global_flush.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

using namespace msgorder;

namespace {

struct Row {
  double buffer = 0;
  double latency = 0;
  int safe = 0;
  int runs = 0;
};

Row sweep(const ProtocolFactory& factory, double red_fraction,
          int trials) {
  Row row;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(300 + trial);
    WorkloadOptions wopts;
    wopts.n_processes = 5;
    wopts.n_messages = 400;
    wopts.mean_gap = 0.2;
    wopts.red_fraction = red_fraction;
    const Workload workload = random_workload(wopts, rng);
    SimOptions sopts;
    sopts.seed = 31 * trial + 11;
    sopts.network.jitter_mean = 3.0;
    const SimResult result =
        simulate(workload, factory, wopts.n_processes, sopts);
    if (!result.completed) continue;
    const auto run = result.trace.to_user_run();
    if (!run.has_value()) continue;
    ++row.runs;
    row.buffer += result.trace.mean_delivery_delay();
    row.latency += result.trace.mean_latency();
    row.safe += satisfies(*run, global_forward_flush(1));
  }
  return row;
}

}  // namespace

int main() {
  const int kTrials = 10;
  std::printf("E11: specialized global-flush protocol vs generic causal "
              "ordering (5 processes, 400 messages, %d trials)\n\n",
              kTrials);
  std::printf("%-6s | %-18s | %-18s | %-10s\n", "", "global-flush",
              "causal-rst (generic)", "async");
  std::printf("%-6s | %-8s %-9s | %-8s %-9s | %-10s\n", "red%", "buffer",
              "safe", "buffer", "safe", "safe");
  std::printf("%s\n", std::string(66, '-').c_str());

  bool ok = true;
  for (double red : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const Row spec = sweep(GlobalFlushProtocol::factory(1), red, kTrials);
    const Row causal = sweep(CausalRstProtocol::factory(), red, kTrials);
    const Row async_r = sweep(AsyncProtocol::factory(), red, kTrials);
    ok = ok && spec.safe == spec.runs && causal.safe == causal.runs;
    if (red > 0) {
      ok = ok && spec.buffer <= causal.buffer * 1.02;
    }
    std::printf("%-6.0f | %-8.3f %4d/%-4d | %-8.3f %4d/%-4d | %4d/%-4d\n",
                red * 100, spec.buffer / spec.runs, spec.safe, spec.runs,
                causal.buffer / causal.runs, causal.safe, causal.runs,
                async_r.safe, async_r.runs);
  }

  std::printf("\nexpected shape: both protocols always safe; the "
              "specialized one buffers strictly less at low red "
              "fractions and converges to causal at red=100%%; async "
              "violates once red messages exist\n");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
