// Experiment E1: empirical containment X_sync subset X_co subset X_async
// (Theorem 1's limit sets).  For growing message counts, sample random
// complete runs and report the fraction falling in each limit set.  The
// fractions must be nested and shrink with message count — the paper's
// containment chain, measured.
#include <cstdio>

#include "src/checker/limit_sets.hpp"
#include "src/poset/run_generator.hpp"

using namespace msgorder;

int main() {
  std::printf("E1: fraction of random runs inside each limit set\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "messages", "runs",
              "async", "causal", "sync");
  Rng rng(20240706);
  const int kTrials = 2000;
  bool nested = true;
  for (std::size_t messages : {1, 2, 3, 4, 6, 8, 12, 16, 24}) {
    int n_sync = 0;
    int n_co = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      RandomRunOptions opts;
      opts.n_processes = 4;
      opts.n_messages = messages;
      opts.send_bias = 0.6;
      const UserRun run = random_scheduled_run(opts, rng);
      const bool sync = in_sync(run);
      const bool causal = in_causal(run);
      if (sync && !causal) nested = false;
      n_sync += sync;
      n_co += causal;
    }
    std::printf("%-10zu %-10d %-10.3f %-10.3f %-10.3f\n", messages,
                kTrials, 1.0, static_cast<double>(n_co) / kTrials,
                static_cast<double>(n_sync) / kTrials);
  }
  std::printf("\ncontainment X_sync subset X_co never violated: %s\n",
              nested ? "yes" : "NO");

  // Second series: how the send bias (traffic concurrency) moves runs
  // out of the smaller sets, at a fixed message count.
  std::printf("\nE1b: limit-set fractions vs send bias (8 messages)\n");
  std::printf("%-10s %-10s %-10s\n", "bias", "causal", "sync");
  for (double bias : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    int n_sync = 0;
    int n_co = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      RandomRunOptions opts;
      opts.n_processes = 4;
      opts.n_messages = 8;
      opts.send_bias = bias;
      const UserRun run = random_scheduled_run(opts, rng);
      n_sync += in_sync(run);
      n_co += in_causal(run);
    }
    std::printf("%-10.1f %-10.3f %-10.3f\n", bias,
                static_cast<double>(n_co) / kTrials,
                static_cast<double>(n_sync) / kTrials);
  }
  return nested ? 0 : 1;
}
