// Experiment E7 (and Figures 1, 5, 6-10): the abstract semantics layer.
// For each limit protocol and a family of small message universes, the
// explorer computes X_P exhaustively and reports:
//   * reachable decomposed runs,
//   * complete user views vs the limit set's prediction (Theorem 1),
//   * Lemma 2 lifted-run containment counts, and
//   * liveness violations (must be zero).
#include <cstdio>
#include <set>

#include "src/checker/limit_sets.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"
#include "src/semantics/explorer.hpp"
#include "src/semantics/limit_protocols.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

namespace {

struct UniverseCase {
  const char* name;
  std::vector<Message> messages;
  std::size_t n_processes;
};

}  // namespace

int main() {
  const std::vector<UniverseCase> universes = {
      {"channel-pair", {{0, 0, 1, 0}, {1, 0, 1, 0}}, 2},
      {"crossing-pair", {{0, 0, 1, 0}, {1, 1, 0, 0}}, 2},
      {"relay", {{0, 0, 1, 0}, {1, 1, 2, 0}}, 3},
      {"triangle", {{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}}, 3},
      {"mixed-three", {{0, 0, 1, 0}, {1, 1, 0, 0}, {2, 0, 1, 0}}, 2},
  };

  const TaglessAll tagless;
  const TaggedCausal tagged;
  const GeneralSerializer general;
  const std::vector<const EnabledSetProtocol*> protocols = {
      &tagless, &tagged, &general};

  bool ok = true;
  std::printf("E7: exhaustive X_P exploration of the limit protocols\n\n");
  std::printf("%s %s %-8s %-8s %-10s %-10s %-6s\n",
              pad_right("universe", 14).c_str(),
              pad_right("protocol", 20).c_str(), "states", "views",
              "predicted", "lifted-in", "live");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (const UniverseCase& u : universes) {
    const auto all_runs = enumerate_scheduled_runs(u.messages);
    for (const EnabledSetProtocol* protocol : protocols) {
      const auto result = explore(*protocol, u.messages, u.n_processes);

      // Predicted characterization per Theorem 1.
      std::set<std::string> predicted;
      std::size_t lifted_contained = 0;
      std::size_t lifted_expected = 0;
      for (const UserRun& run : all_runs) {
        bool inside = true;
        if (protocol == &tagged) inside = in_causal(run);
        if (protocol == &general) inside = in_sync(run);
        if (!inside) continue;
        predicted.insert(run.to_string());
        ++lifted_expected;
        lifted_contained +=
            result.reachable_keys.count(lift(run).key()) > 0;
      }
      std::set<std::string> reached;
      for (const UserRun& v : result.complete_user_views) {
        if (v.message_count() == u.messages.size()) {
          reached.insert(v.to_string());
        }
      }
      const bool views_match = reached == predicted;
      const bool lifted_ok = lifted_contained == lifted_expected;
      const bool live = result.liveness_violations.empty();
      ok = ok && views_match && lifted_ok && live;
      std::printf("%s %s %-8zu %-8zu %-10s %zu/%zu      %-6s\n",
                  pad_right(u.name, 14).c_str(),
                  pad_right(protocol->name(), 20).c_str(),
                  result.reachable_keys.size(), reached.size(),
                  views_match ? "match" : "MISMATCH", lifted_contained,
                  lifted_expected, live ? "yes" : "NO");
    }
  }

  std::printf("\nexpected shape: states shrink from tagless to general; "
              "views always equal the limit-set prediction (Theorem 1); "
              "all lifted limit-set runs reachable (Lemma 2); zero "
              "liveness violations\n");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
