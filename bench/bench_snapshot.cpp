// Experiment E8 (the introduction's motivation, operationalized): the
// Chandy-Lamport snapshot is correct exactly when its markers are
// ordered FIFO with the user traffic.  We sweep network jitter and
// report the fraction of consistent snapshots with and without the
// ordering guarantee.
#include <cstdio>

#include "src/apps/snapshot.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

struct Fractions {
  int consistent = 0;
  int accounted = 0;
  int total = 0;
};

Fractions sweep(bool fifo_markers, double jitter, int trials) {
  Fractions f;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(1000 + trial);
    WorkloadOptions wopts;
    wopts.n_processes = 5;
    wopts.n_messages = 250;
    wopts.mean_gap = 0.3;
    const Workload workload = random_workload(wopts, rng);
    SnapshotProtocol::Registry registry;
    SnapshotProtocol::Options options;
    options.fifo_markers = fifo_markers;
    SimOptions sopts;
    sopts.seed = 7 * trial + 3;
    sopts.network.jitter_mean = jitter;
    const SimResult result =
        simulate(workload, SnapshotProtocol::factory(options, &registry),
                 wopts.n_processes, sopts);
    if (!result.completed) continue;
    const GlobalSnapshot snapshot = collect(registry);
    if (!snapshot.complete()) continue;
    ++f.total;
    f.consistent += snapshot.consistent();
    f.accounted += snapshot.channel_states_account();
  }
  return f;
}

}  // namespace

int main() {
  const int kTrials = 60;
  std::printf("E8: snapshot consistency vs marker ordering "
              "(5 processes, 250 messages, %d trials per cell)\n\n",
              kTrials);
  std::printf("%-8s | %-22s | %-22s\n", "", "FIFO markers", "async markers");
  std::printf("%-8s | %-10s %-10s | %-10s %-10s\n", "jitter",
              "consistent", "accounted", "consistent", "accounted");
  std::printf("%s\n", std::string(60, '-').c_str());
  bool ok = true;
  for (double jitter : {0.5, 2.0, 4.0, 8.0}) {
    const Fractions fifo = sweep(true, jitter, kTrials);
    const Fractions async_f = sweep(false, jitter, kTrials);
    std::printf("%-8.1f | %7.3f    %7.3f    | %7.3f    %7.3f\n", jitter,
                static_cast<double>(fifo.consistent) / fifo.total,
                static_cast<double>(fifo.accounted) / fifo.total,
                static_cast<double>(async_f.consistent) / async_f.total,
                static_cast<double>(async_f.accounted) / async_f.total);
    // FIFO snapshots must be perfect; async ones must degrade with
    // jitter.
    ok = ok && fifo.consistent == fifo.total &&
         fifo.accounted == fifo.total;
  }
  std::printf("\nexpected shape: FIFO column pinned at 1.000; async "
              "column degrades as jitter (reordering) grows\n");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
