// Experiment E5 (Section 5, k-weaker causal ordering): the ordering /
// overhead tradeoff as k grows.  k = 0 is exactly causal ordering; as k
// rises, delivery buffering falls toward the async floor while the tag
// (the chain-depth map) is what pays for the slack.  Also verifies
// safety at every k via the oracle.
#include <cstdio>

#include "src/checker/violation.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/kweaker.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

using namespace msgorder;

int main() {
  const std::size_t kProcesses = 5;
  const std::size_t kMessages = 800;
  Rng rng(5150);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.15;  // hot: deep reorderings
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = 99;
  sopts.network.jitter_mean = 4.0;

  std::printf("E5: k-weaker causal ordering tradeoff (%zu processes, %zu "
              "messages)\n\n",
              kProcesses, kMessages);
  std::printf("%-12s %-10s %-12s %-10s %-8s\n", "protocol", "buffer",
              "latency", "tag B/msg", "safe");

  const SimResult async_result =
      simulate(workload, AsyncProtocol::factory(), kProcesses, sopts);
  std::printf("%-12s %-10.3f %-12.3f %-10.1f %-8s\n", "async",
              async_result.trace.mean_delivery_delay(),
              async_result.trace.mean_latency(),
              async_result.trace.mean_tag_bytes(), "n/a");

  bool ok = async_result.completed;
  double previous_buffer = 1e18;
  bool monotone = true;
  for (std::size_t k : {0u, 1u, 2u, 4u, 16u, 64u, 256u}) {
    const SimResult result = simulate(
        workload, KWeakerCausalProtocol::factory(k), kProcesses, sopts);
    if (!result.completed) {
      std::printf("k=%zu FAILED: %s\n", k, result.error.c_str());
      ok = false;
      continue;
    }
    const auto run = result.trace.to_user_run();
    // The generic oracle is O(|M|^(k+2)); check safety exhaustively only
    // for small arities (larger k are covered by the unit tests on
    // smaller runs).
    const bool checkable = k <= 2;
    const bool safe = run.has_value() &&
                      (!checkable || satisfies(*run, k_weaker_causal(k)));
    ok = ok && safe;
    const double buffer = result.trace.mean_delivery_delay();
    if (buffer > previous_buffer * 1.02) monotone = false;
    previous_buffer = buffer;
    std::printf("k=%-10zu %-10.3f %-12.3f %-10.1f %-8s\n", k, buffer,
                result.trace.mean_latency(),
                result.trace.mean_tag_bytes(),
                checkable ? (safe ? "yes" : "NO") : "(skip)");
  }

  const SimResult rst =
      simulate(workload, CausalRstProtocol::factory(), kProcesses, sopts);
  std::printf("%-12s %-10.3f %-12.3f %-10.1f %-8s\n", "causal-rst",
              rst.trace.mean_delivery_delay(), rst.trace.mean_latency(),
              rst.trace.mean_tag_bytes(), "n/a");

  std::printf("\nexpected shape: buffering decreases with k from the "
              "causal level toward the async floor (0); every row safe "
              "for its own spec\n");
  std::printf("buffering monotone non-increasing in k: %s\n",
              monotone ? "yes" : "NO (noise)");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
