// Experiment E9 (paper conclusion: multicast extension): the broadcast
// ordering hierarchy, measured.  Async broadcast violates both specs;
// BSS causal broadcast restores causal order with O(n) tags and no
// control messages (tagged class); total-order broadcast needs the
// sequencer's control messages (general class) — the multicast analogue
// of the Theorem 1 separation.
#include <cstdio>

#include "src/apps/multicast.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

namespace {

struct Row {
  int causal_ok = 0;
  int total_ok = 0;
  int runs = 0;
  double ctrl = 0;
  double tag = 0;
  double latency = 0;
};

Row sweep(const ProtocolFactory& factory, int trials) {
  Row row;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(100 + trial);
    BroadcastWorkloadOptions opts;
    opts.n_processes = 5;
    opts.n_broadcasts = 80;
    opts.mean_gap = 0.25;
    const Workload workload = broadcast_workload(opts, rng);
    SimOptions sopts;
    sopts.seed = 13 * trial + 5;
    sopts.network.jitter_mean = 3.0;
    const SimResult result =
        simulate(workload, factory, opts.n_processes, sopts);
    if (!result.completed) continue;
    const auto run = result.trace.to_user_run();
    if (!run.has_value()) continue;
    ++row.runs;
    row.causal_ok += causal_broadcast_ok(*run);
    row.total_ok += total_order_ok(*run);
    row.ctrl += result.trace.control_packets_per_message();
    row.tag += result.trace.mean_tag_bytes();
    row.latency += result.trace.mean_latency();
  }
  return row;
}

}  // namespace

int main() {
  const int kTrials = 25;
  std::printf("E9: broadcast ordering hierarchy (5 processes, 80 "
              "broadcasts, %d trials)\n\n",
              kTrials);
  std::printf("%s %-12s %-12s %-10s %-10s %-10s\n",
              pad_right("protocol", 14).c_str(), "causal-ok", "total-ok",
              "ctrl/msg", "tag B/msg", "latency");
  std::printf("%s\n", std::string(72, '-').c_str());

  const struct {
    const char* name;
    ProtocolFactory factory;
  } protocols[] = {
      {"bcast-async", AsyncBroadcast::factory()},
      {"bcast-bss", CausalBroadcastBss::factory()},
      {"bcast-total", TotalOrderBroadcast::factory()},
  };

  bool ok = true;
  for (const auto& p : protocols) {
    const Row row = sweep(p.factory, kTrials);
    if (row.runs == 0) {
      ok = false;
      continue;
    }
    std::printf("%s %3d/%-8d %3d/%-8d %-10.2f %-10.1f %-10.2f\n",
                pad_right(p.name, 14).c_str(), row.causal_ok, row.runs,
                row.total_ok, row.runs, row.ctrl / row.runs,
                row.tag / row.runs, row.latency / row.runs);
    const std::string name = p.name;
    if (name == "bcast-bss" && row.causal_ok != row.runs) ok = false;
    if (name == "bcast-total" && row.total_ok != row.runs) ok = false;
  }

  std::printf("\nexpected shape: async fails both; bss always "
              "causal-ok with zero control traffic; total always "
              "total-ok but pays control messages\n");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
