// Experiment E6: the two general (control-message) protocols for
// logically synchronous ordering, swept over process count and load.
// The sequencer pays a bounded 3 control packets per message but
// centralizes; the token ring decentralizes but pays circulation when
// idle and ring latency before each send.  Both must stay inside X_sync
// everywhere — the ablation is about cost, never about safety.
#include <cstdio>

#include "src/checker/limit_sets.hpp"
#include "src/protocols/sync_locks.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/protocols/sync_token.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

struct Row {
  double latency = 0;
  double ctrl = 0;
  bool sync = false;
  bool completed = false;
};

Row run_one(const ProtocolFactory& factory, std::size_t n_processes,
            double mean_gap, std::size_t n_messages) {
  Rng rng(31337 + n_processes);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = mean_gap;
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = 7;
  sopts.network.jitter_mean = 1.0;
  const SimResult result =
      simulate(workload, factory, n_processes, sopts);
  Row row;
  row.completed = result.completed;
  if (!result.completed) return row;
  row.latency = result.trace.mean_latency();
  row.ctrl = result.trace.control_packets_per_message();
  const auto run = result.trace.to_user_run();
  row.sync = run.has_value() && in_sync(*run);
  return row;
}

}  // namespace

int main() {
  bool ok = true;
  std::printf("E6: sequencer vs token ring vs pairwise locks (logically "
              "synchronous ordering)\n\n");
  std::printf("%-4s %-6s | %-10s %-8s %-4s | %-10s %-8s %-4s | %-10s "
              "%-8s %-4s\n",
              "n", "gap", "seq lat", "ctrl", "ok", "tok lat", "ctrl",
              "ok", "lock lat", "ctrl", "ok");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (std::size_t n : {3u, 5u, 8u, 12u}) {
    for (double gap : {0.5, 5.0, 50.0}) {
      const Row seq =
          run_one(SyncSequencerProtocol::factory(), n, gap, 300);
      const Row tok = run_one(SyncTokenProtocol::factory(), n, gap, 300);
      const Row lck = run_one(SyncLocksProtocol::factory(), n, gap, 300);
      ok = ok && seq.completed && tok.completed && lck.completed &&
           seq.sync && tok.sync && lck.sync;
      std::printf("%-4zu %-6.1f | %-10.1f %-8.2f %-4s | %-10.1f %-8.2f "
                  "%-4s | %-10.1f %-8.2f %-4s\n",
                  n, gap, seq.latency, seq.ctrl, seq.sync ? "y" : "N",
                  tok.latency, tok.ctrl, tok.sync ? "y" : "N",
                  lck.latency, lck.ctrl, lck.sync ? "y" : "N");
    }
  }

  // E6b: disjoint-pair traffic — the decentralized locks overlap
  // independent pairs; the centralized designs serialize everything.
  std::printf("\nE6b: disjoint-pair workload (P0<->P1, P2<->P3, ...), "
              "latency by pair count\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "pairs", "sequencer", "token",
              "locks");
  for (std::size_t pairs : {1u, 2u, 4u}) {
    const std::size_t n = 2 * pairs;
    Rng rng(99 + pairs);
    std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
    SimTime t = 0;
    for (int i = 0; i < 240; ++i) {
      t += rng.exponential(0.05);
      const auto pair = static_cast<ProcessId>(rng.below(pairs));
      const ProcessId a = 2 * pair;
      const ProcessId b = a + 1;
      const bool forward = rng.chance(0.5);
      entries.push_back({t, forward ? a : b, forward ? b : a, 0});
    }
    const Workload w = scripted_workload(entries);
    SimOptions sopts;
    sopts.network.jitter_mean = 1.0;
    double lat[3] = {0, 0, 0};
    const ProtocolFactory factories[3] = {
        SyncSequencerProtocol::factory(), SyncTokenProtocol::factory(),
        SyncLocksProtocol::factory()};
    for (int f = 0; f < 3; ++f) {
      const SimResult r = simulate(w, factories[f], n, sopts);
      ok = ok && r.completed;
      lat[f] = r.trace.mean_latency();
      const auto run = r.trace.to_user_run();
      ok = ok && run.has_value() && in_sync(*run);
    }
    std::printf("%-6zu %-12.1f %-12.1f %-12.1f\n", pairs, lat[0], lat[1],
                lat[2]);
  }

  std::printf("\nexpected shape: sequencer ctrl/msg <= 3 always; token "
              "ctrl/msg explodes as traffic thins; locks pay ~5-6 "
              "ctrl/msg but their latency stays flat as disjoint pairs "
              "are added while the centralized designs degrade; every "
              "run logically synchronous\n");
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
