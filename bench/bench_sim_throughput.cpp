// ISSUE 6: simulator throughput under sharding.  One fixed randomized
// workload (1M messages by default) runs under the FIFO stack at each
// shard count; shards=1 is the sequential engine and the baseline.  For
// every sharded run the trace is checked for bit-identity against the
// baseline (the determinism contract), and the JSON row records the
// event rate the CI gate regresses on:
//
//   BENCH_sim_throughput.json, schema msgorder.bench.sim_throughput/1
//   rows[*]: shards, workers, engine, seconds, events,
//            events_per_second, speedup_vs_sequential, trace_parity
//
// The speedup at shards >= 2 comes from two stacked effects: the
// shard-local engine's per-event efficiency (24-byte POD heap items fed
// by an invoke cursor and a packet slab, instead of one giant priority
// queue of fat entries holding every pending invoke), and — on
// multi-core hosts — worker threads running shards in parallel inside
// each conservative window.  Rows record the worker count and the
// host's hardware concurrency so results from single-core CI runners
// read honestly.
//
// Flags:
//   --json <path>     output path (default BENCH_sim_throughput.json)
//   --quick           100k messages, shards {1, 4} (CI smoke + gate)
//   --messages <n>    override the workload size
//   --workers <n>     force SimOptions::shard_workers (default 0 = auto)
//   --reps <n>        timed repetitions per cell, best kept (default 1)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/protocols/fifo.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kMessages = 1'000'000;
constexpr std::size_t kQuickMessages = 100'000;
constexpr std::uint64_t kWorkloadSeed = 4242;
constexpr std::uint64_t kSimSeed = 1717;
// Fat conservative windows: lookahead 10 covers ~320 invokes per window
// at 32 processes with unit mean gap, so barrier overhead amortizes.
constexpr double kBaseDelay = 10.0;
constexpr double kJitterMean = 2.0;
constexpr double kMeanGap = 1.0;

/// Order-independent-free digest of the full trace: every per-process
/// log entry (process, message, kind, exact time bits) folded in log
/// order.  Equal digests + equal counters == the traces are identical
/// for the purpose of the parity gate (the unit tests compare
/// field-by-field; here we avoid keeping two 4M-event traces alive).
std::uint64_t trace_digest(const Trace& trace) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (std::size_t p = 0; p < trace.logs().size(); ++p) {
    mix(p);
    for (const TimedEvent& te : trace.logs()[p]) {
      mix(te.event.msg);
      mix(static_cast<std::uint64_t>(te.event.kind));
      mix(std::bit_cast<std::uint64_t>(te.time));
    }
  }
  mix(trace.control_packets());
  mix(trace.user_packets());
  mix(trace.tag_bytes());
  return h;
}

std::size_t trace_events(const Trace& trace) {
  std::size_t n = 0;
  for (const auto& log : trace.logs()) n += log.size();
  return n;
}

struct Cell {
  std::size_t shards = 0;
  std::size_t shards_used = 0;
  std::size_t workers_used = 0;
  double seconds = 0;
  std::size_t events = 0;
  std::uint64_t digest = 0;
  bool completed = false;
  std::string error;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  bool quick = false;
  std::size_t n_messages = 0;
  std::size_t workers = 0;
  int reps = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      n_messages = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (n_messages == 0) n_messages = quick ? kQuickMessages : kMessages;
  const std::vector<std::size_t> shard_counts =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};

  std::printf("sim throughput: %zu processes, %zu messages, fifo stack, "
              "base delay %.1f (lookahead), jitter %.1f\n\n",
              kProcesses, n_messages, kBaseDelay, kJitterMean);

  Rng rng(kWorkloadSeed);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = n_messages;
  wopts.mean_gap = kMeanGap;
  const Workload workload = random_workload(wopts, rng);

  std::vector<Cell> cells;
  cells.reserve(shard_counts.size());
  for (const std::size_t shards : shard_counts) {
    Cell cell;
    cell.shards = shards;
    for (int rep = 0; rep < reps; ++rep) {
      SimOptions sopts;
      sopts.seed = kSimSeed;
      sopts.network.base_delay = kBaseDelay;
      sopts.network.jitter_mean = kJitterMean;
      sopts.shards = shards;
      sopts.shard_workers = workers;
      sopts.max_events = n_messages * 40 + 1'000'000;
      const auto start = std::chrono::steady_clock::now();
      SimResult result =
          simulate(workload, FifoProtocol::factory(), kProcesses, sopts);
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (rep == 0 || elapsed < cell.seconds) cell.seconds = elapsed;
      if (rep == 0) {
        cell.shards_used = result.shards_used;
        cell.workers_used = result.workers_used;
        cell.completed = result.completed;
        cell.error = result.error;
        if (result.completed) {
          cell.events = trace_events(result.trace);
          cell.digest = trace_digest(result.trace);
        }
      }
    }
    std::printf("shards=%zu (used %zu, workers %zu): %.3fs, %zu events, "
                "%.0f events/s%s\n",
                cell.shards, cell.shards_used, cell.workers_used,
                cell.seconds, cell.events,
                static_cast<double>(cell.events) / cell.seconds,
                cell.completed ? "" : "  FAILED");
    cells.push_back(std::move(cell));
  }

  const Cell& base = cells.front();
  bool ok = base.completed && base.shards == 1;
  for (const Cell& cell : cells) {
    if (!cell.completed) {
      std::printf("FAIL: shards=%zu did not complete: %s\n", cell.shards,
                  cell.error.c_str());
      ok = false;
    } else if (cell.digest != base.digest || cell.events != base.events) {
      std::printf("FAIL: shards=%zu trace differs from sequential "
                  "baseline\n",
                  cell.shards);
      ok = false;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.bench.sim_throughput/1");
  w.kv("bench", "sim_throughput");
  w.kv("protocol", "fifo");
  w.kv("n_processes", kProcesses);
  w.kv("n_messages", n_messages);
  w.kv("workload_seed", kWorkloadSeed);
  w.kv("sim_seed", kSimSeed);
  w.kv("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("quick", quick);
  w.key("network").begin_object();
  w.kv("base_delay", kBaseDelay);
  w.kv("jitter_mean", kJitterMean);
  w.kv("fifo_channels", false);
  w.end_object();
  w.key("rows").begin_array();
  for (const Cell& cell : cells) {
    w.begin_object();
    w.kv("shards", cell.shards);
    w.kv("workers", cell.workers_used);
    w.kv("engine", cell.shards_used > 1 ? "sharded" : "sequential");
    w.kv("completed", cell.completed);
    w.kv("seconds", cell.seconds);
    w.kv("events", cell.events);
    w.kv("events_per_second",
         cell.seconds > 0 ? static_cast<double>(cell.events) / cell.seconds
                          : 0.0);
    w.kv("speedup_vs_sequential",
         cell.seconds > 0 ? base.seconds / cell.seconds : 0.0);
    w.kv("trace_parity",
         cell.completed && cell.digest == base.digest &&
             cell.events == base.events);
    w.end_object();
  }
  w.end_array();
  w.kv("trace_parity_all", ok);
  w.end_object();

  std::string io_error;
  if (!write_text_file(json_path, w.str(), &io_error)) {
    std::printf("could not write %s: %s\n", json_path.c_str(),
                io_error.c_str());
    ok = false;
  } else {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("RESULT: %s\n",
              ok ? "all shard counts completed with trace parity"
                 : "FAIL");
  return ok ? 0 : 1;
}
