// ISSUE 6: simulator throughput under sharding.  One fixed randomized
// workload (1M messages by default) runs under the FIFO stack at each
// shard count; shards=1 is the sequential engine and the baseline.  For
// every sharded run the trace is checked for bit-identity against the
// baseline (the determinism contract), and the JSON row records the
// event rate the CI gate regresses on:
//
//   BENCH_sim_throughput.json, schema msgorder.bench.sim_throughput/2
//   rows[*]: shards, workers, engine, seconds (min over reps),
//            seconds_median, seconds_cv, events, events_per_second,
//            events_per_second_median, speedup_vs_sequential,
//            speedup_vs_sequential_median, reps, trace_parity
//
// Schema /2 (ISSUE 7) adds --reps statistics (min / median / CV per
// timing field), a top-level "field_meta" object declaring the diff
// direction and noise floor of every gated field (consumed by
// msgorder_stats --diff instead of its leaf-name heuristic), and a
// top-level "profile" section: the msgorder.profile/1 document from one
// extra, untimed run at the largest shard count with the engine
// profiler attached.
//
// The speedup at shards >= 2 comes from two stacked effects: the
// shard-local engine's per-event efficiency (24-byte POD heap items fed
// by an invoke cursor and a packet slab, instead of one giant priority
// queue of fat entries holding every pending invoke), and — on
// multi-core hosts — worker threads running shards in parallel inside
// each conservative window.  Rows record the worker count and the
// host's hardware concurrency so results from single-core CI runners
// read honestly.
//
// Flags:
//   --json <path>     output path (default BENCH_sim_throughput.json)
//   --quick           100k messages, shards {1, 4} (CI smoke + gate)
//   --messages <n>    override the workload size
//   --workers <n>     force SimOptions::shard_workers (default 0 = auto)
//   --reps <n>        timed repetitions per cell (default 1); rows keep
//                     min, median, and coefficient of variation
//   --tracelog-dir <dir>  after the sweep, three extra untimed runs
//                     recording causal trace logs (ISSUE 9):
//                     sequential.tracelog, sharded.tracelog (largest
//                     shard count), and perturbed.tracelog (sequential
//                     with one channel's RNG stream XOR-perturbed).
//                     CI asserts `msgorder_query diverge` finds the
//                     first two identical and names the first diverging
//                     event of the third.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/fifo.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kMessages = 1'000'000;
constexpr std::size_t kQuickMessages = 100'000;
constexpr std::uint64_t kWorkloadSeed = 4242;
constexpr std::uint64_t kSimSeed = 1717;
// Fat conservative windows: lookahead 10 covers ~320 invokes per window
// at 32 processes with unit mean gap, so barrier overhead amortizes.
constexpr double kBaseDelay = 10.0;
constexpr double kJitterMean = 2.0;
constexpr double kMeanGap = 1.0;

/// Order-independent-free digest of the full trace: every per-process
/// log entry (process, message, kind, exact time bits) folded in log
/// order.  Equal digests + equal counters == the traces are identical
/// for the purpose of the parity gate (the unit tests compare
/// field-by-field; here we avoid keeping two 4M-event traces alive).
std::uint64_t trace_digest(const Trace& trace) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (std::size_t p = 0; p < trace.logs().size(); ++p) {
    mix(p);
    for (const TimedEvent& te : trace.logs()[p]) {
      mix(te.event.msg);
      mix(static_cast<std::uint64_t>(te.event.kind));
      mix(std::bit_cast<std::uint64_t>(te.time));
    }
  }
  mix(trace.control_packets());
  mix(trace.user_packets());
  mix(trace.tag_bytes());
  return h;
}

std::size_t trace_events(const Trace& trace) {
  std::size_t n = 0;
  for (const auto& log : trace.logs()) n += log.size();
  return n;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

/// Coefficient of variation (stddev / mean) across the reps — the
/// variance characterization the noise floors in field_meta rest on.
double cv_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  const double mean = sum / static_cast<double>(v.size());
  if (mean == 0.0) return 0.0;
  double sq = 0.0;
  for (const double x : v) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(v.size() - 1)) / mean;
}

struct Cell {
  std::size_t shards = 0;
  std::size_t shards_used = 0;
  std::size_t workers_used = 0;
  std::vector<double> rep_seconds;
  std::size_t events = 0;
  std::uint64_t digest = 0;
  bool completed = false;
  std::string error;

  double seconds_min() const {
    return *std::min_element(rep_seconds.begin(), rep_seconds.end());
  }
};

void write_field_meta(JsonWriter& w) {
  const auto field = [&w](const char* name, const char* direction,
                          double noise_floor) {
    w.key(name).begin_object();
    w.kv("direction", direction);
    w.kv("noise_floor", noise_floor);
    w.end_object();
  };
  w.key("field_meta").begin_object();
  // Min-of-reps timings still jitter heavily on shared CI runners;
  // medians are steadier, so they get the tighter floor.
  field("seconds", "lower", 0.5);
  field("seconds_median", "lower", 0.4);
  field("seconds_cv", "neutral", 0.0);
  field("events", "neutral", 0.0);
  field("events_per_second", "higher", 0.5);
  field("events_per_second_median", "higher", 0.4);
  field("speedup_vs_sequential", "higher", 0.5);
  field("speedup_vs_sequential_median", "higher", 0.4);
  field("reps", "neutral", 0.0);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  std::string tracelog_dir;
  bool quick = false;
  std::size_t n_messages = 0;
  std::size_t workers = 0;
  int reps = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tracelog-dir") == 0 && i + 1 < argc) {
      tracelog_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      n_messages = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (n_messages == 0) n_messages = quick ? kQuickMessages : kMessages;
  const std::vector<std::size_t> shard_counts =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};

  std::printf("sim throughput: %zu processes, %zu messages, fifo stack, "
              "base delay %.1f (lookahead), jitter %.1f, %d rep%s\n\n",
              kProcesses, n_messages, kBaseDelay, kJitterMean, reps,
              reps == 1 ? "" : "s");

  Rng rng(kWorkloadSeed);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = n_messages;
  wopts.mean_gap = kMeanGap;
  const Workload workload = random_workload(wopts, rng);

  const auto make_sopts = [&](std::size_t shards) {
    SimOptions sopts;
    sopts.seed = kSimSeed;
    sopts.network.base_delay = kBaseDelay;
    sopts.network.jitter_mean = kJitterMean;
    sopts.shards = shards;
    sopts.shard_workers = workers;
    sopts.max_events = n_messages * 40 + 1'000'000;
    return sopts;
  };

  std::vector<Cell> cells;
  cells.reserve(shard_counts.size());
  for (const std::size_t shards : shard_counts) {
    Cell cell;
    cell.shards = shards;
    for (int rep = 0; rep < reps; ++rep) {
      const SimOptions sopts = make_sopts(shards);
      const auto start = std::chrono::steady_clock::now();
      SimResult result =
          simulate(workload, FifoProtocol::factory(), kProcesses, sopts);
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      cell.rep_seconds.push_back(elapsed);
      if (rep == 0) {
        cell.shards_used = result.shards_used;
        cell.workers_used = result.workers_used;
        cell.completed = result.completed;
        cell.error = result.error;
        if (result.completed) {
          cell.events = trace_events(result.trace);
          cell.digest = trace_digest(result.trace);
        }
      }
    }
    std::printf("shards=%zu (used %zu, workers %zu): min %.3fs, "
                "median %.3fs, cv %.3f, %zu events, %.0f events/s%s\n",
                cell.shards, cell.shards_used, cell.workers_used,
                cell.seconds_min(), median_of(cell.rep_seconds),
                cv_of(cell.rep_seconds), cell.events,
                static_cast<double>(cell.events) / cell.seconds_min(),
                cell.completed ? "" : "  FAILED");
    cells.push_back(std::move(cell));
  }

  const Cell& base = cells.front();
  bool ok = base.completed && base.shards == 1;
  for (const Cell& cell : cells) {
    if (!cell.completed) {
      std::printf("FAIL: shards=%zu did not complete: %s\n", cell.shards,
                  cell.error.c_str());
      ok = false;
    } else if (cell.digest != base.digest || cell.events != base.events) {
      std::printf("FAIL: shards=%zu trace differs from sequential "
                  "baseline\n",
                  cell.shards);
      ok = false;
    }
  }

  // One extra, untimed run at the largest shard count with the engine
  // profiler attached (ISSUE 7); its msgorder.profile/1 document rides
  // along in the report so CI can sanity-check the counters against the
  // timed rows (same workload + seed = same deterministic event total).
  ObservabilityOptions popts;
  popts.attribution = false;
  popts.profiling = true;
  Observability profile_obs(popts);
  {
    SimOptions sopts = make_sopts(shard_counts.back());
    sopts.observability = &profile_obs;
    const SimResult result =
        simulate(workload, FifoProtocol::factory(), kProcesses, sopts);
    if (!result.completed) {
      std::printf("FAIL: profiled run did not complete: %s\n",
                  result.error.c_str());
      ok = false;
    }
  }
  const SimProfile* profile = profile_obs.profile();
  std::printf("\nprofiled run (shards=%zu): %llu windows, %llu events, "
              "stalls lookahead/empty/backpressure = %llu/%llu/%llu\n",
              shard_counts.back(),
              static_cast<unsigned long long>(profile->windows()),
              static_cast<unsigned long long>(profile->total_events()),
              static_cast<unsigned long long>(
                  profile->total_stall_lookahead()),
              static_cast<unsigned long long>(profile->total_stall_empty()),
              static_cast<unsigned long long>(
                  profile->total_stall_backpressure()));

  // Causal trace log recordings (ISSUE 9): three more untimed runs of
  // the same workload.  Sequential vs sharded must produce
  // byte-identical logs (msgorder_query diverge exit 0 — the
  // determinism contract, now end-to-end observable); the perturbed run
  // XORs one channel's RNG stream so diverge has a real first
  // divergence to name.
  if (!tracelog_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(tracelog_dir, ec);
    if (ec) {
      std::printf("FAIL: could not create %s: %s\n", tracelog_dir.c_str(),
                  ec.message().c_str());
      ok = false;
    }
    const auto record = [&](const char* name, std::size_t shards,
                            std::uint64_t perturb) {
      ObservabilityOptions topts;
      topts.attribution = false;
      topts.tracelog = tracelog_dir + "/" + name;
      Observability obs(topts);
      SimOptions sopts = make_sopts(shards);
      sopts.observability = &obs;
      if (perturb != 0) {
        sopts.network.perturb_channel_xor = perturb;
        sopts.network.perturb_src = workload.front().message.src;
        sopts.network.perturb_dst = workload.front().message.dst;
      }
      const SimResult result =
          simulate(workload, FifoProtocol::factory(), kProcesses, sopts);
      if (!result.completed) {
        std::printf("FAIL: tracelog run %s did not complete: %s\n", name,
                    result.error.c_str());
        ok = false;
        return;
      }
      std::printf("recorded %s (%llu events, %llu bytes)\n",
                  topts.tracelog.c_str(),
                  static_cast<unsigned long long>(
                      obs.tracelog()->events_written()),
                  static_cast<unsigned long long>(
                      obs.tracelog()->bytes_written()));
    };
    record("sequential.tracelog", 1, 0);
    record("sharded.tracelog", shard_counts.back(), 0);
    record("perturbed.tracelog", 1, 0x9e3779b97f4a7c15ULL);
  }

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.bench.sim_throughput/2");
  w.kv("bench", "sim_throughput");
  w.kv("protocol", "fifo");
  w.kv("n_processes", kProcesses);
  w.kv("n_messages", n_messages);
  w.kv("workload_seed", kWorkloadSeed);
  w.kv("sim_seed", kSimSeed);
  w.kv("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("quick", quick);
  w.kv("reps", reps);
  w.key("network").begin_object();
  w.kv("base_delay", kBaseDelay);
  w.kv("jitter_mean", kJitterMean);
  w.kv("fifo_channels", false);
  w.end_object();
  write_field_meta(w);
  w.key("rows").begin_array();
  const double base_min = base.seconds_min();
  const double base_median = median_of(base.rep_seconds);
  for (const Cell& cell : cells) {
    const double cell_min = cell.seconds_min();
    const double cell_median = median_of(cell.rep_seconds);
    w.begin_object();
    w.kv("shards", cell.shards);
    w.kv("workers", cell.workers_used);
    w.kv("engine", cell.shards_used > 1 ? "sharded" : "sequential");
    w.kv("completed", cell.completed);
    w.kv("seconds", cell_min);
    w.kv("seconds_median", cell_median);
    w.kv("seconds_cv", cv_of(cell.rep_seconds));
    w.kv("reps", reps);
    w.kv("events", cell.events);
    w.kv("events_per_second",
         cell_min > 0 ? static_cast<double>(cell.events) / cell_min : 0.0);
    w.kv("events_per_second_median",
         cell_median > 0 ? static_cast<double>(cell.events) / cell_median
                         : 0.0);
    w.kv("speedup_vs_sequential", cell_min > 0 ? base_min / cell_min : 0.0);
    w.kv("speedup_vs_sequential_median",
         cell_median > 0 ? base_median / cell_median : 0.0);
    w.kv("trace_parity",
         cell.completed && cell.digest == base.digest &&
             cell.events == base.events);
    w.end_object();
  }
  w.end_array();
  w.kv("trace_parity_all", ok);
  w.key("profile");
  profile->write_json(w);
  w.end_object();

  std::string io_error;
  if (!write_text_file(json_path, w.str(), &io_error)) {
    std::printf("could not write %s: %s\n", json_path.c_str(),
                io_error.c_str());
    ok = false;
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("RESULT: %s\n",
              ok ? "all shard counts completed with trace parity"
                 : "FAIL");
  return ok ? 0 : 1;
}
