// Experiment E4: oracle cost.  The violation-witness search is
// O(|M|^arity) with pruning; the dedicated limit-set checkers are
// polynomial.  Sweeps run size for both, plus closure cost for the run
// representation itself.
//
// ISSUE 2: before the google-benchmark sweep runs, a deterministic
// chrono sweep writes BENCH_checker_scaling.json (schema
// msgorder.bench.checker_scaling/1, see DESIGN.md "Observability"):
// per run size, wall time of the offline oracle and the dedicated
// checkers, plus the online monitor's per-event cost and its
// events-to-detection on a violating feed.  Flags (ours are consumed
// before google-benchmark sees argv):
//   --json <path>   output path (default BENCH_checker_scaling.json)
//   --json-only     write the JSON report and skip the gbench sweep
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/checker/limit_sets.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/obs/json.hpp"
#include "src/poset/run_generator.hpp"
#include "src/protocols/async.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

UserRun sized_run(std::size_t n_messages, std::uint64_t seed) {
  Rng rng(seed);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = n_messages;
  opts.send_bias = 0.7;
  return random_scheduled_run(opts, rng);
}

void BM_CausalOracle(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  const ForbiddenPredicate spec = causal_ordering();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CausalOracle)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_DirectCausalChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_causal(run));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectCausalChecker)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_SyncChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_sync(run));
  }
}
BENCHMARK(BM_SyncChecker)->RangeMultiplier(2)->Range(8, 256);

void BM_CrownOracleArity3(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 7);
  const ForbiddenPredicate spec = sync_crown(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_CrownOracleArity3)->RangeMultiplier(2)->Range(8, 64);

void BM_KWeakerOracleArity4(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 9);
  const ForbiddenPredicate spec = k_weaker_causal(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_KWeakerOracleArity4)->RangeMultiplier(2)->Range(8, 64);

void BM_RunConstructionClosure(benchmark::State& state) {
  Rng rng(11);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_scheduled_run(opts, rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RunConstructionClosure)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

/// Median-free micro timer: run `fn` repeatedly until ~10ms of work (or
/// the iteration cap) and return seconds per call.
template <typename Fn>
double seconds_per_call(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t iterations = 0;
  double elapsed = 0;
  do {
    fn();
    ++iterations;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < 0.01 && iterations < 1000);
  return elapsed / static_cast<double>(iterations);
}

/// The deterministic sweep behind BENCH_checker_scaling.json.
int write_scaling_report(const std::string& path) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.bench.checker_scaling/1");
  w.kv("bench", "checker_scaling");
  w.kv("n_processes", 6);
  w.kv("spec", causal_ordering().to_string());
  w.key("rows").begin_array();

  for (const std::size_t n : {16, 32, 64, 128, 256}) {
    const UserRun run = sized_run(n, 3);
    const ForbiddenPredicate spec = causal_ordering();

    const double oracle_s =
        seconds_per_call([&] { (void)find_violation(run, spec); });
    const double direct_causal_s =
        seconds_per_call([&] { (void)in_causal(run); });
    const double direct_sync_s =
        seconds_per_call([&] { (void)in_sync(run); });

    // Online monitor cost: feed it a raw-async simulation of the same
    // size on a jittered network (causal violations appear quickly), and
    // record per-event wall cost plus events-to-detection.
    Rng rng(17);
    WorkloadOptions wopts;
    wopts.n_processes = 6;
    wopts.n_messages = n;
    wopts.mean_gap = 0.2;
    const Workload workload = random_workload(wopts, rng);
    auto monitor = std::make_shared<OnlineMonitor>(
        workload_universe(workload), spec);
    monitor->enable_timing();
    SimOptions sopts;
    sopts.seed = 29;
    sopts.network.jitter_mean = 3.0;
    sopts.observers.add(monitor_observer(monitor));
    const SimResult result = simulate(workload, AsyncProtocol::factory(),
                                      wopts.n_processes, sopts);

    w.begin_object();
    w.kv("n_messages", n);
    w.kv("oracle_seconds", oracle_s);
    w.kv("direct_causal_seconds", direct_causal_s);
    w.kv("direct_sync_seconds", direct_sync_s);
    w.kv("monitor_events", monitor->events_seen());
    w.kv("monitor_seconds_per_event",
         monitor->timed_events() > 0
             ? monitor->on_event_seconds() /
                   static_cast<double>(monitor->timed_events())
             : 0.0);
    w.kv("monitor_violated", monitor->violated());
    w.kv("monitor_events_to_detection", monitor->events_to_detection());
    w.kv("sim_completed", result.completed);
    w.end_object();
  }

  w.end_array();
  w.end_object();

  std::string error;
  if (!write_text_file(path, w.str(), &error)) {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace msgorder

int main(int argc, char** argv) {
  std::string json_path = "BENCH_checker_scaling.json";
  bool json_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const int report_status = msgorder::write_scaling_report(json_path);
  if (json_only || report_status != 0) return report_status;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
