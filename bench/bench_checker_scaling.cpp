// Experiment E4: oracle cost.  The violation-witness search is
// O(|M|^arity) with pruning; the dedicated limit-set checkers are
// polynomial.  Sweeps run size for both, plus closure cost for the run
// representation itself.
//
// ISSUE 2: before the google-benchmark sweep runs, a deterministic
// chrono sweep writes BENCH_checker_scaling.json (schema
// msgorder.bench.checker_scaling/3, see DESIGN.md "Observability"):
// per run size, wall time of the offline oracle and the dedicated
// checkers, plus the online monitor's per-event cost and its
// events-to-detection on a violating feed.  ISSUE 3 bumps the schema:
// every timed checker now also reports the seed (naive) implementation
// and the speedup ratio, the pruned and naive monitors run over the
// same simulated feed and the row records their parity (same verdict,
// first witness, and detection event — the sweep exits nonzero on any
// mismatch), and independent (size) cells fan out over a thread pool.
// ISSUE 4 bumps it again: rows carry the pruned monitor's WitnessEngine
// counters (DFS nodes, candidate populations before/after the pair
// filters, prune rate, words scanned) and the incremental X_sync
// checker's implied-edge / splice-row-OR counts.  ISSUE 7 bumps it to
// /4: every timed field becomes the median over --reps repetitions of
// the whole cell, with <field>_min and <field>_cv (coefficient of
// variation) alongside, and a top-level "field_meta" object declares
// each field's diff direction and noise floor for msgorder_stats
// --diff (so CI can gate more fields without false alarms).  Parity is
// asserted across every rep.  ISSUE 8 bumps it to /5: rows add (a) an
// automaton cell — a colored feed checked by the compiled monitor
// automaton (amortized O(1)/event) vs the bitset and naive monitors on
// the same feed, with the compiled machine's size and an
// automaton_speedup ratio, parity asserted 3-way — and (b) a batched
// cell timing the kPruned monitor at batch_size 8 vs 1 on the causal
// feed.  Replay timing (construct once, reset() + refeed per timed
// call) keeps the measured loop above the clock floor.
// Flags (ours are consumed before google-benchmark sees argv):
//   --json <path>   output path (default BENCH_checker_scaling.json)
//   --json-only     write the JSON report and skip the gbench sweep
//   --quick         small sizes only (CI smoke configuration)
//   --threads <n>   sweep worker threads (default: hardware concurrency)
//   --reps <n>      repetitions of every cell (default 1)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/sync_incremental.hpp"
#include "src/checker/violation.hpp"
#include "src/obs/json.hpp"
#include "src/poset/run_generator.hpp"
#include "src/protocols/async.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"
#include "src/util/parallel.hpp"

namespace msgorder {
namespace {

UserRun sized_run(std::size_t n_messages, std::uint64_t seed) {
  Rng rng(seed);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = n_messages;
  opts.send_bias = 0.7;
  return random_scheduled_run(opts, rng);
}

/// A serial (one sender, in-order delivery) run: violation-free for the
/// causal spec, so oracle timings on it measure the exhaustive search
/// (no early exit on a flagrant witness, which the random async runs
/// above hand to the naive scan almost immediately).
UserRun clean_serial_run(std::size_t n_messages) {
  std::vector<Message> ms(n_messages);
  std::vector<ScheduleStep> sends(n_messages), delivers(n_messages);
  for (std::size_t i = 0; i < n_messages; ++i) {
    ms[i] = {static_cast<MessageId>(i), 0, 1, 0};
    sends[i] = {static_cast<MessageId>(i), UserEventKind::kSend};
    delivers[i] = {static_cast<MessageId>(i), UserEventKind::kDeliver};
  }
  auto run = UserRun::from_schedules(std::move(ms), {sends, delivers});
  return *run;
}

void BM_CausalOracle(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  const ForbiddenPredicate spec = causal_ordering();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CausalOracle)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_DirectCausalChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_causal(run));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectCausalChecker)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_SyncChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_sync(run));
  }
}
BENCHMARK(BM_SyncChecker)->RangeMultiplier(2)->Range(8, 256);

void BM_CrownOracleArity3(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 7);
  const ForbiddenPredicate spec = sync_crown(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_CrownOracleArity3)->RangeMultiplier(2)->Range(8, 64);

void BM_KWeakerOracleArity4(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 9);
  const ForbiddenPredicate spec = k_weaker_causal(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_KWeakerOracleArity4)->RangeMultiplier(2)->Range(8, 64);

void BM_RunConstructionClosure(benchmark::State& state) {
  Rng rng(11);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_scheduled_run(opts, rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RunConstructionClosure)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

/// Micro timer: three sampling windows of up to ~10ms each, keeping the
/// fastest window's per-call time.  Min-of-windows discards scheduler
/// preemptions and frequency dips, which single-window sampling let
/// through — the speedup ratios feed the CI regression gate (ISSUE 4),
/// so they need to be reproducible, not just plausible.
template <typename Fn>
double seconds_per_call(Fn&& fn) {
  double best = 1e100;
  for (int window = 0; window < 3; ++window) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t iterations = 0;
    double elapsed = 0;
    do {
      fn();
      ++iterations;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    } while (elapsed < 0.01 && iterations < 100000);
    best = std::min(best, elapsed / static_cast<double>(iterations));
  }
  return best;
}

/// One (run size) cell of the deterministic sweep; computed on a worker
/// thread, serialized by the caller after the join.
struct ScalingCell {
  std::size_t n_messages = 0;
  double oracle_s = 0, oracle_naive_s = 0;
  double oracle_clean_s = 0, oracle_clean_naive_s = 0;
  double causal_s = 0, causal_naive_s = 0;
  double sync_s = 0, sync_naive_s = 0;
  double incr_sync_s = 0;
  bool incr_sync_agrees = false;
  std::uint64_t incr_implied_edges = 0;
  std::uint64_t incr_splice_row_ors = 0;
  WitnessEngine::Stats engine_stats;
  std::uint64_t monitor_events = 0;
  double monitor_spe = 0, monitor_naive_spe = 0;
  bool monitor_violated = false;
  std::uint64_t monitor_events_to_detection = 0;
  bool monitor_parity_ok = false;
  bool sim_completed = false;
  // ISSUE 8: compiled-automaton cell (marked_send_order on a red feed).
  double automaton_spe = 0, automaton_bitset_spe = 0;
  bool automaton_compiled = false;
  std::string automaton_fallback_reason;
  std::size_t automaton_states = 0, automaton_symbol_classes = 0;
  std::uint64_t automaton_transitions = 0;
  bool automaton_violated = false;
  bool automaton_parity_ok = false;
  // ISSUE 8 satellite: batched re-intersection cell (causal feed).
  double batched_spe = 0, batch1_spe = 0;
  bool batched_verdict_ok = false;
  std::uint64_t batched_searches = 0;
  double batched_prune_rate = 0;
};

/// Per-event replay timing: reset the monitor to its post-construction
/// state and refeed the recorded events under one timer.  A whole-feed
/// replay stays far above the steady_clock floor that a per-event timer
/// would sit on, so the automaton's single-digit-ns transitions are
/// measurable.
template <typename Flush>
double replay_seconds_per_event(
    OnlineMonitor& monitor,
    const std::vector<std::tuple<ProcessId, SystemEvent, double>>& feed,
    Flush&& flush) {
  if (feed.empty()) return 0.0;
  const double per_replay = seconds_per_call([&] {
    monitor.reset();
    for (const auto& [p, e, t] : feed) monitor.on_event(p, e, t);
    flush(monitor);
  });
  return per_replay / static_cast<double>(feed.size());
}

ScalingCell measure_scaling_cell(std::size_t n) {
  ScalingCell cell;
  cell.n_messages = n;
  const UserRun run = sized_run(n, 3);
  const ForbiddenPredicate spec = causal_ordering();

  cell.oracle_s =
      seconds_per_call([&] { (void)find_violation(run, spec); });
  cell.oracle_naive_s =
      seconds_per_call([&] { (void)find_violation_naive(run, spec); });
  const UserRun clean = clean_serial_run(n);
  cell.oracle_clean_s =
      seconds_per_call([&] { (void)find_violation(clean, spec); });
  cell.oracle_clean_naive_s =
      seconds_per_call([&] { (void)find_violation_naive(clean, spec); });
  cell.causal_s = seconds_per_call([&] { (void)in_causal(run); });
  cell.causal_naive_s =
      seconds_per_call([&] { (void)in_causal_naive(run); });
  cell.sync_s = seconds_per_call([&] { (void)in_sync(run); });
  cell.sync_naive_s = seconds_per_call([&] { (void)in_sync_naive(run); });

  // Online monitor cost: feed a raw-async simulation of the same size on
  // a jittered network (causal violations appear quickly) to the pruned
  // and the naive monitor — the same feed, so their verdict, first
  // witness, and detection event must agree — and record per-event wall
  // cost for each.  The incremental X_sync checker rides the same feed.
  Rng rng(17);
  WorkloadOptions wopts;
  wopts.n_processes = 6;
  wopts.n_messages = n;
  wopts.mean_gap = 0.2;
  const Workload workload = random_workload(wopts, rng);
  auto monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), spec, MonitorSearchMode::kPruned);
  auto naive_monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), spec, MonitorSearchMode::kNaive);
  monitor->enable_timing();
  naive_monitor->enable_timing();
  monitor->set_engine_stats(&cell.engine_stats);
  std::vector<std::tuple<ProcessId, SystemEvent, double>> feed;
  SimOptions sopts;
  sopts.seed = 29;
  sopts.network.jitter_mean = 3.0;
  sopts.observers.add(monitor_observer(monitor));
  sopts.observers.add(monitor_observer(naive_monitor));
  sopts.observers.add([&feed](ProcessId p, SystemEvent e, SimTime t) {
    feed.emplace_back(p, e, t);
  });
  const SimResult result = simulate(workload, AsyncProtocol::factory(),
                                    wopts.n_processes, sopts);

  const auto per_event = [](const OnlineMonitor& m) {
    return m.timed_events() > 0
               ? m.on_event_seconds() / static_cast<double>(m.timed_events())
               : 0.0;
  };
  cell.monitor_events = monitor->events_seen();
  cell.monitor_spe = per_event(*monitor);
  cell.monitor_naive_spe = per_event(*naive_monitor);
  cell.monitor_violated = monitor->violated();
  cell.monitor_events_to_detection = monitor->events_to_detection();
  cell.monitor_parity_ok =
      monitor->violated() == naive_monitor->violated() &&
      monitor->violation_count() == naive_monitor->violation_count() &&
      monitor->events_to_detection() ==
          naive_monitor->events_to_detection() &&
      monitor->first_witness() == naive_monitor->first_witness();
  cell.sim_completed = result.completed;

  // Replay the recorded feed through the incremental checker under the
  // timer, and compare its verdict with the batch oracle on the lifted
  // user run.
  const auto replay = [&] {
    IncrementalSyncChecker incr(n);
    for (const auto& [p, e, t] : feed) incr.on_event(p, e);
    return incr.in_sync();
  };
  cell.incr_sync_s = seconds_per_call(replay);
  const auto lifted = result.trace.to_user_run();
  cell.incr_sync_agrees =
      !lifted.has_value() || replay() == in_sync(*lifted);
  {
    IncrementalSyncChecker incr(n);
    for (const auto& [p, e, t] : feed) incr.on_event(p, e);
    cell.incr_implied_edges = incr.implied_edges();
    cell.incr_splice_row_ors = incr.splice_row_ors();
  }
  monitor->set_engine_stats(nullptr);  // cell outlives the monitor copy

  // ISSUE 8 satellite: batched re-intersection on the same causal feed.
  // One unpinned search per 8 user events instead of one pinned search
  // per event; flush() closes the partial batch before the verdict.
  {
    OnlineMonitor batched(workload_universe(workload), spec,
                          MonitorOptions{MonitorSearchMode::kPruned, 8});
    OnlineMonitor batch1(workload_universe(workload), spec,
                         MonitorOptions{MonitorSearchMode::kPruned, 1});
    WitnessEngine::Stats batched_stats;
    batched.set_engine_stats(&batched_stats);
    for (const auto& [p, e, t] : feed) batched.on_event(p, e, t);
    batched.flush();
    batched.set_engine_stats(nullptr);
    cell.batched_verdict_ok = batched.violated() == monitor->violated();
    cell.batched_searches = batched_stats.searches;
    cell.batched_prune_rate = batched_stats.prune_rate();
    const auto flush_batch = [](OnlineMonitor& m) { m.flush(); };
    const auto no_flush = [](OnlineMonitor&) {};
    cell.batched_spe = replay_seconds_per_event(batched, feed, flush_batch);
    cell.batch1_spe = replay_seconds_per_event(batch1, feed, no_flush);
  }

  // ISSUE 8 tentpole: the compiled monitor automaton on a colored feed.
  // marked_send_order(0, 1) compiles (single-cluster, send-only, two
  // color classes); a red_fraction workload violates it quickly, so the
  // cell also exercises the replay witness extraction.  The bitset and
  // naive monitors consume the identical feed — verdict, first witness,
  // and detection event must agree three ways.
  {
    Rng arng(23);
    WorkloadOptions awopts;
    awopts.n_processes = 6;
    awopts.n_messages = n;
    awopts.mean_gap = 0.2;
    awopts.red_fraction = 0.3;
    const Workload aworkload = random_workload(awopts, arng);
    const ForbiddenPredicate aspec = marked_send_order(0, 1);
    std::vector<std::tuple<ProcessId, SystemEvent, double>> afeed;
    SimOptions asopts;
    asopts.seed = 31;
    asopts.network.jitter_mean = 3.0;
    asopts.observers.add([&afeed](ProcessId p, SystemEvent e, SimTime t) {
      afeed.emplace_back(p, e, t);
    });
    (void)simulate(aworkload, AsyncProtocol::factory(),
                   awopts.n_processes, asopts);

    OnlineMonitor automaton(
        workload_universe(aworkload), aspec,
        MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    OnlineMonitor bitset(workload_universe(aworkload), aspec,
                         MonitorSearchMode::kPruned);
    OnlineMonitor anaive(workload_universe(aworkload), aspec,
                         MonitorSearchMode::kNaive);
    for (const auto& [p, e, t] : afeed) {
      automaton.on_event(p, e, t);
      bitset.on_event(p, e, t);
      anaive.on_event(p, e, t);
    }
    const OnlineMonitor::AutomatonInfo info = automaton.automaton_info();
    cell.automaton_compiled = info.compiled;
    cell.automaton_fallback_reason = info.fallback_reason;
    cell.automaton_states = info.states;
    cell.automaton_symbol_classes = info.symbol_classes;
    cell.automaton_transitions = info.transitions;
    cell.automaton_violated = automaton.violated();
    cell.automaton_parity_ok =
        info.compiled &&
        automaton.violated() == bitset.violated() &&
        bitset.violated() == anaive.violated() &&
        automaton.first_witness() == bitset.first_witness() &&
        bitset.first_witness() == anaive.first_witness() &&
        automaton.events_to_detection() == bitset.events_to_detection() &&
        bitset.events_to_detection() == anaive.events_to_detection();
    // Steady-state per-event cost on a violation-free colored feed:
    // every process sends its red (color 1) messages before its plain
    // (color 0) ones, so marked_send_order(0, 1) never completes and
    // neither monitor gets an early out — the bitset engine runs its
    // full pruned search on every event, the automaton takes one table
    // step (plus the feed log append that backs witness extraction).
    // Timing the violating feed instead would bill the automaton for
    // one whole witness-extraction replay per timed refeed.
    std::vector<Message> clean_universe;
    std::vector<std::tuple<ProcessId, SystemEvent, double>> clean_feed;
    const std::size_t per_process = (n + 5) / 6;
    for (MessageId id = 0; id < n; ++id) {
      const auto src = static_cast<ProcessId>(id / per_process);
      const auto dst = static_cast<ProcessId>((src + 1) % 6);
      const bool red = id % per_process < (per_process * 3 + 9) / 10;
      clean_universe.push_back(Message{id, src, dst, red ? 1 : 0});
    }
    for (MessageId id = 0; id < n; ++id) {
      const double t = 2.0 * static_cast<double>(id);
      clean_feed.emplace_back(clean_universe[id].src,
                              SystemEvent{id, EventKind::kSend}, t);
      clean_feed.emplace_back(clean_universe[id].dst,
                              SystemEvent{id, EventKind::kDeliver}, t + 1);
    }
    OnlineMonitor automaton_clean(
        clean_universe, aspec,
        MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    OnlineMonitor bitset_clean(clean_universe, aspec,
                               MonitorSearchMode::kPruned);
    const auto no_flush = [](OnlineMonitor&) {};
    cell.automaton_spe =
        replay_seconds_per_event(automaton_clean, clean_feed, no_flush);
    cell.automaton_bitset_spe =
        replay_seconds_per_event(bitset_clean, clean_feed, no_flush);
    // The clean feed must actually be clean, in both engines' eyes.
    cell.automaton_parity_ok = cell.automaton_parity_ok &&
                               !automaton_clean.violated() &&
                               !bitset_clean.violated();
  }
  return cell;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

double min_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

/// Coefficient of variation (stddev / mean) across reps — the variance
/// characterization behind the field_meta noise floors.
double cv_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  const double mean = sum / static_cast<double>(v.size());
  if (mean == 0.0) return 0.0;
  double sq = 0.0;
  for (const double x : v) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(v.size() - 1)) / mean;
}

void write_field_meta(JsonWriter& w) {
  const auto field = [&w](const std::string& name, const char* direction,
                          double noise_floor) {
    w.key(name).begin_object();
    w.kv("direction", direction);
    w.kv("noise_floor", noise_floor);
    w.end_object();
  };
  // Min-of-reps values jitter more than the medians on shared runners,
  // hence the wider floors on the _min variants; _cv is informational.
  const auto timed = [&field](const std::string& base, double noise_floor) {
    field(base, "lower", noise_floor);
    field(base + "_min", "lower", noise_floor + 0.15);
    field(base + "_cv", "neutral", 0.0);
  };
  const auto ratio = [&field](const std::string& base, double noise_floor) {
    field(base, "higher", noise_floor);
    field(base + "_min", "higher", noise_floor + 0.15);
    field(base + "_cv", "neutral", 0.0);
  };
  w.key("field_meta").begin_object();
  timed("oracle_seconds", 0.35);
  timed("oracle_seconds_naive", 0.35);
  ratio("oracle_speedup", 0.5);
  timed("oracle_clean_seconds", 0.35);
  timed("oracle_clean_seconds_naive", 0.35);
  ratio("oracle_clean_speedup", 0.5);
  timed("direct_causal_seconds", 0.35);
  timed("direct_causal_seconds_naive", 0.35);
  ratio("direct_causal_speedup", 0.4);
  timed("direct_sync_seconds", 0.35);
  timed("direct_sync_seconds_naive", 0.35);
  ratio("direct_sync_speedup", 0.2);
  timed("incremental_sync_seconds", 0.35);
  timed("monitor_seconds_per_event", 0.35);
  timed("monitor_seconds_per_event_naive", 0.35);
  ratio("monitor_speedup", 0.5);
  timed("automaton_seconds_per_event", 0.35);
  timed("automaton_seconds_per_event_bitset", 0.35);
  ratio("automaton_speedup", 0.5);
  timed("monitor_batched_seconds_per_event", 0.35);
  timed("monitor_batch1_seconds_per_event", 0.35);
  ratio("monitor_batched_speedup", 0.5);
  field("reps", "neutral", 0.0);
  w.end_object();
}

/// The deterministic sweep behind BENCH_checker_scaling.json.
int write_scaling_report(const std::string& path, bool quick,
                         std::size_t n_threads, std::size_t reps) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16, 32, 64}
            : std::vector<std::size_t>{16, 32, 64, 128, 256};
  if (reps == 0) reps = 1;
  if (n_threads == 0) n_threads = default_sweep_threads(sizes.size() * reps);
  std::vector<std::vector<ScalingCell>> cells(
      sizes.size(), std::vector<ScalingCell>(reps));
  parallel_for(sizes.size() * reps, n_threads, [&](std::size_t j) {
    cells[j / reps][j % reps] = measure_scaling_cell(sizes[j / reps]);
  });

  const auto speedup = [](double naive, double fast) {
    return fast > 0 ? naive / fast : 0.0;
  };
  bool parity_ok = true;
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.bench.checker_scaling/5");
  w.kv("bench", "checker_scaling");
  w.kv("n_processes", 6);
  w.kv("spec", causal_ordering().to_string());
  w.kv("automaton_spec", marked_send_order(0, 1).to_string());
  w.kv("monitor_batch_size", 8);
  w.kv("sweep_threads", static_cast<std::uint64_t>(n_threads));
  w.kv("quick", quick);
  w.kv("reps", static_cast<std::uint64_t>(reps));
  write_field_meta(w);
  w.key("rows").begin_array();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::vector<ScalingCell>& rep_cells = cells[i];
    // Everything non-timed is deterministic: identical across reps by
    // construction (fixed seeds), so rep 0 speaks for all — but parity
    // is asserted on every rep.
    const ScalingCell& c = rep_cells.front();
    bool row_parity = true;
    for (const ScalingCell& r : rep_cells) {
      row_parity = row_parity && r.monitor_parity_ok && r.incr_sync_agrees &&
                   r.automaton_parity_ok && r.batched_verdict_ok;
    }
    parity_ok = parity_ok && row_parity;
    // Median over reps is the headline value; _min and _cv ride along.
    const auto stat = [&](const std::string& name, auto getter) {
      std::vector<double> v;
      v.reserve(rep_cells.size());
      for (const ScalingCell& r : rep_cells) v.push_back(getter(r));
      w.kv(name, median_of(v));
      w.kv(name + "_min", min_of(v));
      w.kv(name + "_cv", cv_of(v));
    };
    w.begin_object();
    w.kv("n_messages", c.n_messages);
    stat("oracle_seconds", [](const ScalingCell& r) { return r.oracle_s; });
    stat("oracle_seconds_naive",
         [](const ScalingCell& r) { return r.oracle_naive_s; });
    stat("oracle_speedup", [&](const ScalingCell& r) {
      return speedup(r.oracle_naive_s, r.oracle_s);
    });
    stat("oracle_clean_seconds",
         [](const ScalingCell& r) { return r.oracle_clean_s; });
    stat("oracle_clean_seconds_naive",
         [](const ScalingCell& r) { return r.oracle_clean_naive_s; });
    stat("oracle_clean_speedup", [&](const ScalingCell& r) {
      return speedup(r.oracle_clean_naive_s, r.oracle_clean_s);
    });
    stat("direct_causal_seconds",
         [](const ScalingCell& r) { return r.causal_s; });
    stat("direct_causal_seconds_naive",
         [](const ScalingCell& r) { return r.causal_naive_s; });
    stat("direct_causal_speedup", [&](const ScalingCell& r) {
      return speedup(r.causal_naive_s, r.causal_s);
    });
    stat("direct_sync_seconds",
         [](const ScalingCell& r) { return r.sync_s; });
    stat("direct_sync_seconds_naive",
         [](const ScalingCell& r) { return r.sync_naive_s; });
    stat("direct_sync_speedup", [&](const ScalingCell& r) {
      return speedup(r.sync_naive_s, r.sync_s);
    });
    stat("incremental_sync_seconds",
         [](const ScalingCell& r) { return r.incr_sync_s; });
    w.kv("incremental_sync_agrees", c.incr_sync_agrees);
    w.kv("incremental_sync_implied_edges", c.incr_implied_edges);
    w.kv("incremental_sync_splice_row_ors", c.incr_splice_row_ors);
    w.kv("engine_searches", c.engine_stats.searches);
    w.kv("engine_witnesses", c.engine_stats.witnesses);
    w.kv("engine_dfs_nodes", c.engine_stats.dfs_nodes);
    w.kv("engine_words_scanned", c.engine_stats.words_scanned);
    w.kv("engine_candidates_initial", c.engine_stats.candidates_initial);
    w.kv("engine_candidates_surviving",
         c.engine_stats.candidates_surviving);
    w.kv("engine_enumerated", c.engine_stats.enumerated);
    w.kv("engine_prune_rate", c.engine_stats.prune_rate());
    w.kv("monitor_events", c.monitor_events);
    stat("monitor_seconds_per_event",
         [](const ScalingCell& r) { return r.monitor_spe; });
    stat("monitor_seconds_per_event_naive",
         [](const ScalingCell& r) { return r.monitor_naive_spe; });
    stat("monitor_speedup", [&](const ScalingCell& r) {
      return speedup(r.monitor_naive_spe, r.monitor_spe);
    });
    w.kv("monitor_parity_ok", row_parity);
    w.kv("monitor_violated", c.monitor_violated);
    w.kv("monitor_events_to_detection", c.monitor_events_to_detection);
    stat("automaton_seconds_per_event",
         [](const ScalingCell& r) { return r.automaton_spe; });
    stat("automaton_seconds_per_event_bitset",
         [](const ScalingCell& r) { return r.automaton_bitset_spe; });
    stat("automaton_speedup", [&](const ScalingCell& r) {
      return speedup(r.automaton_bitset_spe, r.automaton_spe);
    });
    w.kv("automaton_compiled", c.automaton_compiled);
    w.kv("automaton_fallback_reason", c.automaton_fallback_reason);
    w.kv("automaton_states", c.automaton_states);
    w.kv("automaton_symbol_classes", c.automaton_symbol_classes);
    w.kv("automaton_transitions", c.automaton_transitions);
    w.kv("automaton_violated", c.automaton_violated);
    w.kv("automaton_parity_ok", c.automaton_parity_ok);
    stat("monitor_batched_seconds_per_event",
         [](const ScalingCell& r) { return r.batched_spe; });
    stat("monitor_batch1_seconds_per_event",
         [](const ScalingCell& r) { return r.batch1_spe; });
    stat("monitor_batched_speedup", [&](const ScalingCell& r) {
      return speedup(r.batch1_spe, r.batched_spe);
    });
    w.kv("monitor_batched_verdict_ok", c.batched_verdict_ok);
    w.kv("engine_batched_searches", c.batched_searches);
    w.kv("engine_batched_prune_rate", c.batched_prune_rate);
    w.kv("sim_completed", c.sim_completed);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::string error;
  if (!write_text_file(path, w.str(), &error)) {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!parity_ok) {
    std::fprintf(stderr,
                 "monitor parity mismatch: pruned and naive checkers "
                 "disagree (see %s)\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msgorder

int main(int argc, char** argv) {
  std::string json_path = "BENCH_checker_scaling.json";
  bool json_only = false;
  bool quick = false;
  std::size_t threads = 0;  // 0: pick from hardware concurrency
  std::size_t reps = 1;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const int report_status =
      msgorder::write_scaling_report(json_path, quick, threads, reps);
  if (json_only || report_status != 0) return report_status;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
