// Experiment E4: oracle cost.  The violation-witness search is
// O(|M|^arity) with pruning; the dedicated limit-set checkers are
// polynomial.  Sweeps run size for both, plus closure cost for the run
// representation itself.
#include <benchmark/benchmark.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

UserRun sized_run(std::size_t n_messages, std::uint64_t seed) {
  Rng rng(seed);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = n_messages;
  opts.send_bias = 0.7;
  return random_scheduled_run(opts, rng);
}

void BM_CausalOracle(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  const ForbiddenPredicate spec = causal_ordering();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CausalOracle)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_DirectCausalChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_causal(run));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectCausalChecker)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_SyncChecker(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_sync(run));
  }
}
BENCHMARK(BM_SyncChecker)->RangeMultiplier(2)->Range(8, 256);

void BM_CrownOracleArity3(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 7);
  const ForbiddenPredicate spec = sync_crown(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_CrownOracleArity3)->RangeMultiplier(2)->Range(8, 64);

void BM_KWeakerOracleArity4(benchmark::State& state) {
  const UserRun run =
      sized_run(static_cast<std::size_t>(state.range(0)), 9);
  const ForbiddenPredicate spec = k_weaker_causal(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violation(run, spec));
  }
}
BENCHMARK(BM_KWeakerOracleArity4)->RangeMultiplier(2)->Range(8, 64);

void BM_RunConstructionClosure(benchmark::State& state) {
  Rng rng(11);
  RandomRunOptions opts;
  opts.n_processes = 6;
  opts.n_messages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_scheduled_run(opts, rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RunConstructionClosure)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

}  // namespace
}  // namespace msgorder

BENCHMARK_MAIN();
