// Experiment E3: classifier cost.  The 0-1-BFS closed-walk classifier is
// polynomial (O(V*E)); exhaustive simple-cycle enumeration is
// exponential in dense graphs.  google-benchmark sweeps predicate size
// and edge density for both, demonstrating why the state-graph algorithm
// matters for large machine-generated specifications.
#include <benchmark/benchmark.h>

#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"
#include "src/util/rng.hpp"

namespace msgorder {
namespace {

ForbiddenPredicate random_predicate(std::size_t n_vars,
                                    std::size_t n_edges, Rng& rng) {
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(n_edges);
  for (std::size_t i = 0; i < n_edges; ++i) {
    Conjunct c;
    c.lhs = rng.below(n_vars);
    c.rhs = rng.below(n_vars);
    if (c.lhs == c.rhs) c.rhs = (c.rhs + 1) % n_vars;
    c.p = rng.chance(0.5) ? UserEventKind::kSend : UserEventKind::kDeliver;
    c.q = rng.chance(0.5) ? UserEventKind::kSend : UserEventKind::kDeliver;
    conjuncts.push_back(c);
  }
  return make_predicate(n_vars, conjuncts);
}

void BM_ClassifyRandom(benchmark::State& state) {
  const auto n_vars = static_cast<std::size_t>(state.range(0));
  const std::size_t n_edges = 2 * n_vars;
  Rng rng(7 + n_vars);
  const ForbiddenPredicate p = random_predicate(n_vars, n_edges, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(p));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n_vars));
}
BENCHMARK(BM_ClassifyRandom)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_ClassifyDense(benchmark::State& state) {
  const auto n_vars = static_cast<std::size_t>(state.range(0));
  const std::size_t n_edges = n_vars * n_vars / 2;
  Rng rng(11 + n_vars);
  const ForbiddenPredicate p = random_predicate(n_vars, n_edges, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(p));
  }
}
BENCHMARK(BM_ClassifyDense)->RangeMultiplier(2)->Range(4, 64);

void BM_SimpleCycleEnumerationCapped(benchmark::State& state) {
  // The exponential alternative, capped at 10^5 cycles so the benchmark
  // terminates; the cap is hit from ~8 vertices on.
  const auto n_vars = static_cast<std::size_t>(state.range(0));
  Rng rng(13 + n_vars);
  const ForbiddenPredicate p =
      random_predicate(n_vars, n_vars * n_vars / 2, rng);
  const PredicateGraph g(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.simple_cycles(100000));
  }
}
BENCHMARK(BM_SimpleCycleEnumerationCapped)->RangeMultiplier(2)->Range(4, 16);

void BM_ClassifyZoo(benchmark::State& state) {
  const auto zoo = spec_zoo();
  for (auto _ : state) {
    for (const NamedSpec& spec : zoo) {
      benchmark::DoNotOptimize(classify(spec.predicate));
    }
  }
}
BENCHMARK(BM_ClassifyZoo);

void BM_ClassifyCrown(benchmark::State& state) {
  const ForbiddenPredicate p =
      sync_crown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(p));
  }
}
BENCHMARK(BM_ClassifyCrown)->RangeMultiplier(4)->Range(4, 1024);

void BM_ClassifyKWeakerChain(benchmark::State& state) {
  const ForbiddenPredicate p =
      k_weaker_causal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(p));
  }
}
BENCHMARK(BM_ClassifyKWeakerChain)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace
}  // namespace msgorder

BENCHMARK_MAIN();
