// Experiment T1 + L3: regenerate the classification table of Section 4.3
// over the full specification zoo (Lemma 3 catalogue, FIFO, flush
// variants, k-weaker causal, sync crowns, Section 5 examples).  Prints
// paper-expected vs measured protocol class for every row; every row
// must match exactly.
#include <cstdio>
#include <string>

#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

int main() {
  std::printf("T1: classification of message ordering specifications\n");
  std::printf("%s | %-10s | %-5s | %-9s | %-17s | %-17s | %s\n",
              pad_right("spec", 24).c_str(), "ref", "cycle", "min order",
              "paper", "measured", "ok");
  std::printf("%s\n", std::string(110, '-').c_str());

  int mismatches = 0;
  for (const NamedSpec& spec : spec_zoo()) {
    const Classification c = classify(spec.predicate);
    const std::string order =
        c.min_order.has_value() ? std::to_string(*c.min_order) : "-";
    const bool ok = c.protocol_class == spec.expected;
    if (!ok) ++mismatches;
    std::printf("%s | %-10s | %-5s | %-9s | %-17s | %-17s | %s\n",
                pad_right(spec.name, 24).c_str(), spec.paper_ref.c_str(),
                c.has_cycle ? "yes" : "no", order.c_str(),
                to_string(spec.expected).c_str(),
                to_string(c.protocol_class).c_str(), ok ? "yes" : "NO");
  }

  std::printf("\ncomposite specs:\n");
  const struct {
    const char* name;
    CompositeSpec spec;
    ProtocolClass expected;
  } composites[] = {
      {"two-way flush", two_way_flush(), ProtocolClass::kTagged},
      {"global two-way flush [12]", global_two_way_flush(),
       ProtocolClass::kTagged},
      {"logically synchronous (k<=5)", logically_synchronous(5),
       ProtocolClass::kGeneral},
  };
  for (const auto& row : composites) {
    const ProtocolClass measured = classify(row.spec);
    const bool ok = measured == row.expected;
    if (!ok) ++mismatches;
    std::printf("%s | %-17s | %-17s | %s\n",
                pad_right(row.name, 30).c_str(),
                to_string(row.expected).c_str(), to_string(measured).c_str(),
                ok ? "yes" : "NO");
  }

  std::printf("\n%s\n", mismatches == 0
                            ? "RESULT: all rows match the paper"
                            : "RESULT: MISMATCHES PRESENT");
  return mismatches == 0 ? 0 : 1;
}
