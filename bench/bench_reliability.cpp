// Experiment E10 (failure injection): ordering guarantees survive a
// lossy network when composed with the reliability layer.  Sweeps the
// loss rate and reports retransmissions, duplicate arrivals, latency and
// safety for reliable(causal-rst); the ordering protocols themselves
// never notice the loss.
#include <cstdio>

#include "src/checker/limit_sets.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/reliable.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

int main() {
  const std::size_t kProcesses = 4;
  const std::size_t kMessages = 600;
  Rng rng(4242);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.5;
  const Workload workload = random_workload(wopts, rng);

  std::printf("E10: reliable(causal-rst) under packet loss (%zu "
              "processes, %zu messages)\n\n",
              kProcesses, kMessages);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-8s %-8s\n", "loss",
              "drops", "retx/msg", "dup/msg", "latency", "done", "causal");

  bool ok = true;
  double previous_latency = 0;
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3, 0.45}) {
    SimOptions sopts;
    sopts.seed = 17;
    sopts.network.jitter_mean = 2.0;
    sopts.network.loss_probability = loss;
    ReliableOptions ropts;
    ropts.retransmit_timeout = 15.0;  // above the jittered round trip
    const SimResult result = simulate(
        workload,
        ReliableProtocol::wrap(CausalRstProtocol::factory(), ropts),
        kProcesses, sopts);
    const auto run =
        result.completed ? result.trace.to_user_run() : std::nullopt;
    const bool causal = run.has_value() && in_causal(*run);
    ok = ok && result.completed && causal;
    std::printf("%-8.2f %-10zu %-10.2f %-10.2f %-10.2f %-8s %-8s\n", loss,
                result.trace.drops(),
                static_cast<double>(result.trace.retransmissions()) /
                    kMessages,
                static_cast<double>(result.trace.duplicate_arrivals()) /
                    kMessages,
                result.trace.mean_latency(),
                result.completed ? "yes" : "NO", causal ? "yes" : "NO");
    if (loss == 0.0) previous_latency = result.trace.mean_latency();
  }

  std::printf("\nexpected shape: retransmissions and latency grow with "
              "the loss rate; every run completes and stays causally "
              "ordered (latency at 45%% loss well above the %.2f "
              "loss-free baseline)\n",
              previous_latency);
  std::printf("RESULT: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
