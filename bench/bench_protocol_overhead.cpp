// Experiment E2: the three protocol classes, operationally.  Every
// shipped protocol runs the same randomized workload on the same
// adversarial network; we report
//   * control packets per user message (must be 0 for tagless/tagged),
//   * mean tag bytes per message (0 for tagless, bounded for tagged),
//   * delivery buffering and end-to-end latency, and
//   * which limit set the produced run lands in,
// reproducing the paper's class separations (Sections 2, 3.2, 5).
#include <cstdio>

#include "src/checker/limit_sets.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

int main() {
  const std::size_t kProcesses = 6;
  const std::size_t kMessages = 2000;
  Rng rng(77);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.5;
  const Workload workload = random_workload(wopts, rng);

  SimOptions sopts;
  sopts.seed = 101;
  sopts.network.jitter_mean = 3.0;

  std::printf("E2: protocol overhead on %zu processes, %zu messages, "
              "non-FIFO network\n\n",
              kProcesses, kMessages);
  std::printf("%s %-10s %-10s %-10s %-10s %-10s %-8s\n",
              pad_right("protocol", 16).c_str(), "ctrl/msg", "tag B/msg",
              "buffer", "latency", "max lat", "run in");
  std::printf("%s\n", std::string(84, '-').c_str());

  bool ok = true;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const SimResult result =
        simulate(workload, rp.factory, kProcesses, sopts);
    if (!result.completed) {
      std::printf("%s FAILED: %s\n", rp.name.c_str(),
                  result.error.c_str());
      ok = false;
      continue;
    }
    const auto run = result.trace.to_user_run();
    if (!run.has_value()) {
      ok = false;
      continue;
    }
    const LimitSet set = finest_limit_set(*run);
    std::printf("%s %-10.2f %-10.1f %-10.2f %-10.2f %-10.2f %-8s\n",
                pad_right(rp.name, 16).c_str(),
                result.trace.control_packets_per_message(),
                result.trace.mean_tag_bytes(),
                result.trace.mean_delivery_delay(),
                result.trace.mean_latency(), result.trace.max_latency(),
                to_string(set).c_str());

    // Class invariants from the paper.
    const bool is_general = rp.name == "sync-sequencer" ||
                            rp.name == "sync-token" ||
                            rp.name == "sync-locks";
    if (!is_general && result.trace.control_packets() != 0) {
      std::printf("  ^ UNEXPECTED control messages in a tagged/tagless "
                  "protocol\n");
      ok = false;
    }
    if (is_general && set != LimitSet::kSync) {
      std::printf("  ^ sync protocol produced a non-sync run\n");
      ok = false;
    }
    if ((rp.name == "causal-rst" || rp.name == "causal-ses") &&
        set == LimitSet::kAsync) {
      std::printf("  ^ causal protocol produced a non-causal run\n");
      ok = false;
    }
  }

  std::printf("\nexpected shape: async tag 0 / fifo tag 4 / causal tags "
              "O(n)..O(n^2) / sync protocols pay control messages and "
              "land in the sync set\n");
  std::printf("RESULT: %s\n", ok ? "all class invariants hold" : "FAIL");
  return ok ? 0 : 1;
}
