// Experiment E2: the three protocol classes, operationally.  Every
// shipped protocol runs the same randomized workload on the same
// adversarial network; we report
//   * control packets per user message (must be 0 for tagless/tagged),
//   * mean tag bytes per message (0 for tagless, bounded for tagged),
//   * delivery buffering and end-to-end latency, and
//   * which limit set the produced run lands in,
// reproducing the paper's class separations (Sections 2, 3.2, 5).
//
// ISSUE 2: besides the stdout table the bench now writes
// BENCH_protocol_overhead.json (schema
// msgorder.bench.protocol_overhead/1, see DESIGN.md "Observability"),
// with per-protocol latency/delay histogram percentiles collected by
// the metrics registry.  ISSUE 3: the per-protocol cells are
// independent (each simulates the same workload under its own protocol
// and Observability), so they fan out over the shared parallel_for
// sweep runner; rows are serialized in registry order after the join,
// and the report records the worker count.  Flags:
//   --json <path>       output path (default BENCH_protocol_overhead.json)
//   --overhead-guard    instead of the sweep, microbench the simulator
//                       with observability disabled vs fully enabled
//   --quick             smaller workload (CI smoke configuration)
//   --threads <n>       sweep worker threads (default: hardware concurrency)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/parallel.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

namespace {

constexpr std::size_t kProcesses = 6;
constexpr std::size_t kMessages = 2000;
constexpr std::size_t kQuickMessages = 300;
constexpr std::uint64_t kWorkloadSeed = 77;
constexpr std::uint64_t kSimSeed = 101;
constexpr double kJitterMean = 3.0;

Workload bench_workload(std::size_t n_messages = kMessages) {
  Rng rng(kWorkloadSeed);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = n_messages;
  wopts.mean_gap = 0.5;
  return random_workload(wopts, rng);
}

SimOptions bench_sim_options() {
  SimOptions sopts;
  sopts.seed = kSimSeed;
  sopts.network.jitter_mean = kJitterMean;
  return sopts;
}

/// The tentpole's zero-cost promise: with SimOptions::observability left
/// at nullptr (the default) the instrumentation must be invisible.  This
/// microbench times the same simulation disabled vs fully enabled
/// (metrics + span tracer + hold attribution + flight recorder +
/// engine profiler, ISSUEs 4/7); the *disabled* configuration is the
/// one the driver compares
/// against the seed revision (< 2% budget) — here we report both so a
/// regression of the disabled path shows up as its time converging
/// toward the enabled one.
int overhead_guard() {
  const Workload workload = bench_workload();
  const auto time_run = [&](Observability* obs) {
    SimOptions sopts = bench_sim_options();
    sopts.observability = obs;
    // Warm-up + 3 timed repetitions, keep the best (least noisy) time.
    double best = 1e100;
    for (int rep = 0; rep < 4; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const SimResult result = simulate(workload, FifoProtocol::factory(),
                                        kProcesses, sopts);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!result.completed) {
        std::printf("overhead guard run failed: %s\n",
                    result.error.c_str());
        return -1.0;
      }
      if (rep > 0 && elapsed < best) best = elapsed;
    }
    return best;
  };

  const double disabled = time_run(nullptr);
  if (disabled < 0) return 1;
  Observability obs({.tracing = true,
                     .attribution = true,
                     .profiling = true,
                     .flight_recorder = true,
                     .label = "fifo"});
  const double enabled = time_run(&obs);
  if (enabled < 0) return 1;

  const double ratio = enabled / disabled;
  std::printf("observability off: %.4fs   "
              "on (metrics+tracer+attribution+recorder): %.4fs   "
              "ratio %.3f\n",
              disabled, enabled, ratio);
  // Generous bound: even the fully *enabled* path must stay cheap; the
  // disabled path is two pointer tests per event and is what the seed
  // comparison budgets at < 2%.  Note the enabled configuration leaves
  // ObservabilityOptions::tracelog unset: this bound staying < 1.5 IS
  // the assertion that a tracelog-capable build costs nothing until a
  // log path is actually configured (ISSUE 9).
  bool ok = ratio < 1.5;
  std::printf("RESULT: %s\n",
              ok ? "observability overhead within budget"
                 : "FAIL: enabled observability too expensive");

  // Third configuration: everything above PLUS the causal trace log
  // writing to disk.  The log pays real I/O, so its budget is looser —
  // it only has to stay in the same order of magnitude, not be free.
  const std::string log_path = "overhead_guard.tracelog";
  Observability obs_log({.tracing = true,
                         .attribution = true,
                         .profiling = true,
                         .flight_recorder = true,
                         .tracelog = log_path,
                         .label = "fifo"});
  const double with_log = time_run(&obs_log);
  if (with_log < 0) return 1;
  const double log_ratio = with_log / disabled;
  std::printf("on + tracelog: %.4fs   ratio %.3f\n", with_log, log_ratio);
  std::remove(log_path.c_str());
  if (log_ratio >= 4.0) {
    std::printf("RESULT: FAIL: tracelog recording too expensive\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

/// One protocol's sweep cell: simulated on a worker thread; the
/// Observability lives on the heap so its histograms survive until the
/// caller serializes the row after the join.
struct ProtocolCell {
  std::unique_ptr<Observability> obs;
  std::optional<SimResult> result;
  std::optional<UserRun> run;
  LimitSet set = LimitSet::kAsync;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_protocol_overhead.json";
  bool quick = false;
  std::size_t threads = 0;  // 0: pick from hardware concurrency
  bool guard = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overhead-guard") == 0) {
      guard = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }
  if (guard) return overhead_guard();

  const std::size_t n_messages = quick ? kQuickMessages : kMessages;
  const Workload workload = bench_workload(n_messages);

  std::printf("E2: protocol overhead on %zu processes, %zu messages, "
              "non-FIFO network\n\n",
              kProcesses, n_messages);
  std::printf("%s %-10s %-10s %-10s %-10s %-10s %-8s\n",
              pad_right("protocol", 16).c_str(), "ctrl/msg", "tag B/msg",
              "buffer", "latency", "max lat", "run in");
  std::printf("%s\n", std::string(84, '-').c_str());

  // Fan the independent protocol cells out over the sweep pool: each
  // cell only touches its own slot; stdout and JSON stay in registry
  // order because serialization happens after the join.
  const std::vector<RegisteredProtocol> protocols = standard_protocols();
  if (threads == 0) threads = default_sweep_threads(protocols.size());
  std::vector<ProtocolCell> cells(protocols.size());
  parallel_for(protocols.size(), threads, [&](std::size_t i) {
    ProtocolCell& cell = cells[i];
    cell.obs = std::make_unique<Observability>(
        ObservabilityOptions{.label = protocols[i].name});
    SimOptions sopts = bench_sim_options();
    sopts.observability = cell.obs.get();
    cell.result =
        simulate(workload, protocols[i].factory, kProcesses, sopts);
    if (!cell.result->completed) return;
    cell.run = cell.result->trace.to_user_run();
    if (cell.run.has_value()) cell.set = finest_limit_set(*cell.run);
  });

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.bench.protocol_overhead/1");
  w.kv("bench", "protocol_overhead");
  w.kv("n_processes", kProcesses);
  w.kv("n_messages", n_messages);
  w.kv("workload_seed", kWorkloadSeed);
  w.kv("sim_seed", kSimSeed);
  w.kv("sweep_threads", static_cast<std::uint64_t>(threads));
  w.key("network").begin_object();
  w.kv("jitter_mean", kJitterMean);
  w.kv("fifo_channels", false);
  w.end_object();
  w.key("rows").begin_array();

  bool ok = true;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const RegisteredProtocol& rp = protocols[i];
    const ProtocolCell& cell = cells[i];
    const SimResult& result = *cell.result;

    w.begin_object();
    w.kv("protocol", rp.name);
    w.kv("completed", result.completed);

    if (!result.completed) {
      std::printf("%s FAILED: %s\n", rp.name.c_str(),
                  result.error.c_str());
      ok = false;
      w.kv("error", result.error);
      w.end_object();
      continue;
    }
    if (!cell.run.has_value()) {
      ok = false;
      w.kv("error", "trace has no user view");
      w.end_object();
      continue;
    }
    const LimitSet set = cell.set;
    std::printf("%s %-10.2f %-10.1f %-10.2f %-10.2f %-10.2f %-8s\n",
                pad_right(rp.name, 16).c_str(),
                result.trace.control_packets_per_message(),
                result.trace.mean_tag_bytes(),
                result.trace.mean_delivery_delay(),
                result.trace.mean_latency(), result.trace.max_latency(),
                to_string(set).c_str());

    w.kv("limit_set", to_string(set));
    w.kv("control_packets_per_message",
         result.trace.control_packets_per_message());
    w.kv("mean_tag_bytes", result.trace.mean_tag_bytes());
    w.kv("control_packets", result.trace.control_packets());
    w.kv("control_bytes", result.trace.control_bytes());
    w.kv("tag_bytes", result.trace.tag_bytes());
    w.kv("drops", result.trace.drops());
    w.kv("retransmissions", result.trace.retransmissions());
    w.kv("duplicate_arrivals", result.trace.duplicate_arrivals());
    const SimInstruments& ins = cell.obs->instruments();
    w.key("latency");
    write_histogram_json(w, *ins.latency);
    w.key("send_delay");
    write_histogram_json(w, *ins.send_delay);
    w.key("delivery_delay");
    write_histogram_json(w, *ins.delivery_delay);
    w.kv("buffered_depth_max", ins.buffered_depth->max());
    w.end_object();

    // Class invariants from the paper.
    const bool is_general = rp.name == "sync-sequencer" ||
                            rp.name == "sync-token" ||
                            rp.name == "sync-locks";
    if (!is_general && result.trace.control_packets() != 0) {
      std::printf("  ^ UNEXPECTED control messages in a tagged/tagless "
                  "protocol\n");
      ok = false;
    }
    if (is_general && set != LimitSet::kSync) {
      std::printf("  ^ sync protocol produced a non-sync run\n");
      ok = false;
    }
    if ((rp.name == "causal-rst" || rp.name == "causal-ses") &&
        set == LimitSet::kAsync) {
      std::printf("  ^ causal protocol produced a non-causal run\n");
      ok = false;
    }
  }

  w.end_array();
  w.kv("invariants_hold", ok);
  w.end_object();

  std::string io_error;
  if (!write_text_file(json_path, w.str(), &io_error)) {
    std::printf("could not write %s: %s\n", json_path.c_str(),
                io_error.c_str());
    ok = false;
  } else {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\nexpected shape: async tag 0 / fifo tag 4 / causal tags "
              "O(n)..O(n^2) / sync protocols pay control messages and "
              "land in the sync set\n");
  std::printf("RESULT: %s\n", ok ? "all class invariants hold" : "FAIL");
  return ok ? 0 : 1;
}
