file(REMOVE_RECURSE
  "CMakeFiles/example_global_snapshot.dir/global_snapshot.cpp.o"
  "CMakeFiles/example_global_snapshot.dir/global_snapshot.cpp.o.d"
  "example_global_snapshot"
  "example_global_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_global_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
