# Empty compiler generated dependencies file for example_global_snapshot.
# This may be replaced when dependencies are built.
