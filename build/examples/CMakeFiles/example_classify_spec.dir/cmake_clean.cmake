file(REMOVE_RECURSE
  "CMakeFiles/example_classify_spec.dir/classify_spec.cpp.o"
  "CMakeFiles/example_classify_spec.dir/classify_spec.cpp.o.d"
  "example_classify_spec"
  "example_classify_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_classify_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
