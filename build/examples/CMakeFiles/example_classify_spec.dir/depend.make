# Empty dependencies file for example_classify_spec.
# This may be replaced when dependencies are built.
