# Empty compiler generated dependencies file for example_mobile_handoff.
# This may be replaced when dependencies are built.
