file(REMOVE_RECURSE
  "CMakeFiles/example_mobile_handoff.dir/mobile_handoff.cpp.o"
  "CMakeFiles/example_mobile_handoff.dir/mobile_handoff.cpp.o.d"
  "example_mobile_handoff"
  "example_mobile_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mobile_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
