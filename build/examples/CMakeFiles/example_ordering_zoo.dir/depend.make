# Empty dependencies file for example_ordering_zoo.
# This may be replaced when dependencies are built.
