file(REMOVE_RECURSE
  "CMakeFiles/example_ordering_zoo.dir/ordering_zoo.cpp.o"
  "CMakeFiles/example_ordering_zoo.dir/ordering_zoo.cpp.o.d"
  "example_ordering_zoo"
  "example_ordering_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ordering_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
