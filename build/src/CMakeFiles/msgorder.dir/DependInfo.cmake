
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/multicast.cpp" "src/CMakeFiles/msgorder.dir/apps/multicast.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/apps/multicast.cpp.o.d"
  "/root/repo/src/apps/snapshot.cpp" "src/CMakeFiles/msgorder.dir/apps/snapshot.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/apps/snapshot.cpp.o.d"
  "/root/repo/src/checker/limit_sets.cpp" "src/CMakeFiles/msgorder.dir/checker/limit_sets.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/checker/limit_sets.cpp.o.d"
  "/root/repo/src/checker/monitor.cpp" "src/CMakeFiles/msgorder.dir/checker/monitor.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/checker/monitor.cpp.o.d"
  "/root/repo/src/checker/violation.cpp" "src/CMakeFiles/msgorder.dir/checker/violation.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/checker/violation.cpp.o.d"
  "/root/repo/src/obs/cli.cpp" "src/CMakeFiles/msgorder.dir/obs/cli.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/cli.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "src/CMakeFiles/msgorder.dir/obs/json.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/json.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/msgorder.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/observability.cpp" "src/CMakeFiles/msgorder.dir/obs/observability.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/observability.cpp.o.d"
  "/root/repo/src/obs/report.cpp" "src/CMakeFiles/msgorder.dir/obs/report.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/report.cpp.o.d"
  "/root/repo/src/obs/tracer.cpp" "src/CMakeFiles/msgorder.dir/obs/tracer.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/obs/tracer.cpp.o.d"
  "/root/repo/src/poset/clocks.cpp" "src/CMakeFiles/msgorder.dir/poset/clocks.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/clocks.cpp.o.d"
  "/root/repo/src/poset/diagram.cpp" "src/CMakeFiles/msgorder.dir/poset/diagram.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/diagram.cpp.o.d"
  "/root/repo/src/poset/event.cpp" "src/CMakeFiles/msgorder.dir/poset/event.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/event.cpp.o.d"
  "/root/repo/src/poset/lift.cpp" "src/CMakeFiles/msgorder.dir/poset/lift.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/lift.cpp.o.d"
  "/root/repo/src/poset/poset.cpp" "src/CMakeFiles/msgorder.dir/poset/poset.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/poset.cpp.o.d"
  "/root/repo/src/poset/run_generator.cpp" "src/CMakeFiles/msgorder.dir/poset/run_generator.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/run_generator.cpp.o.d"
  "/root/repo/src/poset/system_run.cpp" "src/CMakeFiles/msgorder.dir/poset/system_run.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/system_run.cpp.o.d"
  "/root/repo/src/poset/user_run.cpp" "src/CMakeFiles/msgorder.dir/poset/user_run.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/poset/user_run.cpp.o.d"
  "/root/repo/src/protocols/async.cpp" "src/CMakeFiles/msgorder.dir/protocols/async.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/async.cpp.o.d"
  "/root/repo/src/protocols/causal_rst.cpp" "src/CMakeFiles/msgorder.dir/protocols/causal_rst.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/causal_rst.cpp.o.d"
  "/root/repo/src/protocols/causal_ses.cpp" "src/CMakeFiles/msgorder.dir/protocols/causal_ses.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/causal_ses.cpp.o.d"
  "/root/repo/src/protocols/fifo.cpp" "src/CMakeFiles/msgorder.dir/protocols/fifo.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/fifo.cpp.o.d"
  "/root/repo/src/protocols/flush.cpp" "src/CMakeFiles/msgorder.dir/protocols/flush.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/flush.cpp.o.d"
  "/root/repo/src/protocols/global_flush.cpp" "src/CMakeFiles/msgorder.dir/protocols/global_flush.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/global_flush.cpp.o.d"
  "/root/repo/src/protocols/kweaker.cpp" "src/CMakeFiles/msgorder.dir/protocols/kweaker.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/kweaker.cpp.o.d"
  "/root/repo/src/protocols/protocol.cpp" "src/CMakeFiles/msgorder.dir/protocols/protocol.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/protocol.cpp.o.d"
  "/root/repo/src/protocols/reliable.cpp" "src/CMakeFiles/msgorder.dir/protocols/reliable.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/reliable.cpp.o.d"
  "/root/repo/src/protocols/sync_locks.cpp" "src/CMakeFiles/msgorder.dir/protocols/sync_locks.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/sync_locks.cpp.o.d"
  "/root/repo/src/protocols/sync_sequencer.cpp" "src/CMakeFiles/msgorder.dir/protocols/sync_sequencer.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/sync_sequencer.cpp.o.d"
  "/root/repo/src/protocols/sync_token.cpp" "src/CMakeFiles/msgorder.dir/protocols/sync_token.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/sync_token.cpp.o.d"
  "/root/repo/src/protocols/synthesized.cpp" "src/CMakeFiles/msgorder.dir/protocols/synthesized.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/protocols/synthesized.cpp.o.d"
  "/root/repo/src/semantics/enabled_sets.cpp" "src/CMakeFiles/msgorder.dir/semantics/enabled_sets.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/semantics/enabled_sets.cpp.o.d"
  "/root/repo/src/semantics/explorer.cpp" "src/CMakeFiles/msgorder.dir/semantics/explorer.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/semantics/explorer.cpp.o.d"
  "/root/repo/src/semantics/limit_protocols.cpp" "src/CMakeFiles/msgorder.dir/semantics/limit_protocols.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/semantics/limit_protocols.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/msgorder.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/msgorder.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/msgorder.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/msgorder.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/sim/workload.cpp.o.d"
  "/root/repo/src/spec/classify.cpp" "src/CMakeFiles/msgorder.dir/spec/classify.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/classify.cpp.o.d"
  "/root/repo/src/spec/graph.cpp" "src/CMakeFiles/msgorder.dir/spec/graph.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/graph.cpp.o.d"
  "/root/repo/src/spec/library.cpp" "src/CMakeFiles/msgorder.dir/spec/library.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/library.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/CMakeFiles/msgorder.dir/spec/parser.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/parser.cpp.o.d"
  "/root/repo/src/spec/predicate.cpp" "src/CMakeFiles/msgorder.dir/spec/predicate.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/predicate.cpp.o.d"
  "/root/repo/src/spec/weaken.cpp" "src/CMakeFiles/msgorder.dir/spec/weaken.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/weaken.cpp.o.d"
  "/root/repo/src/spec/witness.cpp" "src/CMakeFiles/msgorder.dir/spec/witness.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/spec/witness.cpp.o.d"
  "/root/repo/src/util/bitmatrix.cpp" "src/CMakeFiles/msgorder.dir/util/bitmatrix.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/util/bitmatrix.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/msgorder.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/msgorder.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/msgorder.dir/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
