# Empty compiler generated dependencies file for msgorder.
# This may be replaced when dependencies are built.
