file(REMOVE_RECURSE
  "libmsgorder.a"
)
