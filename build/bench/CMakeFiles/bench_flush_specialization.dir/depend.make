# Empty dependencies file for bench_flush_specialization.
# This may be replaced when dependencies are built.
