file(REMOVE_RECURSE
  "CMakeFiles/bench_flush_specialization.dir/bench_flush_specialization.cpp.o"
  "CMakeFiles/bench_flush_specialization.dir/bench_flush_specialization.cpp.o.d"
  "bench_flush_specialization"
  "bench_flush_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flush_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
