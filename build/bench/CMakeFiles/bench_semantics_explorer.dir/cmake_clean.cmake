file(REMOVE_RECURSE
  "CMakeFiles/bench_semantics_explorer.dir/bench_semantics_explorer.cpp.o"
  "CMakeFiles/bench_semantics_explorer.dir/bench_semantics_explorer.cpp.o.d"
  "bench_semantics_explorer"
  "bench_semantics_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantics_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
