# Empty dependencies file for bench_semantics_explorer.
# This may be replaced when dependencies are built.
