file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_overhead.dir/bench_protocol_overhead.cpp.o"
  "CMakeFiles/bench_protocol_overhead.dir/bench_protocol_overhead.cpp.o.d"
  "bench_protocol_overhead"
  "bench_protocol_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
