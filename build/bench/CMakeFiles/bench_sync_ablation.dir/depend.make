# Empty dependencies file for bench_sync_ablation.
# This may be replaced when dependencies are built.
