file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_ablation.dir/bench_sync_ablation.cpp.o"
  "CMakeFiles/bench_sync_ablation.dir/bench_sync_ablation.cpp.o.d"
  "bench_sync_ablation"
  "bench_sync_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
