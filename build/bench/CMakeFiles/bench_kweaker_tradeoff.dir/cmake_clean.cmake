file(REMOVE_RECURSE
  "CMakeFiles/bench_kweaker_tradeoff.dir/bench_kweaker_tradeoff.cpp.o"
  "CMakeFiles/bench_kweaker_tradeoff.dir/bench_kweaker_tradeoff.cpp.o.d"
  "bench_kweaker_tradeoff"
  "bench_kweaker_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kweaker_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
