# Empty compiler generated dependencies file for bench_kweaker_tradeoff.
# This may be replaced when dependencies are built.
