# Empty dependencies file for bench_limit_sets.
# This may be replaced when dependencies are built.
