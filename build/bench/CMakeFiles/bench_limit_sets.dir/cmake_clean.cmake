file(REMOVE_RECURSE
  "CMakeFiles/bench_limit_sets.dir/bench_limit_sets.cpp.o"
  "CMakeFiles/bench_limit_sets.dir/bench_limit_sets.cpp.o.d"
  "bench_limit_sets"
  "bench_limit_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_limit_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
