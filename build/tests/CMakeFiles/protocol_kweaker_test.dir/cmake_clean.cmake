file(REMOVE_RECURSE
  "CMakeFiles/protocol_kweaker_test.dir/protocol_kweaker_test.cpp.o"
  "CMakeFiles/protocol_kweaker_test.dir/protocol_kweaker_test.cpp.o.d"
  "protocol_kweaker_test"
  "protocol_kweaker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_kweaker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
