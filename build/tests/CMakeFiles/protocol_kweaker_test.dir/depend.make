# Empty dependencies file for protocol_kweaker_test.
# This may be replaced when dependencies are built.
