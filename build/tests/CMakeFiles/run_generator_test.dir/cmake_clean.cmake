file(REMOVE_RECURSE
  "CMakeFiles/run_generator_test.dir/run_generator_test.cpp.o"
  "CMakeFiles/run_generator_test.dir/run_generator_test.cpp.o.d"
  "run_generator_test"
  "run_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
