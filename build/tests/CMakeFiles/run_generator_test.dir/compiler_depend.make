# Empty compiler generated dependencies file for run_generator_test.
# This may be replaced when dependencies are built.
