file(REMOVE_RECURSE
  "CMakeFiles/synthesized_test.dir/synthesized_test.cpp.o"
  "CMakeFiles/synthesized_test.dir/synthesized_test.cpp.o.d"
  "synthesized_test"
  "synthesized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
