# Empty compiler generated dependencies file for synthesized_test.
# This may be replaced when dependencies are built.
