# Empty compiler generated dependencies file for user_run_test.
# This may be replaced when dependencies are built.
