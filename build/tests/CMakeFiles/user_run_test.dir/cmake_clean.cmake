file(REMOVE_RECURSE
  "CMakeFiles/user_run_test.dir/user_run_test.cpp.o"
  "CMakeFiles/user_run_test.dir/user_run_test.cpp.o.d"
  "user_run_test"
  "user_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
