file(REMOVE_RECURSE
  "CMakeFiles/protocol_sync_test.dir/protocol_sync_test.cpp.o"
  "CMakeFiles/protocol_sync_test.dir/protocol_sync_test.cpp.o.d"
  "protocol_sync_test"
  "protocol_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
