# Empty dependencies file for limit_sets_test.
# This may be replaced when dependencies are built.
