file(REMOVE_RECURSE
  "CMakeFiles/limit_sets_test.dir/limit_sets_test.cpp.o"
  "CMakeFiles/limit_sets_test.dir/limit_sets_test.cpp.o.d"
  "limit_sets_test"
  "limit_sets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limit_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
