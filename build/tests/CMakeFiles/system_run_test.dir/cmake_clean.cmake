file(REMOVE_RECURSE
  "CMakeFiles/system_run_test.dir/system_run_test.cpp.o"
  "CMakeFiles/system_run_test.dir/system_run_test.cpp.o.d"
  "system_run_test"
  "system_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
