file(REMOVE_RECURSE
  "CMakeFiles/obs_observer_test.dir/obs_observer_test.cpp.o"
  "CMakeFiles/obs_observer_test.dir/obs_observer_test.cpp.o.d"
  "obs_observer_test"
  "obs_observer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
