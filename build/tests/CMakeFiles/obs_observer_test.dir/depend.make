# Empty dependencies file for obs_observer_test.
# This may be replaced when dependencies are built.
