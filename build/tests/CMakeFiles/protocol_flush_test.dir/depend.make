# Empty dependencies file for protocol_flush_test.
# This may be replaced when dependencies are built.
