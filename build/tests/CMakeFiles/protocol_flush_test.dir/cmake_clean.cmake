file(REMOVE_RECURSE
  "CMakeFiles/protocol_flush_test.dir/protocol_flush_test.cpp.o"
  "CMakeFiles/protocol_flush_test.dir/protocol_flush_test.cpp.o.d"
  "protocol_flush_test"
  "protocol_flush_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_flush_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
