file(REMOVE_RECURSE
  "CMakeFiles/violation_test.dir/violation_test.cpp.o"
  "CMakeFiles/violation_test.dir/violation_test.cpp.o.d"
  "violation_test"
  "violation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
