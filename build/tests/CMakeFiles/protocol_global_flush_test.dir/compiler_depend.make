# Empty compiler generated dependencies file for protocol_global_flush_test.
# This may be replaced when dependencies are built.
