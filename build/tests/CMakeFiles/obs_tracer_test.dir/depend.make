# Empty dependencies file for obs_tracer_test.
# This may be replaced when dependencies are built.
