file(REMOVE_RECURSE
  "CMakeFiles/obs_tracer_test.dir/obs_tracer_test.cpp.o"
  "CMakeFiles/obs_tracer_test.dir/obs_tracer_test.cpp.o.d"
  "obs_tracer_test"
  "obs_tracer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
