# Empty dependencies file for obs_report_test.
# This may be replaced when dependencies are built.
