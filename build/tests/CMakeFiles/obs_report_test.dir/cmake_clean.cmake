file(REMOVE_RECURSE
  "CMakeFiles/obs_report_test.dir/obs_report_test.cpp.o"
  "CMakeFiles/obs_report_test.dir/obs_report_test.cpp.o.d"
  "obs_report_test"
  "obs_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
