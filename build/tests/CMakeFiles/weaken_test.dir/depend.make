# Empty dependencies file for weaken_test.
# This may be replaced when dependencies are built.
