file(REMOVE_RECURSE
  "CMakeFiles/weaken_test.dir/weaken_test.cpp.o"
  "CMakeFiles/weaken_test.dir/weaken_test.cpp.o.d"
  "weaken_test"
  "weaken_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weaken_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
