file(REMOVE_RECURSE
  "CMakeFiles/causal_past_test.dir/causal_past_test.cpp.o"
  "CMakeFiles/causal_past_test.dir/causal_past_test.cpp.o.d"
  "causal_past_test"
  "causal_past_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_past_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
