# Empty dependencies file for causal_past_test.
# This may be replaced when dependencies are built.
