file(REMOVE_RECURSE
  "CMakeFiles/theorem1_test.dir/theorem1_test.cpp.o"
  "CMakeFiles/theorem1_test.dir/theorem1_test.cpp.o.d"
  "theorem1_test"
  "theorem1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
