# Empty dependencies file for protocol_causal_test.
# This may be replaced when dependencies are built.
