file(REMOVE_RECURSE
  "CMakeFiles/protocol_causal_test.dir/protocol_causal_test.cpp.o"
  "CMakeFiles/protocol_causal_test.dir/protocol_causal_test.cpp.o.d"
  "protocol_causal_test"
  "protocol_causal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_causal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
