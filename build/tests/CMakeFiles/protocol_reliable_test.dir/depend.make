# Empty dependencies file for protocol_reliable_test.
# This may be replaced when dependencies are built.
