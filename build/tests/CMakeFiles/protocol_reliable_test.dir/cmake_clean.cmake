file(REMOVE_RECURSE
  "CMakeFiles/protocol_reliable_test.dir/protocol_reliable_test.cpp.o"
  "CMakeFiles/protocol_reliable_test.dir/protocol_reliable_test.cpp.o.d"
  "protocol_reliable_test"
  "protocol_reliable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_reliable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
