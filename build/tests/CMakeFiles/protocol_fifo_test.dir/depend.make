# Empty dependencies file for protocol_fifo_test.
# This may be replaced when dependencies are built.
