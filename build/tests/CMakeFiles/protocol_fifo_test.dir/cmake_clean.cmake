file(REMOVE_RECURSE
  "CMakeFiles/protocol_fifo_test.dir/protocol_fifo_test.cpp.o"
  "CMakeFiles/protocol_fifo_test.dir/protocol_fifo_test.cpp.o.d"
  "protocol_fifo_test"
  "protocol_fifo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
