// Global snapshots as a consumer of message ordering (paper Sections
// 1-2): run Chandy-Lamport over the simulator twice — once with markers
// sequenced FIFO with the traffic, once racing them — and show what the
// recorded cuts look like.
#include <cstdio>

#include "src/apps/snapshot.hpp"
#include "src/poset/diagram.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

void run_variant(bool fifo_markers) {
  Rng rng(7);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 40;
  wopts.mean_gap = 0.4;
  const Workload workload = random_workload(wopts, rng);
  SnapshotProtocol::Registry registry;
  SnapshotProtocol::Options options;
  options.fifo_markers = fifo_markers;
  SimOptions sopts;
  sopts.seed = 11;
  sopts.network.jitter_mean = 4.0;
  const SimResult result =
      simulate(workload, SnapshotProtocol::factory(options, &registry),
               wopts.n_processes, sopts);
  std::printf("--- markers %s ---\n",
              fifo_markers ? "FIFO with traffic" : "racing the traffic");
  if (!result.completed) {
    std::printf("simulation failed: %s\n", result.error.c_str());
    return;
  }
  const GlobalSnapshot snapshot = collect(registry);
  std::printf("%s", snapshot.to_string().c_str());
  std::printf("complete:  %s\n", snapshot.complete() ? "yes" : "no");
  std::printf("consistent cut:        %s\n",
              snapshot.consistent() ? "yes" : "NO");
  std::printf("channel states account: %s\n\n",
              snapshot.channel_states_account() ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("Chandy-Lamport global snapshot needs FIFO ordering.\n\n");

  // A tiny run first, drawn as a time diagram.
  Rng rng(3);
  WorkloadOptions small;
  small.n_processes = 3;
  small.n_messages = 4;
  small.mean_gap = 1.0;
  const Workload tiny = random_workload(small, rng);
  SnapshotProtocol::Registry registry;
  const SimResult result = simulate(
      tiny, SnapshotProtocol::factory({}, &registry), 3, SimOptions{});
  if (result.completed) {
    const auto run = result.trace.to_system_run();
    if (run.has_value()) {
      std::printf("a 4-message run, system view:\n%s\n",
                  time_diagram(*run).c_str());
    }
  }

  run_variant(true);
  run_variant(false);
  std::printf("the FIFO variant records a consistent cut every time; "
              "see bench_snapshot for the full sweep.\n");
  return 0;
}
