// Global snapshots as a consumer of message ordering (paper Sections
// 1-2): run Chandy-Lamport over the simulator twice — once with markers
// sequenced FIFO with the traffic, once racing them — and show what the
// recorded cuts look like.
//
// Observability flags (ISSUE 2, ISSUE 4):
//   --json <path>    write both variants' verdicts as JSON
//                    (schema msgorder.example.global_snapshot/1)
//   --trace <path>   write a Chrome-trace JSON of the FIFO-marker run
//   --flight-recorder <path>  dump a post-mortem JSON there if the
//                    FIFO-marker run fails to complete
//   --profile <path> write the engine profiler's msgorder.profile/1
//                    JSON of the FIFO-marker run (ISSUE 7)
//   --tracelog <path> record the FIFO-marker run's causal trace log
//                    (msgorder.tracelog/1, ISSUE 9); query it with
//                    msgorder_query cone/cut/why/summary
#include <cstdio>
#include <string>

#include "src/apps/snapshot.hpp"
#include "src/obs/cli.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/report.hpp"
#include "src/poset/diagram.hpp"
#include "src/sim/simulator.hpp"

using namespace msgorder;

namespace {

struct VariantOutcome {
  bool completed = false;
  bool complete = false;
  bool consistent = false;
  bool channels_account = false;
};

VariantOutcome run_variant(bool fifo_markers,
                           const std::string& trace_path = "",
                           const std::string& flight_path = "",
                           const std::string& profile_path = "",
                           const std::string& tracelog_path = "") {
  VariantOutcome outcome;
  Rng rng(7);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 40;
  wopts.mean_gap = 0.4;
  const Workload workload = random_workload(wopts, rng);
  SnapshotProtocol::Registry registry;
  SnapshotProtocol::Options options;
  options.fifo_markers = fifo_markers;
  ObservabilityOptions oopts;
  oopts.tracing = !trace_path.empty();
  oopts.profiling = !profile_path.empty();
  oopts.flight_recorder = !flight_path.empty();
  oopts.tracelog = tracelog_path;
  Observability obs(oopts);
  SimOptions sopts;
  sopts.seed = 11;
  sopts.network.jitter_mean = 4.0;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, SnapshotProtocol::factory(options, &registry),
               wopts.n_processes, sopts);
  std::printf("--- markers %s ---\n",
              fifo_markers ? "FIFO with traffic" : "racing the traffic");
  if (!result.completed) {
    std::printf("simulation failed: %s\n", result.error.c_str());
    if (!flight_path.empty() &&
        dump_postmortem_if_red(flight_path, result, &obs)) {
      std::printf("wrote flight-recorder post-mortem %s\n",
                  flight_path.c_str());
    }
    return outcome;
  }
  outcome.completed = true;
  const GlobalSnapshot snapshot = collect(registry);
  std::printf("%s", snapshot.to_string().c_str());
  outcome.complete = snapshot.complete();
  outcome.consistent = snapshot.consistent();
  outcome.channels_account = snapshot.channel_states_account();
  std::printf("complete:  %s\n", outcome.complete ? "yes" : "no");
  std::printf("consistent cut:        %s\n",
              outcome.consistent ? "yes" : "NO");
  std::printf("channel states account: %s\n\n",
              outcome.channels_account ? "yes" : "NO");
  if (!trace_path.empty()) {
    std::string io_error;
    if (!obs.tracer()->write_chrome_trace(trace_path, &io_error)) {
      std::printf("could not write %s: %s\n", trace_path.c_str(),
                  io_error.c_str());
    } else {
      std::printf("wrote chrome trace %s "
                  "(open in https://ui.perfetto.dev)\n\n",
                  trace_path.c_str());
    }
  }
  if (!profile_path.empty()) {
    std::string io_error;
    if (!write_text_file(profile_path, obs.profile()->to_json(),
                         &io_error)) {
      std::printf("could not write %s: %s\n", profile_path.c_str(),
                  io_error.c_str());
    } else {
      std::printf("wrote engine profile %s\n\n", profile_path.c_str());
    }
  }
  if (!tracelog_path.empty()) {
    std::printf("wrote causal trace log %s (query with msgorder_query)\n\n",
                tracelog_path.c_str());
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const ObsCli cli = parse_obs_cli(argc, argv);
  if (!cli.ok) {
    std::printf("%s\n", cli.error.c_str());
    return 2;
  }
  std::printf("Chandy-Lamport global snapshot needs FIFO ordering.\n\n");

  // A tiny run first, drawn as a time diagram.
  Rng rng(3);
  WorkloadOptions small;
  small.n_processes = 3;
  small.n_messages = 4;
  small.mean_gap = 1.0;
  const Workload tiny = random_workload(small, rng);
  SnapshotProtocol::Registry registry;
  const SimResult result = simulate(
      tiny, SnapshotProtocol::factory({}, &registry), 3, SimOptions{});
  if (result.completed) {
    const auto run = result.trace.to_system_run();
    if (run.has_value()) {
      std::printf("a 4-message run, system view:\n%s\n",
                  time_diagram(*run).c_str());
    }
  }

  const VariantOutcome fifo =
      run_variant(true, cli.trace_path, cli.flight_path, cli.profile_path,
                  cli.tracelog_path);
  const VariantOutcome racing = run_variant(false);
  std::printf("the FIFO variant records a consistent cut every time; "
              "see bench_snapshot for the full sweep.\n");

  if (!cli.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "msgorder.example.global_snapshot/1");
    w.key("variants").begin_array();
    for (const auto* v : {&fifo, &racing}) {
      w.begin_object();
      w.kv("fifo_markers", v == &fifo);
      w.kv("completed", v->completed);
      w.kv("complete", v->complete);
      w.kv("consistent", v->consistent);
      w.kv("channel_states_account", v->channels_account);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::string io_error;
    if (!write_text_file(cli.json_path, w.str(), &io_error)) {
      std::printf("could not write %s: %s\n", cli.json_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote report %s\n", cli.json_path.c_str());
  }
  return 0;
}
