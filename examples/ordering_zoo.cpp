// The conformance matrix: every shipped protocol simulated on the same
// workload, judged against every specification in the zoo.  The matrix
// visualizes the paper's containment structure: stronger protocol
// classes satisfy everything below them.
#include <cstdio>
#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

int main() {
  const std::size_t kProcesses = 4;
  const std::size_t kMessages = 150;
  Rng rng(86);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.2;
  wopts.red_fraction = 0.25;  // red messages exercise the colored specs
  const Workload workload = random_workload(wopts, rng);

  const auto zoo = spec_zoo();
  const auto protocols = standard_protocols();

  std::printf("conformance matrix: '+' satisfied, '.' violated "
              "(%zu messages, %zu processes, seeds aggregated)\n\n",
              kMessages, kProcesses);
  std::printf("%s", pad_right("spec \\ protocol", 26).c_str());
  for (const RegisteredProtocol& rp : protocols) {
    std::printf(" %s", pad_right(rp.name.substr(0, 9), 9).c_str());
  }
  std::printf("\n");

  // Run each protocol over a few seeds; a spec is "satisfied" only if it
  // holds on every seed.
  std::vector<std::vector<bool>> satisfied(
      zoo.size(), std::vector<bool>(protocols.size(), true));
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SimOptions sopts;
      sopts.seed = seed;
      sopts.network.jitter_mean = 3.0;
      const SimResult result =
          simulate(workload, protocols[p].factory, kProcesses, sopts);
      if (!result.completed) {
        for (std::size_t s = 0; s < zoo.size(); ++s) {
          satisfied[s][p] = false;
        }
        break;
      }
      const auto run = result.trace.to_user_run();
      for (std::size_t s = 0; s < zoo.size(); ++s) {
        // The oracle is O(|M|^arity); exhaustively confirming a
        // *satisfied* high-arity spec on a 150-message run explores
        // combinatorially many chains, so the matrix sticks to arity<=3.
        if (zoo[s].predicate.arity > 3) continue;
        if (!satisfies(*run, zoo[s].predicate)) satisfied[s][p] = false;
      }
    }
  }

  for (std::size_t s = 0; s < zoo.size(); ++s) {
    if (zoo[s].predicate.arity > 3) continue;  // oracle cost, see above
    std::printf("%s", pad_right(zoo[s].name, 26).c_str());
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      std::printf(" %s", pad_right(satisfied[s][p] ? "+" : ".", 9).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nreading guide: the sync protocols' columns are all '+' "
              "(X_sync is inside every implementable spec); causal "
              "columns satisfy every tagged/tagless spec; async "
              "satisfies only the tagless rows.\n");
  return 0;
}
