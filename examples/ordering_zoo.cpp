// The conformance matrix: every shipped protocol simulated on the same
// workload, judged against every specification in the zoo.  The matrix
// visualizes the paper's containment structure: stronger protocol
// classes satisfy everything below them.
//
// Observability flags (ISSUE 2):
//   --json <path>    write the matrix as JSON (msgorder.conformance/1)
//   --trace <path>   write a Chrome-trace JSON of one representative
//                    causal-rst run — open it in https://ui.perfetto.dev
//                    to see each message's x.s* -> x.s -> x.r* -> x.r
//                    lifecycle and the causal send->receive flow arrows
//   --tracelog <path> record the causal trace log of one representative
//                    sync-token (token-ring) run (ISSUE 9);
//                    `msgorder_query why <path> --msg N` then walks the
//                    wait_token hold chain to the token holder
#include <cstdio>
#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/obs/cli.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"
#include "src/util/strings.hpp"

using namespace msgorder;

int main(int argc, char** argv) {
  const ObsCli cli = parse_obs_cli(argc, argv);
  if (!cli.ok) {
    std::printf("%s\n", cli.error.c_str());
    return 2;
  }
  const std::size_t kProcesses = 4;
  const std::size_t kMessages = 150;
  Rng rng(86);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.2;
  wopts.red_fraction = 0.25;  // red messages exercise the colored specs
  const Workload workload = random_workload(wopts, rng);

  const auto zoo = spec_zoo();
  const auto protocols = standard_protocols();

  std::printf("conformance matrix: '+' satisfied, '.' violated "
              "(%zu messages, %zu processes, seeds aggregated)\n\n",
              kMessages, kProcesses);
  std::printf("%s", pad_right("spec \\ protocol", 26).c_str());
  for (const RegisteredProtocol& rp : protocols) {
    std::printf(" %s", pad_right(rp.name.substr(0, 9), 9).c_str());
  }
  std::printf("\n");

  // Run each protocol over a few seeds; a spec is "satisfied" only if it
  // holds on every seed.
  std::vector<std::vector<bool>> satisfied(
      zoo.size(), std::vector<bool>(protocols.size(), true));
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SimOptions sopts;
      sopts.seed = seed;
      sopts.network.jitter_mean = 3.0;
      const SimResult result =
          simulate(workload, protocols[p].factory, kProcesses, sopts);
      if (!result.completed) {
        for (std::size_t s = 0; s < zoo.size(); ++s) {
          satisfied[s][p] = false;
        }
        break;
      }
      const auto run = result.trace.to_user_run();
      for (std::size_t s = 0; s < zoo.size(); ++s) {
        // The oracle is O(|M|^arity); exhaustively confirming a
        // *satisfied* high-arity spec on a 150-message run explores
        // combinatorially many chains, so the matrix sticks to arity<=3.
        if (zoo[s].predicate.arity > 3) continue;
        if (!satisfies(*run, zoo[s].predicate)) satisfied[s][p] = false;
      }
    }
  }

  for (std::size_t s = 0; s < zoo.size(); ++s) {
    if (zoo[s].predicate.arity > 3) continue;  // oracle cost, see above
    std::printf("%s", pad_right(zoo[s].name, 26).c_str());
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      std::printf(" %s", pad_right(satisfied[s][p] ? "+" : ".", 9).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nreading guide: the sync protocols' columns are all '+' "
              "(X_sync is inside every implementable spec); causal "
              "columns satisfy every tagged/tagless spec; async "
              "satisfies only the tagless rows.\n");

  std::string io_error;
  if (!cli.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "msgorder.conformance/1");
    w.kv("n_processes", kProcesses);
    w.kv("n_messages", kMessages);
    w.key("protocols").begin_array();
    for (const RegisteredProtocol& rp : protocols) w.value(rp.name);
    w.end_array();
    w.key("rows").begin_array();
    for (std::size_t s = 0; s < zoo.size(); ++s) {
      if (zoo[s].predicate.arity > 3) continue;
      w.begin_object();
      w.kv("spec", zoo[s].name);
      w.kv("predicate", zoo[s].predicate.to_string());
      w.key("satisfied").begin_array();
      for (std::size_t p = 0; p < protocols.size(); ++p) {
        w.value(static_cast<bool>(satisfied[s][p]));
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!write_text_file(cli.json_path, w.str(), &io_error)) {
      std::printf("could not write %s: %s\n", cli.json_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote conformance matrix %s\n", cli.json_path.c_str());
  }

  if (!cli.trace_path.empty()) {
    // One representative traced run: causal-rst is tagged (no control
    // traffic), so the Perfetto view shows pure buffer slices where
    // deliveries wait for their causal predecessors.
    for (const RegisteredProtocol& rp : protocols) {
      if (rp.name != "causal-rst") continue;
      Observability obs({.tracing = true, .label = rp.name});
      SimOptions sopts;
      sopts.seed = 1;
      sopts.network.jitter_mean = 3.0;
      sopts.observability = &obs;
      const SimResult result =
          simulate(workload, rp.factory, kProcesses, sopts);
      if (!result.completed) {
        std::printf("traced run failed: %s\n", result.error.c_str());
        return 1;
      }
      if (!obs.tracer()->write_chrome_trace(cli.trace_path, &io_error)) {
        std::printf("could not write %s: %s\n", cli.trace_path.c_str(),
                    io_error.c_str());
        return 1;
      }
      std::printf("wrote chrome trace of a causal-rst run to %s "
                  "(open in https://ui.perfetto.dev)\n",
                  cli.trace_path.c_str());
    }
  }

  if (!cli.tracelog_path.empty()) {
    // One representative causal trace log: sync-token is the token
    // ring, so every send waits its turn and `msgorder_query why`
    // chains the wait_token holds to the current token holder.
    for (const RegisteredProtocol& rp : protocols) {
      if (rp.name != "sync-token") continue;
      ObservabilityOptions oopts;
      oopts.tracelog = cli.tracelog_path;
      oopts.label = rp.name;
      Observability obs(oopts);
      SimOptions sopts;
      sopts.seed = 1;
      sopts.network.jitter_mean = 3.0;
      sopts.observability = &obs;
      const SimResult result =
          simulate(workload, rp.factory, kProcesses, sopts);
      if (!result.completed) {
        std::printf("trace-logged run failed: %s\n", result.error.c_str());
        return 1;
      }
      std::printf("wrote causal trace log of a sync-token run to %s "
                  "(query with msgorder_query)\n",
                  cli.tracelog_path.c_str());
    }
  }
  return 0;
}
