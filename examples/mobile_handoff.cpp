// The Section 5 mobile-computing scenario: a mobile unit moving between
// base stations must exchange handoff messages that are ordered with
// respect to all other traffic.  The paper's algorithm says this needs
// control messages; this example demonstrates both directions
// operationally:
//   * a tagged causal protocol eventually lets a handoff message cross
//     ordinary traffic (spec violated), while
//   * the general sequencer protocol never does.
//
// Observability flags (ISSUE 2):
//   --json <path>    write the separation result as JSON
//                    (schema msgorder.example.mobile_handoff/1)
//   --trace <path>   write a Chrome-trace JSON of one sync-sequencer
//                    handoff run (the control traffic is visible as
//                    extra latency between x.s* and x.s)
#include <cstdio>

#include "src/checker/violation.hpp"
#include "src/obs/cli.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"

using namespace msgorder;

namespace {

constexpr int kHandoffColor = 2;

// Processes: 0 = mobile unit, 1 and 2 = base stations, 3 = peer host.
Workload handoff_workload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  SimTime t = 0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    // Ordinary traffic: peer chats with the mobile via both stations.
    for (int i = 0; i < 4; ++i) {
      t += rng.exponential(0.3);
      const ProcessId a = rng.chance(0.5) ? 1 : 2;
      if (rng.chance(0.5)) {
        entries.push_back({t, 3, a, 0});
      } else {
        entries.push_back({t, a, 0, 0});
      }
    }
    // Handoff exchange between the stations.
    t += rng.exponential(0.2);
    entries.push_back({t, 1, 2, kHandoffColor});
    t += rng.exponential(0.2);
    entries.push_back({t, 2, 1, kHandoffColor});
  }
  return scripted_workload(entries);
}

std::size_t violations_over_seeds(const ProtocolFactory& factory,
                                  const ForbiddenPredicate& spec,
                                  std::size_t* control_packets) {
  std::size_t violated = 0;
  *control_packets = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SimOptions sopts;
    sopts.seed = seed;
    sopts.network.jitter_mean = 3.0;
    const SimResult result =
        simulate(handoff_workload(seed), factory, 4, sopts);
    if (!result.completed) {
      ++violated;
      continue;
    }
    *control_packets += result.trace.control_packets();
    const auto run = result.trace.to_user_run();
    if (!run.has_value() || !satisfies(*run, spec)) ++violated;
  }
  return violated;
}

}  // namespace

int main(int argc, char** argv) {
  const ObsCli cli = parse_obs_cli(argc, argv);
  if (!cli.ok) {
    std::printf("%s\n", cli.error.c_str());
    return 2;
  }
  const ForbiddenPredicate spec = mobile_handoff(kHandoffColor);
  std::printf("handoff specification: forbid %s\n",
              spec.to_string().c_str());
  const Classification verdict = classify(spec);
  std::printf("classification: %s\n", verdict.to_string().c_str());
  std::printf("=> the paper: guaranteeing this condition requires "
              "additional control messages\n\n");

  std::size_t causal_ctrl = 0;
  const std::size_t causal_violations = violations_over_seeds(
      CausalRstProtocol::factory(), spec, &causal_ctrl);
  std::printf("causal-rst (tagged):     %2zu/25 runs violate the spec "
              "(%zu control packets used)\n",
              causal_violations, causal_ctrl);

  std::size_t seq_ctrl = 0;
  const std::size_t seq_violations = violations_over_seeds(
      SyncSequencerProtocol::factory(), spec, &seq_ctrl);
  std::printf("sync-sequencer (general): %2zu/25 runs violate the spec "
              "(%zu control packets used)\n",
              seq_violations, seq_ctrl);

  const bool as_predicted = causal_violations > 0 && seq_violations == 0;
  std::printf("\n%s\n",
              as_predicted
                  ? "as predicted: tagging alone cannot protect the "
                    "handoff; control messages can"
                  : "UNEXPECTED: the separation did not show on these "
                    "seeds");

  std::string io_error;
  if (!cli.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "msgorder.example.mobile_handoff/1");
    w.kv("spec", spec.to_string());
    w.kv("classification", verdict.to_string());
    w.kv("runs_per_protocol", 25);
    w.key("rows").begin_array();
    w.begin_object();
    w.kv("protocol", "causal-rst");
    w.kv("violations", causal_violations);
    w.kv("control_packets", causal_ctrl);
    w.end_object();
    w.begin_object();
    w.kv("protocol", "sync-sequencer");
    w.kv("violations", seq_violations);
    w.kv("control_packets", seq_ctrl);
    w.end_object();
    w.end_array();
    w.kv("as_predicted", as_predicted);
    w.end_object();
    if (!write_text_file(cli.json_path, w.str(), &io_error)) {
      std::printf("could not write %s: %s\n", cli.json_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote report %s\n", cli.json_path.c_str());
  }
  if (!cli.trace_path.empty()) {
    Observability obs({.tracing = true, .label = "sync-sequencer"});
    SimOptions sopts;
    sopts.seed = 1;
    sopts.network.jitter_mean = 3.0;
    sopts.observability = &obs;
    const SimResult result = simulate(
        handoff_workload(1), SyncSequencerProtocol::factory(), 4, sopts);
    if (!result.completed ||
        !obs.tracer()->write_chrome_trace(cli.trace_path, &io_error)) {
      std::printf("could not write %s: %s\n", cli.trace_path.c_str(),
                  (result.completed ? io_error : result.error).c_str());
      return 1;
    }
    std::printf("wrote chrome trace %s (open in https://ui.perfetto.dev)\n",
                cli.trace_path.c_str());
  }
  return as_predicted ? 0 : 1;
}
