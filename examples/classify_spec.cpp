// classify_spec: a command-line front end for the paper's algorithm.
//
//   example_classify_spec '(x.s |> y.s) & (y.r |> x.r)'
//   example_classify_spec --demo
//   example_classify_spec --json out.json 'spec' ...
//
// Parses a forbidden predicate, prints the predicate graph, the simple
// cycles with their beta orders, the Lemma 4 weakening trace of a
// minimum-order cycle, the classification verdict, and the protocol
// Theorem 3 prescribes.  With --json <path> the verdicts are also
// written as a machine-readable document
// (schema msgorder.classification/1).
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/cli.hpp"
#include "src/obs/json.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/spec/graph.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"
#include "src/spec/weaken.hpp"

using namespace msgorder;

namespace {

/// One verdict for the --json report.
struct ClassifyRow {
  std::string input;
  bool ok = false;
  std::string error;
  std::string classification;
  std::string rationale;
  bool implementable = false;
};

std::vector<ClassifyRow> g_rows;

void analyze(const std::string& text) {
  ClassifyRow row;
  row.input = text;
  std::printf("==================================================\n");
  std::printf("input: forbid %s\n\n", text.c_str());
  const ParseResult parsed = parse_predicate(text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    row.error = parsed.error;
    g_rows.push_back(row);
    return;
  }
  const ForbiddenPredicate& predicate = *parsed.predicate;
  row.ok = true;

  const NormalizedPredicate normalized = normalize(predicate);
  switch (normalized.triviality) {
    case NormalTriviality::kUnsatisfiable:
      std::printf("the predicate can never hold: the specification is all "
                  "of X_async; the do-nothing protocol suffices\n");
      row.classification = "trivial: all of X_async";
      row.implementable = true;
      g_rows.push_back(row);
      return;
    case NormalTriviality::kTautological:
      std::printf("the predicate always holds: the specification admits "
                  "no runs with messages; not implementable\n");
      row.classification = "trivial: no runs with messages";
      g_rows.push_back(row);
      return;
    case NormalTriviality::kNone:
      break;
  }

  const PredicateGraph graph(normalized.predicate);
  std::printf("predicate graph:\n%s\n",
              graph.to_string(normalized.predicate).c_str());

  const auto cycles = graph.simple_cycles(64);
  std::printf("simple cycles: %zu%s\n", cycles.size(),
              cycles.size() == 64 ? "+ (capped)" : "");
  for (const Cycle& c : cycles) {
    std::printf("  order %zu:", c.order);
    for (std::size_t ei : c.edges) {
      const PredicateEdge& e = graph.edges()[ei];
      std::printf(" %s.%s->%s.%s",
                  normalized.predicate.var_name(e.from).c_str(),
                  kind_name(e.p).c_str(),
                  normalized.predicate.var_name(e.to).c_str(),
                  kind_name(e.q).c_str());
    }
    std::printf("\n");
  }

  const Classification verdict = classify(predicate);
  std::printf("\nclassification: %s\n", verdict.to_string().c_str());

  if (verdict.witness.has_value() && !verdict.witness->edges.empty()) {
    const ForbiddenPredicate ring =
        cycle_predicate(graph, verdict.witness->edges);
    const WeakeningTrace trace = weaken_to_canonical(ring);
    std::printf("\nLemma 4 weakening of a minimum-order cycle:\n");
    for (std::size_t i = 0; i < trace.steps.size(); ++i) {
      std::printf("  %s %s\n", i == 0 ? "start:" : "   => ",
                  trace.steps[i].to_string().c_str());
    }
  }

  const SynthesisResult synthesis = synthesize(predicate);
  std::printf("\nverdict: %s\n", synthesis.rationale.c_str());

  row.classification = verdict.to_string();
  row.rationale = synthesis.rationale;
  row.implementable = synthesis.factory.has_value();
  g_rows.push_back(row);
}

int write_classification_json(const std::string& path) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "msgorder.classification/1");
  w.key("rows").begin_array();
  for (const ClassifyRow& row : g_rows) {
    w.begin_object();
    w.kv("input", row.input);
    w.kv("ok", row.ok);
    if (!row.ok) w.kv("error", row.error);
    w.kv("classification", row.classification);
    w.kv("rationale", row.rationale);
    w.kv("implementable", row.implementable);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string error;
  if (!write_text_file(path, w.str(), &error)) {
    std::printf("could not write %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote classification report %s\n", path.c_str());
  return 0;
}

}  // namespace

void analyze_composite(const std::string& text) {
  const ParseSpecResult parsed = parse_spec(text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  const CompositeSpec& spec = *parsed.spec;
  if (spec.predicates.size() == 1 && spec.counting.empty()) {
    analyze(text);
    return;
  }
  for (const ForbiddenPredicate& p : spec.predicates) {
    analyze(p.to_string());
  }
  for (const CountingPredicate& c : spec.counting) {
    std::printf("==================================================\n");
    std::printf("counting statement: %s — bounds the in-flight antichain "
                "width, which needs control-message coordination "
                "('general' class)\n",
                c.to_string().c_str());
  }
  std::printf("==================================================\n");
  std::printf("composite of %zu predicate(s) + %zu counting statement(s) "
              "=> overall class: %s\n",
              spec.predicates.size(), spec.counting.size(),
              to_string(classify(spec)).c_str());
}

int main(int argc, char** argv) {
  const ObsCli cli = parse_obs_cli(argc, argv);
  if (!cli.ok) {
    std::printf("%s\n", cli.error.c_str());
    return 2;
  }
  if (argc >= 2 && std::string(argv[1]) != "--demo") {
    for (int i = 1; i < argc; ++i) analyze_composite(argv[i]);
    if (!cli.json_path.empty()) return write_classification_json(cli.json_path);
    return 0;
  }
  // Demo: the paper's worked specifications.
  std::printf("no predicate given; running the Section 5 demo set\n\n");
  analyze("(x.s |> y.s) & (y.r |> x.r)");  // causal ordering
  analyze("(x.s |> y.s) & (y.r |> x.r) "
          "where process(x.s)=process(y.s), process(x.r)=process(y.r)");
  analyze("(x1.s |> x2.s) & (x2.s |> x3.s) & (x3.r |> x1.r)");  // 1-weaker
  analyze("(x.s |> y.s) & (y.r |> x.r) where color(y)=1");  // global flush
  analyze("(x.s |> y.r) & (y.s |> x.r) where color(x)=2");  // handoff
  analyze("(x.s |> y.s) & (x.r |> y.r)");  // receive 2nd before 1st
  analyze("(x1.s |> x2.r) & (x2.s |> x3.r) & (x3.s |> x1.r)");  // 3-crown
  if (!cli.json_path.empty()) return write_classification_json(cli.json_path);
  return 0;
}
