// Quickstart: specify a message ordering with a forbidden predicate,
// classify it, and run the synthesized protocol on a random workload.
//
// Observability flags (ISSUE 2, ISSUE 4):
//   --json <path>             write a msgorder.run_report/1 JSON report
//   --trace <path>            write a Chrome-trace JSON (open in Perfetto)
//   --flight-recorder <path>  dump a post-mortem JSON there if the run
//                             violates the spec or fails to complete
//   --profile <path>          write the engine profiler's
//                             msgorder.profile/1 JSON (ISSUE 7)
//   --tracelog <path>         record the causal trace log (ISSUE 9);
//                             query it with msgorder_query
//                             cone/cut/why/summary, diff two runs with
//                             msgorder_query diverge
//   --search-mode <m>         online monitor search: pruned (default),
//                             naive, or automaton — the ISSUE 8 compiled
//                             monitor automaton; specs outside the
//                             compilable class report a structured
//                             fallback reason and run on the bitset
//                             engine
#include <cstdio>
#include <cstring>
#include <string>

#include "src/checker/limit_sets.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/obs/cli.hpp"
#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"

using namespace msgorder;

int main(int argc, char** argv) {
  const ObsCli cli = parse_obs_cli(argc, argv);
  if (!cli.ok) {
    std::printf("%s\n", cli.error.c_str());
    return 2;
  }
  MonitorSearchMode search_mode = MonitorSearchMode::kPruned;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search-mode") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "pruned") {
        search_mode = MonitorSearchMode::kPruned;
      } else if (name == "naive") {
        search_mode = MonitorSearchMode::kNaive;
      } else if (name == "automaton") {
        search_mode = MonitorSearchMode::kAutomaton;
      } else {
        std::printf("unknown --search-mode %s "
                    "(expected pruned, naive, or automaton)\n",
                    name.c_str());
        return 2;
      }
    }
  }

  // 1. Specify: causal ordering as a forbidden predicate.
  const ParseResult parsed =
      parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const ForbiddenPredicate spec = *parsed.predicate;
  std::printf("specification: forbid %s\n", spec.to_string().c_str());

  // 2. Classify: which protocol class is necessary and sufficient?
  const Classification verdict = classify(spec);
  std::printf("classification: %s\n", verdict.to_string().c_str());

  // 3. Synthesize the protocol Theorem 3's sufficiency proof prescribes.
  const SynthesisResult synthesis = synthesize(spec);
  std::printf("synthesis: %s\n", synthesis.rationale.c_str());
  if (!synthesis.factory.has_value()) return 1;

  // 4. Simulate it on a random 4-process workload over a non-FIFO
  //    network and verify the produced run against the specification —
  //    both offline (the oracle on the finished run) and online (a
  //    monitor watching the event stream).
  Rng rng(2024);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 200;
  const Workload workload = random_workload(wopts, rng);

  ObservabilityOptions oopts;
  oopts.tracing = !cli.trace_path.empty();
  oopts.profiling = !cli.profile_path.empty();
  oopts.flight_recorder = !cli.flight_path.empty();
  oopts.tracelog = cli.tracelog_path;
  Observability obs(oopts);
  auto monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), spec, search_mode);
  SimOptions sopts;
  sopts.observability = &obs;
  sopts.observers.add(monitor_observer(monitor));

  const SimResult result =
      simulate(workload, *synthesis.factory, wopts.n_processes, sopts);
  if (!cli.flight_path.empty()) {
    std::string fr_error;
    if (dump_postmortem_if_red(cli.flight_path, result, &obs, monitor.get(),
                               &fr_error)) {
      std::printf("run went red: wrote flight-recorder post-mortem %s\n",
                  cli.flight_path.c_str());
    } else if (!fr_error.empty()) {
      std::printf("could not write %s: %s\n", cli.flight_path.c_str(),
                  fr_error.c_str());
    }
  }
  if (!result.completed) {
    std::printf("simulation failed: %s\n", result.error.c_str());
    return 1;
  }
  const auto run = result.trace.to_user_run();
  if (!run.has_value()) return 1;

  std::printf("simulated %zu messages; mean latency %.2f, tag %.0f B/msg, "
              "%.2f control packets/msg\n",
              wopts.n_messages, result.trace.mean_latency(),
              result.trace.mean_tag_bytes(),
              result.trace.control_packets_per_message());
  std::printf("run is causally ordered: %s\n",
              in_causal(*run) ? "yes" : "NO");
  std::printf("run satisfies the forbidden predicate spec: %s\n",
              satisfies(*run, spec) ? "yes" : "NO");
  std::printf("online monitor agrees: %s\n",
              monitor->violated() ? "NO (violation seen)" : "yes");
  if (const auto info = monitor->automaton_info(); info.requested) {
    if (info.compiled) {
      std::printf("monitor automaton: %zu states over %zu symbol classes "
                  "(%llu transitions taken)\n",
                  info.states, info.symbol_classes,
                  static_cast<unsigned long long>(info.transitions));
    } else {
      std::printf("monitor automaton: %s\n", info.fallback_reason.c_str());
    }
  }

  std::string io_error;
  if (!cli.json_path.empty()) {
    RunReportOptions ropts;
    ropts.protocol = "synthesized";
    ropts.n_processes = wopts.n_processes;
    ropts.seed = sopts.seed;
    if (!write_run_report(cli.json_path, result, ropts, &obs,
                          monitor.get(), &io_error)) {
      std::printf("could not write %s: %s\n", cli.json_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote run report %s\n", cli.json_path.c_str());
  }
  if (!cli.trace_path.empty()) {
    if (!obs.tracer()->write_chrome_trace(cli.trace_path, &io_error)) {
      std::printf("could not write %s: %s\n", cli.trace_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote chrome trace %s (open in https://ui.perfetto.dev)\n",
                cli.trace_path.c_str());
  }
  if (!cli.profile_path.empty()) {
    if (!write_text_file(cli.profile_path, obs.profile()->to_json(),
                         &io_error)) {
      std::printf("could not write %s: %s\n", cli.profile_path.c_str(),
                  io_error.c_str());
      return 1;
    }
    std::printf("wrote engine profile %s\n", cli.profile_path.c_str());
  }
  if (!cli.tracelog_path.empty()) {
    std::printf("wrote causal trace log %s (query with msgorder_query)\n",
                cli.tracelog_path.c_str());
  }
  return 0;
}
