// Quickstart: specify a message ordering with a forbidden predicate,
// classify it, and run the synthesized protocol on a random workload.
#include <cstdio>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"

using namespace msgorder;

int main() {
  // 1. Specify: causal ordering as a forbidden predicate.
  const ParseResult parsed =
      parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const ForbiddenPredicate spec = *parsed.predicate;
  std::printf("specification: forbid %s\n", spec.to_string().c_str());

  // 2. Classify: which protocol class is necessary and sufficient?
  const Classification verdict = classify(spec);
  std::printf("classification: %s\n", verdict.to_string().c_str());

  // 3. Synthesize the protocol Theorem 3's sufficiency proof prescribes.
  const SynthesisResult synthesis = synthesize(spec);
  std::printf("synthesis: %s\n", synthesis.rationale.c_str());
  if (!synthesis.factory.has_value()) return 1;

  // 4. Simulate it on a random 4-process workload over a non-FIFO
  //    network and verify the produced run against the specification.
  Rng rng(2024);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 200;
  const Workload workload = random_workload(wopts, rng);
  const SimResult result =
      simulate(workload, *synthesis.factory, wopts.n_processes);
  if (!result.completed) {
    std::printf("simulation failed: %s\n", result.error.c_str());
    return 1;
  }
  const auto run = result.trace.to_user_run();
  if (!run.has_value()) return 1;

  std::printf("simulated %zu messages; mean latency %.2f, tag %.0f B/msg, "
              "%.2f control packets/msg\n",
              wopts.n_messages, result.trace.mean_latency(),
              result.trace.mean_tag_bytes(),
              result.trace.control_packets_per_message());
  std::printf("run is causally ordered: %s\n",
              in_causal(*run) ? "yes" : "NO");
  std::printf("run satisfies the forbidden predicate spec: %s\n",
              satisfies(*run, spec) ? "yes" : "NO");
  return 0;
}
