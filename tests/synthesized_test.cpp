// Protocol synthesis (Theorem 3 made executable): classify a predicate,
// instantiate the prescribed protocol, simulate, and verify the produced
// runs against the original specification with the oracle.
#include <gtest/gtest.h>

#include "src/checker/violation.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(Synthesize, NotImplementableYieldsNoFactory) {
  const SynthesisResult r = synthesize(receive_second_before_first());
  EXPECT_FALSE(r.factory.has_value());
  EXPECT_EQ(r.classification.protocol_class,
            ProtocolClass::kNotImplementable);
  EXPECT_NE(r.rationale.find("Corollary 1"), std::string::npos);
}

TEST(Synthesize, TaglessSpecGetsAsyncProtocol) {
  const SynthesisResult r = synthesize(async_zoo()[0]);
  ASSERT_TRUE(r.factory.has_value());
  EXPECT_NE(r.rationale.find("do-nothing"), std::string::npos);
}

TEST(Synthesize, FifoShapeDetected) {
  EXPECT_TRUE(is_fifo_shaped(fifo()));
  EXPECT_FALSE(is_fifo_shaped(causal_ordering()));
  EXPECT_FALSE(is_fifo_shaped(global_forward_flush()));
  EXPECT_FALSE(is_fifo_shaped(sync_crown(2)));
}

TEST(Synthesize, FifoSpecGetsFifoProtocol) {
  const SynthesisResult r = synthesize(fifo());
  ASSERT_TRUE(r.factory.has_value());
  EXPECT_NE(r.rationale.find("FIFO"), std::string::npos);
}

TEST(Synthesize, EverySynthesizedProtocolSatisfiesItsSpec) {
  for (const NamedSpec& spec : spec_zoo()) {
    const SynthesisResult r = synthesize(spec.predicate);
    if (!r.factory.has_value()) {
      EXPECT_EQ(spec.expected, ProtocolClass::kNotImplementable)
          << spec.name;
      continue;
    }
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto result = run_protocol(*r.factory, 4, 80, seed,
                                       /*red_fraction=*/0.3,
                                       /*red_color=*/1);
      EXPECT_TRUE(satisfies(result.run, spec.predicate))
          << spec.name << " seed " << seed;
    }
  }
}

TEST(Synthesize, HandoffSpecGetsControlMessages) {
  const SynthesisResult r = synthesize(mobile_handoff());
  ASSERT_TRUE(r.factory.has_value());
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kGeneral);
  const auto result = run_protocol(*r.factory, 4, 60, 5,
                                   /*red_fraction=*/0.5, /*red_color=*/2);
  EXPECT_GT(result.sim.trace.control_packets(), 0u);
  EXPECT_TRUE(satisfies(result.run, mobile_handoff(2)));
}

TEST(Synthesize, TaggedSpecsUseNoControlMessages) {
  for (const ForbiddenPredicate& p :
       {causal_ordering(), fifo(), k_weaker_causal(2),
        global_forward_flush()}) {
    const SynthesisResult r = synthesize(p);
    ASSERT_TRUE(r.factory.has_value());
    const auto result = run_protocol(*r.factory, 4, 80, 7,
                                     /*red_fraction=*/0.3);
    EXPECT_EQ(result.sim.trace.control_packets(), 0u) << p.to_string();
    EXPECT_TRUE(satisfies(result.run, p));
  }
}

TEST(Synthesize, ParsedUserSpecEndToEnd) {
  const auto parsed = parse_predicate(
      "(a.s |> b.s) & (b.s |> c.s) & (c.r |> a.r)");
  ASSERT_TRUE(parsed.ok());
  const SynthesisResult r = synthesize(*parsed.predicate);
  ASSERT_TRUE(r.factory.has_value());
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagged);
  const auto result = run_protocol(*r.factory, 4, 100, 9);
  EXPECT_TRUE(satisfies(result.run, *parsed.predicate));
}

}  // namespace
}  // namespace msgorder
