#include <gtest/gtest.h>

#include "src/checker/violation.hpp"
#include "src/protocols/flush.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind R = UserEventKind::kDeliver;
constexpr UserEventKind S = UserEventKind::kSend;

TEST(FlushChannel, OrdinaryTrafficUnconstrained) {
  // With only ordinary messages the flush protocol behaves like async:
  // nothing buffered, no control messages, O(1) tag.
  const auto result =
      run_protocol(FlushChannelProtocol::factory(), 4, 150, 3);
  EXPECT_EQ(result.sim.trace.control_packets(), 0u);
  EXPECT_EQ(result.sim.trace.mean_delivery_delay(), 0.0);
}

TEST(FlushChannel, ForwardFlushWaitsForPredecessors) {
  // Channel burst with a forward-flush message in the middle.
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 10; ++i) entries.push_back({0.01 * i, 0, 1, 0});
  entries.push_back({0.2, 0, 1, kForwardFlush});                  // id 10
  for (int i = 0; i < 10; ++i) entries.push_back({0.3 + 0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 8.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, FlushChannelProtocol::factory(), 2, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    // Everything sent before the flush is delivered before it.
    for (MessageId m = 0; m < 10; ++m) {
      EXPECT_TRUE(run->before(m, R, 10, R)) << "seed " << seed;
    }
    // Later ordinary messages may overtake the flush (forward only).
    EXPECT_TRUE(satisfies(*run, local_forward_flush(kForwardFlush)));
  }
}

TEST(FlushChannel, BackwardFlushBlocksSuccessors) {
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  entries.push_back({0.0, 0, 1, kBackwardFlush});  // id 0
  for (int i = 0; i < 10; ++i) entries.push_back({0.1 + 0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 8.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, FlushChannelProtocol::factory(), 2, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    for (MessageId m = 1; m <= 10; ++m) {
      EXPECT_TRUE(run->before(0, R, m, R)) << "seed " << seed;
    }
    EXPECT_TRUE(satisfies(*run, local_backward_flush(kBackwardFlush)));
  }
}

TEST(FlushChannel, TwoWayFlushIsABarrier) {
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 8; ++i) entries.push_back({0.01 * i, 0, 1, 0});
  entries.push_back({0.2, 0, 1, kTwoWayFlush});  // id 8
  for (int i = 0; i < 8; ++i) entries.push_back({0.3 + 0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 8.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, FlushChannelProtocol::factory(), 2, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    for (MessageId m = 0; m < 8; ++m) {
      EXPECT_TRUE(run->before(m, R, 8, R));
      EXPECT_TRUE(run->before(8, R, m + 9, R));
    }
  }
}

TEST(FlushChannel, OrdinaryMessagesMayOvertakeEachOther) {
  // Flush channels are weaker than FIFO: some seed shows ordinary
  // overtaking on a channel.
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 20; ++i) entries.push_back({0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 8.0;
  bool overtaking = false;
  for (std::uint64_t seed = 1; seed <= 10 && !overtaking; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, FlushChannelProtocol::factory(), 2, sopts);
    ASSERT_TRUE(sim.completed);
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    for (MessageId a = 0; a < 20 && !overtaking; ++a) {
      for (MessageId b = a + 1; b < 20 && !overtaking; ++b) {
        overtaking = run->before(b, R, a, R);
      }
    }
  }
  EXPECT_TRUE(overtaking);
}

TEST(FlushChannel, MixedRandomTrafficSatisfiesFlushSpecs) {
  // Random traffic where "red" messages are two-way flushes: both the
  // forward and backward single-channel specs must hold.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto result =
        run_protocol(FlushChannelProtocol::factory(), 3, 150, seed,
                     /*red_fraction=*/0.2, /*red_color=*/kTwoWayFlush);
    EXPECT_TRUE(
        satisfies(result.run, local_forward_flush(kTwoWayFlush)))
        << "seed " << seed;
    EXPECT_TRUE(
        satisfies(result.run, local_backward_flush(kTwoWayFlush)))
        << "seed " << seed;
  }
}

TEST(FlushChannel, IndependentChannelsDoNotBlock) {
  // A flush on channel (0,1) must not delay traffic on (0,2).
  const Workload w = scripted_workload({
      {0.0, 0, 1, kTwoWayFlush},
      {0.1, 0, 2, 0},
  });
  const SimResult sim = simulate(w, FlushChannelProtocol::factory(), 3);
  ASSERT_TRUE(sim.completed);
  const auto run = sim.trace.to_user_run();
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->concurrent({0, R}, {1, R}));
}

}  // namespace
}  // namespace msgorder
