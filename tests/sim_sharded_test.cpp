// Sequential-vs-sharded equivalence (ISSUE 6): for every registry
// stack, for synthesized protocols, and for the lossy/timer-driven
// reliability layer, the sharded engine must produce a SimResult whose
// trace is bit-identical to the sequential engine's — same per-process
// event logs with the same timestamps, same lifecycle times, same
// overhead counters, same completion flag — at shards ∈ {1, 2, 4},
// cooperative or threaded.  Plus: global event-cap enforcement naming
// the shard, the zero-lookahead sequential fallback, observer safety
// classes, and metrics/attribution equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/obs/observability.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/registry.hpp"
#include "src/protocols/reliable.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

Workload make_workload(std::size_t n_processes, std::size_t n_messages,
                       std::uint64_t seed, double red_fraction = 0.25) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = 0.3;  // hot: plenty of cross-window traffic
  wopts.red_fraction = red_fraction;
  return random_workload(wopts, rng);
}

SimOptions adversarial_options(std::uint64_t seed) {
  SimOptions sopts;
  sopts.seed = seed;
  sopts.network.jitter_mean = 3.0;  // aggressive reordering
  return sopts;
}

/// Full structural equality of two traces: logs (events and exact
/// times), per-message lifecycle times, and every overhead counter.
void expect_traces_identical(const Trace& a, const Trace& b,
                             const std::string& label) {
  ASSERT_EQ(a.logs().size(), b.logs().size()) << label;
  for (std::size_t p = 0; p < a.logs().size(); ++p) {
    const auto& la = a.logs()[p];
    const auto& lb = b.logs()[p];
    ASSERT_EQ(la.size(), lb.size()) << label << " process " << p;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].event, lb[i].event)
          << label << " process " << p << " index " << i;
      EXPECT_EQ(la[i].time, lb[i].time)  // bit-identical, not approximate
          << label << " process " << p << " index " << i;
    }
  }
  ASSERT_EQ(a.universe().size(), b.universe().size()) << label;
  for (MessageId m = 0; m < a.universe().size(); ++m) {
    EXPECT_EQ(a.times(m), b.times(m)) << label << " message " << m;
  }
  EXPECT_EQ(a.invoked(), b.invoked()) << label;
  EXPECT_EQ(a.delivered(), b.delivered()) << label;
  EXPECT_EQ(a.control_packets(), b.control_packets()) << label;
  EXPECT_EQ(a.user_packets(), b.user_packets()) << label;
  EXPECT_EQ(a.control_bytes(), b.control_bytes()) << label;
  EXPECT_EQ(a.tag_bytes(), b.tag_bytes()) << label;
  EXPECT_EQ(a.drops(), b.drops()) << label;
  EXPECT_EQ(a.retransmissions(), b.retransmissions()) << label;
  EXPECT_EQ(a.duplicate_arrivals(), b.duplicate_arrivals()) << label;
}

void expect_equivalent(const ProtocolFactory& factory,
                       const std::string& label, std::size_t n_processes,
                       std::size_t n_messages, std::uint64_t seed,
                       SimOptions base_options) {
  const Workload workload = make_workload(n_processes, n_messages, seed);
  base_options.shards = 1;
  const SimResult sequential =
      simulate(workload, factory, n_processes, base_options);
  EXPECT_EQ(sequential.shards_used, 1u) << label;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SimOptions sopts = base_options;
    sopts.shards = shards;
    const SimResult sharded =
        simulate(workload, factory, n_processes, sopts);
    const std::string run_label =
        label + " shards=" + std::to_string(shards);
    EXPECT_EQ(sharded.shards_used,
              std::min(shards, n_processes))
        << run_label;
    EXPECT_EQ(sharded.completed, sequential.completed) << run_label;
    EXPECT_EQ(sharded.error, sequential.error) << run_label;
    expect_traces_identical(sequential.trace, sharded.trace, run_label);
  }
}

TEST(ShardedEquivalence, AllRegistryStacks) {
  for (const RegisteredProtocol& reg : standard_protocols()) {
    expect_equivalent(reg.factory, reg.name, 6, 160, 0x5eed + 1,
                      adversarial_options(0xabba));
  }
}

TEST(ShardedEquivalence, RegistryStacksSecondSeedAndFifoNetwork) {
  SimOptions sopts = adversarial_options(0xc0ffee);
  sopts.network.fifo_channels = true;
  for (const RegisteredProtocol& reg : standard_protocols()) {
    expect_equivalent(reg.factory, reg.name + "+fifo-net", 5, 120, 77,
                      sopts);
  }
}

TEST(ShardedEquivalence, SynthesizedProtocols) {
  const SynthesisResult fifo_like = synthesize(fifo());
  ASSERT_TRUE(fifo_like.factory.has_value()) << fifo_like.rationale;
  expect_equivalent(*fifo_like.factory, "synthesized-fifo", 6, 140, 11,
                    adversarial_options(0xfeed));

  const SynthesisResult causal_like = synthesize(causal_ordering());
  ASSERT_TRUE(causal_like.factory.has_value()) << causal_like.rationale;
  expect_equivalent(*causal_like.factory, "synthesized-causal", 6, 140, 12,
                    adversarial_options(0xbead));

  const SynthesisResult sync_like = synthesize(mobile_handoff());
  ASSERT_TRUE(sync_like.factory.has_value()) << sync_like.rationale;
  expect_equivalent(*sync_like.factory, "synthesized-sync", 6, 120, 13,
                    adversarial_options(0xface));
}

TEST(ShardedEquivalence, LossyNetworkWithTimers) {
  // The reliability layer retransmits on timers over a lossy network:
  // exercises the timer key path and the per-process loss streams.
  SimOptions sopts = adversarial_options(0xdead);
  sopts.network.loss_probability = 0.1;
  expect_equivalent(ReliableProtocol::wrap(AsyncProtocol::factory()),
                    "reliable(async)+loss", 6, 120, 21, sopts);
}

TEST(ShardedEquivalence, ThreadedWorkersMatchCooperative) {
  // Force real threads (workers == shards) and compare against both the
  // sequential engine and the cooperative single-worker sharded run.
  const Workload workload = make_workload(6, 160, 99);
  const ProtocolFactory factory = standard_protocols()[1].factory;  // fifo
  SimOptions sequential_opts = adversarial_options(31);
  sequential_opts.shards = 1;
  const SimResult sequential = simulate(workload, factory, 6, sequential_opts);

  SimOptions threaded_opts = adversarial_options(31);
  threaded_opts.shards = 4;
  threaded_opts.shard_workers = 4;
  const SimResult threaded = simulate(workload, factory, 6, threaded_opts);
  EXPECT_EQ(threaded.workers_used, 4u);

  SimOptions coop_opts = adversarial_options(31);
  coop_opts.shards = 4;
  coop_opts.shard_workers = 1;
  const SimResult cooperative = simulate(workload, factory, 6, coop_opts);
  EXPECT_EQ(cooperative.workers_used, 1u);

  expect_traces_identical(sequential.trace, threaded.trace, "threaded");
  expect_traces_identical(sequential.trace, cooperative.trace,
                          "cooperative");
}

TEST(ShardedEquivalence, MetricsAndAttributionMatch) {
  const Workload workload = make_workload(6, 150, 5);
  const ProtocolFactory factory = standard_protocols()[2].factory;
  auto run_with_obs = [&](std::size_t shards, Observability& obs) {
    SimOptions sopts = adversarial_options(17);
    sopts.shards = shards;
    sopts.observability = &obs;
    return simulate(workload, factory, 6, sopts);
  };
  Observability obs_seq({.label = "x"});
  Observability obs_shard({.label = "x"});
  const SimResult sequential = run_with_obs(1, obs_seq);
  const SimResult sharded = run_with_obs(4, obs_shard);
  ASSERT_TRUE(sequential.completed) << sequential.error;
  ASSERT_TRUE(sharded.completed) << sharded.error;
  expect_traces_identical(sequential.trace, sharded.trace, "obs");
  // The whole metrics registry serializes identically: counters,
  // histograms (latency, per-reason hold times), gauge watermarks.
  EXPECT_EQ(obs_seq.metrics().to_json(), obs_shard.metrics().to_json());
  ASSERT_NE(obs_seq.attribution(), nullptr);
  ASSERT_NE(obs_shard.attribution(), nullptr);
  EXPECT_EQ(obs_seq.attribution()->segment_count(),
            obs_shard.attribution()->segment_count());
  for (std::size_t k = 0; k < kHoldKindCount; ++k) {
    EXPECT_DOUBLE_EQ(obs_seq.attribution()->totals_by_kind()[k],
                     obs_shard.attribution()->totals_by_kind()[k])
        << "hold kind " << k;
  }
}

TEST(ShardedEquivalence, MergePhaseObserverSeesSequentialOrder) {
  const Workload workload = make_workload(5, 100, 7);
  const ProtocolFactory factory = standard_protocols()[1].factory;
  auto capture = [&](std::size_t shards,
                     std::vector<std::pair<ProcessId, SystemEvent>>& out) {
    SimOptions sopts = adversarial_options(23);
    sopts.shards = shards;
    sopts.observers.add(
        [&out](ProcessId p, SystemEvent e, SimTime) {
          out.emplace_back(p, e);
        });  // default safety: merge phase
    return simulate(workload, factory, 5, sopts);
  };
  std::vector<std::pair<ProcessId, SystemEvent>> seq_events;
  std::vector<std::pair<ProcessId, SystemEvent>> shard_events;
  ASSERT_TRUE(capture(1, seq_events).completed);
  ASSERT_TRUE(capture(4, shard_events).completed);
  ASSERT_EQ(seq_events.size(), shard_events.size());
  EXPECT_EQ(seq_events, shard_events);  // identical global order
}

TEST(ShardedEquivalence, ThreadSafeObserverSeesEveryEventLive) {
  const Workload workload = make_workload(5, 100, 7);
  const ProtocolFactory factory = standard_protocols()[0].factory;
  std::atomic<std::size_t> live_count{0};
  std::size_t merge_count = 0;
  SimOptions sopts = adversarial_options(29);
  sopts.shards = 4;
  sopts.shard_workers = 4;
  sopts.observers
      .add([&](ProcessId, SystemEvent, SimTime) { ++live_count; },
           ObserverSafety::kThreadSafe)
      .add([&](ProcessId, SystemEvent, SimTime) { ++merge_count; });
  const SimResult result = simulate(workload, factory, 5, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  // async: invoke + send + receive + deliver per message.
  EXPECT_EQ(live_count.load(), 400u);
  EXPECT_EQ(merge_count, 400u);
}

// ISSUE 7 satellite: a kThreadSafe observer is invoked from the shard
// worker threads as the events happen, so it sees exactly the trace's
// event population (as a multiset — cross-shard interleaving is
// arbitrary) and, per process, nondecreasing timestamps (each process
// is driven by exactly one shard, in time order).
TEST(ShardedEquivalence, ThreadSafeObserverMatchesTraceMultiset) {
  constexpr std::size_t kProcesses = 6;
  const Workload workload = make_workload(kProcesses, 300, 19);
  const ProtocolFactory factory = standard_protocols()[0].factory;
  using Captured = std::tuple<ProcessId, MessageId, int, SimTime>;
  std::mutex mu;
  std::vector<Captured> live;
  SimOptions sopts = adversarial_options(37);
  sopts.shards = 4;
  sopts.shard_workers = 4;
  sopts.observers.add(
      [&](ProcessId p, SystemEvent e, SimTime t) {
        const std::lock_guard<std::mutex> lock(mu);
        live.emplace_back(p, e.msg, static_cast<int>(e.kind), t);
      },
      ObserverSafety::kThreadSafe);
  const SimResult result = simulate(workload, factory, kProcesses, sopts);
  ASSERT_TRUE(result.completed) << result.error;

  // Per process, the live capture order is the shard's execution order:
  // timestamps never go backwards.
  std::vector<SimTime> last(kProcesses,
                            -std::numeric_limits<SimTime>::infinity());
  for (const auto& [p, msg, kind, t] : live) {
    EXPECT_GE(t, last[p]) << "process " << p << " msg " << msg;
    last[p] = t;
  }

  // Multiset equality with the trace: same events, same processes,
  // same (bit-identical) timestamps.
  std::vector<Captured> traced;
  for (ProcessId p = 0; p < static_cast<ProcessId>(result.trace.logs().size());
       ++p) {
    for (const TimedEvent& te : result.trace.logs()[p]) {
      traced.emplace_back(p, te.event.msg, static_cast<int>(te.event.kind),
                          te.time);
    }
  }
  std::sort(live.begin(), live.end());
  std::sort(traced.begin(), traced.end());
  EXPECT_EQ(live, traced);
}

TEST(ShardedSimulator, ZeroLookaheadFallsBackToSequential) {
  const Workload workload = make_workload(4, 40, 3);
  SimOptions sopts = adversarial_options(41);
  sopts.network.base_delay = 0.0;  // lookahead gone
  sopts.shards = 4;
  const SimResult result =
      simulate(workload, AsyncProtocol::factory(), 4, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.shards_used, 1u);
  EXPECT_EQ(result.workers_used, 1u);
}

TEST(ShardedSimulator, AutoShardsRunsAndMatchesSequential) {
  const Workload workload = make_workload(6, 120, 13);
  SimOptions auto_opts = adversarial_options(43);
  auto_opts.shards = 0;  // auto
  const SimResult auto_run =
      simulate(workload, AsyncProtocol::factory(), 6, auto_opts);
  ASSERT_TRUE(auto_run.completed) << auto_run.error;
  EXPECT_GE(auto_run.shards_used, 1u);
  EXPECT_LE(auto_run.shards_used, 6u);
  SimOptions seq_opts = adversarial_options(43);
  const SimResult sequential =
      simulate(workload, AsyncProtocol::factory(), 6, seq_opts);
  expect_traces_identical(sequential.trace, auto_run.trace, "auto");
}

TEST(ShardedSimulator, EventCapIsGlobalAndNamesTheShard) {
  const Workload workload = make_workload(6, 400, 19);
  SimOptions sopts = adversarial_options(47);
  sopts.shards = 4;
  // 400 messages need >= 1600 events; cap far below that, but above
  // what any single shard alone would hit in one window.
  sopts.max_events = 200;
  const SimResult result =
      simulate(workload, AsyncProtocol::factory(), 6, sopts);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("event cap exceeded in shard"),
            std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("of 4"), std::string::npos) << result.error;

  // Sequential cap message carries the same shape.
  SimOptions seq_opts = adversarial_options(47);
  seq_opts.max_events = 200;
  const SimResult seq_result =
      simulate(workload, AsyncProtocol::factory(), 6, seq_opts);
  EXPECT_FALSE(seq_result.completed);
  EXPECT_NE(seq_result.error.find("event cap exceeded in shard 0 of 1"),
            std::string::npos)
      << seq_result.error;
}

}  // namespace
}  // namespace msgorder
